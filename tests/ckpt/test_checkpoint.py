"""Checkpoint round-trip: exact resume parity and restore validation."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.ckpt.format import (
    DENSE_SHARD,
    MANIFEST_NAME,
    CheckpointError,
    node_shard_name,
)
from repro.config import ClusterConfig
from repro.core.cluster import HPSCluster, RoundContext
from repro.core.trainer import Trainer


def build(tiny_spec, small_config, **kwargs):
    return HPSCluster(
        tiny_spec, small_config, functional_batch_size=128, **kwargs
    )


def assert_cluster_parity(a: HPSCluster, b: HPSCluster) -> None:
    """Bit-exact equality of everything training produced."""
    probe = a.generator.batch(10_000, 1024).unique_keys()
    assert np.array_equal(a.lookup_embeddings(probe), b.lookup_embeddings(probe))
    for pa, pb in zip(
        a.nodes[0].model.dense_state(), b.nodes[0].model.dense_state()
    ):
        assert np.array_equal(pa, pb)
    eval_batch = a.generator.batch(20_000, 2048)
    assert a.evaluate_auc(eval_batch) == b.evaluate_auc(eval_batch)


def assert_deep_state_parity(a: HPSCluster, b: HPSCluster) -> None:
    """Replacement metadata and SSD layout match, not just values."""
    for na, nb in zip(a.nodes, b.nodes):
        mem_a, mem_b = na.mem_ps.export_state(), nb.mem_ps.export_state()
        assert set(mem_a) == set(mem_b)
        for key in mem_a:
            assert np.array_equal(mem_a[key], mem_b[key]), f"mem {key}"
        ssd_a, ssd_b = na.ssd_ps.export_state(), nb.ssd_ps.export_state()
        assert set(ssd_a) == set(ssd_b)
        for key in ssd_a:
            assert np.array_equal(ssd_a[key], ssd_b[key]), f"ssd {key}"


# ----------------------------------------------------------------------
def test_lockstep_resume_parity(tiny_spec, small_config, tmp_path):
    straight = build(tiny_spec, small_config)
    straight.train(5)

    resumed = build(tiny_spec, small_config)
    resumed.train(2)
    resumed.save_checkpoint(str(tmp_path))
    restored = HPSCluster.restore(str(tmp_path))
    assert restored.rounds_completed == 2
    restored.train(3)

    assert_cluster_parity(straight, restored)
    assert_deep_state_parity(straight, restored)
    for node in restored.nodes:
        node.ssd_ps.check_invariants()


def test_pipelined_resume_parity(tiny_spec, small_config, tmp_path):
    straight = build(tiny_spec, small_config)
    straight.train_pipelined(5)

    resumed = build(tiny_spec, small_config)
    resumed.train_pipelined(2)
    resumed.save_checkpoint(str(tmp_path))
    restored = HPSCluster.restore(str(tmp_path))
    restored.train_pipelined(3)

    assert_cluster_parity(straight, restored)
    assert_deep_state_parity(straight, restored)


def test_restore_is_identity_at_the_boundary(tiny_spec, small_config, tmp_path):
    cluster = build(tiny_spec, small_config)
    cluster.train(3)
    cluster.save_checkpoint(str(tmp_path))
    restored = HPSCluster.restore(str(tmp_path))
    assert restored.rounds_completed == 3
    assert_cluster_parity(cluster, restored)
    assert_deep_state_parity(cluster, restored)
    for node in restored.nodes:
        node.ssd_ps.check_invariants()
        assert node.hdfs.batches_read == 3


def test_disk_backed_ssd_round_trip(tiny_spec, small_config, tmp_path):
    src_dir = tmp_path / "ssd_src"
    dst_dir = tmp_path / "ssd_dst"
    ckpt = tmp_path / "ckpt"
    cluster = build(tiny_spec, small_config, ssd_directory=str(src_dir))
    cluster.train(3)
    # Shutdown-style flush guarantees the SSD tier holds payload files.
    for node in cluster.nodes:
        node.mem_ps.flush_to_ssd()
    assert cluster.nodes[0].ssd_ps.store.n_files > 0
    cluster.save_checkpoint(str(ckpt))
    restored = HPSCluster.restore(str(ckpt), ssd_directory=str(dst_dir))
    assert_cluster_parity(cluster, restored)
    # Payloads were re-materialized under the new directory.
    assert any(f.endswith(".npy") for f in os.listdir(dst_dir / "node0"))
    for node in restored.nodes:
        node.ssd_ps.check_invariants()


def test_save_charges_ckpt_write_and_restore_charges_ckpt_read(
    tiny_spec, small_config, tmp_path
):
    cluster = build(tiny_spec, small_config)
    cluster.train(2)
    stats = cluster.save_checkpoint(str(tmp_path))
    assert stats.op == "save"
    assert stats.seconds > 0 and stats.nbytes > 0
    assert len(stats.per_node_seconds) == cluster.n_nodes
    # Saves price as a serialize/transfer flow shop: the makespan beats
    # the serial sum (overlap) but can't beat the slowest single shard.
    assert stats.serialize_seconds > 0 and stats.transfer_seconds > 0
    assert max(stats.per_node_seconds) <= stats.seconds
    assert stats.seconds < stats.serialize_seconds + stats.transfer_seconds
    assert stats.seconds <= sum(stats.per_node_seconds)
    for node in cluster.nodes:
        assert node.ledger.total("ckpt_write") > 0

    restored = HPSCluster.restore(str(tmp_path))
    assert restored.restore_stats.op == "restore"
    assert restored.restore_stats.seconds > 0
    # Restores keep the parallel-shard model — no serialize component.
    assert restored.restore_stats.serialize_seconds == 0.0
    for node in restored.nodes:
        assert node.ledger.total("ckpt_read") > 0


def test_snapshot_cost_is_flow_shop_makespan(tiny_spec, small_config, tmp_path):
    """``seconds`` follows the serialize/transfer overlap recurrence.

    Per-shard components are recoverable from ``per_node_seconds``
    (``s_i + t_i`` with both rates known), so the flow-shop makespan —
    ``s_done += s_i; t_done = max(t_done, s_done) + t_i`` in node order —
    can be recomputed independently and compared against the stats.
    """
    cluster = build(tiny_spec, small_config)
    cluster.train(2)
    stats = cluster.save_checkpoint(str(tmp_path))
    spec = cluster.nodes[0].hdfs.spec
    rate = 1.0 / spec.bandwidth + 1.0 / spec.serialize_bandwidth
    s_done = t_done = ser_sum = xfer_sum = 0.0
    for per in stats.per_node_seconds:
        total_bytes = (per - spec.latency_s) / rate
        s = total_bytes / spec.serialize_bandwidth
        t = spec.latency_s + total_bytes / spec.bandwidth
        s_done += s
        t_done = max(t_done, s_done) + t
        ser_sum += s
        xfer_sum += t
    assert stats.seconds == pytest.approx(t_done, rel=1e-9)
    assert stats.serialize_seconds == pytest.approx(ser_sum, rel=1e-9)
    assert stats.transfer_seconds == pytest.approx(xfer_sum, rel=1e-9)


# ----------------------------------------------------------------------
def test_restore_rejects_config_mismatch(tiny_spec, small_config, tmp_path):
    cluster = build(tiny_spec, small_config)
    cluster.train(1)
    cluster.save_checkpoint(str(tmp_path))
    other = ClusterConfig(
        n_nodes=small_config.n_nodes,
        gpus_per_node=small_config.gpus_per_node,
        minibatches_per_gpu=small_config.minibatches_per_gpu,
        mem_capacity_params=small_config.mem_capacity_params,
        hbm_capacity_params=small_config.hbm_capacity_params,
        ssd_file_capacity=small_config.ssd_file_capacity,
        seed=small_config.seed + 1,
    )
    with pytest.raises(CheckpointError, match="configuration mismatch"):
        HPSCluster.restore(str(tmp_path), other)
    # The saved config restores fine when passed explicitly.
    restored = HPSCluster.restore(str(tmp_path), small_config)
    assert restored.rounds_completed == 1


def test_restore_rejects_missing_shard(tiny_spec, small_config, tmp_path):
    cluster = build(tiny_spec, small_config)
    cluster.train(1)
    cluster.save_checkpoint(str(tmp_path))
    os.remove(tmp_path / node_shard_name(1))
    with pytest.raises(CheckpointError, match="missing"):
        HPSCluster.restore(str(tmp_path))


def test_restore_rejects_corrupt_shard(tiny_spec, small_config, tmp_path):
    cluster = build(tiny_spec, small_config)
    cluster.train(1)
    cluster.save_checkpoint(str(tmp_path))
    path = tmp_path / DENSE_SHARD
    path.write_bytes(path.read_bytes()[:-16])  # simulated truncation
    with pytest.raises(CheckpointError, match="corrupt"):
        HPSCluster.restore(str(tmp_path))


def test_restore_rejects_uncommitted_directory(tiny_spec, small_config, tmp_path):
    cluster = build(tiny_spec, small_config)
    cluster.train(1)
    cluster.save_checkpoint(str(tmp_path))
    os.remove(tmp_path / MANIFEST_NAME)  # shards present, commit record gone
    with pytest.raises(CheckpointError, match="no committed checkpoint"):
        HPSCluster.restore(str(tmp_path))


def test_save_refuses_mid_round(tiny_spec, small_config, tmp_path):
    cluster = build(tiny_spec, small_config)
    ctx = RoundContext(round_index=0)
    cluster.stage_read(ctx)
    cluster.stage_prepare(ctx)
    cluster.stage_load(ctx)
    with pytest.raises(CheckpointError, match="round boundary"):
        cluster.save_checkpoint(str(tmp_path))
    cluster.stage_train(ctx)  # completes the round; now quiescent
    cluster.save_checkpoint(str(tmp_path))


def test_save_overwrites_previous_checkpoint(tiny_spec, small_config, tmp_path):
    cluster = build(tiny_spec, small_config)
    cluster.train(1)
    cluster.save_checkpoint(str(tmp_path))
    cluster.train(1)
    cluster.save_checkpoint(str(tmp_path))
    restored = HPSCluster.restore(str(tmp_path))
    assert restored.rounds_completed == 2
    assert_cluster_parity(cluster, restored)


# ----------------------------------------------------------------------
def test_trainer_checkpoint_cadence(tiny_spec, small_config, tmp_path):
    cluster = build(tiny_spec, small_config)
    trainer = Trainer(
        cluster, checkpoint_dir=str(tmp_path), checkpoint_every=2
    )
    history = trainer.run(5)
    assert [c.rounds_completed for c in history.checkpoints] == [2, 4]
    assert history.checkpoint_seconds() > 0
    assert sorted(os.listdir(tmp_path)) == ["round_000002", "round_000004"]
    restored = HPSCluster.restore(str(tmp_path / "round_000004"))
    restored.train(1)
    assert_cluster_parity(cluster, restored)


def test_trainer_delta_checkpoint_mode(tiny_spec, small_config, tmp_path):
    """checkpoint_mode='auto' chains cadence snapshots: first full, the
    rest deltas — and the newest chain member restores bit-identically."""
    cluster = build(tiny_spec, small_config)
    trainer = Trainer(
        cluster,
        checkpoint_dir=str(tmp_path),
        checkpoint_every=2,
        checkpoint_mode="auto",
    )
    history = trainer.run(6)
    assert [c.kind for c in history.checkpoints] == ["full", "delta", "delta"]
    restored = HPSCluster.restore(str(tmp_path / "round_000006"))
    assert_cluster_parity(cluster, restored)
    assert_deep_state_parity(cluster, restored)
    cluster.train(1)
    restored.train(1)
    assert_cluster_parity(cluster, restored)


def test_trainer_validates_checkpoint_mode():
    with pytest.raises(ValueError, match="checkpoint_mode"):
        Trainer(None, checkpoint_mode="incremental")
