"""Failure injection: kill → restore → replay reaches the no-failure state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ckpt import FailureInjector
from repro.core.cluster import HPSCluster


def build(tiny_spec, small_config):
    return HPSCluster(tiny_spec, small_config, functional_batch_size=128)


def assert_same_final_state(a: HPSCluster, b: HPSCluster) -> None:
    probe = a.generator.batch(10_000, 1024).unique_keys()
    assert np.array_equal(a.lookup_embeddings(probe), b.lookup_embeddings(probe))
    for pa, pb in zip(
        a.nodes[0].model.dense_state(), b.nodes[0].model.dense_state()
    ):
        assert np.array_equal(pa, pb)
    eval_batch = a.generator.batch(20_000, 2048)
    assert a.evaluate_auc(eval_batch) == b.evaluate_auc(eval_batch)


def test_recovery_reaches_no_failure_state(tiny_spec, small_config, tmp_path):
    baseline = build(tiny_spec, small_config)
    baseline.train(6)

    injector = FailureInjector(str(tmp_path), checkpoint_every=2)
    recovered, report = injector.run(
        build(tiny_spec, small_config), 6, kill_node=1, kill_after_round=3
    )
    assert recovered.rounds_completed == 6
    assert report.kill_node == 1
    # Kill after round 3 (4 rounds complete); newest snapshot is round 2.
    assert report.checkpoint_round == 2
    assert report.rounds_replayed == 2
    assert report.restore_seconds > 0
    assert report.replay_seconds > 0
    assert report.recovery_seconds == pytest.approx(
        report.restore_seconds + report.replay_seconds
    )
    assert_same_final_state(baseline, recovered)


def test_kill_right_after_snapshot_replays_one_round(
    tiny_spec, small_config, tmp_path
):
    baseline = build(tiny_spec, small_config)
    baseline.train(5)

    injector = FailureInjector(str(tmp_path), checkpoint_every=2)
    recovered, report = injector.run(
        build(tiny_spec, small_config), 5, kill_node=0, kill_after_round=2
    )
    # Rounds 0-2 complete, snapshot exists at round 2 — only round 2 is
    # replayed (the kill fires before the next snapshot commits).
    assert report.checkpoint_round == 2
    assert report.rounds_replayed == 1
    assert_same_final_state(baseline, recovered)


def test_checkpoint_accounting_in_report(tiny_spec, small_config, tmp_path):
    injector = FailureInjector(str(tmp_path), checkpoint_every=3)
    _, report = injector.run(
        build(tiny_spec, small_config), 4, kill_node=0, kill_after_round=1
    )
    # Round-0 snapshot + the cadence snapshot after round 2.
    assert [c.rounds_completed for c in report.checkpoints] == [0, 3]
    assert report.checkpoint_seconds == pytest.approx(
        sum(c.seconds for c in report.checkpoints)
    )
    assert report.checkpoint_nbytes == sum(c.nbytes for c in report.checkpoints)


def test_kill_before_any_cadence_snapshot_uses_round_zero(
    tiny_spec, small_config, tmp_path
):
    baseline = build(tiny_spec, small_config)
    baseline.train(3)

    injector = FailureInjector(str(tmp_path), checkpoint_every=10)
    recovered, report = injector.run(
        build(tiny_spec, small_config), 3, kill_node=0, kill_after_round=1
    )
    assert report.checkpoint_round == 0  # fell back to the initial snapshot
    assert report.rounds_replayed == 2
    assert_same_final_state(baseline, recovered)


def test_run_validates_arguments(tiny_spec, small_config, tmp_path):
    injector = FailureInjector(str(tmp_path), checkpoint_every=2)
    cluster = build(tiny_spec, small_config)
    with pytest.raises(ValueError, match="kill_after_round"):
        injector.run(cluster, 3, kill_after_round=3)
    with pytest.raises(ValueError, match="kill_node"):
        injector.run(cluster, 3, kill_node=9, kill_after_round=1)
    with pytest.raises(ValueError, match="checkpoint_every"):
        FailureInjector(str(tmp_path), checkpoint_every=0)


def test_partial_recovery_matches_no_failure_state(
    tiny_spec, small_config, tmp_path
):
    """Partial mode: the failure strikes right after a boundary snapshot
    committed, so one replacement node splices in and nothing replays."""
    baseline = build(tiny_spec, small_config)
    baseline.train(8)

    injector = FailureInjector(
        str(tmp_path), checkpoint_every=2, snapshot_mode="delta"
    )
    recovered, report = injector.run(
        build(tiny_spec, small_config),
        8,
        kill_node=1,
        kill_after_round=5,
        partial=True,
    )
    assert recovered.rounds_completed == 8
    assert report.partial is True
    assert report.rounds_replayed == 0
    assert report.replay_seconds == 0.0
    assert report.restore_seconds > 0
    # Recovered from the boundary snapshot the kill landed on.
    assert report.checkpoint_round == 6
    # The round-0 snapshot is full; every cadence snapshot after chains.
    assert [c.kind for c in report.checkpoints] == ["full"] + ["delta"] * 4
    assert_same_final_state(baseline, recovered)


def test_partial_recovery_is_cheaper_than_full(
    tiny_spec, small_config, tmp_path
):
    """Same failure round, both recovery paths: the splice-in must beat
    restore-everything-and-replay on downtime (the paper's argument for
    tolerating single-node failures without a global rollback)."""
    partial_injector = FailureInjector(
        str(tmp_path / "partial"), checkpoint_every=2, snapshot_mode="delta"
    )
    _, partial_report = partial_injector.run(
        build(tiny_spec, small_config),
        8,
        kill_node=1,
        kill_after_round=5,
        partial=True,
    )
    full_injector = FailureInjector(
        str(tmp_path / "full"), checkpoint_every=2, snapshot_mode="delta"
    )
    _, full_report = full_injector.run(
        build(tiny_spec, small_config), 8, kill_node=1, kill_after_round=4
    )
    assert full_report.rounds_replayed > 0
    assert partial_report.recovery_seconds < full_report.recovery_seconds


def test_partial_requires_boundary_kill(tiny_spec, small_config, tmp_path):
    injector = FailureInjector(str(tmp_path), checkpoint_every=2)
    with pytest.raises(ValueError, match="boundary"):
        injector.run(
            build(tiny_spec, small_config),
            6,
            kill_after_round=2,
            partial=True,
        )


def test_delta_snapshot_mode_full_recovery(tiny_spec, small_config, tmp_path):
    """snapshot_mode='delta' with the classic full recovery path: the
    restore replays the whole chain and still reaches the no-failure
    state bit-identically."""
    baseline = build(tiny_spec, small_config)
    baseline.train(6)

    injector = FailureInjector(
        str(tmp_path), checkpoint_every=2, snapshot_mode="delta"
    )
    recovered, report = injector.run(
        build(tiny_spec, small_config), 6, kill_node=0, kill_after_round=3
    )
    assert report.checkpoint_round == 2
    assert report.rounds_replayed == 2
    assert report.checkpoints[0].kind == "full"
    assert all(c.kind == "delta" for c in report.checkpoints[1:])
    assert_same_final_state(baseline, recovered)


def test_injector_validates_snapshot_mode(tmp_path):
    with pytest.raises(ValueError, match="snapshot_mode"):
        FailureInjector(str(tmp_path), snapshot_mode="incremental")


def test_recovery_ignores_stale_checkpoints_from_other_runs(
    tiny_spec, small_config, tmp_path
):
    """A reused directory holding a newer checkpoint from a *different*
    run (different config) must not derail recovery."""
    from repro.config import ClusterConfig

    other_config = ClusterConfig(
        n_nodes=small_config.n_nodes,
        gpus_per_node=small_config.gpus_per_node,
        minibatches_per_gpu=small_config.minibatches_per_gpu,
        mem_capacity_params=small_config.mem_capacity_params,
        hbm_capacity_params=small_config.hbm_capacity_params,
        ssd_file_capacity=small_config.ssd_file_capacity,
        seed=small_config.seed + 17,
    )
    # Previous run leaves a round-4 checkpoint of an incompatible config.
    stale = HPSCluster(tiny_spec, other_config, functional_batch_size=128)
    stale.train(4)
    stale.save_checkpoint(str(tmp_path / "round_000004"))

    baseline = build(tiny_spec, small_config)
    baseline.train(5)
    injector = FailureInjector(str(tmp_path), checkpoint_every=3)
    recovered, report = injector.run(
        build(tiny_spec, small_config), 5, kill_node=0, kill_after_round=3
    )
    # Recovery restored this run's own round-3 snapshot, not the stale
    # (newer-looking) round-4 one.
    assert report.checkpoint_round == 3
    assert report.rounds_replayed == 1
    assert_same_final_state(baseline, recovered)
