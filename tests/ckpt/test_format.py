"""Checkpoint format: manifest commit protocol and discovery."""

from __future__ import annotations

import json
import os

import pytest

from repro.ckpt.format import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    CheckpointError,
    atomic_write_bytes,
    fingerprint,
    latest_checkpoint,
    read_manifest,
    write_manifest,
)


def test_read_manifest_missing_directory(tmp_path):
    with pytest.raises(CheckpointError, match="no committed checkpoint"):
        read_manifest(str(tmp_path / "nope"))


def test_read_manifest_requires_commit_record(tmp_path):
    # Shards without a manifest are an uncommitted (interrupted) save.
    (tmp_path / "node_0000.npz").write_bytes(b"shard")
    with pytest.raises(CheckpointError, match="no committed checkpoint"):
        read_manifest(str(tmp_path))


def test_read_manifest_rejects_future_version(tmp_path):
    write_manifest(str(tmp_path), {"format_version": FORMAT_VERSION + 1})
    with pytest.raises(CheckpointError, match="not supported"):
        read_manifest(str(tmp_path))


def test_read_manifest_rejects_garbage(tmp_path):
    (tmp_path / MANIFEST_NAME).write_text("{not json")
    with pytest.raises(CheckpointError, match="unreadable"):
        read_manifest(str(tmp_path))


def test_write_manifest_is_atomic_and_round_trips(tmp_path):
    manifest = {"format_version": FORMAT_VERSION, "rounds_completed": 3}
    write_manifest(str(tmp_path), manifest)
    assert read_manifest(str(tmp_path)) == manifest
    assert os.listdir(tmp_path) == [MANIFEST_NAME]  # no temp debris


def test_atomic_write_cleans_up_on_failure(tmp_path, monkeypatch):
    def boom(src, dst):
        raise OSError("disk gone")

    monkeypatch.setattr(os, "replace", boom)
    with pytest.raises(OSError):
        atomic_write_bytes(str(tmp_path / "x.bin"), b"payload")
    assert os.listdir(tmp_path) == []


def test_fingerprint_ignores_ordering_and_sequence_type():
    a = fingerprint({"b": (16, 8), "a": 1})
    b = fingerprint({"a": 1, "b": [16, 8]})
    assert a == b
    assert fingerprint({"a": 2, "b": [16, 8]}) != a


def test_latest_checkpoint_picks_newest_committed(tmp_path):
    for rounds in (2, 4, 6):
        sub = tmp_path / f"round_{rounds:06d}"
        sub.mkdir()
        write_manifest(
            str(sub),
            {"format_version": FORMAT_VERSION, "rounds_completed": rounds},
        )
    # An interrupted save (no manifest) must never be selected.
    (tmp_path / "round_000008").mkdir()
    assert latest_checkpoint(str(tmp_path)) == str(tmp_path / "round_000006")
    assert latest_checkpoint(str(tmp_path), upto_round=5) == str(
        tmp_path / "round_000004"
    )
    assert latest_checkpoint(str(tmp_path), upto_round=1) is None
    assert latest_checkpoint(str(tmp_path / "missing")) is None


def test_latest_checkpoint_skips_unreadable_manifests(tmp_path):
    sub = tmp_path / "round_000002"
    sub.mkdir()
    (sub / MANIFEST_NAME).write_text(json.dumps({"format_version": 999}))
    assert latest_checkpoint(str(tmp_path)) is None
