"""Checkpoint GC (keep-last-N retention) and ledger carry-over.

Production trainers cannot keep every ``round_*`` snapshot: the
:class:`~repro.core.trainer.Trainer`'s ``checkpoint_keep_last=N`` prunes
the oldest committed snapshots after each successful commit, atomically
(manifest deleted before any shard, the same discipline every writer
uses).  And per-node :class:`~repro.hardware.ledger.CostLedger` totals
ride inside the node shards, so a restored run *continues* long-horizon
cost accounting instead of restarting at zero.
"""

from __future__ import annotations

import os

import pytest

from repro.ckpt import latest_checkpoint, prune_checkpoints
from repro.ckpt.format import MANIFEST_NAME, checkpoint_dir_name
from repro.core.cluster import HPSCluster
from repro.core.trainer import Trainer
from repro.hardware.ledger import CostLedger


def build(tiny_spec, small_config, **kwargs):
    return HPSCluster(
        tiny_spec, small_config, functional_batch_size=128, **kwargs
    )


def committed_rounds(directory: str) -> list[int]:
    out = []
    for entry in sorted(os.listdir(directory)):
        sub = os.path.join(directory, entry)
        if os.path.isfile(os.path.join(sub, MANIFEST_NAME)):
            out.append(int(entry.removeprefix("round_")))
    return out


class TestRetention:
    def test_trainer_keeps_last_n(self, tiny_spec, small_config, tmp_path):
        cluster = build(tiny_spec, small_config)
        trainer = Trainer(
            cluster,
            checkpoint_dir=str(tmp_path),
            checkpoint_every=1,
            checkpoint_keep_last=2,
        )
        trainer.run(5)
        # Every snapshot was materialized (history sees all five)...
        assert len(trainer.history.checkpoints) == 5
        # ...but only the newest two survive on disk.
        assert committed_rounds(str(tmp_path)) == [4, 5]
        assert latest_checkpoint(str(tmp_path)).endswith(
            checkpoint_dir_name(5)
        )

    def test_kept_snapshot_still_restores(
        self, tiny_spec, small_config, tmp_path
    ):
        cluster = build(tiny_spec, small_config)
        trainer = Trainer(
            cluster,
            checkpoint_dir=str(tmp_path),
            checkpoint_every=1,
            checkpoint_keep_last=1,
        )
        trainer.run(3)
        restored = HPSCluster.restore(latest_checkpoint(str(tmp_path)))
        assert restored.rounds_completed == 3
        # Resumed training replays bit-identically to never-pruned runs.
        straight = build(tiny_spec, small_config)
        straight.train(4)
        restored.train(1)
        probe = straight.generator.batch(10_000, 1024).unique_keys()
        import numpy as np

        assert np.array_equal(
            straight.lookup_embeddings(probe),
            restored.lookup_embeddings(probe),
        )

    def test_prune_is_manifest_first(self, tiny_spec, small_config, tmp_path):
        """An interrupted prune leaves only uncommitted debris, which
        readers already reject and later prunes leave untouched."""
        cluster = build(tiny_spec, small_config)
        trainer = Trainer(
            cluster, checkpoint_dir=str(tmp_path), checkpoint_every=1
        )
        trainer.run(3)
        # Simulate a prune that died between invalidate and rmtree.
        victim = os.path.join(str(tmp_path), checkpoint_dir_name(1))
        os.remove(os.path.join(victim, MANIFEST_NAME))
        assert latest_checkpoint(str(tmp_path)).endswith(
            checkpoint_dir_name(3)
        )
        removed = prune_checkpoints(str(tmp_path), keep_last=1)
        # The uncommitted directory is not "the newest", nor removable —
        # it is debris, skipped entirely.
        assert [os.path.basename(p) for p in removed] == [
            checkpoint_dir_name(2)
        ]
        assert os.path.isdir(victim)
        assert committed_rounds(str(tmp_path)) == [3]

    def test_prune_validates_keep_last(self, tmp_path):
        with pytest.raises(ValueError, match="keep_last"):
            prune_checkpoints(str(tmp_path), keep_last=0)
        with pytest.raises(ValueError, match="checkpoint_keep_last"):
            Trainer(None, checkpoint_keep_last=0)

    def test_prune_missing_directory_is_noop(self, tmp_path):
        assert prune_checkpoints(str(tmp_path / "absent"), 3) == []


class TestRetentionLadder:
    """keep-every-M composed on top of keep-last-N (the sparse rung)."""

    def test_trainer_ladder_keeps_window_union_multiples(
        self, tiny_spec, small_config, tmp_path
    ):
        cluster = build(tiny_spec, small_config)
        trainer = Trainer(
            cluster,
            checkpoint_dir=str(tmp_path),
            checkpoint_every=1,
            checkpoint_keep_last=2,
            checkpoint_keep_every=3,
        )
        trainer.run(7)
        # Window rung {6, 7} ∪ sparse rung {3, 6}.
        assert committed_rounds(str(tmp_path)) == [3, 6, 7]

    def test_ladder_intersection_counted_once(self, tiny_spec, small_config, tmp_path):
        """A snapshot in both rungs (recent AND a multiple) survives and
        later leaves the window without being re-deletable debris."""
        cluster = build(tiny_spec, small_config)
        trainer = Trainer(
            cluster,
            checkpoint_dir=str(tmp_path),
            checkpoint_every=1,
            checkpoint_keep_last=1,
            checkpoint_keep_every=2,
        )
        trainer.run(2)  # round 2 is the newest AND a multiple of 2
        assert committed_rounds(str(tmp_path)) == [2]
        trainer.run(2)  # rounds 3, 4: 2 exits the window but stays (rung 2)
        assert committed_rounds(str(tmp_path)) == [2, 4]

    def test_prune_keep_every_direct(self, tiny_spec, small_config, tmp_path):
        cluster = build(tiny_spec, small_config)
        trainer = Trainer(
            cluster, checkpoint_dir=str(tmp_path), checkpoint_every=1
        )
        trainer.run(6)
        removed = prune_checkpoints(str(tmp_path), keep_last=1, keep_every=4)
        assert committed_rounds(str(tmp_path)) == [4, 6]
        assert [os.path.basename(p) for p in removed] == [
            checkpoint_dir_name(r) for r in (1, 2, 3, 5)
        ]

    def test_keep_every_one_keeps_everything(
        self, tiny_spec, small_config, tmp_path
    ):
        cluster = build(tiny_spec, small_config)
        trainer = Trainer(
            cluster, checkpoint_dir=str(tmp_path), checkpoint_every=1
        )
        trainer.run(4)
        assert prune_checkpoints(str(tmp_path), keep_last=1, keep_every=1) == []
        assert committed_rounds(str(tmp_path)) == [1, 2, 3, 4]

    def test_ladder_snapshot_still_restores(
        self, tiny_spec, small_config, tmp_path
    ):
        cluster = build(tiny_spec, small_config)
        trainer = Trainer(
            cluster,
            checkpoint_dir=str(tmp_path),
            checkpoint_every=1,
            checkpoint_keep_last=1,
            checkpoint_keep_every=2,
        )
        trainer.run(3)
        # Restore from the sparse-rung survivor (round 2), not the newest.
        old = HPSCluster.restore(
            latest_checkpoint(str(tmp_path), upto_round=2)
        )
        assert old.rounds_completed == 2

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="keep_every"):
            prune_checkpoints(str(tmp_path), keep_last=1, keep_every=0)
        with pytest.raises(ValueError, match="checkpoint_keep_every"):
            Trainer(None, checkpoint_keep_last=2, checkpoint_keep_every=0)
        with pytest.raises(ValueError, match="requires checkpoint_keep_last"):
            Trainer(None, checkpoint_keep_every=2)


class TestLedgerCarryOver:
    def test_restored_ledger_continues_accounting(
        self, tiny_spec, small_config, tmp_path
    ):
        cluster = build(tiny_spec, small_config)
        cluster.train(3)
        saved_totals = [n.ledger.as_dict() for n in cluster.nodes]
        assert all(t.get("gpu_compute", 0) > 0 for t in saved_totals)
        cluster.save_checkpoint(str(tmp_path))

        restored = HPSCluster.restore(str(tmp_path))
        for node, saved in zip(restored.nodes, saved_totals):
            got = node.ledger.as_dict()
            # History carried over exactly, with the restore itself booked
            # on top under ckpt_read — never restarting from zero.
            assert got["ckpt_read"] > 0
            for category, total in saved.items():
                assert got[category] == pytest.approx(total)
        # Continued training keeps accumulating on the carried history.
        before = restored.nodes[0].ledger.total("gpu_compute")
        restored.train(1)
        assert restored.nodes[0].ledger.total("gpu_compute") > before

    def test_ledger_export_load_round_trip(self):
        ledger = CostLedger()
        ledger.add("ssd_read", 1.5)
        ledger.add("ssd_read", 0.5)
        ledger.add("allreduce", 2.0)
        other = CostLedger()
        other.add("stale", 9.0)  # replaced wholesale by load_state
        other.load_state(ledger.export_state())
        assert other.as_dict() == ledger.as_dict()
        assert other.count("ssd_read") == 2
        assert other.total("stale") == 0.0

    def test_ledger_load_rejects_malformed(self):
        ledger = CostLedger()
        with pytest.raises(ValueError, match="shape"):
            ledger.load_state(
                {"categories": ["a"], "totals": [], "counts": [1]}
            )
        with pytest.raises(ValueError, match="negative"):
            ledger.load_state(
                {"categories": ["a"], "totals": [-1.0], "counts": [1]}
            )


class TestDeltaChainGC:
    """The retention ladder closed over delta chains: GC may never
    strand a live delta without its (transitive) full base."""

    def test_kept_delta_pins_its_whole_ancestry(
        self, tiny_spec, small_config, tmp_path
    ):
        """Without periodic fulls every delta chains to the previous
        snapshot, so keep-last pins the entire history — nothing is
        collectible until a new full breaks the chain."""
        cluster = build(tiny_spec, small_config)
        cluster.enable_snapshot_stage(str(tmp_path), every=1, keep_last=2)
        cluster.train(5)
        assert committed_rounds(str(tmp_path)) == [1, 2, 3, 4, 5]

    def test_new_full_releases_the_old_chain(
        self, tiny_spec, small_config, tmp_path
    ):
        """With ``full_every`` the ladder can actually collect: snapshots
        are full at rounds 1 and 4, so keeping {4, 5} strands nothing
        and rounds 1–3 are reclaimed."""
        cluster = build(tiny_spec, small_config)
        cluster.enable_snapshot_stage(
            str(tmp_path), every=1, full_every=3, keep_last=2
        )
        cluster.train(5)
        assert committed_rounds(str(tmp_path)) == [4, 5]
        # The surviving chain restores bit-identically.
        restored = HPSCluster.restore(
            os.path.join(str(tmp_path), checkpoint_dir_name(5))
        )
        straight = build(tiny_spec, small_config)
        straight.train(5)
        import numpy as np

        probe = straight.generator.batch(10_000, 1024).unique_keys()
        assert np.array_equal(
            straight.lookup_embeddings(probe),
            restored.lookup_embeddings(probe),
        )

    def test_direct_prune_respects_base_links(
        self, tiny_spec, small_config, tmp_path
    ):
        """prune_checkpoints itself (not just the stage) closes the keep
        set over ``base`` links before removing anything."""
        cluster = build(tiny_spec, small_config)
        cluster.train(1)
        cluster.save_checkpoint(
            os.path.join(str(tmp_path), checkpoint_dir_name(1)), mode="full"
        )
        cluster.train(1)
        cluster.save_checkpoint(
            os.path.join(str(tmp_path), checkpoint_dir_name(2)), mode="delta"
        )
        cluster.train(1)
        cluster.save_checkpoint(
            os.path.join(str(tmp_path), checkpoint_dir_name(3)), mode="delta"
        )
        removed = prune_checkpoints(str(tmp_path), keep_last=1)
        # Keeping round 3 pins rounds 2 and 1 through the chain.
        assert removed == []
        assert committed_rounds(str(tmp_path)) == [1, 2, 3]
