"""Checkpoint-directory scans racing with concurrent pruning.

``latest_checkpoint``/``prune_checkpoints`` walk ``round_*``
subdirectories via ``os.listdir`` and then read each manifest — a window
in which a concurrent pruner (or a crashed writer's debris) can make the
manifest vanish or leave it torn.  The hardened scan must *skip* such a
directory with a recorded :class:`CheckpointScanWarning` and still
return the best surviving snapshot, never abort.  These tests reproduce
the race deterministically by monkeypatching the manifest read to unlink
(or tear) the file the instant the scan reaches it.
"""

from __future__ import annotations

import os

import pytest

import repro.ckpt.format as ckpt_format
from repro.ckpt import CheckpointScanWarning, latest_checkpoint, prune_checkpoints
from repro.ckpt.format import MANIFEST_NAME, checkpoint_dir_name, resolve_chain
from repro.core.cluster import HPSCluster


@pytest.fixture
def two_checkpoints(tiny_spec, small_config, tmp_path):
    """A root with committed snapshots at rounds 2 and 4."""
    cluster = HPSCluster(tiny_spec, small_config, functional_batch_size=128)
    cluster.train(2)
    older = tmp_path / checkpoint_dir_name(2)
    cluster.save_checkpoint(str(older))
    cluster.train(2)
    newer = tmp_path / checkpoint_dir_name(4)
    cluster.save_checkpoint(str(newer))
    return tmp_path, str(older), str(newer)


def racing_unlink(monkeypatch, victim_dir: str) -> None:
    """Delete ``victim_dir``'s manifest the moment a scan reads it."""
    real = ckpt_format.read_manifest

    def read_then_lose(directory: str) -> dict:
        if os.path.abspath(directory) == os.path.abspath(victim_dir):
            manifest = os.path.join(directory, MANIFEST_NAME)
            if os.path.isfile(manifest):
                os.unlink(manifest)  # the concurrent pruner wins the race
        return real(directory)

    monkeypatch.setattr(ckpt_format, "read_manifest", read_then_lose)


class TestScanRace:
    def test_racing_unlink_skips_with_warning(
        self, two_checkpoints, monkeypatch
    ):
        root, older, newer = two_checkpoints
        racing_unlink(monkeypatch, newer)
        with pytest.warns(CheckpointScanWarning, match="skipping snapshot"):
            found = latest_checkpoint(str(root))
        # The scan fell back to the surviving snapshot instead of dying.
        assert found == older

    def test_torn_manifest_skips_with_warning(
        self, two_checkpoints, monkeypatch
    ):
        root, older, newer = two_checkpoints
        # A writer crashed mid-commit: the manifest exists but is torn.
        with open(os.path.join(newer, MANIFEST_NAME), "w") as fh:
            fh.write('{"format_version": 3, "rounds_comp')
        with pytest.warns(CheckpointScanWarning, match="skipping snapshot"):
            found = latest_checkpoint(str(root))
        assert found == older
        # The surviving snapshot still resolves to a loadable chain.
        assert resolve_chain(found)

    def test_prune_scan_survives_racing_unlink(
        self, two_checkpoints, monkeypatch
    ):
        root, older, newer = two_checkpoints
        racing_unlink(monkeypatch, older)
        with pytest.warns(CheckpointScanWarning):
            removed = prune_checkpoints(str(root), keep_last=1)
        # The racer already removed the older snapshot's manifest; the
        # pruner keeps the newest and reports nothing else to remove.
        assert removed == []
        # The older directory's manifest stays gone, so later scans keep
        # warning about the debris but still resolve the newest snapshot.
        with pytest.warns(CheckpointScanWarning):
            assert latest_checkpoint(str(root)) == newer

    def test_clean_scan_emits_no_warning(self, two_checkpoints):
        root, _, newer = two_checkpoints
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", CheckpointScanWarning)
            assert latest_checkpoint(str(root)) == newer
