"""Delta-export protocol: chained snapshots, partial restore, crash safety.

A delta snapshot ships only what changed since its base — new SSD
payload files, the mapping/stale-counter diff, and the MEM dirty-slot
export — chained to the base manifest by name and content hash.  The
acceptance bar is the same as for full snapshots: ``train(k) + save +
crash + restore + train(m)`` must be **bit-identical** to
``train(k + m)``, whether the restore replays a whole chain into a
fresh process or splices a single replacement node into a surviving
cluster.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.ckpt import checkpoint as ckpt
from repro.ckpt import format as fmt
from repro.ckpt.format import CheckpointError
from repro.core.cluster import HPSCluster


@pytest.fixture
def pressured(small_config):
    # MEM tier small enough that evictions spill real state to the SSD
    # store — every tier's delta hook carries payload, not just MEM's.
    return dataclasses.replace(small_config, mem_capacity_params=1_400)


def build(tiny_spec, config, **kwargs):
    # Batch size large enough that the pressured MEM tier spills to the
    # SSD store within a handful of rounds (content from round ~6 on).
    return HPSCluster(tiny_spec, config, functional_batch_size=512, **kwargs)


def assert_cluster_parity(a: HPSCluster, b: HPSCluster) -> None:
    """Bit-exact equality of everything training produced."""
    probe = a.generator.batch(10_000, 1024).unique_keys()
    assert np.array_equal(a.lookup_embeddings(probe), b.lookup_embeddings(probe))
    for pa, pb in zip(
        a.nodes[0].model.dense_state(), b.nodes[0].model.dense_state()
    ):
        assert np.array_equal(pa, pb)
    eval_batch = a.generator.batch(20_000, 2048)
    assert a.evaluate_auc(eval_batch) == b.evaluate_auc(eval_batch)


def assert_deep_state_parity(a: HPSCluster, b: HPSCluster) -> None:
    """Replacement metadata and SSD layout match, not just values."""
    for na, nb in zip(a.nodes, b.nodes):
        for tier in type(na).TIERS:
            sa, sb = na.tier_states()[tier], nb.tier_states()[tier]
            assert set(sa) == set(sb), tier
            for key in sa:
                assert np.array_equal(sa[key], sb[key]), f"{tier} {key}"


# ----------------------------------------------------------------------
# Tier-level export_delta / load_delta round-trips
# ----------------------------------------------------------------------
class TestTierDeltaRoundTrip:
    """base + export_delta(base) replayed onto base == current state,
    for every tier that implements the protocol."""

    @pytest.mark.parametrize("tier", ["mem_ps", "ssd_ps", "hbm_ps"])
    def test_round_trip(self, tiny_spec, pressured, tmp_path, tier):
        trained = build(tiny_spec, pressured)
        trained.train(7)
        bases = [getattr(n, tier).export_state() for n in trained.nodes]
        trained.train(3)

        fresh = build(tiny_spec, pressured)
        for node, fresh_node, base in zip(
            trained.nodes, fresh.nodes, bases
        ):
            delta = getattr(node, tier).export_delta(base)
            getattr(fresh_node, tier).load_state(
                {k: v.copy() for k, v in base.items()}
            )
            getattr(fresh_node, tier).load_delta(delta)
            want = getattr(node, tier).export_state()
            got = getattr(fresh_node, tier).export_state()
            assert set(want) == set(got)
            for key in want:
                assert np.array_equal(want[key], got[key]), key

    def test_ssd_delta_ships_only_new_files(
        self, tiny_spec, pressured, tmp_path
    ):
        trained = build(tiny_spec, pressured)
        trained.train(10)
        base = trained.nodes[0].ssd_ps.export_state()
        trained.train(1)
        delta = trained.nodes[0].ssd_ps.export_delta(base)
        full = trained.nodes[0].ssd_ps.export_state()
        delta_bytes = sum(v.nbytes for v in delta.values())
        full_bytes = sum(v.nbytes for v in full.values())
        assert 0 < delta_bytes < full_bytes

    def test_empty_delta_when_nothing_changed(self, tiny_spec, pressured):
        trained = build(tiny_spec, pressured)
        trained.train(10)
        for node in trained.nodes:
            for tier in type(node).TIERS:
                ps = {"mem": node.mem_ps, "ssd": node.ssd_ps, "hbm": node.hbm_ps}[tier]
                base = ps.export_state()
                delta = ps.export_delta(base)
                # Against itself a tier ships (at most) fixed-size
                # bookkeeping, never value payload of the full state.
                base_bytes = sum(v.nbytes for v in base.values())
                delta_bytes = sum(v.nbytes for v in delta.values())
                if base_bytes:
                    assert delta_bytes < base_bytes, tier
                else:
                    # An empty tier (HBM is unloaded between rounds)
                    # must not invent payload out of nothing.
                    assert delta_bytes == 0, tier
                ps.load_delta(delta)  # and replaying it is the identity
                after = ps.export_state()
                for key in base:
                    assert np.array_equal(base[key], after[key]), (tier, key)


# ----------------------------------------------------------------------
# Whole-cluster delta chains
# ----------------------------------------------------------------------
class TestDeltaChainRestore:
    def test_chain_restore_matches_uninterrupted_run(
        self, tiny_spec, pressured, tmp_path
    ):
        straight = build(tiny_spec, pressured)
        straight.train(7)

        chained = build(tiny_spec, pressured)
        chained.train(3)
        chained.save_checkpoint(str(tmp_path / "s0"), mode="full")
        chained.train(2)
        s1 = chained.save_checkpoint(str(tmp_path / "s1"), mode="delta")
        chained.train(2)
        s2 = chained.save_checkpoint(str(tmp_path / "s2"), mode="delta")
        assert s1.kind == s2.kind == "delta"

        restored = HPSCluster.restore(str(tmp_path / "s2"))
        assert restored.rounds_completed == 7
        assert restored.restore_stats.kind == "delta"
        assert_cluster_parity(straight, restored)
        assert_deep_state_parity(straight, restored)
        # ...and the restored cluster keeps training bit-identically.
        straight.train(3)
        restored.train(3)
        assert_cluster_parity(straight, restored)

    def test_auto_mode_is_full_then_delta(
        self, tiny_spec, pressured, tmp_path
    ):
        cluster = build(tiny_spec, pressured)
        cluster.train(2)
        first = cluster.save_checkpoint(str(tmp_path / "c0"), mode="auto")
        assert first.kind == "full"
        cluster.train(2)
        second = cluster.save_checkpoint(str(tmp_path / "c1"), mode="auto")
        assert second.kind == "delta"
        chain = fmt.resolve_chain(str(tmp_path / "c1"))
        assert len(chain) == 2
        _, manifest = chain[-1]
        assert manifest["base"] == "c0"
        assert manifest["base_manifest_sha256"] == fmt.manifest_sha256(
            str(tmp_path / "c0")
        )

    def test_delta_requires_a_valid_sibling_base(
        self, tiny_spec, pressured, tmp_path
    ):
        cluster = build(tiny_spec, pressured)
        cluster.train(2)
        with pytest.raises(CheckpointError, match="no.*base|base"):
            cluster.save_checkpoint(str(tmp_path / "d0"), mode="delta")
        cluster.save_checkpoint(str(tmp_path / "full"), mode="full")
        # Same round → nothing to chain; delta_base_valid refuses.
        assert not ckpt.delta_base_valid(cluster, str(tmp_path / "d1"))
        cluster.train(1)
        # A different parent directory is not a sibling of the base.
        other = tmp_path / "elsewhere"
        other.mkdir()
        assert not ckpt.delta_base_valid(cluster, str(other / "d1"))
        assert ckpt.delta_base_valid(cluster, str(tmp_path / "d1"))

    def test_dirty_keys_mode_matches_value_diff_mode(
        self, tiny_spec, pressured, tmp_path
    ):
        """Plan-supplied dirty keys and the value-diff fallback must
        produce byte-equivalent restored state (the dirty set may
        over-approximate, never under-approximate)."""
        planned = build(tiny_spec, pressured)
        diffed = build(tiny_spec, pressured)
        planned.train(3)
        diffed.train(3)
        planned.save_checkpoint(str(tmp_path / "a" / "base"), mode="full")
        diffed.save_checkpoint(str(tmp_path / "b" / "base"), mode="full")

        collected = [[] for _ in range(planned.n_nodes)]

        def collect(ctx) -> float:
            for i in range(planned.n_nodes):
                collected[i].append(ctx.plan.dirty_keys_of(i))
            return 0.0

        planned.register_stage("collect", collect, after="train")
        planned.train(3)
        diffed.train(3)
        dirty = [np.unique(np.concatenate(parts)) for parts in collected]
        sa = planned.save_checkpoint(
            str(tmp_path / "a" / "next"), mode="delta", dirty_keys=dirty
        )
        sb = diffed.save_checkpoint(str(tmp_path / "b" / "next"), mode="delta")
        assert sa.kind == sb.kind == "delta"

        ra = HPSCluster.restore(str(tmp_path / "a" / "next"))
        rb = HPSCluster.restore(str(tmp_path / "b" / "next"))
        assert_deep_state_parity(ra, rb)
        assert_cluster_parity(ra, rb)
        assert_cluster_parity(planned, ra)

    def test_snapshot_stage_chain_restores_from_pipelined_run(
        self, tiny_spec, pressured, tmp_path
    ):
        """The registered ``snapshot`` stage under pipelined execution:
        the newest chain member restores bit-identically to a run that
        never snapshotted at all."""
        straight = build(tiny_spec, pressured)
        straight.train_pipelined(6)

        snapped = build(tiny_spec, pressured)
        stage = snapped.enable_snapshot_stage(str(tmp_path), every=2)
        snapped.train_pipelined(6)
        kinds = [s.kind for s in stage.history]
        assert kinds == ["full", "delta", "delta"]
        assert_cluster_parity(straight, snapped)  # snapshotting is free

        newest = str(tmp_path / "round_000006")
        restored = HPSCluster.restore(newest)
        assert_cluster_parity(straight, restored)
        assert_deep_state_parity(straight, restored)
        straight.train(2)
        restored.train(2)
        assert_cluster_parity(straight, restored)

    def test_snapshot_stage_lockstep_matches_pipelined(
        self, tiny_spec, pressured, tmp_path
    ):
        lock = build(tiny_spec, pressured)
        lock_stage = lock.enable_snapshot_stage(str(tmp_path / "lock"), every=2)
        lock.train(6)
        piped = build(tiny_spec, pressured)
        piped_stage = piped.enable_snapshot_stage(
            str(tmp_path / "piped"), every=2
        )
        piped.train_pipelined(6)
        assert [s.kind for s in lock_stage.history] == [
            s.kind for s in piped_stage.history
        ]
        assert [s.nbytes for s in lock_stage.history] == [
            s.nbytes for s in piped_stage.history
        ]
        assert_cluster_parity(lock, piped)

    def test_full_every_forces_periodic_fulls(
        self, tiny_spec, pressured, tmp_path
    ):
        cluster = build(tiny_spec, pressured)
        stage = cluster.enable_snapshot_stage(
            str(tmp_path), every=1, full_every=3
        )
        cluster.train(6)
        assert [s.kind for s in stage.history] == [
            "full", "delta", "delta", "full", "delta", "delta",
        ]

    def test_delta_much_smaller_than_full_at_steady_state(
        self, tiny_spec, pressured, tmp_path
    ):
        """Small-scale version of the bench claim: one round's delta is
        strictly smaller than a full snapshot of the same state (the
        ≥10× steady-state ratio is pinned against the committed
        BENCH_e2e.json in tests/plan/test_bench_schema.py)."""
        cluster = build(tiny_spec, pressured)
        cluster.train(6)
        cluster.save_checkpoint(str(tmp_path / "base"), mode="full")
        cluster.train(1)
        delta = cluster.save_checkpoint(str(tmp_path / "next"), mode="delta")
        full = ckpt.save_cluster(cluster, str(tmp_path / "fullnow"))
        assert delta.nbytes < full.nbytes


# ----------------------------------------------------------------------
# Partial restore: splice one replacement node into a live cluster
# ----------------------------------------------------------------------
class TestPartialRestore:
    def test_replacement_node_is_bit_identical(
        self, tiny_spec, pressured, tmp_path
    ):
        twin = build(tiny_spec, pressured)
        twin.train(4)

        cluster = build(tiny_spec, pressured)
        cluster.train(2)
        cluster.save_checkpoint(str(tmp_path / "s0"), mode="full")
        cluster.train(2)
        cluster.save_checkpoint(str(tmp_path / "s1"), mode="delta")

        dead = cluster.nodes[1]
        stats = cluster.restore_node(str(tmp_path / "s1"), 1)
        assert stats.kind == "partial"
        assert stats.rounds_completed == 4
        assert cluster.nodes[1] is not dead
        # Only the replacement node pays restore time.
        assert stats.per_node_seconds[1] > 0
        assert all(s == 0.0 for i, s in enumerate(stats.per_node_seconds) if i != 1)
        assert_cluster_parity(twin, cluster)
        assert_deep_state_parity(twin, cluster)
        # The spliced cluster keeps training bit-identically — peer
        # wiring, generator position, and plans all survived.
        twin.train(3)
        cluster.train(3)
        assert_cluster_parity(twin, cluster)
        assert_deep_state_parity(twin, cluster)

    def test_partial_restore_after_snapshot_stage_run(
        self, tiny_spec, pressured, tmp_path
    ):
        twin = build(tiny_spec, pressured)
        twin.train_pipelined(6)
        cluster = build(tiny_spec, pressured)
        cluster.enable_snapshot_stage(str(tmp_path), every=2)
        cluster.train_pipelined(6)
        stats = cluster.restore_node(str(tmp_path / "round_000006"), 0)
        assert stats.kind == "partial"
        assert_cluster_parity(twin, cluster)
        assert_deep_state_parity(twin, cluster)

    def test_validates_node_id_and_boundary(
        self, tiny_spec, pressured, tmp_path
    ):
        cluster = build(tiny_spec, pressured)
        cluster.train(2)
        cluster.save_checkpoint(str(tmp_path / "s0"), mode="full")
        with pytest.raises(ValueError, match="node_id"):
            cluster.restore_node(str(tmp_path / "s0"), cluster.n_nodes)
        with pytest.raises(ValueError, match="node_id"):
            cluster.restore_node(str(tmp_path / "s0"), -1)
        # The survivors have moved past the snapshot: zero-replay splice
        # would mix rounds — must be rejected, not silently skewed.
        cluster.train(1)
        with pytest.raises(CheckpointError, match="round"):
            cluster.restore_node(str(tmp_path / "s0"), 1)


# ----------------------------------------------------------------------
# Crash consistency: kill the writer at every write boundary
# ----------------------------------------------------------------------
class TestCrashConsistency:
    def _crashing_writer(self, budget: int):
        """A stand-in for atomic_write_bytes that dies after ``budget``
        successful writes — the delete-first/commit-last discipline must
        leave the newest *committed* chain member fully restorable no
        matter which write the crash lands on."""
        real = fmt.atomic_write_bytes
        state = {"writes": 0}

        def crashing(path, payload):
            if state["writes"] >= budget:
                raise RuntimeError("injected crash")
            state["writes"] += 1
            return real(path, payload)

        return crashing

    def _count_writes(self, tiny_spec, pressured, tmp_path) -> int:
        counter = {"n": 0}
        real = fmt.atomic_write_bytes

        def counting(path, payload):
            counter["n"] += 1
            return real(path, payload)

        cluster = build(tiny_spec, pressured)
        cluster.train(3)
        cluster.save_checkpoint(str(tmp_path / "count_base"), mode="full")
        cluster.train(1)
        fmt.atomic_write_bytes, saved = counting, fmt.atomic_write_bytes
        try:
            cluster.save_checkpoint(str(tmp_path / "count_delta"), mode="delta")
        finally:
            fmt.atomic_write_bytes = saved
        return counter["n"]

    def test_every_kill_point_leaves_newest_committed_chain_restorable(
        self, tiny_spec, pressured, tmp_path, monkeypatch
    ):
        """Exhaustive kill-point sweep: crash the writer after 0, 1, …,
        n-1 writes of a delta save.  Every crash must leave (a) the
        wrecked directory uncommitted and rejected by readers, (b) the
        prior chain member restorable bit-identically, and (c) the
        failed save retryable into the *same* directory."""
        total = self._count_writes(tiny_spec, pressured, tmp_path)
        assert total >= 3  # node shards + dense + manifest at minimum

        twin = build(tiny_spec, pressured)
        twin.train(4)
        twin_now = build(tiny_spec, pressured)
        twin_now.train(5)

        for budget in range(total):
            root = tmp_path / f"kill{budget}"
            cluster = build(tiny_spec, pressured)
            cluster.train(3)
            cluster.save_checkpoint(str(root / "s0"), mode="full")
            cluster.train(1)
            cluster.save_checkpoint(str(root / "s1"), mode="delta")
            cluster.train(1)

            monkeypatch.setattr(
                fmt, "atomic_write_bytes", self._crashing_writer(budget)
            )
            with pytest.raises(RuntimeError, match="injected crash"):
                cluster.save_checkpoint(str(root / "s2"), mode="delta")
            monkeypatch.undo()

            # (a) the torn directory is not readable as a checkpoint...
            with pytest.raises(CheckpointError):
                fmt.resolve_chain(str(root / "s2"))
            # ...(b) the newest committed member restores exactly...
            restored = HPSCluster.restore(str(root / "s1"))
            assert restored.rounds_completed == 4
            assert_cluster_parity(twin, restored)
            # ...(c) and retrying the failed save succeeds in place.
            retry = cluster.save_checkpoint(str(root / "s2"), mode="auto")
            assert retry.kind == "delta"
            now = HPSCluster.restore(str(root / "s2"))
            assert now.rounds_completed == 5
            assert_cluster_parity(twin_now, now)
            assert_deep_state_parity(twin_now, now)

    def test_randomized_kill_points_across_a_snapshot_stage_run(
        self, tiny_spec, pressured, tmp_path, monkeypatch
    ):
        """Randomized variant over a whole continuous-checkpoint run:
        crash at a random write somewhere in the snapshot stream, then
        recover from whatever the newest committed snapshot is."""
        rng = np.random.default_rng(20260808)
        for trial in range(3):
            budget = int(rng.integers(1, 16))
            root = tmp_path / f"trial{trial}"
            cluster = build(tiny_spec, pressured)
            stage = cluster.enable_snapshot_stage(str(root), every=1)
            monkeypatch.setattr(
                fmt, "atomic_write_bytes", self._crashing_writer(budget)
            )
            crashed_at = None
            try:
                cluster.train(6)
            except RuntimeError:
                crashed_at = cluster.rounds_completed
            monkeypatch.undo()
            assert crashed_at is not None, "budget outlived the run"
            committed = list(stage.history)
            if not committed:
                # The crash hit inside the very first snapshot: nothing
                # committed, and the torn directory must read as such.
                with pytest.raises(CheckpointError):
                    fmt.resolve_chain(str(root / "round_000001"))
                continue
            # Recovery: the newest snapshot whose manifest committed.
            newest = max(committed, key=lambda s: s.rounds_completed)
            restored = HPSCluster.restore(newest.directory)
            twin = build(tiny_spec, pressured)
            twin.train(newest.rounds_completed)
            assert_cluster_parity(twin, restored)
            assert_deep_state_parity(twin, restored)
