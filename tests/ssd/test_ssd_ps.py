"""Tests for the SSD-PS facade (load/dump + compaction coupling)."""

import numpy as np
import pytest

from repro.ssd.ssd_ps import SSDPS


def keys_of(xs):
    return np.array(xs, dtype=np.uint64)


@pytest.fixture
def ps():
    return SSDPS(2, file_capacity=4, usage_threshold=1.4)


class TestLoadDump:
    def test_dump_then_load_roundtrip(self, ps):
        keys = keys_of(range(10))
        vals = np.arange(20, dtype=np.float32).reshape(10, 2)
        stats = ps.dump(keys, vals)
        assert stats.seconds > 0
        result, lstats = ps.load(keys)
        assert result.found.all()
        assert np.array_equal(result.values, vals)
        assert lstats.total_seconds > 0

    def test_load_unknown_returns_not_found(self, ps):
        result, _ = ps.load(keys_of([42]))
        assert not result.found.any()

    def test_latest_dump_wins(self, ps):
        keys = keys_of([1])
        ps.dump(keys, np.ones((1, 2), np.float32))
        ps.dump(keys, np.full((1, 2), 9.0, np.float32))
        result, _ = ps.load(keys)
        assert np.all(result.values == 9.0)

    def test_accumulates_io_time(self, ps):
        keys = keys_of(range(8))
        ps.dump(keys, np.zeros((8, 2), np.float32))
        ps.load(keys)
        assert ps.dump_seconds > 0
        assert ps.load_seconds > 0

    def test_n_live_params(self, ps):
        ps.dump(keys_of(range(6)), np.zeros((6, 2), np.float32))
        ps.dump(keys_of(range(3)), np.ones((3, 2), np.float32))
        assert ps.n_live_params == 6


class TestCompactionCoupling:
    def test_dump_triggers_compaction_past_threshold(self, ps):
        keys = keys_of(range(8))
        ps.dump(keys, np.zeros((8, 2), np.float32))
        stats = ps.dump(keys, np.ones((8, 2), np.float32))
        # 2x usage > 1.4 threshold -> compaction reported on this dump.
        assert stats.compaction is not None
        assert stats.compaction.triggered
        assert stats.total_seconds > stats.seconds
        ps.check_invariants()

    def test_no_compaction_below_threshold(self, ps):
        stats = ps.dump(keys_of(range(4)), np.zeros((4, 2), np.float32))
        assert stats.compaction is None

    def test_values_survive_repeated_churn(self, ps):
        rng = np.random.default_rng(0)
        expected = {}
        for i in range(40):
            ks = np.unique(rng.integers(0, 30, 6)).astype(np.uint64)
            vals = np.full((ks.size, 2), float(i), dtype=np.float32)
            ps.dump(ks, vals)
            for k in ks:
                expected[int(k)] = float(i)
        ps.check_invariants()
        keys = keys_of(sorted(expected))
        result, _ = ps.load(keys)
        assert result.found.all()
        assert result.values[:, 0].tolist() == [expected[int(k)] for k in keys]


class TestTransform:
    def test_read_modify_write(self, ps):
        keys = keys_of(range(6))
        ps.dump(keys, np.ones((6, 2), np.float32))
        seconds = ps.transform(keys, lambda v: v * 4)
        assert seconds > 0
        result, _ = ps.load(keys)
        assert np.all(result.values == 4.0)

    def test_python_int_list_keys(self, ps):
        """Plain int lists must be normalized to uint64, not flow through
        as int64 and miss the uint64 file-store mapping."""
        ps.dump(keys_of([3, 5, 7]), np.ones((3, 2), np.float32))
        ps.transform([3, 5, 7], lambda v: v + 1)
        result, _ = ps.load(keys_of([3, 5, 7]))
        assert result.found.all()
        assert np.all(result.values == 2.0)

    def test_absent_key_raises(self, ps):
        ps.dump(keys_of([1]), np.ones((1, 2), np.float32))
        with pytest.raises(KeyError, match="absent"):
            ps.transform([1, 99], lambda v: v)
