"""Tests for file compaction (Appendix E)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ssd.compaction import Compactor
from repro.ssd.file_store import FileStore


def keys_of(xs):
    return np.array(xs, dtype=np.uint64)


def write(store, keys, base=0.0):
    vals = np.full((len(keys), store.value_dim), base, dtype=np.float32)
    store.write(keys_of(keys), vals)


@pytest.fixture
def store():
    return FileStore(1, file_capacity=4)


class TestTrigger:
    def test_no_compaction_below_threshold(self, store):
        comp = Compactor(store, usage_threshold=1.6)
        write(store, range(8))
        stats = comp.compact()
        assert not stats.triggered

    def test_triggers_past_threshold(self, store):
        comp = Compactor(store, usage_threshold=1.5)
        write(store, range(8))
        write(store, range(8), base=1.0)  # 100% stale in old files
        assert comp.should_compact()
        stats = comp.compact()
        assert stats.triggered
        assert stats.files_merged > 0

    def test_validation(self, store):
        with pytest.raises(ValueError):
            Compactor(store, usage_threshold=0.5)
        with pytest.raises(ValueError):
            Compactor(store, stale_fraction=0.0)


class TestVictimSelection:
    def test_only_mostly_stale_files_merged(self, store):
        comp = Compactor(store, usage_threshold=1.0, stale_fraction=0.5)
        write(store, range(4))       # file0
        write(store, range(4, 8))    # file1
        write(store, [0, 1, 2])      # makes file0 75% stale; file1 0%
        victims = comp.victims()
        assert [f.stale_fraction() for f in victims] == [0.75]

    def test_most_stale_first(self, store):
        comp = Compactor(store, usage_threshold=1.0)
        write(store, range(4))
        write(store, range(4, 8))
        write(store, [0, 1, 2])      # file0 75%
        write(store, [4, 5])         # file1 50%
        fracs = [f.stale_fraction() for f in comp.victims()]
        assert fracs == sorted(fracs, reverse=True)


class TestCompactionCorrectness:
    def test_data_preserved(self, store):
        comp = Compactor(store, usage_threshold=1.2)
        write(store, range(8), base=1.0)
        write(store, range(4), base=2.0)
        write(store, range(2), base=3.0)
        while comp.should_compact():
            if not comp.compact().triggered:
                break
        store.check_invariants()
        r = store.read(keys_of(range(8)))
        assert r.found.all()
        expected = [3, 3, 2, 2, 1, 1, 1, 1]
        assert r.values[:, 0].tolist() == expected

    def test_disk_usage_reduced(self, store):
        comp = Compactor(store, usage_threshold=1.2)
        for base in range(5):
            write(store, range(8), base=float(base))
        before = store.total_bytes
        stats = comp.compact()
        assert stats.triggered
        assert store.total_bytes < before

    def test_all_stale_files_erased_without_rewrite(self, store):
        comp = Compactor(store, usage_threshold=1.0, stale_fraction=1.0)
        write(store, range(4))
        write(store, range(4), base=1.0)
        stats = comp.compact()
        assert stats.triggered
        assert stats.files_merged >= 1
        r = store.read(keys_of(range(4)))
        assert r.values[:, 0].tolist() == [1.0] * 4

    def test_counts_io(self, store):
        comp = Compactor(store, usage_threshold=1.2)
        write(store, range(8))
        write(store, range(8), base=1.0)
        stats = comp.compact()
        assert stats.bytes_read > 0
        assert stats.seconds > 0


class TestUsageBound:
    def test_disk_bounded_by_threshold_under_churn(self, store):
        """Paper: with the 50% rule, usage stays <= ~2x live size."""
        comp = Compactor(store, usage_threshold=1.6, stale_fraction=0.5)
        rng = np.random.default_rng(0)
        for _ in range(60):
            keys = sorted(rng.choice(40, size=8, replace=False).tolist())
            write(store, keys, base=float(rng.integers(100)))
            comp.compact()
        store.check_invariants()
        # After any compact() pass, victims >=50% stale have been merged;
        # remaining overshoot is bounded by one batch of new writes.
        assert store.total_bytes <= 2.6 * store.live_bytes


@given(st.lists(st.integers(0, 25), min_size=1, max_size=80))
@settings(max_examples=30, deadline=None)
def test_compaction_never_loses_latest_values(key_stream):
    store = FileStore(1, file_capacity=3)
    comp = Compactor(store, usage_threshold=1.3)
    expected = {}
    for i, k in enumerate(key_stream):
        store.write(keys_of([k]), np.array([[float(i)]], dtype=np.float32))
        expected[k] = float(i)
        comp.compact()
        store.check_invariants()
    keys = keys_of(sorted(expected))
    r = store.read(keys)
    assert r.found.all()
    assert r.values[:, 0].tolist() == [expected[int(k)] for k in keys]


class TestIncrementalByteAccounting:
    """``FileStore.total_bytes`` is maintained incrementally (updated on
    write/erase) instead of re-summed over every file per compaction
    check; the Compactor's trigger decisions must be unchanged."""

    def test_cached_total_matches_recomputation(self, store):
        comp = Compactor(store, usage_threshold=1.4)
        rng = np.random.default_rng(0)
        for step in range(30):
            keys = np.unique(rng.integers(0, 40, 12))
            write(store, keys.tolist(), base=float(step))
            comp.compact()
            recomputed = sum(store.file_bytes(f) for f in store.files())
            assert store.total_bytes == recomputed
            store.check_invariants()

    def test_trigger_decisions_unchanged(self, store):
        """should_compact must equal the decision a fresh O(files)
        recomputation would make, at every point of a churny workload."""
        comp = Compactor(store, usage_threshold=1.5)
        rng = np.random.default_rng(1)
        decisions = []
        for step in range(25):
            keys = np.unique(rng.integers(0, 30, 10))
            write(store, keys.tolist(), base=float(step))
            recomputed = sum(store.file_bytes(f) for f in store.files())
            live = store.live_bytes
            expected = (
                recomputed > 0
                if live == 0
                else recomputed > comp.usage_threshold * live
            )
            assert comp.should_compact() == expected
            decisions.append(comp.should_compact())
            comp.compact()
        assert any(decisions)  # the workload actually exercised the trigger

    def test_erase_updates_accounting(self, store):
        write(store, range(4))
        write(store, range(4, 8))
        before = store.total_bytes
        first = store.files()[0]
        fid, first_bytes = first.file_id, store.file_bytes(first)
        write(store, range(4), base=9.0)  # supersede file0 (same size)
        store.erase(fid)
        # +1 equally-sized file, -file0: the footprint is back where it was.
        assert store.total_bytes == before
        assert first_bytes > 0
        store.check_invariants()

    def test_snapshot_roundtrip_restores_accounting(self, store):
        write(store, range(10))
        write(store, range(5), base=2.0)
        state = store.export_state()
        other = FileStore(1, file_capacity=4)
        other.load_state(state)
        assert other.total_bytes == store.total_bytes
        other.check_invariants()
