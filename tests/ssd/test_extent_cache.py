"""Tests for the cross-round extent cache and grouped miss-path reads.

Covers the two halves of the SSD fast read path:

* grouped ``FileStore.read`` parity — randomized trials proving the
  grouped implementation matches a per-key reference (identical values,
  found masks, and charged seconds) while the cache is disabled;
* :class:`FileHandleCache` staleness — the cache never serves stale rows
  across ``write`` / ``erase`` / compaction, and a disabled cache is
  bit-identical to not having one.
"""

import numpy as np
import pytest

from repro.hardware.ledger import CostLedger
from repro.hardware.specs import SSDSpec
from repro.hardware.ssd_device import SSDDevice
from repro.ssd.compaction import Compactor
from repro.ssd.extent_cache import FileHandleCache
from repro.ssd.file_store import FileStore
from repro.ssd.ssd_ps import SSDPS


def keys_of(xs):
    return np.array(xs, dtype=np.uint64)


def vals_of(n, dim=2, base=0.0):
    return (np.arange(n * dim, dtype=np.float32) + base).reshape(n, dim)


class TestFileHandleCache:
    def test_disabled_cache_is_inert(self):
        cache = FileHandleCache(0)
        assert not cache.enabled
        cache.put(1, np.ones(3))
        assert cache.get(1) is None
        assert len(cache) == 0
        # A disabled cache never even counts misses — bit-identical to
        # not constructing one.
        assert cache.stats() == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "invalidations": 0,
            "resident": 0,
            "capacity": 0,
            "resizes": 0,
            "reuse_target": 0,
        }

    def test_lru_eviction_order(self):
        cache = FileHandleCache(2)
        cache.put(1, np.array([1.0]))
        cache.put(2, np.array([2.0]))
        cache.get(1)  # refresh 1 → 2 becomes LRU
        cache.put(3, np.array([3.0]))
        assert 2 not in cache
        assert 1 in cache and 3 in cache
        assert cache.evictions == 1

    def test_invalidate_counts_only_present_entries(self):
        cache = FileHandleCache(4)
        cache.put(7, np.array([7.0]))
        assert cache.invalidate(7) is True
        assert cache.invalidate(7) is False
        assert cache.invalidations == 1
        assert 7 not in cache

    def test_resident_ids_lru_order(self):
        cache = FileHandleCache(3)
        for fid in (1, 2, 3):
            cache.put(fid, np.array([float(fid)]))
        cache.get(1)
        assert cache.resident_ids() == [2, 3, 1]


def per_key_reference(store: FileStore, keys: np.ndarray):
    """Per-key read against ``store``'s state, charging each touched
    file exactly once (the I/O unit is the whole file, so a correct
    per-key loop must not re-pay a file already read in this call)."""
    pricer = SSDDevice(SSDSpec(), CostLedger())
    out = np.zeros((keys.size, store.value_dim), dtype=np.float32)
    found = np.zeros(keys.size, dtype=bool)
    seconds = 0.0
    paid: set[int] = set()
    for i, key in enumerate(keys):
        fid = int(store.mapping_of(keys_of([key]))[0])
        if fid < 0:
            continue
        f = store._files[fid]
        if fid not in paid:
            seconds += pricer.read(store.file_bytes(f))
            paid.add(fid)
        row = int(np.searchsorted(f.keys, key))
        out[i] = store._payload(f)[row]
        found[i] = True
    return out, found, seconds, len(paid)


class TestGroupedReadParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_grouped_vs_per_key(self, seed):
        """Grouped reads == per-key reference: values, found, seconds."""
        rng = np.random.default_rng(seed)
        store = FileStore(3, file_capacity=int(rng.integers(2, 7)))
        universe = np.arange(60, dtype=np.uint64)
        for _ in range(int(rng.integers(1, 5))):
            n = int(rng.integers(1, 30))
            ks = rng.choice(universe, size=n, replace=False)
            store.write(np.sort(ks), rng.normal(size=(n, 3)).astype(np.float32))
        probe = rng.choice(
            np.arange(80, dtype=np.uint64),
            size=int(rng.integers(1, 40)),
            replace=True,  # duplicates allowed — grouped path must cope
        )
        ref_vals, ref_found, ref_seconds, ref_files = per_key_reference(
            store, probe
        )
        r = store.read(probe)
        assert np.array_equal(r.values, ref_vals)
        assert np.array_equal(r.found, ref_found)
        assert r.seconds == ref_seconds  # bit-identical, not approx
        assert r.files_read == ref_files
        assert r.cache_hits == 0  # cache disabled by default

    def test_grouped_read_charges_each_file_once(self):
        store = FileStore(2, file_capacity=4)
        store.write(keys_of(range(8)), vals_of(8))  # two files
        single = store.read(keys_of([0])).seconds
        whole = store.read(keys_of(range(8)))
        assert whole.files_read == 2
        # Eight keys over two files cost two file reads, not eight.
        assert whole.seconds == pytest.approx(2 * single)


def warm_cost(store: FileStore) -> float:
    """What one warm (cached) pass over every live file costs."""
    return sum(
        store.device.warm_read_time(store.file_bytes(f))
        for f in store.files()
    )


class TestExtentCacheReads:
    def test_repeat_read_served_at_warm_rate(self):
        store = FileStore(2, file_capacity=4, extent_cache_files=4)
        store.write(keys_of(range(8)), vals_of(8))
        first = store.read(keys_of(range(8)))
        assert first.files_read == 2 and first.cache_hits == 0
        second = store.read(keys_of(range(8)))
        assert second.files_read == 0
        assert second.cache_hits == 2
        # Hits are priced at the host-memory copy rate — cheap but not
        # free, so the cache can default on without forking sim-seconds.
        assert second.seconds == pytest.approx(warm_cost(store))
        assert 0.0 < second.seconds < first.seconds
        assert np.array_equal(second.values, first.values)

    def test_ledger_charged_at_warm_rate_on_hits(self):
        store = FileStore(2, file_capacity=4, extent_cache_files=4)
        store.write(keys_of(range(4)), vals_of(4))
        store.read(keys_of(range(4)))
        before = store.ledger.total("ssd_read")
        r = store.read(keys_of(range(4)))
        assert r.seconds > 0.0
        assert store.ledger.total("ssd_read") == pytest.approx(
            before + r.seconds
        )
        # ...but the device's *read* counters stay put: a hit is a host
        # copy, not an SSD read.
        reads_before = store.device.read_ops
        store.read(keys_of(range(4)))
        assert store.device.read_ops == reads_before

    def test_write_repoints_around_cached_payload(self):
        """Overwriting keys must not let the cache serve the old rows —
        not by invalidating (files are immutable) but because the
        mapping routes the keys to the new file."""
        store = FileStore(2, file_capacity=4, extent_cache_files=4)
        store.write(keys_of(range(4)), vals_of(4))
        store.read(keys_of(range(4)))  # warm the cache with file 0
        new = vals_of(4, base=100.0)
        store.write(keys_of(range(4)), new)
        r = store.read(keys_of(range(4)))
        assert np.array_equal(r.values, new)
        # The old payload may stay resident, but it was never consulted
        # for these keys: the hit count belongs to the new file only.
        assert r.cache_hits == 0

    def test_partial_overwrite_mixes_cached_and_fresh_files(self):
        store = FileStore(1, file_capacity=8, extent_cache_files=4)
        store.write(keys_of(range(6)), vals_of(6, dim=1))
        store.read(keys_of(range(6)))  # cache file 0
        store.write(keys_of([1, 3]), vals_of(2, dim=1, base=50.0))
        r = store.read(keys_of(range(6)))
        # Keys 0,2,4,5 still live in the cached file (1 hit); 1,3 come
        # from the new uncached file (1 device read).
        assert r.cache_hits == 1
        assert r.files_read == 1
        expect = vals_of(6, dim=1)
        expect[[1, 3]] = vals_of(2, dim=1, base=50.0)
        assert np.array_equal(r.values, expect)

    def test_erase_invalidates_exactly_its_file(self):
        store = FileStore(2, file_capacity=4, extent_cache_files=4)
        _, (fid,) = store.write(keys_of(range(4)), vals_of(4))
        store.read(keys_of(range(4)))  # cache the original file
        store.write(keys_of(range(8)), vals_of(8, base=9.0))
        store.read(keys_of(range(8)))  # warm the two new files too
        resident_before = len(store.extent_cache)
        store.erase(fid)  # fid is all-stale by now
        assert fid not in store.extent_cache
        assert len(store.extent_cache) == resident_before - 1
        assert store.extent_cache.invalidations == 1
        r = store.read(keys_of(range(8)))
        assert np.array_equal(r.values, vals_of(8, base=9.0))

    def test_compaction_never_leaves_stale_payloads_cached(self):
        store = FileStore(1, file_capacity=4, extent_cache_files=8)
        compactor = Compactor(store, usage_threshold=1.1, stale_fraction=0.5)
        store.write(keys_of(range(8)), vals_of(8, dim=1))
        store.read(keys_of(range(8)))  # cache both original files
        latest = vals_of(8, dim=1, base=77.0)
        store.write(keys_of(range(8)), latest)  # originals now all-stale
        stats = compactor.compact()
        assert stats.triggered and stats.files_merged >= 2
        # Every erased victim's payload left the cache...
        live_ids = {f.file_id for f in store.files()}
        assert set(store.extent_cache.resident_ids()) <= live_ids
        # ...and reads afterwards serve only the latest values.
        r = store.read(keys_of(range(8)))
        assert np.array_equal(r.values, latest)

    def test_capacity_bound_thrashes_instead_of_growing(self):
        store = FileStore(2, file_capacity=2, extent_cache_files=1)
        store.write(keys_of(range(6)), vals_of(6))  # three files
        store.read(keys_of(range(6)))
        assert len(store.extent_cache) == 1
        assert store.extent_cache.evictions == 2

    def test_state_round_trip_preserves_warm_set(self):
        store = FileStore(2, file_capacity=4, extent_cache_files=4)
        store.write(keys_of(range(8)), vals_of(8))
        store.read(keys_of(range(8)))
        other = FileStore(2, file_capacity=4, extent_cache_files=4)
        other.load_state(store.export_state())
        assert other.extent_cache.resident_ids() == (
            store.extent_cache.resident_ids()
        )
        r = other.read(keys_of(range(8)))  # replay stays warm, like the
        assert r.cache_hits == 2  # original run would have been
        assert r.seconds == pytest.approx(warm_cost(other))

    def test_old_snapshot_without_cache_field_restores_cold(self):
        store = FileStore(2, file_capacity=4)
        store.write(keys_of(range(4)), vals_of(4))
        state = store.export_state()
        del state["extent_cache_fids"]  # pre-cache snapshot shape
        other = FileStore(2, file_capacity=4, extent_cache_files=4)
        other.load_state(state)
        assert len(other.extent_cache) == 0


class TestSSDPSAccounting:
    """Satellite bugfix: every protocol face reports hits consistently
    with ``load`` and never double-charges the ledger."""

    def test_get_batch_counts_hits_once(self):
        ps = SSDPS(2, file_capacity=4, extent_cache_files=4)
        ps.dump(keys_of(range(4)), vals_of(4))
        ps.get_batch(keys_of(range(4)))  # miss → charged at device rate
        charged = ps.load_seconds
        vals, found = ps.get_batch(keys_of(range(4)))  # hit → warm rate
        assert found.all()
        assert np.array_equal(vals, vals_of(4))
        assert ps.extent_cache_hits == 1
        # The hit pays the host-copy rate, far below the device read.
        warm = warm_cost(ps.store)
        assert 0.0 < warm < charged
        assert ps.load_seconds == pytest.approx(charged + warm)

    def test_contains_is_mapping_only(self):
        ps = SSDPS(2, file_capacity=4, extent_cache_files=4)
        ps.dump(keys_of(range(4)), vals_of(4))
        ps.load(keys_of(range(4)))  # warm the cache
        hits_before = ps.extent_cache_hits
        seconds_before = ps.load_seconds
        mask = ps.contains(keys_of([0, 1, 99]))
        assert mask.tolist() == [True, True, False]
        # Membership touched neither the device nor the hit counters.
        assert ps.extent_cache_hits == hits_before
        assert ps.load_seconds == seconds_before

    def test_transform_hits_are_warm_reads(self):
        ps = SSDPS(2, file_capacity=4, extent_cache_files=4)
        ps.dump(keys_of(range(4)), vals_of(4))
        ps.load(keys_of(range(4)))
        seconds = ps.transform(keys_of(range(4)), lambda v: v + 1.0)
        # The read half was a cache hit — charged at the warm rate on
        # top of the rewrite's dump cost.
        assert ps.extent_cache_hits == 1
        f = next(iter(ps.store.files()))
        warm = ps.store.device.warm_read_time(ps.store.file_bytes(f))
        dump_only = SSDPS(2, file_capacity=4)
        dump_only.dump(keys_of(range(4)), vals_of(4))
        dump_cost = dump_only.dump(
            keys_of(range(4)), vals_of(4, base=1.0)
        ).total_seconds
        assert seconds == pytest.approx(dump_cost + warm)

    def test_hit_counter_survives_state_round_trip(self):
        ps = SSDPS(2, file_capacity=4, extent_cache_files=4)
        ps.dump(keys_of(range(4)), vals_of(4))
        ps.load(keys_of(range(4)))
        ps.load(keys_of(range(4)))
        assert ps.extent_cache_hits == 1
        other = SSDPS(2, file_capacity=4, extent_cache_files=4)
        other.load_state(ps.export_state())
        assert other.extent_cache_hits == 1


class TestRewarmCapacity:
    """Satellite regression: re-warm must respect the *live* capacity,
    which may be smaller than the snapshot's residency (fixed-size
    restore into a smaller store, or an adaptive cache that shrank)."""

    def test_warm_admits_only_newest_ids_without_spurious_evictions(self):
        cache = FileHandleCache(2)
        materialized = []

        def payload_of(fid):
            materialized.append(fid)
            return np.array([float(fid)])

        cache.warm([1, 2, 3, 4, 5], payload_of)
        assert cache.resident_ids() == [4, 5]
        assert cache.evictions == 0
        # Dropped ids were never even materialized, let alone churned
        # through the cache.
        assert materialized == [4, 5]

    def test_restore_into_smaller_store_respects_live_capacity(self):
        big = FileStore(2, file_capacity=2, extent_cache_files=3)
        big.write(keys_of(range(6)), vals_of(6))  # three files
        big.read(keys_of(range(6)))
        assert len(big.extent_cache) == 3
        small = FileStore(2, file_capacity=2, extent_cache_files=1)
        small.load_state(big.export_state())
        assert small.extent_cache.resident_ids() == (
            big.extent_cache.resident_ids()[-1:]
        )
        assert small.extent_cache.evictions == 0


class TestAdaptiveCapacity:
    """Self-tuning capacity: reuse-distance histogram -> periodic resize."""

    def _touch_cycle(self, cache, fids, rounds):
        for _ in range(rounds):
            for fid in fids:
                if cache.get(fid) is None:
                    cache.put(fid, np.array([float(fid)]))

    def test_retarget_tracks_reuse_distance(self):
        cache = FileHandleCache(
            8, resize_every=64, min_files=2, max_files_limit=8
        )
        # Cycling three files gives every touch reuse distance 3, so the
        # tuner shrinks the oversized capacity straight to it.
        self._touch_cycle(cache, [1, 2, 3], rounds=64)
        assert cache.resizes >= 1
        assert cache.reuse_target == 3
        assert cache.max_files == 3

    def test_capacity_clamped_to_bounds(self):
        floor = FileHandleCache(
            4, resize_every=32, min_files=4, max_files_limit=6
        )
        self._touch_cycle(floor, [1, 2], rounds=32)  # distance 2 < floor 4
        assert floor.max_files == 4
        ceil = FileHandleCache(
            2, resize_every=32, min_files=1, max_files_limit=3
        )
        self._touch_cycle(ceil, list(range(8)), rounds=16)  # distance 8
        assert ceil.resizes >= 1
        assert ceil.max_files == 3  # grew, but only to the ceiling

    def test_invalid_adaptive_bounds_rejected(self):
        with pytest.raises(ValueError, match="min_files"):
            FileHandleCache(4, resize_every=8, min_files=5, max_files_limit=3)
        with pytest.raises(ValueError, match="initial capacity"):
            FileHandleCache(9, resize_every=8, min_files=1, max_files_limit=8)

    def test_tuning_state_replays_through_snapshot(self):
        """A restored cache re-takes the original's resize decisions."""

        def drive(cache, start, stop):
            for i in range(start, stop):
                fid = i % 5
                if cache.get(fid) is None:
                    cache.put(fid, np.array([float(fid)]))

        a = FileHandleCache(6, resize_every=16, min_files=1, max_files_limit=6)
        drive(a, 0, 40)
        b = FileHandleCache(6, resize_every=16, min_files=1, max_files_limit=6)
        b.load_tuning(a.export_tuning())
        b.warm(a.resident_ids(), lambda fid: np.array([float(fid)]))
        drive(a, 40, 120)
        drive(b, 40, 120)
        assert b.max_files == a.max_files
        assert b.resizes == a.resizes
        assert b.reuse_target == a.reuse_target
        assert b.resident_ids() == a.resident_ids()
