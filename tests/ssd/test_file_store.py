"""Tests for the SSD parameter-file store (Appendix E)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ssd.file_store import FileStore


def keys_of(xs):
    return np.array(xs, dtype=np.uint64)


def vals_of(n, dim=2, base=0.0):
    return (np.arange(n * dim, dtype=np.float32) + base).reshape(n, dim)


@pytest.fixture
def store():
    return FileStore(2, file_capacity=4)


class TestWrite:
    def test_chunks_into_files(self, store):
        t, ids = store.write(keys_of(range(10)), vals_of(10))
        assert len(ids) == 3  # 4 + 4 + 2
        assert store.n_files == 3
        assert t > 0

    def test_mapping_points_to_new_files(self, store):
        store.write(keys_of([1, 2]), vals_of(2))
        fids = store.mapping_of(keys_of([1, 2]))
        assert (fids >= 0).all()

    def test_rewrite_marks_old_stale(self, store):
        _, (fid,) = store.write(keys_of([1, 2]), vals_of(2))
        store.write(keys_of([1]), vals_of(1, base=100))
        old = [f for f in store.files() if f.file_id == fid][0]
        assert old.stale_count == 1
        assert old.n_live == 1

    def test_duplicate_keys_rejected(self, store):
        with pytest.raises(ValueError, match="unique"):
            store.write(keys_of([1, 1]), vals_of(2))

    def test_empty_write(self, store):
        t, ids = store.write(keys_of([]), np.zeros((0, 2), np.float32))
        assert t == 0.0
        assert ids == []

    def test_shape_mismatch(self, store):
        with pytest.raises(ValueError):
            store.write(keys_of([1]), np.zeros((1, 3), np.float32))


class TestRead:
    def test_roundtrip(self, store):
        keys = keys_of([5, 1, 9])
        vals = vals_of(3)
        store.write(keys, vals)
        r = store.read(keys)
        assert r.found.all()
        assert np.array_equal(r.values, vals)

    def test_latest_version_wins(self, store):
        store.write(keys_of([1]), vals_of(1))
        new = vals_of(1, base=50)
        store.write(keys_of([1]), new)
        r = store.read(keys_of([1]))
        assert np.array_equal(r.values, new)

    def test_unmapped_keys_not_found(self, store):
        store.write(keys_of([1]), vals_of(1))
        r = store.read(keys_of([1, 77]))
        assert r.found.tolist() == [True, False]
        assert np.all(r.values[1] == 0)

    def test_whole_file_io_amplification(self, store):
        """Reading one key charges the entire containing file."""
        store.write(keys_of(range(4)), vals_of(4))  # one full file
        r = store.read(keys_of([0]))
        assert r.files_read == 1
        assert r.bytes_read == store.file_bytes(store.files()[0])

    def test_read_groups_by_file(self, store):
        store.write(keys_of(range(8)), vals_of(8))  # two files
        r = store.read(keys_of(range(8)))
        assert r.files_read == 2

    def test_empty_read(self, store):
        r = store.read(keys_of([]))
        assert r.seconds == 0.0
        assert r.values.shape == (0, 2)


class TestAccounting:
    def test_live_vs_total_bytes(self, store):
        store.write(keys_of(range(4)), vals_of(4))
        assert store.total_bytes == store.live_bytes
        store.write(keys_of(range(4)), vals_of(4, base=9))
        assert store.total_bytes == 2 * store.live_bytes

    def test_live_rows(self, store):
        _, (fid,) = store.write(keys_of([1, 2]), vals_of(2))
        store.write(keys_of([2]), vals_of(1, base=7))
        f = [f for f in store.files() if f.file_id == fid][0]
        k, v = store.live_rows(f)
        assert k.tolist() == [1]

    def test_erase(self, store):
        _, (fid,) = store.write(keys_of([1]), vals_of(1))
        store.write(keys_of([1]), vals_of(1, base=5))  # fid now all-stale
        store.erase(fid)
        assert store.n_files == 1
        r = store.read(keys_of([1]))
        assert r.found.all()

    def test_invariants_hold(self, store):
        store.write(keys_of(range(10)), vals_of(10))
        store.write(keys_of(range(5)), vals_of(5, base=3))
        store.check_invariants()


class TestDiskBackend:
    def test_roundtrip_on_real_files(self, tmp_path):
        store = FileStore(2, file_capacity=4, directory=str(tmp_path))
        keys = keys_of(range(6))
        vals = vals_of(6)
        store.write(keys, vals)
        r = store.read(keys)
        assert np.array_equal(r.values, vals)
        assert len(list(tmp_path.glob("*.npy"))) == 2

    def test_erase_removes_file(self, tmp_path):
        store = FileStore(1, file_capacity=2, directory=str(tmp_path))
        _, (fid,) = store.write(keys_of([1]), np.ones((1, 1), np.float32))
        store.write(keys_of([1]), np.zeros((1, 1), np.float32))
        store.erase(fid)
        assert len(list(tmp_path.glob("*.npy"))) == 1


@given(
    st.lists(
        st.dictionaries(
            st.integers(min_value=0, max_value=40),
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=10,
        ),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=30, deadline=None)
def test_store_matches_dict_semantics(write_rounds):
    """A sequence of overwriting batch writes == last-writer-wins dict."""
    store = FileStore(1, file_capacity=3)
    expected: dict[int, float] = {}
    for round_ in write_rounds:
        keys = keys_of(sorted(round_))
        vals = np.array([[round_[int(k)]] for k in keys], dtype=np.float32)
        store.write(keys, vals)
        expected.update({int(k): float(v) for k, v in zip(keys, vals[:, 0])})
        store.check_invariants()
    keys = keys_of(sorted(expected))
    r = store.read(keys)
    assert r.found.all()
    assert [round(float(x), 3) for x in r.values[:, 0]] == [
        round(expected[int(k)], 3) for k in keys
    ]
