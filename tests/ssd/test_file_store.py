"""Tests for the SSD parameter-file store (Appendix E)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ssd.file_store import FileStore


def keys_of(xs):
    return np.array(xs, dtype=np.uint64)


def vals_of(n, dim=2, base=0.0):
    return (np.arange(n * dim, dtype=np.float32) + base).reshape(n, dim)


@pytest.fixture
def store():
    return FileStore(2, file_capacity=4)


class TestWrite:
    def test_chunks_into_files(self, store):
        t, ids = store.write(keys_of(range(10)), vals_of(10))
        assert len(ids) == 3  # 4 + 4 + 2
        assert store.n_files == 3
        assert t > 0

    def test_mapping_points_to_new_files(self, store):
        store.write(keys_of([1, 2]), vals_of(2))
        fids = store.mapping_of(keys_of([1, 2]))
        assert (fids >= 0).all()

    def test_rewrite_marks_old_stale(self, store):
        _, (fid,) = store.write(keys_of([1, 2]), vals_of(2))
        store.write(keys_of([1]), vals_of(1, base=100))
        old = [f for f in store.files() if f.file_id == fid][0]
        assert old.stale_count == 1
        assert old.n_live == 1

    def test_duplicate_keys_rejected(self, store):
        with pytest.raises(ValueError, match="unique"):
            store.write(keys_of([1, 1]), vals_of(2))

    def test_empty_write(self, store):
        t, ids = store.write(keys_of([]), np.zeros((0, 2), np.float32))
        assert t == 0.0
        assert ids == []

    def test_shape_mismatch(self, store):
        with pytest.raises(ValueError):
            store.write(keys_of([1]), np.zeros((1, 3), np.float32))


class TestRead:
    def test_roundtrip(self, store):
        keys = keys_of([5, 1, 9])
        vals = vals_of(3)
        store.write(keys, vals)
        r = store.read(keys)
        assert r.found.all()
        assert np.array_equal(r.values, vals)

    def test_latest_version_wins(self, store):
        store.write(keys_of([1]), vals_of(1))
        new = vals_of(1, base=50)
        store.write(keys_of([1]), new)
        r = store.read(keys_of([1]))
        assert np.array_equal(r.values, new)

    def test_unmapped_keys_not_found(self, store):
        store.write(keys_of([1]), vals_of(1))
        r = store.read(keys_of([1, 77]))
        assert r.found.tolist() == [True, False]
        assert np.all(r.values[1] == 0)

    def test_whole_file_io_amplification(self, store):
        """Reading one key charges the entire containing file."""
        store.write(keys_of(range(4)), vals_of(4))  # one full file
        r = store.read(keys_of([0]))
        assert r.files_read == 1
        assert r.bytes_read == store.file_bytes(store.files()[0])

    def test_read_groups_by_file(self, store):
        store.write(keys_of(range(8)), vals_of(8))  # two files
        r = store.read(keys_of(range(8)))
        assert r.files_read == 2

    def test_empty_read(self, store):
        r = store.read(keys_of([]))
        assert r.seconds == 0.0
        assert r.values.shape == (0, 2)


class TestAccounting:
    def test_live_vs_total_bytes(self, store):
        store.write(keys_of(range(4)), vals_of(4))
        assert store.total_bytes == store.live_bytes
        store.write(keys_of(range(4)), vals_of(4, base=9))
        assert store.total_bytes == 2 * store.live_bytes

    def test_live_rows(self, store):
        _, (fid,) = store.write(keys_of([1, 2]), vals_of(2))
        store.write(keys_of([2]), vals_of(1, base=7))
        f = [f for f in store.files() if f.file_id == fid][0]
        k, v = store.live_rows(f)
        assert k.tolist() == [1]

    def test_erase(self, store):
        _, (fid,) = store.write(keys_of([1]), vals_of(1))
        store.write(keys_of([1]), vals_of(1, base=5))  # fid now all-stale
        store.erase(fid)
        assert store.n_files == 1
        r = store.read(keys_of([1]))
        assert r.found.all()

    def test_invariants_hold(self, store):
        store.write(keys_of(range(10)), vals_of(10))
        store.write(keys_of(range(5)), vals_of(5, base=3))
        store.check_invariants()


class TestDiskBackend:
    def test_roundtrip_on_real_files(self, tmp_path):
        store = FileStore(2, file_capacity=4, directory=str(tmp_path))
        keys = keys_of(range(6))
        vals = vals_of(6)
        store.write(keys, vals)
        r = store.read(keys)
        assert np.array_equal(r.values, vals)
        assert len(list(tmp_path.glob("*.npy"))) == 2

    def test_erase_removes_file(self, tmp_path):
        store = FileStore(1, file_capacity=2, directory=str(tmp_path))
        _, (fid,) = store.write(keys_of([1]), np.ones((1, 1), np.float32))
        store.write(keys_of([1]), np.zeros((1, 1), np.float32))
        store.erase(fid)
        assert len(list(tmp_path.glob("*.npy"))) == 1


@given(
    st.lists(
        st.dictionaries(
            st.integers(min_value=0, max_value=40),
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=10,
        ),
        min_size=1,
        max_size=12,
    )
)
@settings(max_examples=30, deadline=None)
def test_store_matches_dict_semantics(write_rounds):
    """A sequence of overwriting batch writes == last-writer-wins dict."""
    store = FileStore(1, file_capacity=3)
    expected: dict[int, float] = {}
    for round_ in write_rounds:
        keys = keys_of(sorted(round_))
        vals = np.array([[round_[int(k)]] for k in keys], dtype=np.float32)
        store.write(keys, vals)
        expected.update({int(k): float(v) for k, v in zip(keys, vals[:, 0])})
        store.check_invariants()
    keys = keys_of(sorted(expected))
    r = store.read(keys)
    assert r.found.all()
    assert [round(float(x), 3) for x in r.values[:, 0]] == [
        round(expected[int(k)], 3) for k in keys
    ]


class TestCrashConsistency:
    """Regressions for the durable-write and lost-payload bugfixes."""

    def test_interrupted_write_leaves_no_truncated_payload(
        self, tmp_path, monkeypatch
    ):
        import os

        store = FileStore(2, file_capacity=4, directory=str(tmp_path))
        store.write(keys_of(range(4)), vals_of(4))
        before = store.read(keys_of(range(4)))

        def boom(src, dst):
            raise OSError("power loss")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            store.write(keys_of(range(4)), vals_of(4, base=100.0))
        monkeypatch.undo()

        # The mapping still points at the old (intact) payloads, the
        # failed file never became visible, and no temp debris remains.
        store.check_invariants()
        after = store.read(keys_of(range(4)))
        assert np.array_equal(after.values, before.values)
        assert not list(tmp_path.glob("*.tmp"))
        assert len(list(tmp_path.glob("*.npy"))) == 1

    def test_payload_visible_only_after_replace(self, tmp_path, monkeypatch):
        """The final .npy name must never exist in a partial state."""
        import os

        seen = []
        real_replace = os.replace

        def spy(src, dst):
            seen.append((os.path.exists(dst), src.endswith(".tmp")))
            real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spy)
        store = FileStore(2, file_capacity=4, directory=str(tmp_path))
        store.write(keys_of(range(3)), vals_of(3))
        assert seen == [(False, True)]  # written under a temp name first

    def test_erase_raises_on_lost_payload(self, tmp_path):
        import os

        store = FileStore(1, file_capacity=4, directory=str(tmp_path))
        _, (fid,) = store.write(keys_of([1, 2]), np.ones((2, 1), np.float32))
        path = store._files[fid].path
        os.remove(path)  # the only copy of rows 1-2 is gone
        with pytest.raises(FileNotFoundError, match="payload missing"):
            store.erase(fid)
        # The file stays registered so the loss remains observable.
        assert fid in store._files

    def test_erase_memory_backend_unaffected(self):
        store = FileStore(1, file_capacity=4)
        _, (fid,) = store.write(keys_of([1]), np.ones((1, 1), np.float32))
        store.write(keys_of([1]), np.zeros((1, 1), np.float32))
        store.erase(fid)
        assert fid not in store._files


class TestStateSnapshot:
    def test_export_load_round_trip(self, store):
        store.write(keys_of(range(10)), vals_of(10))
        store.write(keys_of(range(4)), vals_of(4, base=50.0))  # stale rows
        state = store.export_state()
        other = FileStore(2, file_capacity=4)
        other.load_state(state)
        other.check_invariants()
        assert other.n_files == store.n_files
        assert other.n_live_params == store.n_live_params
        a, b = store.read(keys_of(range(10))), other.read(keys_of(range(10)))
        assert np.array_equal(a.values, b.values)
        # Stale counters (compaction triggers) survive the round trip.
        for fid, f in store._files.items():
            assert other._files[fid].stale_count == f.stale_count
        assert other._next_file_id == store._next_file_id

    def test_load_state_into_disk_backend(self, store, tmp_path):
        store.write(keys_of(range(6)), vals_of(6))
        disk = FileStore(2, file_capacity=4, directory=str(tmp_path))
        disk.load_state(store.export_state())
        disk.check_invariants()
        assert list(tmp_path.glob("*.npy"))
        r = disk.read(keys_of(range(6)))
        assert r.found.all()
        assert np.array_equal(r.values, vals_of(6))

    def test_load_state_rejects_stale_next_file_id(self, store):
        store.write(keys_of(range(4)), vals_of(4))
        state = store.export_state()
        state["next_file_id"] = np.int64(0)
        other = FileStore(2, file_capacity=4)
        with pytest.raises(ValueError, match="next_file_id"):
            other.load_state(state)

    def test_rejected_snapshot_leaves_store_untouched(self, store):
        store.write(keys_of(range(6)), vals_of(6))
        state = store.export_state()
        state["file_stale"] = state["file_stale"] + 1  # mapping disagrees
        target = FileStore(2, file_capacity=4)
        target.write(keys_of([100, 101]), vals_of(2, base=9.0))
        with pytest.raises(ValueError, match="stale counter"):
            target.load_state(state)
        # Validation rejected the snapshot before anything was erased.
        r = target.read(keys_of([100, 101]))
        assert r.found.all()
        target.check_invariants()

    def test_load_state_rejects_mapping_to_unknown_file(self, store):
        store.write(keys_of(range(4)), vals_of(4))
        state = store.export_state()
        state["map_fids"] = state["map_fids"] + 7
        other = FileStore(2, file_capacity=4)
        with pytest.raises(ValueError, match="unknown files"):
            other.load_state(state)
