"""FaultSchedule determinism, budget, scripting, and validation."""

from __future__ import annotations

import pytest

from repro.faults import FAULT_KINDS, FaultSchedule


def drain(schedule: FaultSchedule, kind: str, node, n: int) -> list[int]:
    return [schedule.draw(kind, node) for _ in range(n)]


class TestDeterminism:
    def test_same_seed_same_draws(self):
        kwargs = dict(rates={"hdfs_timeout": 0.5, "straggler": 0.5})
        a = FaultSchedule(11, **kwargs)
        b = FaultSchedule(11, **kwargs)
        for kind in ("hdfs_timeout", "straggler"):
            for node in (0, 1, None):
                assert drain(a, kind, node, 40) == drain(b, kind, node, 40)

    def test_streams_are_independent_per_kind_and_node(self):
        # Arming an extra kind must not perturb another kind's stream,
        # and node 0's stream must not depend on node 1's draw order.
        # (Budget big enough that the foreign kind's firings can't drain
        # it — the global budget is deliberately shared.)
        a = FaultSchedule(5, rates={"hdfs_timeout": 0.5}, max_faults=10_000)
        b = FaultSchedule(
            5,
            rates={"hdfs_timeout": 0.5, "ssd_read_error": 0.9},
            max_faults=10_000,
        )
        seq_a = []
        seq_b = []
        for _ in range(30):
            seq_a.append(a.draw("hdfs_timeout", 0))
            seq_b.append(b.draw("hdfs_timeout", 0))
            b.draw("ssd_read_error", 1)  # interleaved foreign draws
        assert seq_a == seq_b

    def test_unarmed_kind_consumes_no_randomness(self):
        a = FaultSchedule(5, rates={"hdfs_timeout": 0.5})
        b = FaultSchedule(5, rates={"hdfs_timeout": 0.5})
        for _ in range(20):
            assert b.draw("comm_allreduce", 0) == 0  # rate 0: clean, free
        assert drain(a, "hdfs_timeout", 0, 30) == drain(b, "hdfs_timeout", 0, 30)


class TestBudgetAndDepth:
    def test_budget_caps_total_faults(self):
        s = FaultSchedule(3, rates={"hdfs_timeout": 1.0}, max_faults=2)
        depths = drain(s, "hdfs_timeout", 0, 50)
        assert sum(1 for d in depths if d > 0) == 2
        assert all(d == 0 for d in depths[2:])
        assert s.faults_fired == 2

    def test_depth_bounds(self):
        s = FaultSchedule(3, rates={"hdfs_timeout": 1.0}, max_faults=10_000,
                          max_depth=4)
        depths = [d for d in drain(s, "hdfs_timeout", 0, 200) if d > 0]
        assert depths
        assert all(1 <= d <= 4 for d in depths)

    def test_straggler_multiplier_bounds(self):
        s = FaultSchedule(
            9,
            rates={"straggler": 1.0},
            max_faults=10_000,
            straggler_min=1.5,
            straggler_max=2.0,
        )
        mults = [s.straggler(0) for _ in range(50)]
        assert all(1.5 <= m <= 2.0 for m in mults)
        clean = FaultSchedule(9, rates={})
        assert clean.straggler(0) == 1.0


class TestScript:
    def test_scripted_depth_overrides_and_spends_budget(self):
        s = FaultSchedule(0, script={("hdfs_timeout", 0, 2): 5})
        assert drain(s, "hdfs_timeout", 0, 2) == [0, 0]
        assert s.draw("hdfs_timeout", 0) == 5
        assert s.faults_fired == 1
        assert s.draw("hdfs_timeout", 0) == 0  # op 3: back to clean

    def test_scripted_zero_forces_clean(self):
        s = FaultSchedule(
            0, rates={"hdfs_timeout": 1.0}, script={("hdfs_timeout", 0, 0): 0}
        )
        assert s.draw("hdfs_timeout", 0) == 0
        assert s.faults_fired == 0


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kinds"):
            FaultSchedule(0, rates={"nope": 0.5})

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="must be in"):
            FaultSchedule(0, rates={"hdfs_timeout": 1.5})

    def test_straggler_bounds_rejected(self):
        with pytest.raises(ValueError, match="straggler"):
            FaultSchedule(0, straggler_min=0.5)

    def test_mixed_arms_every_kind(self):
        s = FaultSchedule.mixed(1, rate=0.04)
        assert set(s.rates) == set(FAULT_KINDS)
        assert s.rates["node_crash"] == pytest.approx(0.01)
        assert s.rates["straggler"] == pytest.approx(0.02)

    def test_describe_fingerprints_config(self):
        a = FaultSchedule.mixed(7, rate=0.1, max_faults=5)
        b = FaultSchedule.mixed(7, rate=0.1, max_faults=5)
        assert a.describe() == b.describe()
        assert a.describe() != FaultSchedule.mixed(8, rate=0.1).describe()
