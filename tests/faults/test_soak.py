"""Randomized fault soak: the tentpole recoverability invariant.

Fifty seeded schedules mixing every fault surface drive supervised runs
— half lockstep, half pipelined — against a pressured cluster whose MEM
tier spills real state to SSD.  Every run must finish all its rounds
with **zero unhandled exceptions** and end **bit-identical** to the
fault-free twin of its execution mode; across the suite, every fault
kind in the matrix must actually have fired (otherwise the soak is
vacuous for that surface).

``REPRO_SOAK_SEEDS`` trims the schedule count (CI runs a fixed small
subset; the full fifty run by default).  Seeds derive from one base via
:func:`repro.utils.rng.derive_seed`, so any failing index reproduces
standalone.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.faults import FAULT_KINDS, FaultSchedule, Supervisor
from repro.utils.rng import derive_seed

SOAK_BASE_SEED = 20_260_808
N_SCHEDULES = int(os.environ.get("REPRO_SOAK_SEEDS", "50"))
N_ROUNDS = 10

#: Per-operation rates tuned so the shared ``max_faults`` budget spreads
#: across every surface: high-frequency draw sites (HBM dispatch, per
#: stage stragglers) get low rates, rare sites (cold SSD reads, round
#: boundary crash probes) get high ones.
SOAK_RATES = {
    "ssd_read_error": 0.6,
    "ssd_torn_payload": 0.4,
    "ssd_write_stall": 0.5,
    "hdfs_timeout": 0.08,
    "hdfs_read_failure": 0.08,
    "comm_allreduce": 0.04,
    "hbm_dispatch": 0.01,
    "straggler": 0.08,
    "node_crash": 0.02,
}

#: kinds witnessed across the whole session's soak runs (module-level on
#: purpose: the coverage gate aggregates over all parametrized cases)
_FIRED: set[str] = set()


def _soak_schedule(index: int) -> FaultSchedule:
    return FaultSchedule(
        derive_seed(SOAK_BASE_SEED, "soak", index),
        rates=SOAK_RATES,
        max_faults=64,
    )


def _soak_spec():
    from repro.config import ModelSpec

    return ModelSpec(
        name="tiny",
        nonzeros_per_example=8,
        n_sparse=5_000,
        n_dense=1_000,
        size_gb=0.001,
        mpi_nodes=10,
        embedding_dim=4,
        hidden_layers=(16, 8),
        n_slots=4,
    )


def _soak_config(**overrides):
    from repro.config import ClusterConfig

    return ClusterConfig(
        n_nodes=2,
        gpus_per_node=2,
        minibatches_per_gpu=2,
        mem_capacity_params=1_400,
        hbm_capacity_params=50_000,
        ssd_file_capacity=128,
        seed=7,
        **overrides,
    )


def _twin_pair(config):
    """Fault-free lockstep + pipelined references for ``config``."""
    from repro.core.cluster import HPSCluster

    spec = _soak_spec()

    def mk():
        return HPSCluster(spec, config, functional_batch_size=512)

    lockstep = mk()
    lockstep.train(N_ROUNDS)
    pipelined = mk()
    pipelined.train_pipelined(N_ROUNDS)
    probe = lockstep.generator.batch(10_000, 512).unique_keys()
    return {False: lockstep, True: pipelined, "probe": probe, "mk": mk}


@pytest.fixture(scope="module")
def twins():
    """One fault-free reference per execution mode (trained once).

    Module-scoped (the per-test fixtures in ``conftest`` are not), so the
    spec/config mirror ``tiny_spec``/``small_config`` with the pressured
    MEM budget from ``mk_pressured``.
    """
    return _twin_pair(_soak_config())


@pytest.fixture(scope="module")
def depth2_twins():
    """Fault-free references for the depth-2 lookahead configuration."""
    return _twin_pair(_soak_config(prefetch=True, prefetch_depth=2))


@pytest.mark.parametrize("index", range(N_SCHEDULES))
def test_soak_recoverable_schedule_is_bit_exact(index, twins, tmp_path):
    pipelined = index % 2 == 1
    schedule = _soak_schedule(index)
    supervisor = Supervisor(str(tmp_path / "sup"), checkpoint_every=2)
    run = supervisor.run(
        twins["mk"](), N_ROUNDS, schedule, pipelined=pipelined
    )

    assert run.rounds == N_ROUNDS
    twin = twins[pipelined]
    probe = twins["probe"]
    assert np.array_equal(
        run.cluster.lookup_embeddings(probe), twin.lookup_embeddings(probe)
    )
    for pa, pb in zip(
        run.cluster.nodes[0].model.dense_state(),
        twin.nodes[0].model.dense_state(),
    ):
        assert np.array_equal(pa, pb)
    # Time accounting stays coherent even under heavy recovery.
    assert run.downtime_fraction < 1.0
    assert run.training_seconds > 0.0

    _FIRED.update(run.totals["fault_counts"])
    _FIRED.update(r.kind for r in run.reports)


@pytest.mark.parametrize("index", range(5))
def test_depth2_soak_is_bit_exact(index, depth2_twins, tmp_path):
    """Five seeded schedules against the depth-2 lookahead window.

    Fault recovery must compose with the speculative window: an aborted
    round drops the window and the in-flight lookahead unions, a restore
    rebuilds them, and the run still ends bit-identical to its
    fault-free depth-2 twin — with zero bulk-admission fallbacks."""
    pipelined = index % 2 == 1
    schedule = FaultSchedule(
        derive_seed(SOAK_BASE_SEED, "depth2", index),
        rates=SOAK_RATES,
        max_faults=64,
    )
    supervisor = Supervisor(str(tmp_path / "sup"), checkpoint_every=2)
    run = supervisor.run(
        depth2_twins["mk"](), N_ROUNDS, schedule, pipelined=pipelined
    )

    assert run.rounds == N_ROUNDS
    twin = depth2_twins[pipelined]
    probe = depth2_twins["probe"]
    assert np.array_equal(
        run.cluster.lookup_embeddings(probe), twin.lookup_embeddings(probe)
    )
    for pa, pb in zip(
        run.cluster.nodes[0].model.dense_state(),
        twin.nodes[0].model.dense_state(),
    ):
        assert np.array_equal(pa, pb)
    assert run.downtime_fraction < 1.0
    assert run.training_seconds > 0.0


@pytest.mark.skipif(
    N_SCHEDULES < 50,
    reason="full-matrix coverage needs the complete soak (REPRO_SOAK_SEEDS>=50)",
)
def test_soak_exercised_every_fault_kind():
    """Aggregate gate: a silent surface would make the soak vacuous."""
    missing = set(FAULT_KINDS) - _FIRED
    assert not missing, f"fault kinds never fired during the soak: {missing}"
