"""Each fault surface, driven by scripted schedules.

Every test pins the schedule with ``script`` entries so the exact path
under test — absorb, stall, quarantine, typed escape — fires
deterministically, and checks both the behavioural outcome and the
pricing side effects (``fault_retry`` / ``fault_straggler`` ledger
lines, incident records).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.faults import (
    FaultError,
    FaultSchedule,
    PayloadLostError,
    RetryPolicy,
    clear_faults,
    inject_faults,
)
from repro.ssd.file_store import FileStore


def fault_retry_total(cluster) -> float:
    return sum(n.ledger.total("fault_retry") for n in cluster.nodes)


def assert_param_parity(a, b) -> None:
    probe = a.generator.batch(10_000, 512).unique_keys()
    assert np.array_equal(a.lookup_embeddings(probe), b.lookup_embeddings(probe))
    for pa, pb in zip(a.nodes[0].model.dense_state(), b.nodes[0].model.dense_state()):
        assert np.array_equal(pa, pb)


class TestHDFSSurface:
    def test_absorbed_timeout_prices_retry_without_forking_data(self, mk_cluster):
        twin = mk_cluster()
        twin.train(3)

        cluster = mk_cluster()
        schedule = FaultSchedule(0, script={("hdfs_timeout", 0, 1): 2})
        injection = inject_faults(cluster, schedule)
        cluster.train(3)
        clear_faults(cluster)

        assert fault_retry_total(cluster) > 0.0
        (incident,) = injection.incidents
        assert (incident.kind, incident.action) == ("hdfs_timeout", "retried")
        assert incident.retries == 2
        assert_param_parity(cluster, twin)

    def test_exhausted_read_escapes_with_round_scope(self, mk_cluster):
        cluster = mk_cluster()
        schedule = FaultSchedule(0, script={("hdfs_read_failure", 1, 0): 8})
        inject_faults(cluster, schedule)
        with pytest.raises(FaultError) as exc:
            cluster.train_round()
        err = exc.value
        assert (err.scope, err.kind, err.node) == ("round", "hdfs_read_failure", 1)
        assert err.stage == "read"
        # Nothing was staged: the boundary is intact and the identical
        # round retries cleanly after discarding in-flight residency.
        assert cluster._staged_rounds == 0
        cluster.abort_round()
        clear_faults(cluster)
        cluster.train(3)

        twin = mk_cluster()
        twin.train(3)
        assert_param_parity(cluster, twin)


class TestStageSurfaces:
    def test_stragglers_stretch_clock_but_not_values(self, mk_cluster):
        twin = mk_cluster()
        twin_run = twin.train_pipelined(4)

        cluster = mk_cluster()
        schedule = FaultSchedule(
            2,
            rates={"straggler": 1.0},
            max_faults=10_000,
            straggler_min=2.0,
            straggler_max=2.0,
        )
        injection = inject_faults(cluster, schedule)
        run = cluster.train_pipelined(4)
        clear_faults(cluster)

        straggle = sum(n.ledger.total("fault_straggler") for n in cluster.nodes)
        assert straggle > 0.0
        assert all(i.action == "straggler" for i in injection.incidents)
        assert_param_parity(cluster, twin)
        # The slowdown lands on the simulated clock (the engine times the
        # wrapped stage closures), never in the trained values: with the
        # multiplier pinned at 2 every stage doubles, so the makespan at
        # least doubles too.
        assert run.makespan >= 2.0 * twin_run.makespan - 1e-9

    def test_comm_fault_escapes_globally_from_train_stage(self, mk_cluster):
        cluster = mk_cluster()
        schedule = FaultSchedule(0, script={("comm_allreduce", None, 0): 8})
        inject_faults(cluster, schedule)
        with pytest.raises(FaultError) as exc:
            cluster.train_round()
        assert exc.value.scope == "global"
        assert exc.value.stage == "train"

    def test_hbm_dispatch_absorbed_is_transparent(self, mk_cluster):
        twin = mk_cluster()
        twin.train(2)

        cluster = mk_cluster()
        schedule = FaultSchedule(0, script={("hbm_dispatch", 0, 0): 1})
        injection = inject_faults(cluster, schedule)
        cluster.train(2)
        clear_faults(cluster)
        assert any(i.kind == "hbm_dispatch" for i in injection.incidents)
        assert_param_parity(cluster, twin)


class TestSSDSurface:
    def test_write_stall_slows_but_never_fails(self, mk_pressured):
        twin = mk_pressured()
        twin.train(8)

        cluster = mk_pressured()
        schedule = FaultSchedule(
            4, rates={"ssd_write_stall": 1.0}, max_faults=10_000
        )
        injection = inject_faults(cluster, schedule)
        cluster.train(8)
        clear_faults(cluster)

        stalls = [i for i in injection.incidents if i.action == "stall"]
        assert stalls, "pressured run must have hit the SSD write path"
        assert fault_retry_total(cluster) > 0.0
        assert_param_parity(cluster, twin)

    def test_exhausted_read_quarantines_from_checkpoint(self, mk_pressured, tmp_path):
        cluster = mk_pressured()
        cluster.train(8)
        store = cluster.nodes[0].ssd_ps.store
        assert store.n_files > 0, "pressure config must spill to SSD"
        ckpt_dir = tmp_path / "ckpt" / "round_000008"
        cluster.save_checkpoint(str(ckpt_dir), mode="full")

        f = store.files()[0]
        before = store.read(f.keys)
        assert bool(before.found.all())
        # The cross-round extent cache would serve the file warm and
        # bypass the cold-read fault point — drop it.
        store.extent_cache.invalidate(f.file_id)

        schedule = FaultSchedule(
            0,
            script={
                ("ssd_read_error", 0, 0): 8,  # exhaust every retry
            },
        )
        injection = inject_faults(
            cluster, schedule, recovery_directory=str(tmp_path / "ckpt")
        )
        result = store.read(f.keys)
        clear_faults(cluster)

        # Quarantine re-materialized the identical payload and priced
        # the re-read; the read still succeeded end to end.
        assert np.array_equal(result.values, before.values)
        quarantines = [i for i in injection.incidents if i.action == "quarantine"]
        assert len(quarantines) == 1
        assert quarantines[0].bytes_reread > 0
        assert injection.totals()["bytes_reread"] > 0
        assert fault_retry_total(cluster) > 0.0

    def test_exhausted_read_without_checkpoint_raises_typed_loss(self, mk_pressured):
        cluster = mk_pressured()
        cluster.train(8)
        store = cluster.nodes[0].ssd_ps.store
        f = store.files()[0]
        store.extent_cache.invalidate(f.file_id)

        schedule = FaultSchedule(0, script={("ssd_read_error", 0, 0): 8})
        inject_faults(cluster, schedule)  # no recovery directory
        with pytest.raises(PayloadLostError) as exc:
            store.read(f.keys)
        err = exc.value
        assert err.file_id == f.file_id
        assert np.array_equal(err.keys, f.keys)
        assert err.scope == "node"
        assert isinstance(err, FileNotFoundError)


class TestEraseLossSurface:
    """Satellite: FileStore.erase raises a typed, key-carrying error."""

    def _store_with_file(self, tmp_path) -> tuple[FileStore, int]:
        store = FileStore(4, 64, directory=str(tmp_path / "ssd"))
        keys = np.arange(10, dtype=np.int64)
        values = np.ones((10, 4), dtype=np.float32)
        _, (fid,) = store.write(keys, values)
        return store, fid

    def test_lost_payload_raises_typed_error_with_keys(self, tmp_path):
        store, fid = self._store_with_file(tmp_path)
        f = store.files()[0]
        os.remove(f.path)
        with pytest.raises(PayloadLostError) as exc:
            store.erase(fid)
        err = exc.value
        assert err.file_id == fid
        assert np.array_equal(np.sort(err.keys), np.arange(10, dtype=np.int64))
        # Typed error still satisfies the historical contract: callers
        # that caught FileNotFoundError keep working.
        assert isinstance(err, FileNotFoundError)
        assert isinstance(err, FaultError)
        # The refusal left the bookkeeping intact.
        assert store.n_files == 1

    def test_healthy_erase_still_works(self, tmp_path):
        store, fid = self._store_with_file(tmp_path)
        # Supersede every row so no live key maps to the file.
        store.write(
            np.arange(10, dtype=np.int64), np.zeros((10, 4), dtype=np.float32)
        )
        store.erase(fid)
        assert fid not in {f.file_id for f in store.files()}
