"""Shared builders for the fault-injection suite."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.cluster import HPSCluster


@pytest.fixture
def mk_cluster(tiny_spec, small_config):
    """Factory for small clusters; keyword overrides patch the config.

    ``batch`` sets the functional batch size — the pressure builders use
    a larger batch plus a smaller MEM tier so training spills real state
    to the SSD store (the precondition for the SSD fault surfaces).
    """

    def mk(batch: int = 256, **overrides) -> HPSCluster:
        config = (
            dataclasses.replace(small_config, **overrides)
            if overrides
            else small_config
        )
        return HPSCluster(tiny_spec, config, functional_batch_size=batch)

    return mk


@pytest.fixture
def mk_pressured(mk_cluster):
    """Clusters whose MEM tier overflows to SSD within a few rounds."""

    def mk() -> HPSCluster:
        return mk_cluster(batch=512, mem_capacity_params=1_400)

    return mk
