"""RetryPolicy pricing and FaultArm guard/stall/straggle semantics."""

from __future__ import annotations

import pytest

from repro.faults import FaultExhaustedError, FaultSchedule, RetryPolicy
from repro.faults.policy import FaultArm
from repro.hardware.ledger import CostLedger


def make_arm(script, *, policy=None, jitter=0.0, **arm_kwargs):
    schedule = FaultSchedule(0, script=script)
    policy = policy or RetryPolicy(jitter=jitter)
    ledger = CostLedger()
    incidents = []
    arm = FaultArm(
        schedule,
        policy,
        ledger,
        surface="test",
        node=0,
        incidents=incidents,
        **arm_kwargs,
    )
    return arm, ledger, incidents


class TestRetryPolicy:
    def test_backoff_grows_exponentially_to_cap(self):
        p = RetryPolicy(
            backoff_base_s=0.01, backoff_multiplier=2.0, backoff_cap_s=0.05,
            jitter=0.0,
        )
        assert p.backoff_seconds(1, 0.0) == pytest.approx(0.01)
        assert p.backoff_seconds(2, 0.0) == pytest.approx(0.02)
        assert p.backoff_seconds(3, 0.0) == pytest.approx(0.04)
        assert p.backoff_seconds(4, 0.0) == pytest.approx(0.05)  # capped
        assert p.backoff_seconds(10, 0.0) == pytest.approx(0.05)

    def test_jitter_scales_up_only(self):
        p = RetryPolicy(backoff_base_s=0.01, jitter=0.5)
        assert p.backoff_seconds(1, 1.0) == pytest.approx(0.015)
        assert p.backoff_seconds(1, 0.0) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-1.0)


class TestGuard:
    def test_clean_draw_costs_nothing(self):
        arm, ledger, incidents = make_arm({})
        assert arm.guard({"hdfs_timeout": 1.0}) == 0.0
        assert ledger.total("fault_retry") == 0.0
        assert incidents == []

    def test_absorbed_fault_priced_and_recorded(self):
        # depth 2 < max_attempts 3: absorbed after 2 failed attempts.
        arm, ledger, incidents = make_arm({("hdfs_timeout", 0, 0): 2})
        p = arm.policy
        extra = arm.guard({"hdfs_timeout": 1.5})
        expected = 2 * 1.5 + p.backoff_seconds(1, 0.0) + p.backoff_seconds(2, 0.0)
        assert extra == pytest.approx(expected)
        assert ledger.total("fault_retry") == pytest.approx(expected)
        (inc,) = incidents
        assert (inc.kind, inc.action, inc.retries) == ("hdfs_timeout", "retried", 2)
        assert inc.seconds == pytest.approx(expected)
        assert arm.retries == 2

    def test_exhaustion_raises_with_scope_and_pricing(self):
        arm, ledger, _ = make_arm({("hdfs_timeout", 0, 0): 8})
        p = arm.policy
        with pytest.raises(FaultExhaustedError) as exc:
            arm.guard({"hdfs_timeout": 1.0}, scope="round")
        err = exc.value
        assert err.scope == "round"
        assert err.kind == "hdfs_timeout"
        assert err.node == 0
        # max_attempts failures, one backoff between each retried pair.
        expected = 3 * 1.0 + p.backoff_seconds(1, 0.0) + p.backoff_seconds(2, 0.0)
        assert err.retries == 2
        assert err.seconds == pytest.approx(expected)
        assert ledger.total("fault_retry") == pytest.approx(expected)

    def test_zero_waste_kind_costs_backoff_only(self):
        arm, ledger, _ = make_arm({("hdfs_read_failure", 0, 0): 1})
        p = arm.policy
        extra = arm.guard({"hdfs_read_failure": 0.0})
        assert extra == pytest.approx(p.backoff_seconds(1, 0.0))


class TestStallAndStraggle:
    def test_stall_never_raises_and_charges_retry_line(self):
        arm, ledger, incidents = make_arm({("ssd_write_stall", 0, 0): 8})
        extra = arm.stall("ssd_write_stall", 2.0)
        assert extra > 0.0
        assert ledger.total("fault_retry") == pytest.approx(extra)
        (inc,) = incidents
        assert inc.action == "stall"

    def test_clean_stall_is_free(self):
        arm, ledger, incidents = make_arm({})
        assert arm.stall("ssd_write_stall", 2.0) == 0.0
        assert incidents == []

    def test_straggle_charges_separate_ledger_line(self):
        schedule = FaultSchedule(
            1,
            rates={"straggler": 1.0},
            straggler_min=2.0,
            straggler_max=2.0,
        )
        ledger = CostLedger()
        incidents = []
        arm = FaultArm(
            schedule, RetryPolicy(), ledger, surface="stage", node=0,
            incidents=incidents,
        )
        extra = arm.straggle("train", 4.0)
        # multiplier pinned at 2.0: the extra equals the stage time.
        assert extra == pytest.approx(4.0)
        assert ledger.total("fault_straggler") == pytest.approx(4.0)
        assert ledger.total("fault_retry") == 0.0
        (inc,) = incidents
        assert (inc.action, inc.stage) == ("straggler", "train")

    def test_straggle_skips_zero_duration_stages(self):
        schedule = FaultSchedule(1, rates={"straggler": 1.0})
        arm = FaultArm(
            schedule, RetryPolicy(), CostLedger(), surface="stage", node=0
        )
        assert arm.straggle("read", 0.0) == 0.0
