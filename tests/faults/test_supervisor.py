"""Supervisor recovery classification and fault-run determinism.

The first half scripts one escalation of each class — round retry,
partial restore, full restore, boundary crash — and checks both the
recovery action and the healed run's bit-parity with a fault-free twin.
The second half is the determinism satellite: the same seed must yield
the identical ``FaultReport`` sequence, identical ``fault_retry``
pricing, and bit-identical parameters across two runs, in both
execution modes.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.faults import (
    FaultSchedule,
    RetryPolicy,
    Supervisor,
    UnrecoverableFaultError,
)


def assert_param_parity(a, b) -> None:
    probe = a.generator.batch(10_000, 512).unique_keys()
    assert np.array_equal(a.lookup_embeddings(probe), b.lookup_embeddings(probe))
    for pa, pb in zip(
        a.nodes[0].model.dense_state(), b.nodes[0].model.dense_state()
    ):
        assert np.array_equal(pa, pb)


def run_supervised(mk, tmp_path, schedule, *, n_rounds=6, pipelined=False, **kw):
    sup = Supervisor(str(tmp_path / "sup"), checkpoint_every=2, **kw)
    return sup.run(mk(), n_rounds, schedule, pipelined=pipelined)


class TestRecoveryActions:
    def test_clean_schedule_is_a_no_op(self, mk_cluster, tmp_path):
        twin = mk_cluster()
        twin.train(6)
        run = run_supervised(mk_cluster, tmp_path, FaultSchedule(0))
        assert run.rounds == 6
        assert run.reports == ()
        assert run.recoveries == 0
        assert run.downtime_seconds == 0.0
        assert_param_parity(run.cluster, twin)

    def test_round_scope_fault_retries_the_round(self, mk_cluster, tmp_path):
        twin = mk_cluster()
        twin.train(6)
        schedule = FaultSchedule(0, script={("hdfs_timeout", 1, 2): 8})
        run = run_supervised(mk_cluster, tmp_path, schedule)
        actions = [r.action for r in run.reports]
        assert "retry_round" in actions
        assert "full_restore" not in actions
        retry = next(r for r in run.reports if r.action == "retry_round")
        assert retry.kind == "hdfs_timeout"
        assert retry.stage == "read"
        assert run.rounds == 6
        assert_param_parity(run.cluster, twin)

    def test_global_scope_fault_full_restores_and_replays(
        self, mk_cluster, tmp_path
    ):
        twin = mk_cluster()
        twin.train(6)
        # hbm_dispatch exhaustion escapes mid-train: global scope.
        schedule = FaultSchedule(0, script={("hbm_dispatch", 0, 5): 8})
        run = run_supervised(mk_cluster, tmp_path, schedule)
        full = next(r for r in run.reports if r.action == "full_restore")
        assert full.kind == "hbm_dispatch"
        assert run.restore_seconds > 0.0
        assert run.downtime_seconds > 0.0
        assert run.mttr_seconds > 0.0
        assert 0.0 < run.downtime_fraction < 1.0
        assert run.rounds == 6
        assert_param_parity(run.cluster, twin)

    def test_boundary_crash_at_checkpoint_heals_partially(
        self, mk_cluster, tmp_path
    ):
        twin = mk_cluster()
        twin.train(6)
        # First probe of node 1 fires at round 0 — exactly where the
        # baseline checkpoint sits, so a partial restore suffices.
        schedule = FaultSchedule(0, script={("node_crash", 1, 0): 1})
        run = run_supervised(mk_cluster, tmp_path, schedule)
        (crash,) = [r for r in run.reports if r.kind == "node_crash"]
        assert crash.action == "partial_restore"
        assert crash.node == 1
        assert crash.replay_rounds == 0
        assert run.rounds == 6
        assert_param_parity(run.cluster, twin)

    def test_boundary_crash_off_checkpoint_full_restores(
        self, mk_cluster, tmp_path
    ):
        twin = mk_cluster()
        twin.train(6)
        # Probe op 1 lands at round 1 (odd boundary, cadence 2): the
        # newest snapshot is round 0, so the crash costs a full restore
        # with one replayed round.
        schedule = FaultSchedule(0, script={("node_crash", 0, 1): 1})
        run = run_supervised(mk_cluster, tmp_path, schedule)
        (crash,) = [r for r in run.reports if r.kind == "node_crash"]
        assert crash.action == "full_restore"
        assert crash.replay_rounds == 1
        assert run.replay_seconds > 0.0
        assert run.rounds == 6
        assert_param_parity(run.cluster, twin)

    def test_pipelined_escape_full_restores(self, mk_cluster, tmp_path):
        twin = mk_cluster()
        twin.train_pipelined(6)
        schedule = FaultSchedule(0, script={("hdfs_read_failure", 0, 3): 8})
        run = run_supervised(mk_cluster, tmp_path, schedule, pipelined=True)
        # Round scope, but pipelined: the supervisor must not retry in
        # place — overlapped rounds may already be staged.
        full = [r for r in run.reports if r.action == "full_restore"]
        assert full
        assert run.rounds == 6
        assert_param_parity(run.cluster, twin)

    def test_recovery_budget_raises_typed_error(self, mk_cluster, tmp_path):
        schedule = FaultSchedule(
            0,
            script={("node_crash", 0, i): 1 for i in range(4)},
        )
        with pytest.raises(UnrecoverableFaultError):
            run_supervised(
                mk_cluster, tmp_path, schedule, max_recoveries=2
            )

    def test_round_retry_budget_escalates_to_full_restore(
        self, mk_cluster, tmp_path
    ):
        twin = mk_cluster()
        twin.train(4)
        # Four consecutive exhausted reads of the same round: retries 3
        # times (policy default), then escalates.
        schedule = FaultSchedule(
            0,
            script={("hdfs_timeout", 0, i): 8 for i in range(4)},
        )
        run = run_supervised(mk_cluster, tmp_path, schedule, n_rounds=4)
        actions = [r.action for r in run.reports if r.action != "retried"]
        assert actions.count("retry_round") == RetryPolicy().max_round_retries
        assert "full_restore" in actions
        assert run.rounds == 4
        assert_param_parity(run.cluster, twin)


class TestQuarantineUnderSupervision:
    def test_ssd_exhaustion_is_absorbed_by_quarantine(
        self, mk_pressured, tmp_path
    ):
        twin = mk_pressured()
        twin.train(10)
        # Every cold SSD read on node 0 fails hard from op 0 on; the
        # checkpoint chain the supervisor maintains re-materializes each
        # quarantined file, so no restore is ever needed for them.
        schedule = FaultSchedule(
            0,
            script={("ssd_read_error", 0, i): 8 for i in range(3)},
        )
        run = run_supervised(
            mk_pressured, tmp_path, schedule, n_rounds=10
        )
        quarantines = [r for r in run.reports if r.action == "quarantine"]
        assert quarantines
        assert all(q.bytes_reread > 0 for q in quarantines)
        assert run.totals["bytes_reread"] > 0
        assert run.rounds == 10
        assert_param_parity(run.cluster, twin)


class TestDeterminism:
    """Satellite: same seed -> same reports, same pricing, same bits."""

    @pytest.mark.parametrize("pipelined", [False, True])
    def test_identical_runs(self, mk_cluster, tmp_path, pipelined):
        def once(tag: str):
            schedule = FaultSchedule.mixed(1234, rate=0.2)
            sup = Supervisor(str(tmp_path / tag), checkpoint_every=2)
            return sup.run(mk_cluster(), 6, schedule, pipelined=pipelined)

        a = once("a")
        b = once("b")
        assert a.reports, "schedule must actually fire for this test to bite"
        assert [dataclasses.astuple(r) for r in a.reports] == [
            dataclasses.astuple(r) for r in b.reports
        ]
        assert a.totals == b.totals
        assert a.training_seconds == b.training_seconds
        assert a.downtime_seconds == b.downtime_seconds
        # Ledger pricing is bit-identical, not just close.
        for na, nb in zip(a.cluster.nodes, b.cluster.nodes):
            assert na.ledger.total("fault_retry") == nb.ledger.total(
                "fault_retry"
            )
            assert na.ledger.total("fault_straggler") == nb.ledger.total(
                "fault_straggler"
            )
        assert_param_parity(a.cluster, b.cluster)
