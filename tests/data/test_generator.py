"""Tests for the synthetic CTR data generator."""

import numpy as np
import pytest

from repro.config import ModelSpec
from repro.data.generator import CTRDataGenerator, zipf_probabilities


@pytest.fixture
def spec():
    return ModelSpec(
        name="gen-test",
        nonzeros_per_example=8,
        n_sparse=10_000,
        n_dense=100,
        size_gb=0.001,
        mpi_nodes=1,
        embedding_dim=4,
        n_slots=4,
    )


class TestZipfProbabilities:
    def test_sums_to_one(self):
        p = zipf_probabilities(1000)
        assert p.sum() == pytest.approx(1.0)

    def test_decreasing(self):
        p = zipf_probabilities(100)
        assert np.all(np.diff(p) < 0)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0)


class TestGenerator:
    def test_batch_shape(self, spec):
        gen = CTRDataGenerator(spec, seed=0)
        b = gen.batch(0, 100)
        assert b.n_examples == 100
        assert b.n_nonzeros == 100 * spec.nonzeros_per_example

    def test_deterministic_per_index(self, spec):
        g1 = CTRDataGenerator(spec, seed=3)
        g2 = CTRDataGenerator(spec, seed=3)
        a, b = g1.batch(5, 64), g2.batch(5, 64)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.labels, b.labels)

    def test_different_indices_differ(self, spec):
        gen = CTRDataGenerator(spec, seed=3)
        assert not np.array_equal(gen.batch(0, 64).keys, gen.batch(1, 64).keys)

    def test_different_seeds_differ(self, spec):
        a = CTRDataGenerator(spec, seed=1).batch(0, 64)
        b = CTRDataGenerator(spec, seed=2).batch(0, 64)
        assert not np.array_equal(a.keys, b.keys)

    def test_keys_within_key_space(self, spec):
        b = CTRDataGenerator(spec, seed=0).batch(0, 500)
        assert int(b.keys.max()) < spec.n_sparse

    def test_keys_respect_slot_bands(self, spec):
        b = CTRDataGenerator(spec, seed=0).batch(0, 200)
        vocab = spec.n_sparse // spec.n_slots
        ids_per_slot = spec.nonzeros_per_example // spec.n_slots
        keys = b.keys.reshape(200, spec.n_slots, ids_per_slot)
        for s in range(spec.n_slots):
            band = keys[:, s, :].astype(np.int64)
            assert band.min() >= s * vocab
            assert band.max() < (s + 1) * vocab

    def test_labels_binary_and_balanced(self, spec):
        b = CTRDataGenerator(spec, seed=0).batch(0, 2000)
        assert set(np.unique(b.labels)) <= {0.0, 1.0}
        rate = float(b.labels.mean())
        assert 0.3 < rate < 0.7  # median-centering keeps classes balanced

    def test_popularity_skew(self, spec):
        """Hot keys dominate: top 1% of keys covers far more than 1% of
        draws (this is what makes the MEM-PS cache effective)."""
        b = CTRDataGenerator(spec, seed=0).batch(0, 2000)
        _, counts = np.unique(b.keys, return_counts=True)
        counts = np.sort(counts)[::-1]
        top = counts[: max(1, counts.size // 100)].sum()
        assert top / counts.sum() > 0.05

    def test_batches_generator_yields_n(self, spec):
        gen = CTRDataGenerator(spec, seed=0)
        assert len(list(gen.batches(3, 16))) == 3

    def test_signal_is_learnable(self, spec):
        """A trivial per-key frequency model must beat random AUC —
        otherwise the planted signal is broken."""
        from repro.nn.metrics import auc

        gen = CTRDataGenerator(spec, seed=0)
        train = gen.batch(0, 4000)
        test = gen.batch(1, 4000)
        # Score = sum of per-key empirical log-odds from train.
        keys, inv = np.unique(train.keys, return_inverse=True)
        rows = np.repeat(np.arange(train.n_examples), train.row_lengths())
        pos = np.zeros(keys.size)
        tot = np.zeros(keys.size)
        np.add.at(pos, inv, train.labels[rows])
        np.add.at(tot, inv, 1.0)
        w = (pos + 1) / (tot + 2) - 0.5
        idx = np.searchsorted(keys, test.keys)
        idx = np.clip(idx, 0, keys.size - 1)
        valid = keys[idx] == test.keys
        contrib = np.where(valid, w[idx], 0.0)
        test_rows = np.repeat(np.arange(test.n_examples), test.row_lengths())
        scores = np.zeros(test.n_examples)
        np.add.at(scores, test_rows, contrib)
        assert auc(test.labels, scores) > 0.55

    def test_invalid_exponent(self, spec):
        with pytest.raises(ValueError):
            CTRDataGenerator(spec, zipf_exponent=1.0)

    def test_invalid_batch_size(self, spec):
        with pytest.raises(ValueError):
            CTRDataGenerator(spec, seed=0).batch(0, 0)
