"""Tests for the CSR batch container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.batching import Batch, concat_batches


def make_batch(rows, labels=None):
    keys = np.array([k for r in rows for k in r], dtype=np.uint64)
    offsets = np.cumsum([0] + [len(r) for r in rows])
    labels = labels if labels is not None else [0.0] * len(rows)
    return Batch(keys, offsets, np.array(labels, dtype=np.float32))


class TestBatchValidation:
    def test_valid_batch(self):
        b = make_batch([[1, 2], [3]])
        assert b.n_examples == 2
        assert b.n_nonzeros == 3

    def test_bad_offsets_start(self):
        with pytest.raises(ValueError):
            Batch(np.array([1], dtype=np.uint64), np.array([1, 1]), np.array([0.0]))

    def test_bad_offsets_end(self):
        with pytest.raises(ValueError):
            Batch(np.array([1], dtype=np.uint64), np.array([0, 2]), np.array([0.0]))

    def test_decreasing_offsets(self):
        with pytest.raises(ValueError):
            Batch(
                np.array([1, 2], dtype=np.uint64),
                np.array([0, 2, 1, 2]),
                np.array([0.0, 1.0, 0.0]),
            )

    def test_label_length_mismatch(self):
        with pytest.raises(ValueError):
            Batch(np.array([1], dtype=np.uint64), np.array([0, 1]), np.array([0.0, 1.0]))


class TestUniqueKeys:
    def test_dedup_and_sort(self):
        b = make_batch([[5, 1], [5, 3]])
        assert b.unique_keys().tolist() == [1, 3, 5]

    def test_empty_rows_ok(self):
        b = make_batch([[], [7], []])
        assert b.unique_keys().tolist() == [7]


class TestSelect:
    def test_reorders_rows(self):
        b = make_batch([[1], [2, 3], [4]], labels=[0, 1, 0])
        sub = b.select(np.array([2, 0]))
        assert sub.n_examples == 2
        assert sub.keys.tolist() == [4, 1]
        assert sub.labels.tolist() == [0.0, 0.0]

    def test_empty_selection(self):
        b = make_batch([[1], [2]])
        sub = b.select(np.array([], dtype=np.int64))
        assert sub.n_examples == 0
        assert sub.n_nonzeros == 0

    def test_out_of_range(self):
        b = make_batch([[1]])
        with pytest.raises(IndexError):
            b.select(np.array([5]))

    def test_select_with_empty_rows(self):
        b = make_batch([[], [2, 3], []])
        sub = b.select(np.array([1, 0]))
        assert sub.keys.tolist() == [2, 3]
        assert sub.row_lengths().tolist() == [2, 0]


class TestShard:
    def test_partition_preserves_everything(self):
        b = make_batch([[i, i + 1] for i in range(10)], labels=list(range(10)))
        shards = b.shard(3)
        assert sum(s.n_examples for s in shards) == 10
        rebuilt = concat_batches(shards)
        assert np.array_equal(rebuilt.keys, b.keys)
        assert np.array_equal(rebuilt.labels, b.labels)

    def test_balanced_sizes(self):
        b = make_batch([[1]] * 10)
        sizes = [s.n_examples for s in b.shard(4)]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_examples(self):
        b = make_batch([[1], [2]])
        shards = b.shard(5)
        assert len(shards) == 5
        assert sum(s.n_examples for s in shards) == 2

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            make_batch([[1]]).shard(0)


class TestConcat:
    def test_roundtrip(self):
        a = make_batch([[1, 2]], labels=[1])
        b = make_batch([[3]], labels=[0])
        c = concat_batches([a, b])
        assert c.n_examples == 2
        assert c.keys.tolist() == [1, 2, 3]

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            concat_batches([])


class TestRawLogBytes:
    def test_scales_with_examples_and_nonzeros(self):
        small = make_batch([[1]])
        big = make_batch([[1, 2, 3], [4, 5, 6]])
        assert big.nbytes_raw_log() > small.nbytes_raw_log()


@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=1000), max_size=6),
        min_size=1,
        max_size=30,
    ),
    st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_shard_concat_identity_property(rows, n_shards):
    b = make_batch(rows, labels=list(range(len(rows))))
    rebuilt = concat_batches(b.shard(n_shards))
    assert np.array_equal(rebuilt.keys, b.keys)
    assert np.array_equal(rebuilt.offsets, b.offsets)
    assert np.array_equal(rebuilt.labels, b.labels)
