"""Tests for the simulated HDFS stream."""

import numpy as np
import pytest

from repro.config import ModelSpec
from repro.data.generator import CTRDataGenerator
from repro.data.hdfs import HDFSStream
from repro.hardware.specs import HDFSSpec


@pytest.fixture
def gen():
    spec = ModelSpec(
        name="hdfs-test",
        nonzeros_per_example=8,
        n_sparse=5_000,
        n_dense=100,
        size_gb=0.001,
        mpi_nodes=1,
        embedding_dim=4,
        n_slots=4,
    )
    return CTRDataGenerator(spec, seed=0)


class TestHDFSStream:
    def test_read_charges_ledger(self, gen):
        s = HDFSStream(gen, HDFSSpec(), batch_size=64)
        tb = s.read(0)
        assert tb.read_seconds > 0
        assert s.ledger.total("hdfs_read") == pytest.approx(tb.read_seconds)

    def test_read_time_scales_with_batch_size(self, gen):
        spec = HDFSSpec()
        small = HDFSStream(gen, spec, batch_size=64).read(0)
        large = HDFSStream(gen, spec, batch_size=640).read(0)
        assert large.read_seconds > small.read_seconds

    def test_nodes_receive_disjoint_batches(self, gen):
        spec = HDFSSpec()
        s0 = HDFSStream(gen, spec, node_id=0, n_nodes=2, batch_size=32)
        s1 = HDFSStream(gen, spec, node_id=1, n_nodes=2, batch_size=32)
        b0 = [tb.index for tb in s0.stream(3)]
        b1 = [tb.index for tb in s1.stream(3)]
        assert b0 == [0, 2, 4]
        assert b1 == [1, 3, 5]
        assert not set(b0) & set(b1)

    def test_same_index_same_data(self, gen):
        spec = HDFSSpec()
        a = HDFSStream(gen, spec, batch_size=32).read(7)
        b = HDFSStream(gen, spec, batch_size=32).read(7)
        assert np.array_equal(a.batch.keys, b.batch.keys)

    def test_counters(self, gen):
        s = HDFSStream(gen, HDFSSpec(), batch_size=64)
        list(s.stream(4))
        assert s.batches_read == 4
        assert s.bytes_read > 0

    def test_invalid_node_id(self, gen):
        with pytest.raises(ValueError):
            HDFSStream(gen, HDFSSpec(), node_id=2, n_nodes=2)

    def test_invalid_batch_size(self, gen):
        with pytest.raises(ValueError):
            HDFSStream(gen, HDFSSpec(), batch_size=0)

    def test_bandwidth_inverse_to_time(self, gen):
        fast = HDFSStream(gen, HDFSSpec(bandwidth=1e9), batch_size=256).read(0)
        slow = HDFSStream(gen, HDFSSpec(bandwidth=1e6), batch_size=256).read(0)
        # Latency (1 ms) floors the fast read; bandwidth still dominates.
        assert slow.read_seconds > fast.read_seconds * 10
