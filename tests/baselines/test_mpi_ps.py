"""Tests for the MPI-cluster baseline."""

import pytest

from repro.baselines.mpi_ps import MPIClusterBaseline, MPITimingModel
from repro.config import PAPER_MODELS


class TestTimingModel:
    def test_throughput_positive_all_models(self):
        for spec in PAPER_MODELS.values():
            assert MPITimingModel(spec).throughput() > 0

    def test_uses_table3_node_counts(self):
        m = MPITimingModel(PAPER_MODELS["D"])
        assert m.n_nodes == 150

    def test_override_node_count(self):
        m = MPITimingModel(PAPER_MODELS["A"], n_mpi_nodes=10)
        assert m.n_nodes == 10

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            MPITimingModel(PAPER_MODELS["A"], n_mpi_nodes=0)

    def test_bigger_models_slower_per_node(self):
        """Per-node rate falls with model scale (more unique keys per
        example, bigger payloads, heavier shard)."""
        rate_a = MPITimingModel(PAPER_MODELS["A"]).node_rate()
        rate_e = MPITimingModel(PAPER_MODELS["E"]).node_rate()
        assert rate_e < rate_a

    def test_components_positive(self):
        t = MPITimingModel(PAPER_MODELS["C"]).batch_time()
        assert t.compute_seconds > 0
        assert t.network_seconds > 0
        assert t.sync_seconds > 0
        assert t.total_seconds >= t.network_seconds

    def test_sync_grows_with_cluster(self):
        small = MPITimingModel(PAPER_MODELS["A"], n_mpi_nodes=8).batch_time()
        large = MPITimingModel(PAPER_MODELS["A"], n_mpi_nodes=128).batch_time()
        assert large.sync_seconds > small.sync_seconds


class TestFunctionalBaseline:
    def test_matches_reference_semantics(self, tiny_spec, small_config):
        from repro.core.trainer import ReferenceTrainer

        mpi = MPIClusterBaseline(
            tiny_spec, small_config, functional_batch_size=256, n_mpi_nodes=10
        )
        ref = ReferenceTrainer(tiny_spec, small_config, functional_batch_size=256)
        for _ in range(2):
            assert mpi.train_round() == pytest.approx(ref.train_round(), rel=1e-9)

    def test_simulated_throughput_available(self, tiny_spec, small_config):
        mpi = MPIClusterBaseline(
            tiny_spec, small_config, functional_batch_size=128, n_mpi_nodes=4
        )
        assert mpi.simulated_throughput() > 0
        assert mpi.simulated_batch_seconds() > 0
