"""Tests for the multi-GPU distributed hash table (Algorithm 2)."""

import numpy as np
import pytest

from repro.hbm.distributed_table import DistributedHashTable


def keys_of(xs):
    return np.array(xs, dtype=np.uint64)


@pytest.fixture
def table():
    return DistributedHashTable(4, capacity_per_gpu=1000, value_dim=2)


class TestInsertGet:
    def test_roundtrip_across_gpus(self, table):
        keys = keys_of(range(100))
        vals = np.arange(200, dtype=np.float32).reshape(100, 2)
        table.insert(keys, vals)
        got, _ = table.get(keys, source_gpu=0)
        assert np.array_equal(got, vals)

    def test_partitioned_non_overlapping(self, table):
        keys = keys_of(range(100))
        vals = np.zeros((100, 2), dtype=np.float32)
        table.insert(keys, vals)
        assert sum(t.size for t in table.tables) == 100
        assert table.size == 100

    def test_get_with_duplicate_request_keys(self, table):
        keys = keys_of([1, 2, 3])
        vals = np.array([[1, 1], [2, 2], [3, 3]], dtype=np.float32)
        table.insert(keys, vals)
        got, _ = table.get(keys_of([2, 2, 1]), source_gpu=1)
        assert got.tolist() == [[2, 2], [2, 2], [1, 1]]

    def test_missing_key_raises(self, table):
        table.insert(keys_of([1]), np.zeros((1, 2), dtype=np.float32))
        with pytest.raises(KeyError):
            table.get(keys_of([999]))

    def test_invalid_gpu(self, table):
        table.insert(keys_of([1]), np.zeros((1, 2), dtype=np.float32))
        with pytest.raises(IndexError):
            table.get(keys_of([1]), source_gpu=7)

    def test_nvlink_traffic_only_for_remote_partitions(self, table):
        keys = keys_of(range(64))
        table.insert(keys, np.zeros((64, 2), dtype=np.float32))
        before = table.nvlink.bytes_moved
        # Request only keys owned by GPU 2, from GPU 2: no NVLink traffic.
        own = keys[table.partitioner.part_of(keys) == 2]
        table.get(own, source_gpu=2)
        assert table.nvlink.bytes_moved == before
        table.get(own, source_gpu=0)
        assert table.nvlink.bytes_moved > before


class TestAccumulate:
    def test_routes_to_owners(self, table):
        keys = keys_of(range(50))
        table.insert(keys, np.zeros((50, 2), dtype=np.float32))
        deltas = np.ones((50, 2), dtype=np.float32)
        table.accumulate(keys, deltas, source_gpu=0)
        got, _ = table.get(keys)
        assert np.all(got == 1.0)

    def test_duplicates_sum(self, table):
        table.insert(keys_of([5]), np.zeros((1, 2), dtype=np.float32))
        table.accumulate(
            keys_of([5, 5, 5]), np.ones((3, 2), dtype=np.float32), source_gpu=1
        )
        got, _ = table.get(keys_of([5]))
        assert np.all(got == 3.0)

    def test_upsert(self, table):
        table.accumulate(
            keys_of([10, 20]), np.ones((2, 2), dtype=np.float32), upsert=True
        )
        got, _ = table.get(keys_of([10, 20]))
        assert np.all(got == 1.0)

    def test_simulated_time_positive(self, table):
        keys = keys_of(range(20))
        table.insert(keys, np.zeros((20, 2), dtype=np.float32))
        t = table.accumulate(keys, np.ones((20, 2), dtype=np.float32))
        assert t > 0


class TestTransformItemsClear:
    def test_transform_all_partitions(self, table):
        keys = keys_of(range(40))
        table.insert(keys, np.ones((40, 2), dtype=np.float32))
        table.transform(keys, lambda v: v * 3)
        got, _ = table.get(keys)
        assert np.all(got == 3.0)

    def test_transform_duplicate_keys_rejected(self, table):
        keys = keys_of(range(10))
        table.insert(keys, np.ones((10, 2), dtype=np.float32))
        with pytest.raises(ValueError, match="unique"):
            table.transform(keys_of([3, 3, 5]), lambda v: v * 2)
        got, _ = table.get(keys)
        assert np.all(got == 1.0)

    def test_items_globally_sorted(self, table):
        keys = keys_of([44, 2, 93, 17])
        table.insert(keys, np.zeros((4, 2), dtype=np.float32))
        k, v = table.items()
        assert k.tolist() == [2, 17, 44, 93]
        assert v.shape == (4, 2)

    def test_items_empty(self, table):
        k, v = table.items()
        assert k.size == 0
        assert v.shape == (0, 2)

    def test_clear(self, table):
        table.insert(keys_of([1, 2]), np.zeros((2, 2), dtype=np.float32))
        table.clear()
        assert table.size == 0

    def test_contains(self, table):
        table.insert(keys_of([3, 7]), np.zeros((2, 2), dtype=np.float32))
        mask = table.contains(keys_of([3, 4, 7]))
        assert mask.tolist() == [True, False, True]


class TestEquivalenceWithSingleTable:
    def test_matches_one_gpu_table(self):
        """N-GPU distributed semantics == a single hash table."""
        from repro.hbm.hash_table import HashTable

        multi = DistributedHashTable(4, 500, 1)
        single = HashTable(2000, 1)
        rng = np.random.default_rng(0)
        keys = np.unique(rng.integers(0, 10_000, 300).astype(np.uint64))
        vals = rng.normal(size=(keys.size, 1)).astype(np.float32)
        multi.insert(keys, vals)
        single.insert(keys, vals)
        deltas = rng.normal(size=(keys.size, 1)).astype(np.float32)
        multi.accumulate(keys, deltas)
        single.accumulate(keys, deltas)
        mk, mv = multi.items()
        sk, sv = single.items()
        assert np.array_equal(mk, sk)
        assert np.allclose(mv, sv)
