"""Tests for the hierarchical all-reduce (Figure 9)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.network import Network
from repro.hardware.specs import NetworkSpec
from repro.hbm.allreduce import (
    DenseGradAccumulator,
    SparseUpdate,
    allreduce_dense,
    hierarchical_allreduce,
    merge_updates,
)


def upd(d):
    keys = np.array(sorted(d), dtype=np.uint64)
    grads = np.array([[d[int(k)]] for k in keys], dtype=np.float64)
    return SparseUpdate(keys, grads)


class TestSparseUpdate:
    def test_validates_sorted_unique(self):
        with pytest.raises(ValueError):
            SparseUpdate(np.array([2, 1], dtype=np.uint64), np.zeros((2, 1)))
        with pytest.raises(ValueError):
            SparseUpdate(np.array([1, 1], dtype=np.uint64), np.zeros((2, 1)))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            SparseUpdate(np.array([1], dtype=np.uint64), np.zeros((2, 1)))

    def test_nbytes(self):
        u = upd({1: 1.0, 2: 2.0})
        assert u.nbytes() == 2 * (8 + 4)

    def test_empty(self):
        u = SparseUpdate.empty(3)
        assert u.n_keys == 0
        assert u.grads.shape == (0, 3)


class TestMerge:
    def test_disjoint_union(self):
        m = merge_updates(upd({1: 1.0}), upd({2: 2.0}))
        assert m.keys.tolist() == [1, 2]
        assert m.grads[:, 0].tolist() == [1.0, 2.0]

    def test_shared_keys_sum(self):
        m = merge_updates(upd({1: 1.0, 2: 5.0}), upd({2: 2.0}))
        assert m.grads[:, 0].tolist() == [1.0, 7.0]

    def test_empty_identity(self):
        u = upd({3: 1.5})
        assert merge_updates(SparseUpdate.empty(1), u) is u
        assert merge_updates(u, SparseUpdate.empty(1)) is u


class TestHierarchicalAllreduce:
    @pytest.mark.parametrize("n_nodes", [1, 2, 3, 4, 5, 8])
    def test_equals_flat_sum(self, n_nodes):
        rng = np.random.default_rng(n_nodes)
        updates = []
        for _ in range(n_nodes):
            keys = np.unique(rng.integers(0, 50, 20).astype(np.uint64))
            grads = rng.normal(size=(keys.size, 2))
            updates.append(SparseUpdate(keys, grads))
        result, t = hierarchical_allreduce(updates)
        # Flat reference: sum everything per key.
        acc: dict[int, np.ndarray] = {}
        for u in updates:
            for k, g in zip(u.keys.tolist(), u.grads):
                acc[k] = acc.get(k, 0) + g
        assert result.keys.tolist() == sorted(acc)
        for k, g in zip(result.keys.tolist(), result.grads):
            assert np.allclose(g, acc[k])

    def test_no_networks_zero_time(self):
        result, t = hierarchical_allreduce([upd({1: 1.0}), upd({1: 2.0})])
        assert t == 0.0

    def test_time_positive_with_networks(self):
        nets = [Network(NetworkSpec()) for _ in range(4)]
        updates = [upd({i: 1.0}) for i in range(4)]
        _, t = hierarchical_allreduce(updates, networks=nets, gpus_per_node=8)
        assert t > 0
        assert sum(n.ledger.total("allreduce") for n in nets) == pytest.approx(t)

    def test_more_nodes_more_time(self):
        def run(n):
            nets = [Network(NetworkSpec()) for _ in range(n)]
            updates = [upd({i: 1.0, 100 + i: 2.0}) for i in range(n)]
            return hierarchical_allreduce(updates, networks=nets)[1]

        assert run(4) > run(2)

    def test_single_node_no_internode_time(self):
        nets = [Network(NetworkSpec())]
        _, t = hierarchical_allreduce([upd({1: 1.0})], networks=nets)
        assert t == 0.0

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            hierarchical_allreduce([])

    def test_rdma_faster_than_cpu_bounce(self):
        """Figure 8: removing RDMA adds PCIe copies + CPU overhead."""
        def run(rdma):
            nets = [Network(NetworkSpec(rdma=rdma)) for _ in range(4)]
            updates = [
                SparseUpdate(
                    np.arange(1000, dtype=np.uint64) + i,
                    np.ones((1000, 4)),
                )
                for i in range(4)
            ]
            return hierarchical_allreduce(updates, networks=nets)[1]

        assert run(True) < run(False)


class TestAllreduceDense:
    def test_sums_across_nodes(self):
        grads = [[np.ones((2, 2)), np.ones(3)] for _ in range(4)]
        total, t = allreduce_dense(grads)
        assert np.all(total[0] == 4.0)
        assert np.all(total[1] == 4.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            allreduce_dense([[np.ones(2)], [np.ones(3)]])

    def test_single_node_zero_time(self):
        nets = [Network(NetworkSpec())]
        _, t = allreduce_dense([[np.ones(5)]], networks=nets)
        assert t == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            allreduce_dense([])

    def test_float32_sum_matches_float64_within_tolerance(self):
        """Regression for the reused-float32-buffer accumulation: the sum
        must agree with an exact float64 reduction to float32 precision."""
        rng = np.random.default_rng(5)
        grads = [
            [rng.normal(size=(32, 16)), rng.normal(size=48)] for _ in range(4)
        ]
        total, _ = allreduce_dense(grads)
        exact = [
            np.sum([g[j] for g in grads], axis=0, dtype=np.float64)
            for j in range(2)
        ]
        for got, want in zip(total, exact):
            assert got.dtype == np.float32
            np.testing.assert_allclose(got, want, rtol=1e-5, atol=1e-6)

    def test_out_buffers_are_reused_across_calls(self):
        """No per-call temporaries: the accumulator's arrays are written
        in place on every call."""
        acc = DenseGradAccumulator()
        grads_a = [[np.ones((3, 3))], [np.ones((3, 3))]]
        total_a, _ = allreduce_dense(grads_a, out=acc)
        first = [id(t) for t in total_a]
        grads_b = [[np.full((3, 3), 2.0)], [np.full((3, 3), 3.0)]]
        total_b, _ = allreduce_dense(grads_b, out=acc)
        assert [id(t) for t in total_b] == first
        assert np.all(total_b[0] == 5.0)

    def test_accumulator_reallocates_on_shape_change(self):
        acc = DenseGradAccumulator()
        allreduce_dense([[np.ones(4)]], out=acc)
        total, _ = allreduce_dense([[np.ones((2, 2))]], out=acc)
        assert total[0].shape == (2, 2)
        assert np.all(total[0] == 1.0)


@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=30, deadline=None)
def test_allreduce_total_mass_conserved(n_nodes, seed):
    rng = np.random.default_rng(seed)
    updates = []
    total = 0.0
    for _ in range(n_nodes):
        keys = np.unique(rng.integers(0, 30, 10).astype(np.uint64))
        grads = rng.normal(size=(keys.size, 1))
        total += grads.sum()
        updates.append(SparseUpdate(keys, grads))
    result, _ = hierarchical_allreduce(updates)
    assert result.grads.sum() == pytest.approx(total, abs=1e-9)
