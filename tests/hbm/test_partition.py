"""Tests for the modulo partition policies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hbm.partition import ModuloPartitioner


class TestPartitioner:
    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            ModuloPartitioner(0)

    def test_deterministic(self):
        p = ModuloPartitioner(4)
        keys = np.arange(100, dtype=np.uint64)
        assert np.array_equal(p.part_of(keys), p.part_of(keys))

    def test_in_range(self):
        p = ModuloPartitioner(7)
        parts = p.part_of(np.arange(1000, dtype=np.uint64))
        assert parts.min() >= 0 and parts.max() < 7

    def test_unhashed_is_plain_modulo(self):
        p = ModuloPartitioner(3, hashed=False)
        parts = p.part_of(np.array([0, 1, 2, 3, 4, 5], dtype=np.uint64))
        assert parts.tolist() == [0, 1, 2, 0, 1, 2]

    def test_salts_give_independent_partitions(self):
        keys = np.arange(1000, dtype=np.uint64)
        a = ModuloPartitioner(4, salt=1).part_of(keys)
        b = ModuloPartitioner(4, salt=2).part_of(keys)
        assert not np.array_equal(a, b)

    def test_balance_on_sequential_keys(self):
        """Hashed modulo balances even banded/sequential key spaces."""
        p = ModuloPartitioner(8)
        counts = p.counts(np.arange(80_000, dtype=np.uint64))
        assert counts.max() / counts.min() < 1.1

    def test_single_part_gets_everything(self):
        p = ModuloPartitioner(1)
        assert np.all(p.part_of(np.arange(50, dtype=np.uint64)) == 0)


class TestSplit:
    def test_split_preserves_pairs(self):
        p = ModuloPartitioner(4)
        keys = np.arange(200, dtype=np.uint64)
        vals = np.arange(200, dtype=np.float32) * 2
        rebuilt = {}
        for k, v in p.split(keys, vals):
            for ki, vi in zip(k.tolist(), v.tolist()):
                rebuilt[ki] = vi
        assert rebuilt == {int(k): float(k) * 2 for k in keys}

    def test_split_routing_consistent_with_part_of(self):
        p = ModuloPartitioner(5)
        keys = np.arange(100, dtype=np.uint64)
        for b, (k,) in enumerate(p.split(keys)):
            assert np.all(p.part_of(k) == b)

    def test_split_multiple_arrays(self):
        p = ModuloPartitioner(2)
        keys = np.arange(10, dtype=np.uint64)
        a = np.arange(10)
        b = np.arange(10) * 10
        for k, ai, bi in p.split(keys, a, b):
            assert np.array_equal(ai * 10, bi)

    def test_empty_split(self):
        p = ModuloPartitioner(3)
        parts = p.split(np.array([], dtype=np.uint64))
        assert len(parts) == 3
        assert all(k.size == 0 for (k,) in parts)


@given(
    st.lists(st.integers(min_value=0, max_value=2**63), max_size=300),
    st.integers(min_value=1, max_value=16),
)
@settings(max_examples=50, deadline=None)
def test_split_is_a_partition(keys, n_parts):
    p = ModuloPartitioner(n_parts)
    keys = np.array(keys, dtype=np.uint64)
    pieces = [k for (k,) in p.split(keys)]
    total = sum(k.size for k in pieces)
    assert total == keys.size
    merged = np.sort(np.concatenate(pieces)) if total else np.array([], dtype=np.uint64)
    assert np.array_equal(merged, np.sort(keys))
