"""Tests for the HBM-PS facade."""

import numpy as np
import pytest

from repro.hbm.allreduce import SparseUpdate
from repro.hbm.hbm_ps import HBMPS
from repro.nn.optim import SparseAdagrad, SparseSGD


def keys_of(xs):
    return np.array(xs, dtype=np.uint64)


@pytest.fixture
def ps():
    return HBMPS(2, capacity_per_gpu=1000, optimizer=SparseSGD(2, lr=1.0))


class TestLoadPull:
    def test_pull_returns_embeddings(self, ps):
        keys = keys_of(range(10))
        values = np.arange(20, dtype=np.float32).reshape(10, 2)
        ps.load_working_set(keys, values)
        emb, t = ps.pull_embeddings(keys, gpu=0)
        assert np.array_equal(emb, values)  # SGD: value == embedding
        assert t > 0

    def test_adagrad_embedding_slice(self):
        opt = SparseAdagrad(2, lr=0.1)
        ps = HBMPS(2, 1000, opt)
        keys = keys_of([1, 2])
        values = np.array(
            [[1, 2, 10, 20], [3, 4, 30, 40]], dtype=np.float32
        )  # emb + accumulator
        ps.load_working_set(keys, values)
        emb, _ = ps.pull_embeddings(keys)
        assert emb.tolist() == [[1, 2], [3, 4]]

    def test_reload_replaces_working_set(self, ps):
        ps.load_working_set(keys_of([1]), np.ones((1, 2), dtype=np.float32))
        ps.load_working_set(keys_of([2]), np.ones((1, 2), dtype=np.float32))
        with pytest.raises(KeyError):
            ps.pull_embeddings(keys_of([1]))


class TestPushDrain:
    def test_push_accumulates_and_drain_clears(self, ps):
        keys = keys_of([1, 2])
        ps.load_working_set(keys, np.zeros((2, 2), dtype=np.float32))
        ps.push_gradients(keys, np.ones((2, 2), dtype=np.float32), gpu=0)
        ps.push_gradients(keys_of([2]), np.ones((1, 2), dtype=np.float32), gpu=1)
        update = ps.drain_gradients()
        assert update.keys.tolist() == [1, 2]
        assert update.grads[:, 0].tolist() == [1.0, 2.0]
        assert ps.drain_gradients().n_keys == 0

    def test_workers_on_different_gpus_merge(self, ps):
        keys = keys_of(range(8))
        ps.load_working_set(keys, np.zeros((8, 2), dtype=np.float32))
        for gpu in range(2):
            ps.push_gradients(keys, np.full((8, 2), 0.5, dtype=np.float32), gpu=gpu)
        update = ps.drain_gradients()
        assert np.all(update.grads == 1.0)


class TestApplyUpdate:
    def test_sgd_applies_gradients(self, ps):
        keys = keys_of([1, 2])
        ps.load_working_set(keys, np.zeros((2, 2), dtype=np.float32))
        update = SparseUpdate(keys, np.ones((2, 2)))
        missing, t = ps.apply_update(update)
        assert missing.size == 0
        emb, _ = ps.pull_embeddings(keys)
        assert np.all(emb == -1.0)  # lr=1.0 SGD: 0 - 1*1

    def test_missing_keys_reported(self, ps):
        ps.load_working_set(keys_of([1]), np.zeros((1, 2), dtype=np.float32))
        update = SparseUpdate(keys_of([1, 5, 9]), np.ones((3, 2)))
        missing, _ = ps.apply_update(update)
        assert missing.tolist() == [5, 9]
        emb, _ = ps.pull_embeddings(keys_of([1]))
        assert np.all(emb == -1.0)

    def test_empty_update_noop(self, ps):
        missing, t = ps.apply_update(SparseUpdate.empty(2))
        assert missing.size == 0
        assert t == 0.0

    def test_gradient_alignment_across_partitions(self, ps):
        """Each GPU partition must receive *its own* gradient rows."""
        keys = keys_of(range(20))
        values = np.zeros((20, 2), dtype=np.float32)
        ps.load_working_set(keys, values)
        grads = np.arange(20, dtype=np.float64).repeat(2).reshape(20, 2)
        ps.apply_update(SparseUpdate(keys, grads))
        emb, _ = ps.pull_embeddings(keys)
        assert np.allclose(emb, -grads)  # SGD lr=1


class TestDump:
    def test_dump_returns_everything_sorted(self, ps):
        keys = keys_of([9, 3, 7])
        values = np.ones((3, 2), dtype=np.float32)
        ps.load_working_set(keys, values)
        k, v = ps.dump()
        assert k.tolist() == [3, 7, 9]
        assert v.shape == (3, 2)

    def test_clear(self, ps):
        ps.load_working_set(keys_of([1]), np.ones((1, 2), dtype=np.float32))
        ps.clear()
        k, _ = ps.dump()
        assert k.size == 0
