"""Unit + property tests for the open-addressing hash table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hbm.hash_table import HashTable


def keys_of(xs):
    return np.array(xs, dtype=np.uint64)


def vals_of(xs, dim=2):
    return np.array(xs, dtype=np.float32).reshape(-1, dim)


class TestConstruction:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            HashTable(0, 1)

    def test_invalid_value_dim(self):
        with pytest.raises(ValueError):
            HashTable(10, 0)

    def test_invalid_load_factor(self):
        with pytest.raises(ValueError):
            HashTable(10, 1, load_factor=1.5)

    def test_slots_overprovisioned(self):
        t = HashTable(100, 1, load_factor=0.5)
        assert t.n_slots >= 200


class TestInsertGet:
    def test_roundtrip(self):
        t = HashTable(10, 2)
        t.insert(keys_of([1, 2, 3]), vals_of([[1, 1], [2, 2], [3, 3]]))
        vals, found = t.get(keys_of([2, 3, 1]))
        assert found.all()
        assert vals.tolist() == [[2, 2], [3, 3], [1, 1]]

    def test_missing_keys(self):
        t = HashTable(10, 1)
        t.insert(keys_of([1]), vals_of([[5]], dim=1))
        vals, found = t.get(keys_of([1, 99]))
        assert found.tolist() == [True, False]
        assert vals[1, 0] == 0.0

    def test_overwrite(self):
        t = HashTable(10, 1)
        t.insert(keys_of([7]), vals_of([[1]], dim=1))
        t.insert(keys_of([7]), vals_of([[2]], dim=1))
        vals, _ = t.get(keys_of([7]))
        assert vals[0, 0] == 2.0
        assert t.size == 1

    def test_empty_insert_and_get(self):
        t = HashTable(10, 1)
        t.insert(keys_of([]), np.zeros((0, 1), dtype=np.float32))
        vals, found = t.get(keys_of([]))
        assert vals.shape == (0, 1)
        assert found.size == 0

    def test_duplicate_insert_rejected(self):
        t = HashTable(10, 1)
        with pytest.raises(ValueError, match="unique"):
            t.insert(keys_of([1, 1]), vals_of([[1], [2]], dim=1))

    def test_capacity_enforced(self):
        t = HashTable(4, 1)
        with pytest.raises(RuntimeError, match="capacity"):
            t.insert(keys_of(range(5)), vals_of([[i] for i in range(5)], dim=1))

    def test_capacity_failure_leaves_table_unchanged(self):
        """A rejected insert must not mutate the table (no partial writes)."""
        t = HashTable(4, 1)
        t.insert(keys_of([1, 2, 3]), vals_of([[1], [2], [3]], dim=1))
        with pytest.raises(RuntimeError, match="capacity"):
            # 2 resident overwrites + 2 new keys: 3 + 2 > 4 must fail
            # before the overwrites of keys 1 and 2 are applied.
            t.insert(keys_of([1, 2, 8, 9]), vals_of([[10], [20], [80], [90]], dim=1))
        assert t.size == 3
        vals, found = t.get(keys_of([1, 2, 3, 8, 9]))
        assert found.tolist() == [True, True, True, False, False]
        assert vals[:3, 0].tolist() == [1.0, 2.0, 3.0]

    def test_capacity_counts_only_new_keys(self):
        """Overwrites of resident keys never count against capacity."""
        t = HashTable(3, 1)
        t.insert(keys_of([1, 2, 3]), vals_of([[1], [2], [3]], dim=1))
        t.insert(keys_of([1, 2, 3]), vals_of([[10], [20], [30]], dim=1))
        vals, _ = t.get(keys_of([1, 2, 3]))
        assert vals[:, 0].tolist() == [10.0, 20.0, 30.0]

    def test_fill_to_exact_capacity(self):
        t = HashTable(8, 1)
        t.insert(keys_of(range(8)), vals_of([[i] for i in range(8)], dim=1))
        assert t.size == 8
        _, found = t.get(keys_of(range(8)))
        assert found.all()

    def test_shape_mismatch(self):
        t = HashTable(4, 2)
        with pytest.raises(ValueError):
            t.insert(keys_of([1]), np.zeros((1, 3), dtype=np.float32))


class TestAccumulate:
    def test_sums_duplicates(self):
        t = HashTable(10, 1)
        t.insert(keys_of([1]), vals_of([[10]], dim=1))
        t.accumulate(keys_of([1, 1, 1]), vals_of([[1], [2], [3]], dim=1))
        vals, _ = t.get(keys_of([1]))
        assert vals[0, 0] == 16.0

    def test_absent_key_raises(self):
        t = HashTable(10, 1)
        with pytest.raises(KeyError):
            t.accumulate(keys_of([5]), vals_of([[1]], dim=1))

    def test_upsert_inserts_missing(self):
        t = HashTable(10, 1)
        t.insert(keys_of([1]), vals_of([[10]], dim=1))
        t.accumulate(keys_of([1, 2, 2]), vals_of([[1], [5], [5]], dim=1), upsert=True)
        vals, found = t.get(keys_of([1, 2]))
        assert found.all()
        assert vals[:, 0].tolist() == [11.0, 10.0]

    def test_empty_accumulate(self):
        t = HashTable(10, 1)
        t.accumulate(keys_of([]), np.zeros((0, 1), dtype=np.float32))


class TestTransform:
    def test_applies_function(self):
        t = HashTable(10, 1)
        t.insert(keys_of([1, 2]), vals_of([[1], [2]], dim=1))
        t.transform(keys_of([1, 2]), lambda v: v * 10)
        vals, _ = t.get(keys_of([1, 2]))
        assert vals[:, 0].tolist() == [10.0, 20.0]

    def test_absent_key_raises(self):
        t = HashTable(10, 1)
        with pytest.raises(KeyError):
            t.transform(keys_of([9]), lambda v: v)

    def test_duplicate_keys_rejected(self):
        """Duplicates would silently last-write-win; they must raise."""
        t = HashTable(10, 1)
        t.insert(keys_of([1, 2]), vals_of([[1], [2]], dim=1))
        with pytest.raises(ValueError, match="unique"):
            t.transform(keys_of([1, 1, 2]), lambda v: v + 1)
        vals, _ = t.get(keys_of([1, 2]))
        assert vals[:, 0].tolist() == [1.0, 2.0]


class TestItemsClear:
    def test_items_sorted(self):
        t = HashTable(10, 1)
        t.insert(keys_of([5, 1, 9]), vals_of([[5], [1], [9]], dim=1))
        k, v = t.items()
        assert k.tolist() == [1, 5, 9]
        assert v[:, 0].tolist() == [1.0, 5.0, 9.0]

    def test_clear(self):
        t = HashTable(10, 1)
        t.insert(keys_of([1]), vals_of([[1]], dim=1))
        t.clear()
        assert t.size == 0
        assert len(t) == 0
        assert 1 not in t

    def test_contains_dunder(self):
        t = HashTable(10, 1)
        t.insert(keys_of([3]), vals_of([[1]], dim=1))
        assert 3 in t
        assert 4 not in t


class TestCollisionStress:
    def test_dense_fill_with_adversarial_keys(self):
        """Keys spaced by the slot count maximize base-slot collisions."""
        t = HashTable(256, 1, load_factor=0.9)
        n = 250
        ks = keys_of([i * t.n_slots for i in range(n)])
        t.insert(ks, vals_of([[i] for i in range(n)], dim=1))
        vals, found = t.get(ks)
        assert found.all()
        assert np.array_equal(vals[:, 0], np.arange(n, dtype=np.float32))


@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=2**60),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=40, deadline=None)
def test_table_behaves_like_dict(mapping):
    t = HashTable(len(mapping), 1)
    ks = keys_of(list(mapping))
    vs = np.array([[v] for v in mapping.values()], dtype=np.float32)
    t.insert(ks, vs)
    got, found = t.get(ks)
    assert found.all()
    assert np.array_equal(got, vs)
    k2, v2 = t.items()
    assert set(k2.tolist()) == set(mapping)


@given(
    st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300),
)
@settings(max_examples=40, deadline=None)
def test_accumulate_matches_counter(key_stream):
    """Accumulating 1.0 per key occurrence == frequency counting."""
    from collections import Counter

    t = HashTable(501, 1)
    ks = keys_of(key_stream)
    ones = np.ones((len(key_stream), 1), dtype=np.float32)
    t.accumulate(ks, ones, upsert=True)
    counts = Counter(key_stream)
    got, found = t.get(keys_of(list(counts)))
    assert found.all()
    assert got[:, 0].tolist() == [float(counts[k]) for k in counts]
