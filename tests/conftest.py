"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ClusterConfig, ModelSpec


@pytest.fixture
def tiny_spec() -> ModelSpec:
    return ModelSpec(
        name="tiny",
        nonzeros_per_example=8,
        n_sparse=5_000,
        n_dense=1_000,
        size_gb=0.001,
        mpi_nodes=10,
        embedding_dim=4,
        hidden_layers=(16, 8),
        n_slots=4,
    )


@pytest.fixture
def small_config() -> ClusterConfig:
    return ClusterConfig(
        n_nodes=2,
        gpus_per_node=2,
        minibatches_per_gpu=2,
        mem_capacity_params=4_000,
        hbm_capacity_params=50_000,
        ssd_file_capacity=128,
        seed=7,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
