"""Cache behaviour under memory pressure (paper Section 5, Appendix D).

The working set of an in-flight batch is pinned and must survive any
eviction storm; everything evicted on the way down (LRU→LFU demotion,
LFU→SSD flush, promotion-induced flushes) must reach the SSD-PS with its
latest value — losslessness is the Fig. 3(b) contract.
"""

import numpy as np

from repro.mem.cache import CombinedCache
from repro.mem.mem_ps import MemPS
from repro.nn.optim import SparseSGD
from repro.ssd.ssd_ps import SSDPS


def keys_of(xs):
    return np.array(xs, dtype=np.uint64)


def make_mem(cache=32, seed=0):
    opt = SparseSGD(2, lr=1.0)
    ssd = SSDPS(opt.value_dim, file_capacity=8)
    return MemPS(0, 1, opt, ssd, cache_capacity=cache, seed=seed)


class TestPinnedUnderPressure:
    def test_pinned_working_set_survives_overflow_storm(self):
        """A pinned batch outlives an insert stream 10x the cache."""
        cache = CombinedCache(40, lru_fraction=0.5, value_dim=1)
        working = np.arange(10, dtype=np.uint64)
        wvals = np.arange(10, dtype=np.float32).reshape(-1, 1)
        cache.put_batch(working, wvals, pin=True)
        for start in range(100, 500, 40):
            keys = np.arange(start, start + 40, dtype=np.uint64)
            cache.put_batch(keys, np.zeros((40, 1), np.float32))
        vals, hit = cache.get_batch(working)
        assert hit.all()
        assert np.array_equal(vals, wvals)
        assert len(cache) <= cache.capacity
        cache.unpin_batch(working)

    def test_pinned_keys_skipped_in_eviction_order(self):
        cache = CombinedCache(8, lru_fraction=0.5, value_dim=1)
        cache.put(0, np.array([0.0], np.float32), pin=True)  # oldest, pinned
        for k in range(1, 10):
            cache.put(k, np.array([float(k)], np.float32))
        assert cache.contains(0)  # despite being least recent
        cache.unpin_batch(keys_of([0]))

    def test_mem_ps_pins_remote_serves_until_end_batch(self):
        m = make_mem(cache=64)
        keys = keys_of(range(16))
        m.prepare(keys)
        assert m.cache.lru.pinned_count() == 16
        # Overflow pressure while the batch is in flight.
        m.apply_gradients(
            keys_of(range(100, 120)), np.zeros((20, 2), np.float64)
        )
        _, hit = m.cache.get_batch(keys)
        assert hit.all()
        m.absorb_updates(keys, np.ones((16, 2), np.float32))
        m.end_batch()
        assert m.cache.lru.pinned_count() == 0


class TestLosslessnessUnderChurn:
    def test_promotion_flush_plumbing_is_drained_to_ssd(self):
        """Values parked by get-promotion flushes reach the SSD-PS on the
        next fetch (``take_pending_flush`` drain path in fetch_local)."""
        m = make_mem(cache=16)
        cache = m.cache
        # Simulate a promotion flush: park a trained value in the pending
        # buffer exactly as CombinedCache.get would.
        parked_key = 999
        parked_val = np.full(2, 7.5, dtype=np.float32)
        cache._pending_flush.append((parked_key, parked_val))
        m.fetch_local(keys_of([1, 2]), pin=False)
        result, _ = m.ssd_ps.load(keys_of([parked_key]))
        assert result.found[0]
        assert np.array_equal(result.values[0], parked_val)

    def test_lfu_to_lru_promotion_keeps_updated_values(self):
        """A value updated, demoted to the LFU, promoted back, and evicted
        again is never lost — it always reads back with its last value."""
        m = make_mem(cache=16)
        first = keys_of(range(4))
        m.prepare(first)
        m.absorb_updates(first, np.full((4, 2), 3.0, np.float32))
        m.end_batch()
        # Demote `first` out of the LRU tier with fresh traffic.
        for start in range(10, 40, 6):
            ks = keys_of(range(start, start + 6))
            m.prepare(ks)
            m.absorb_updates(ks, np.ones((6, 2), np.float32))
            m.end_batch()
        # Promote them back (cache or SSD, either way: value preserved)...
        vals, _, _, _, _ = m.fetch_local(first, pin=False)
        assert np.all(vals == 3.0)
        # ...then thrash again and re-check via the SSD path.
        for start in range(100, 200, 8):
            ks = keys_of(range(start, start + 8))
            m.prepare(ks)
            m.absorb_updates(ks, np.ones((8, 2), np.float32))
            m.end_batch()
        vals, _, _, _, _ = m.fetch_local(first, pin=False)
        assert np.all(vals == 3.0)

    def test_every_put_batch_flush_is_recoverable(self):
        """Whatever put_batch reports as flushed, plus what stays
        resident, accounts for every key ever written (nothing silently
        dropped under pressure)."""
        cache = CombinedCache(30, lru_fraction=0.5, value_dim=1)
        persisted: dict[int, float] = {}
        rng = np.random.default_rng(0)
        written: dict[int, float] = {}
        for round_ in range(40):
            keys = rng.choice(500, size=20, replace=False).astype(np.uint64)
            vals = rng.normal(size=(20, 1)).astype(np.float32)
            for k, v in zip(keys.tolist(), vals[:, 0].tolist()):
                written[k] = v
            fk, fv = cache.put_batch(keys, vals)
            for k, v in zip(fk.tolist(), fv[:, 0].tolist()):
                persisted[k] = v
        ik, iv = cache.items()
        current = dict(persisted)
        current.update(zip(ik.tolist(), iv[:, 0].tolist()))
        for k, v in written.items():
            assert k in current
            # Resident entries must hold the latest write exactly.
            if k in ik.tolist():
                assert current[k] == v
