"""Randomized collision-interleaving stress for the admission engine.

The bulk-exact admission plan must be *sequential-equivalent* under the
nastiest interleavings: cache capacity far below the batch size,
duplicate keys inside one batch, pinned rows blocking the eviction
frontier, and promotion/demotion storms.  Every trial drives the slab
caches and the seed per-key reference (``repro.store.reference``) with
an identical operation stream and asserts bit-identical contents,
eviction order, flush pairs, and statistics.

A third cache running with ``force_scalar=True`` (the in-tree per-key
replay kept as the parity oracle) is spot-checked against the bulk
engine on a subset of trials, pinning down that the oracle flag and the
admission plan agree too.
"""

import numpy as np
import pytest

from repro.mem.cache import CombinedCache, LFUCache, LRUCache
from repro.store.reference import DictCombinedCache

N_TRIALS = 220


def _flush_equal(a, b, ctx=""):
    assert np.array_equal(a[0], b[0]), f"{ctx}: flush keys diverge"
    assert np.array_equal(a[1], b[1]), f"{ctx}: flush values diverge"


def _items_equal(a, b, ctx=""):
    ka, va = a.items()
    kb, vb = b.items()
    assert np.array_equal(ka, kb), f"{ctx}: resident keys diverge"
    assert np.array_equal(va, vb), f"{ctx}: resident values diverge"


def _trial_ops(
    rng: np.random.Generator, key_space: int, batch_hi: int, lru_cap: int
):
    """One trial's operation stream: heavy pressure, duplicates, pins."""
    ops = []
    pinned: set[int] = set()
    pin_budget = max(1, lru_cap // 2)
    for _ in range(int(rng.integers(6, 14))):
        kind = rng.choice(
            ["get_batch", "put_batch", "pin_put", "unpin", "settle"],
            p=[0.3, 0.35, 0.15, 0.12, 0.08],
        )
        n = int(rng.integers(1, batch_hi))
        # ~30% of batches carry duplicate keys (sampled with replacement).
        replace = bool(rng.random() < 0.3) or n > key_space
        keys = rng.choice(key_space, size=n, replace=replace).astype(np.uint64)
        if kind == "get_batch":
            ops.append(("get_batch", keys))
        elif kind in ("put_batch", "pin_put"):
            pin = kind == "pin_put"
            if pin:
                # Pinned working sets must fit the LRU tier (the paper's
                # Section 5 contract) and be duplicate-free like a real
                # working set; budget them like the MEM-PS does.
                room = pin_budget - len(pinned)
                keys = np.unique(keys)[: max(0, room)]
                if keys.size == 0:
                    continue
                pinned.update(keys.tolist())
            vals = rng.normal(size=(keys.size, 2)).astype(np.float32)
            ops.append(("put_batch", (keys, vals, pin)))
        elif kind == "unpin":
            ops.append(("unpin", np.array(sorted(pinned), dtype=np.uint64)))
            pinned.clear()
        else:
            ops.append(("settle", None))
    ops.append(("unpin", np.array(sorted(pinned), dtype=np.uint64)))
    ops.append(("settle", None))
    return ops


def _drive(cache, ops):
    """Replay ``ops``; returns the trial's observable output trace."""
    trace = []
    for op, payload in ops:
        if op == "get_batch":
            values, hit = cache.get_batch(payload)
            trace.append((values.copy(), hit.copy()))
            trace.append(cache.take_pending_flush())
        elif op == "put_batch":
            keys, vals, pin = payload
            trace.append(cache.put_batch(keys, vals, pin=pin))
        elif op == "unpin":
            cache.unpin_batch(payload)
        else:
            trace.append(cache.settle_overflow())
    return trace


def _assert_traces_equal(ta, tb, seed):
    assert len(ta) == len(tb)
    for i, (a, b) in enumerate(zip(ta, tb)):
        ctx = f"seed {seed}, output {i}"
        assert np.array_equal(a[0], b[0]), ctx
        assert np.array_equal(a[1], b[1]), ctx


@pytest.mark.parametrize("trial", range(N_TRIALS))
def test_admission_matches_per_key_reference(trial):
    """capacity ≪ batch, duplicates, pins: bit-identical to the seed."""
    rng = np.random.default_rng(1000 + trial)
    capacity = int(rng.integers(8, 40))
    lru_fraction = float(rng.uniform(0.3, 0.7))
    key_space = int(rng.integers(capacity, capacity * 6))
    batch_hi = max(3, capacity * 2)
    new = CombinedCache(capacity, lru_fraction=lru_fraction, value_dim=2)
    old = DictCombinedCache(capacity, lru_fraction=lru_fraction, value_dim=2)
    ops = _trial_ops(rng, key_space, batch_hi, new.lru.capacity)
    ref_trace = _drive(old, ops)
    _assert_traces_equal(_drive(new, ops), ref_trace, 1000 + trial)
    _items_equal(new, old, f"trial {trial}")
    assert len(new) == len(old)
    assert new.stats.hits == old.stats.hits
    assert new.stats.misses == old.stats.misses
    # The whole-batch per-key replay is dead: only bulk runs and
    # single-key collision splits may have executed.
    assert new.stats.scalar_fallbacks == 0
    if trial % 10 == 0:
        # Spot-check the env-flag oracle path against the bulk engine:
        # export_state pins down eviction *order*, not just contents.
        oracle = CombinedCache(capacity, lru_fraction=lru_fraction, value_dim=2)
        oracle.force_scalar = True
        _assert_traces_equal(_drive(oracle, ops), ref_trace, trial)
        assert oracle.stats.scalar_fallbacks > 0
        state_a, state_b = new.export_state(), oracle.export_state()
        for field in state_a:
            assert np.array_equal(state_a[field], state_b[field]), field
        # ...and the "legacy" plan-or-replay emulation (the pre-refactor
        # pressure baseline the e2e ledger measures against).
        legacy = CombinedCache(capacity, lru_fraction=lru_fraction, value_dim=2)
        legacy.force_scalar = "legacy"
        _assert_traces_equal(_drive(legacy, ops), ref_trace, trial)


@pytest.mark.parametrize("seed", range(40))
def test_standalone_tiers_match_scalar_replay(seed):
    """LRU and LFU batch admission vs their own per-key loops."""
    rng = np.random.default_rng(2000 + seed)
    capacity = int(rng.integers(4, 24))
    key_space = capacity * 4

    bulk_lru = LRUCache(capacity, value_dim=2)
    ref_lru = LRUCache(capacity, value_dim=2)
    ref_lru.force_scalar = True
    bulk_lfu = LFUCache(capacity, value_dim=2)
    ref_lfu = LFUCache(capacity, value_dim=2)
    ref_lfu.force_scalar = True
    for _ in range(8):
        n = int(rng.integers(1, capacity * 2))
        keys = rng.integers(0, key_space, size=n).astype(np.uint64)
        vals = rng.normal(size=(n, 2)).astype(np.float32)
        if rng.random() < 0.25 and bulk_lru.size:
            pin_key = rng.choice(np.asarray(bulk_lru.keys()))
            bulk_lru.pin_batch(np.array([pin_key], dtype=np.uint64))
            ref_lru.pin_batch(np.array([pin_key], dtype=np.uint64))
        _flush_equal(
            bulk_lru.put_batch(keys, vals), ref_lru.put_batch(keys, vals)
        )
        _flush_equal(
            bulk_lfu.put_batch(keys, vals), ref_lfu.put_batch(keys, vals)
        )
        probe = rng.integers(0, key_space, size=n).astype(np.uint64)
        va, ha = bulk_lfu.get_batch(probe)
        vb, hb = ref_lfu.get_batch(probe)
        assert np.array_equal(ha, hb) and np.array_equal(va, vb)
        bulk_lru.unpin_batch(keys)
        ref_lru.unpin_batch(keys)
    assert bulk_lru.keys() == ref_lru.keys()  # full recency order
    assert bulk_lfu.keys() == ref_lfu.keys()
    assert bulk_lru.scalar_fallbacks == 0
    assert bulk_lfu.scalar_fallbacks == 0
    assert ref_lru.scalar_fallbacks > 0


def test_collision_splits_are_exercised():
    """The pressure construction actually hits the collision path — a
    promotion storm over a full LRU whose oldest residents are re-read."""
    cache = CombinedCache(12, lru_fraction=0.5, value_dim=1)
    warm = np.arange(12, dtype=np.uint64)
    cache.put_batch(warm, np.zeros((12, 1), np.float32))
    # keys 0..5 are now LFU residents; 6..11 fill the LRU.  Reading the
    # oldest LRU keys interleaved with LFU promotions forces residents
    # into the eviction frontier.
    probe = np.array([6, 0, 7, 1, 8, 2], dtype=np.uint64)
    _, hit = cache.get_batch(probe)
    assert hit.all()
    assert cache.stats.admission_runs + cache.stats.collision_splits > 1
    assert cache.stats.scalar_fallbacks == 0
