"""Tests for the MEM-PS (Section 5)."""

import numpy as np
import pytest

from repro.hardware.network import Network
from repro.hardware.specs import NetworkSpec
from repro.mem.mem_ps import MemPS
from repro.nn.optim import SparseSGD
from repro.ssd.ssd_ps import SSDPS


def keys_of(xs):
    return np.array(xs, dtype=np.uint64)


def make_mem(node_id=0, n_nodes=1, cache=64, seed=0):
    opt = SparseSGD(2, lr=1.0)
    ssd = SSDPS(opt.value_dim, file_capacity=8)
    return MemPS(
        node_id,
        n_nodes,
        opt,
        ssd,
        cache_capacity=cache,
        network=Network(NetworkSpec()),
        seed=seed,
    )


def make_pair(cache=64):
    a = make_mem(0, 2, cache)
    b = make_mem(1, 2, cache)
    opt = a.optimizer
    b.optimizer = opt
    peers = [a, b]
    a.peers = peers
    b.peers = peers
    return a, b


class TestOwnership:
    def test_partition_is_total(self):
        a, b = make_pair()
        keys = keys_of(range(100))
        assert np.array_equal(a.owner_of(keys), b.owner_of(keys))
        assert np.all((a.owner_of(keys) == 0) | (a.owner_of(keys) == 1))

    def test_single_node_owns_all(self):
        m = make_mem()
        assert m.owns(keys_of(range(50))).all()


class TestPrepare:
    def test_fresh_keys_initialized_deterministically(self):
        m = make_mem()
        keys = keys_of([1, 2, 3])
        vals, stats = m.prepare(keys)
        expected = m.optimizer.init_for_keys(keys, seed=0)
        assert np.array_equal(vals, expected)
        assert stats.n_fresh == 3
        m.end_batch()

    def test_second_visit_hits_cache(self):
        m = make_mem()
        keys = keys_of([1, 2, 3])
        m.prepare(keys)
        m.absorb_updates(keys, np.ones((3, 2), dtype=np.float32))
        m.end_batch()
        _, stats = m.prepare(keys)
        assert stats.n_cache_hits == 3
        assert stats.n_fresh == 0

    def test_duplicate_working_keys_rejected(self):
        m = make_mem()
        with pytest.raises(ValueError, match="unique"):
            m.prepare(keys_of([1, 1]))

    def test_remote_keys_pulled_from_peer(self):
        a, b = make_pair()
        keys = keys_of(range(40))
        vals, stats = a.prepare(keys)
        assert stats.n_local + stats.n_remote == 40
        assert stats.n_remote > 0
        # All values match the deterministic per-key init regardless of owner.
        assert np.array_equal(vals, a.optimizer.init_for_keys(keys, seed=0))
        a.end_batch()
        b.end_batch()

    def test_remote_pull_charges_network(self):
        a, b = make_pair()
        before = a.network.bytes_sent
        a.prepare(keys_of(range(40)))
        assert a.network.bytes_sent > before

    def test_prepare_stats_seconds_parallel(self):
        a, b = make_pair()
        _, stats = a.prepare(keys_of(range(40)))
        assert stats.seconds == max(stats.local_seconds, stats.remote_seconds)


class TestUpdates:
    def test_absorb_keeps_only_owned(self):
        a, b = make_pair()
        keys = keys_of(range(20))
        a.prepare(keys)
        new_vals = np.full((20, 2), 7.0, dtype=np.float32)
        a.absorb_updates(keys, new_vals)
        a.end_batch()
        b.end_batch()
        own = keys[a.owns(keys)]
        vals, _, hits, _, _ = a.fetch_local(own, pin=False)
        assert np.all(vals == 7.0)

    def test_apply_gradients_owner_path(self):
        m = make_mem()
        keys = keys_of([5])
        vals, _ = m.prepare(keys)
        m.end_batch()
        m.apply_gradients(keys, np.ones((1, 2), dtype=np.float64))
        got, _, _, _, _ = m.fetch_local(keys, pin=False)
        assert np.allclose(got, vals - 1.0)  # SGD lr=1

    def test_apply_gradients_ignores_unowned(self):
        a, b = make_pair()
        keys = keys_of(range(10))
        unowned = keys[~a.owns(keys)]
        t = a.apply_gradients(unowned, np.ones((unowned.size, 2)))
        assert t == 0.0


class TestEviction:
    def test_cache_overflow_flushes_to_ssd(self):
        m = make_mem(cache=16)
        for start in range(0, 80, 8):
            keys = keys_of(range(start, start + 8))
            m.prepare(keys)
            m.absorb_updates(keys, np.ones((8, 2), dtype=np.float32))
            m.end_batch()
        assert m.ssd_ps.n_live_params > 0

    def test_evicted_values_recoverable(self):
        m = make_mem(cache=16)
        first = keys_of(range(8))
        m.prepare(first)
        m.absorb_updates(first, np.full((8, 2), 3.0, dtype=np.float32))
        m.end_batch()
        for start in range(8, 64, 8):
            keys = keys_of(range(start, start + 8))
            m.prepare(keys)
            m.absorb_updates(keys, np.ones((8, 2), dtype=np.float32))
            m.end_batch()
        vals, _, _, _, _ = m.fetch_local(first, pin=False)
        assert np.all(vals == 3.0)

    def test_served_pins_released_at_end_batch(self):
        a, b = make_pair(cache=128)
        keys = keys_of(range(30))
        a.prepare(keys)
        # b pinned served keys; before end_batch they are pinned.
        assert b.cache.lru.pinned_count() > 0
        a.end_batch()
        b.end_batch()
        assert b.cache.lru.pinned_count() == 0

    def test_flush_to_ssd_drains_cache(self):
        m = make_mem()
        m.prepare(keys_of(range(10)))
        m.end_batch()
        m.cache.unpin_batch(keys_of(range(10)))
        m.flush_to_ssd()
        assert len(m.cache) == 0
        assert m.ssd_ps.n_live_params == 10


class TestValidation:
    def test_node_id_range(self):
        with pytest.raises(ValueError):
            make_mem(node_id=3, n_nodes=2)

    def test_serve_remote_rejects_unowned(self):
        a, b = make_pair()
        keys = keys_of(range(10))
        owned_by_b = keys[~a.owns(keys)]
        with pytest.raises(ValueError):
            a.serve_remote(owned_by_b)
