"""LFU mixed-run admission under eviction pressure.

The PR-5 planner cut any run where a resident overwrite collided with an
eviction storm, because the static pool of ``_greedy_evictions`` cannot
see mid-run frequency bumps.  The mixed-run extension models each bump
as an arrival at its post-bump priority, so prefetch-shaped traces —
re-dumping hot resident keys interleaved with a miss storm of fresh keys
— stay collision-free.  Exactness is checked against the scalar oracle.
"""

import numpy as np
import pytest

from repro.mem.cache import LFUCache


def keys_of(xs):
    return np.array(xs, dtype=np.uint64)


def vals_for(keys, dim=2, salt=0.0):
    out = np.repeat(
        np.asarray(keys, dtype=np.float32)[:, None] + salt, dim, axis=1
    )
    return out


def pair(capacity, dim=2):
    fast = LFUCache(capacity, value_dim=dim)
    oracle = LFUCache(capacity, value_dim=dim)
    fast.force_scalar = False
    oracle.force_scalar = True
    return fast, oracle


def assert_same_state(fast: LFUCache, oracle: LFUCache):
    # keys() is tick-ordered, so this also compares recency structure.
    assert fast.keys() == oracle.keys()
    for k in oracle.keys():
        assert fast.frequency(k) == oracle.frequency(k), k


def put_both(fast, oracle, keys, vals, **kw):
    fk, fv = fast.put_batch(keys, vals, **kw)
    ok, ov = oracle.put_batch(keys, vals, **kw)
    assert np.array_equal(fk, ok)
    assert np.array_equal(fv, ov)
    assert_same_state(fast, oracle)


class TestMixedRunExtension:
    def test_prefetch_shaped_trace_stays_collision_free(self):
        """Hot residents re-dumped inside a miss storm: zero cuts."""
        fast, oracle = pair(32)
        base = keys_of(range(32))
        put_both(fast, oracle, base, vals_for(base))
        hot = keys_of(range(8))
        for _ in range(3):  # make the residents clearly hot
            fast.get_batch(hot)
            oracle.get_batch(hot)
        # The prefetch shape: predicted-miss pulls (fresh keys, eviction
        # storm) interleaved with re-dumps of hot resident keys.
        trace = np.empty(24, dtype=np.uint64)
        trace[0::3] = hot
        trace[1::3] = keys_of(range(100, 108))
        trace[2::3] = keys_of(range(200, 208))
        runs_before = fast.admission_runs
        put_both(fast, oracle, trace, vals_for(trace, salt=0.5))
        assert fast.collision_splits == 0
        assert fast.scalar_fallbacks == 0
        # The whole trace went through as one admission run.
        assert fast.admission_runs == runs_before + 1

    def test_bumped_resident_evicted_later_flushes_new_value(self):
        """A resident overwritten early can still be evicted later in
        the same run; the flush must carry the batch's new value."""
        fast, oracle = pair(4)
        base = keys_of([0, 1, 2, 3])
        put_both(fast, oracle, base, vals_for(base))
        # Key 0 is overwritten (freq→2) then 5 fresh keys storm the
        # 4-slot cache: sequential order evicts 1,2,3 (freq 1), then the
        # freq-2 items — including bumped key 0 with its NEW value.
        trace = keys_of([0, 10, 11, 12, 13, 14])
        put_both(fast, oracle, trace, vals_for(trace, salt=9.0))

    def test_unsafe_run_still_cut_exactly(self):
        """When every pool candidate is at least as hot as a resident
        that an earlier arrival's eviction could reach, pre-bump safety
        fails and the planner falls back to cutting — exactness over
        speed."""
        fast, oracle = pair(4)
        base = keys_of([0, 1, 2, 3])
        put_both(fast, oracle, base, vals_for(base))
        for c in (fast, oracle):  # heat everything except key 0
            c.get_batch(keys_of([1, 2, 3]))
        # Arrival 10 triggers an eviction whose only victim candidate
        # cheaper than resident 0 is... nothing — key 0 IS the cache
        # minimum, so its overwrite at position 1 is not pre-bump safe.
        runs_before = fast.admission_runs
        trace = keys_of([10, 0, 11, 12, 13])
        put_both(fast, oracle, trace, vals_for(trace, salt=3.0))
        # The run was cut (two admission runs), never degraded to the
        # per-key replay.
        assert fast.admission_runs == runs_before + 2
        assert fast.scalar_fallbacks == 0

    @pytest.mark.parametrize("seed", range(12))
    def test_randomized_oracle_parity(self, seed):
        """Random mixed traces: flush pairs, tick order, and frequencies
        match the scalar replay bit-for-bit at every step."""
        rng = np.random.default_rng(seed)
        capacity = int(rng.integers(4, 24))
        fast, oracle = pair(capacity)
        universe = np.arange(3 * capacity, dtype=np.uint64)
        for _ in range(10):
            n = int(rng.integers(1, 2 * capacity))
            batch = rng.choice(universe, size=n, replace=True)
            if rng.random() < 0.4:  # sometimes heat a few residents
                resident = keys_of(fast.keys()[: capacity // 2])
                if resident.size:
                    fast.get_batch(resident)
                    oracle.get_batch(resident)
            put_both(
                fast,
                oracle,
                batch,
                vals_for(batch, salt=float(rng.integers(0, 100))),
                freq=int(rng.integers(1, 4)),
            )

    def test_mixed_runs_count_as_single_admission_run(self):
        fast, _ = pair(8)
        fast.put_batch(keys_of(range(8)), vals_for(keys_of(range(8))))
        runs_before = fast.admission_runs
        trace = keys_of([0, 1, 20, 21, 22, 23, 24, 25, 26, 27])
        fast.put_batch(trace, vals_for(trace, salt=1.0))
        assert fast.admission_runs == runs_before + 1
        assert fast.collision_splits == 0
