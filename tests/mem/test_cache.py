"""Tests for LRU / LFU / combined caches (Appendix D)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cache import CombinedCache, LFUCache, LRUCache


def v(x):
    return np.array([float(x)], dtype=np.float32)


class TestLRU:
    def test_evicts_least_recent(self):
        c = LRUCache(2)
        c.put(1, v(1))
        c.put(2, v(2))
        evicted = c.put(3, v(3))
        assert [k for k, _ in evicted] == [1]

    def test_get_refreshes_recency(self):
        c = LRUCache(2)
        c.put(1, v(1))
        c.put(2, v(2))
        c.get(1)
        evicted = c.put(3, v(3))
        assert [k for k, _ in evicted] == [2]

    def test_peek_does_not_refresh(self):
        c = LRUCache(2)
        c.put(1, v(1))
        c.put(2, v(2))
        c.peek(1)
        evicted = c.put(3, v(3))
        assert [k for k, _ in evicted] == [1]

    def test_pinned_never_evicted(self):
        c = LRUCache(2)
        c.put(1, v(1), pin=True)
        c.put(2, v(2))
        evicted = c.put(3, v(3))
        assert [k for k, _ in evicted] == [2]
        assert 1 in c

    def test_unpin_releases(self):
        c = LRUCache(1)
        c.put(1, v(1), pin=True)
        c.unpin(1)
        evicted = c.put(2, v(2))
        assert [k for k, _ in evicted] == [1]

    def test_all_pinned_over_capacity_raises(self):
        c = LRUCache(1)
        c.put(1, v(1), pin=True)
        with pytest.raises(RuntimeError, match="pinned"):
            c.put(2, v(2), pin=True)

    def test_pin_absent_raises(self):
        with pytest.raises(KeyError):
            LRUCache(1).pin(5)

    def test_overwrite_keeps_size(self):
        c = LRUCache(2)
        c.put(1, v(1))
        c.put(1, v(10))
        assert len(c) == 1
        assert c.get(1)[0] == 10.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)


class TestLFU:
    def test_evicts_least_frequent(self):
        c = LFUCache(2)
        c.put(1, v(1))
        c.put(2, v(2))
        c.get(1)
        c.get(1)
        evicted = c.put(3, v(3))
        assert [k for k, _ in evicted] == [2]

    def test_tie_breaks_oldest(self):
        c = LFUCache(2)
        c.put(1, v(1))
        c.put(2, v(2))
        evicted = c.put(3, v(3))  # both freq 1; 1 is older
        assert [k for k, _ in evicted] == [1]

    def test_frequency_tracked(self):
        c = LFUCache(4)
        c.put(1, v(1))
        c.get(1)
        c.get(1)
        assert c.frequency(1) == 3
        assert c.frequency(99) == 0

    def test_pop_removes(self):
        c = LFUCache(2)
        c.put(1, v(1))
        out = c.pop(1)
        assert out[0] == 1.0
        assert 1 not in c
        assert c.pop(1) is None

    def test_pop_then_put_consistent(self):
        c = LFUCache(2)
        c.put(1, v(1))
        c.put(2, v(2))
        c.pop(1)
        c.put(3, v(3))
        c.put(4, v(4))  # must evict 2 or 3, not crash
        assert len(c) == 2

    def test_overwrite_bumps_frequency(self):
        c = LFUCache(2)
        c.put(1, v(1))
        c.put(1, v(2))
        assert c.frequency(1) == 2
        assert c.get(1)[0] == 2.0


class TestCombined:
    def test_paper_flow_lru_to_lfu_to_flush(self):
        """Appendix D: visited -> LRU; LRU evict -> LFU; LFU evict -> SSD."""
        c = CombinedCache(4, lru_fraction=0.5, value_dim=1)  # 2 LRU + 2 LFU
        flush = []
        for k in range(6):
            flush += c.put(k, v(k))
        # 6 inserts through 2+2 capacity: exactly 2 must have flushed out.
        assert len(flush) == 2
        assert len(c) == 4

    def test_lfu_hit_promotes_to_lru(self):
        c = CombinedCache(4, lru_fraction=0.5, value_dim=1)
        for k in range(4):
            c.put(k, v(k))
        # keys 0,1 demoted to LFU by now
        assert 0 in c.lfu
        got = c.get(0)
        assert got[0] == 0.0
        assert 0 in c.lru

    def test_stats_track_hits_and_misses(self):
        c = CombinedCache(4, value_dim=1)
        c.put(1, v(1))
        c.get(1)
        c.get(99)
        assert c.stats.hits == 1
        assert c.stats.misses == 1
        assert c.stats.hit_rate == 0.5

    def test_get_batch_zero_fills_misses(self):
        c = CombinedCache(4, value_dim=1)
        c.put(2, v(5))
        vals, hit = c.get_batch(np.array([2, 3], dtype=np.uint64))
        assert hit.tolist() == [True, False]
        assert vals[0, 0] == 5.0
        assert vals[1, 0] == 0.0

    def test_put_batch_returns_flushes(self):
        c = CombinedCache(4, lru_fraction=0.5, value_dim=1)
        keys = np.arange(10, dtype=np.uint64)
        vals = np.arange(10, dtype=np.float32).reshape(-1, 1)
        fk, fv = c.put_batch(keys, vals)
        assert fk.size == 6  # 10 in, 4 retained
        assert fv.shape == (6, 1)

    def test_pinned_working_set_protected_in_batch(self):
        c = CombinedCache(6, lru_fraction=0.5, value_dim=1)
        keys = np.arange(3, dtype=np.uint64)
        vals = np.zeros((3, 1), dtype=np.float32)
        c.put_batch(keys, vals, pin=True)
        c.put_batch(np.arange(10, 16, dtype=np.uint64), np.zeros((6, 1), np.float32))
        _, hit = c.get_batch(keys)
        assert hit.all()
        c.unpin_batch(keys)

    def test_update_if_present(self):
        c = CombinedCache(4, value_dim=1)
        c.put(1, v(1))
        assert c.update_if_present(1, v(9))
        assert not c.update_if_present(42, v(0))
        assert c.lru.peek(1)[0] == 9.0

    def test_flush_all_drains(self):
        c = CombinedCache(4, value_dim=1)
        c.put(1, v(1))
        c.put(2, v(2))
        fk, fv = c.flush_all()
        assert set(fk.tolist()) == {1, 2}
        assert len(c) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CombinedCache(1)
        with pytest.raises(ValueError):
            CombinedCache(10, lru_fraction=0.0)


class TestCombinedKeepsHotKeys:
    def test_hot_keys_survive_scan(self):
        """The LFU tier retains frequently used keys through a one-off
        scan of cold keys — the paper's rationale for LRU+LFU."""
        c = CombinedCache(20, lru_fraction=0.5, value_dim=1)
        hot = list(range(5))
        for _ in range(5):
            for k in hot:
                c.put(k, v(k)) if not c.contains(k) else c.get(k)
        for k in range(100, 140):  # cold scan
            c.put(k, v(k))
        survivors = sum(1 for k in hot if c.contains(k))
        assert survivors >= 4


@given(
    st.lists(
        st.tuples(st.sampled_from(["get", "put"]), st.integers(0, 30)),
        max_size=300,
    )
)
@settings(max_examples=40, deadline=None)
def test_combined_never_exceeds_capacity_and_flushes_are_disjoint(ops):
    c = CombinedCache(8, lru_fraction=0.5, value_dim=1)
    for op, k in ops:
        if op == "get":
            c.get(k)
        else:
            flushed = c.put(k, v(k))
            for fk, _ in flushed:
                assert not c.contains(fk)
        assert len(c) <= c.capacity


class TestCombinedCacheSnapshot:
    """export_state/load_state preserve future replacement behavior."""

    def _warmed(self, seed=0):
        rng = np.random.default_rng(seed)
        cache = CombinedCache(16, lru_fraction=0.5, value_dim=2)
        for _ in range(6):
            keys = np.unique(rng.integers(0, 60, size=8).astype(np.uint64))
            cache.put_batch(keys, np.tile(keys[:, None], (1, 2)).astype(np.float32))
            cache.get_batch(np.unique(rng.integers(0, 60, size=5).astype(np.uint64)))
        return cache

    def test_round_trip_preserves_contents_and_stats(self):
        cache = self._warmed()
        state = cache.export_state()
        other = CombinedCache(16, lru_fraction=0.5, value_dim=2)
        other.load_state(state)
        ka, va = cache.items()
        kb, vb = other.items()
        assert np.array_equal(ka, kb) and np.array_equal(va, vb)
        assert other.stats.hits == cache.stats.hits
        assert other.stats.misses == cache.stats.misses
        # Tier membership (not just the union) must survive.
        assert np.array_equal(
            np.sort(np.asarray(cache.lru.keys())),
            np.sort(np.asarray(other.lru.keys())),
        )

    def test_round_trip_preserves_future_evictions(self):
        """Same subsequent ops -> same hits, flushes, and final layout."""
        cache = self._warmed(seed=1)
        other = CombinedCache(16, lru_fraction=0.5, value_dim=2)
        other.load_state(cache.export_state())
        rng = np.random.default_rng(99)
        for _ in range(8):
            keys = np.unique(rng.integers(0, 80, size=7).astype(np.uint64))
            vals = np.tile(keys[:, None], (1, 2)).astype(np.float32)
            fa = cache.put_batch(keys, vals)
            fb = other.put_batch(keys, vals)
            assert np.array_equal(fa[0], fb[0]) and np.array_equal(fa[1], fb[1])
            probe = np.unique(rng.integers(0, 80, size=6).astype(np.uint64))
            va, ha = cache.get_batch(probe)
            vb, hb = other.get_batch(probe)
            assert np.array_equal(ha, hb) and np.array_equal(va, vb)
            pa, pb = cache.take_pending_flush(), other.take_pending_flush()
            assert np.array_equal(pa[0], pb[0]) and np.array_equal(pa[1], pb[1])
        ka, va = cache.items()
        kb, vb = other.items()
        assert np.array_equal(ka, kb) and np.array_equal(va, vb)

    def test_export_refuses_pinned_entries(self):
        cache = CombinedCache(8, value_dim=1)
        keys = np.array([1, 2], dtype=np.uint64)
        cache.put_batch(keys, np.ones((2, 1), np.float32), pin=True)
        with pytest.raises(RuntimeError, match="pinned"):
            cache.export_state()
        cache.unpin_batch(keys)
        cache.export_state()

    def test_load_rejects_oversized_snapshot(self):
        cache = self._warmed()
        small = CombinedCache(4, value_dim=2)
        with pytest.raises(ValueError, match="capacit"):
            small.load_state(cache.export_state())
