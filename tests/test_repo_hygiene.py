"""CI guard: the tracked tree must contain no bytecode artifacts.

Committed ``.pyc`` files go stale silently (they shadow source edits on
mismatched interpreter versions) and bloat every checkout; ``.gitignore``
keeps them out locally and this check keeps them out of the index.
"""

import pathlib
import shutil
import subprocess

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def tracked_files() -> list[str]:
    if shutil.which("git") is None or not (REPO_ROOT / ".git").exists():
        pytest.skip("not a git checkout")
    out = subprocess.run(
        ["git", "-C", str(REPO_ROOT), "ls-files"],
        capture_output=True,
        text=True,
        check=True,
    )
    return out.stdout.splitlines()


def test_no_bytecode_tracked():
    offenders = [
        f
        for f in tracked_files()
        if f.endswith((".pyc", ".pyo")) or "__pycache__" in f.split("/")
    ]
    assert offenders == [], f"bytecode artifacts committed: {offenders}"


def test_gitignore_covers_bytecode():
    gitignore = (REPO_ROOT / ".gitignore").read_text()
    assert "__pycache__/" in gitignore
    assert "*.py[cod]" in gitignore
