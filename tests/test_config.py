"""Tests for model/cluster configuration (Table 3)."""

import pytest

from repro.config import (
    PAPER_MODELS,
    TINY_MODEL,
    ClusterConfig,
    ModelSpec,
    scaled_model,
)


class TestPaperModels:
    def test_five_models(self):
        assert sorted(PAPER_MODELS) == ["A", "B", "C", "D", "E"]

    def test_table3_values_verbatim(self):
        e = PAPER_MODELS["E"]
        assert e.nonzeros_per_example == 500
        assert e.n_sparse == int(2e11)
        assert e.n_dense == int(7e6)
        assert e.size_gb == 10_000.0
        assert e.mpi_nodes == 128

    def test_mpi_node_range(self):
        counts = [m.mpi_nodes for m in PAPER_MODELS.values()]
        assert min(counts) == 75 and max(counts) == 150

    def test_bytes_per_sparse_param_plausible(self):
        """Table 3 implies 30-60 B/key — an embedding + optimizer state."""
        for m in PAPER_MODELS.values():
            assert 25 < m.bytes_per_sparse_param < 80

    def test_dense_orders_of_magnitude_smaller(self):
        for m in PAPER_MODELS.values():
            assert m.n_dense < m.n_sparse / 1e3


class TestModelSpecValidation:
    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError):
            ModelSpec("x", 0, 10, 10, 1.0, 1)
        with pytest.raises(ValueError):
            ModelSpec("x", 1, 0, 10, 1.0, 1)
        with pytest.raises(ValueError):
            ModelSpec("x", 1, 10, 10, 1.0, 1, n_slots=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            TINY_MODEL.n_sparse = 5


class TestScaledModel:
    def test_shrinks_key_space(self):
        s = scaled_model("E", scale=1e-6)
        assert s.n_sparse < PAPER_MODELS["E"].n_sparse
        assert s.n_sparse >= 1_000

    def test_keeps_identity(self):
        assert scaled_model("C").name == "C"
        assert scaled_model("C").mpi_nodes == 75


class TestClusterConfig:
    def test_defaults_match_paper_deployment(self):
        cfg = ClusterConfig()
        assert cfg.n_nodes == 4
        assert cfg.gpus_per_node == 8
        assert cfg.batch_size == 4_000_000
        assert cfg.total_gpus == 32

    def test_minibatches_per_batch(self):
        cfg = ClusterConfig(n_nodes=2, gpus_per_node=4, minibatches_per_gpu=3)
        assert cfg.minibatches_per_batch == 24

    def test_with_nodes(self):
        cfg = ClusterConfig().with_nodes(2)
        assert cfg.n_nodes == 2
        assert cfg.gpus_per_node == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(batch_size=-1)
        with pytest.raises(ValueError):
            ClusterConfig(cache_lru_fraction=1.5)
        with pytest.raises(ValueError):
            ClusterConfig(compaction_threshold=0.5)
        with pytest.raises(ValueError):
            ClusterConfig(compaction_stale_fraction=0.0)
