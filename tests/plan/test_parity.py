"""The planned-path parity oracle.

The BatchPlan must change *bookkeeping only*: trained parameters — sparse
and dense — and every simulated-seconds statistic must be bit-identical
between the pre-plan implementation (``use_plan=False``) and the planned
path, in both lockstep and pipelined execution, over enough rounds that
caches warm, the SSD tier engages, and compaction fires.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.tracer import EffectTracer
from repro.core.cluster import HPSCluster

N_ROUNDS = 20


def _build(spec, config, *, use_plan):
    return HPSCluster(spec, config, functional_batch_size=192, use_plan=use_plan)


def _probe(cluster):
    return cluster.generator.batch(10_000, 1024).unique_keys()


def _assert_param_parity(a, b):
    probe = _probe(a)
    assert np.array_equal(a.lookup_embeddings(probe), b.lookup_embeddings(probe))
    for pa, pb in zip(
        a.nodes[0].model.dense_state(), b.nodes[0].model.dense_state()
    ):
        assert np.array_equal(pa, pb)


def _assert_stats_parity(stats_a, stats_b):
    assert len(stats_a) == len(stats_b)
    for sa, sb in zip(stats_a, stats_b):
        for f in dataclasses.fields(sa):
            va, vb = getattr(sa, f.name), getattr(sb, f.name)
            assert va == vb, f"BatchStats.{f.name}: {va} != {vb}"


@pytest.fixture
def tiny_pressured(small_config):
    # Small enough MEM tier that the SSD path engages.
    return dataclasses.replace(small_config, mem_capacity_params=1_400)


class TestPlannedParity:
    def test_lockstep_planned_vs_unplanned(self, tiny_spec, tiny_pressured):
        a = _build(tiny_spec, tiny_pressured, use_plan=False)
        b = _build(tiny_spec, tiny_pressured, use_plan=True)
        stats_a = a.train(N_ROUNDS)
        stats_b = b.train(N_ROUNDS)
        # The workload must actually exercise the SSD tier for the parity
        # claim to mean anything.
        assert any(s.ssd_io_seconds > 0 for s in stats_a)
        _assert_stats_parity(stats_a, stats_b)
        _assert_param_parity(a, b)

    def test_pipelined_planned_vs_lockstep_unplanned(
        self, tiny_spec, tiny_pressured
    ):
        a = _build(tiny_spec, tiny_pressured, use_plan=False)
        b = _build(tiny_spec, tiny_pressured, use_plan=True)
        stats_a = a.train(N_ROUNDS)
        # The pipelined run is effect-traced: every stage must stay
        # inside its declared read/write sets, and the tracing proxies
        # must not perturb parity (the assertions below are unchanged).
        with EffectTracer(b) as tracer:
            run = b.train_pipelined(N_ROUNDS)
        assert tracer.violations == []
        _assert_stats_parity(stats_a, run.stats)
        _assert_param_parity(a, b)
        # Pipelining still overlaps: strictly below the serial makespan.
        assert run.makespan < run.serial_makespan

    def test_mixed_mode_rounds_interoperate(self, tiny_spec, small_config):
        """A cluster can alternate planned and unplanned rounds freely."""
        a = _build(tiny_spec, small_config, use_plan=False)
        b = _build(tiny_spec, small_config, use_plan=True)
        a.train(4)
        for r in range(4):
            b.use_plan = r % 2 == 0
            b.train_round()
        _assert_param_parity(a, b)

    def test_planned_checkpoint_restore_parity(
        self, tiny_spec, small_config, tmp_path
    ):
        """train(k)+save+restore+train(m) stays exact on the planned path."""
        straight = _build(tiny_spec, small_config, use_plan=True)
        straight.train(5)

        resumed = _build(tiny_spec, small_config, use_plan=True)
        resumed.train(3)
        resumed.save_checkpoint(str(tmp_path / "ckpt"))
        restored = HPSCluster.restore(str(tmp_path / "ckpt"))
        restored.train(2)
        _assert_param_parity(straight, restored)
