"""Plan reuse across stages: the key metadata is computed exactly once.

Call-counting shims around the two metadata primitives —
``Batch.unique_keys`` (the ``np.unique`` producer) and
``ModuloPartitioner.part_of`` (the hash + modulo partitioner, which both
``split`` and ``counts`` route through) — prove that on the planned path
every derivation happens in ``stage_read`` and the prepare/load/train
stages run on the plan's precomputed indices alone.
"""

import contextlib

import pytest

from repro.core.cluster import HPSCluster, RoundContext
from repro.data.batching import Batch
from repro.hbm.partition import ModuloPartitioner


class CallCounter:
    def __init__(self):
        self.unique_keys = 0
        self.part_of = 0

    def reset(self):
        self.unique_keys = 0
        self.part_of = 0


@contextlib.contextmanager
def counting_shims(monkeypatch):
    counter = CallCounter()
    orig_unique = Batch.unique_keys
    orig_part = ModuloPartitioner.part_of

    def counted_unique(self):
        counter.unique_keys += 1
        return orig_unique(self)

    def counted_part(self, keys):
        counter.part_of += 1
        return orig_part(self, keys)

    monkeypatch.setattr(Batch, "unique_keys", counted_unique)
    monkeypatch.setattr(ModuloPartitioner, "part_of", counted_part)
    yield counter


@pytest.fixture
def cluster(tiny_spec, small_config):
    return HPSCluster(tiny_spec, small_config, functional_batch_size=128)


def _run_stages(cluster, counter):
    """One round through the four stages; returns per-stage call counts."""
    ctx = RoundContext(round_index=cluster.rounds_completed)
    per_stage = {}
    for name, fn in cluster.stage_functions():
        counter.reset()
        fn(ctx)
        per_stage[name] = (counter.unique_keys, counter.part_of)
    return per_stage


class TestPlanReuse:
    def test_planned_round_derives_metadata_only_in_read(
        self, cluster, monkeypatch
    ):
        cluster.train(1)  # warm caches so every tier participates
        with counting_shims(monkeypatch) as counter:
            per_stage = _run_stages(cluster, counter)
        # All uniquing/partitioning happened while building the plan.
        assert per_stage["read"][0] > 0
        assert per_stage["read"][1] > 0
        for stage in ("prepare", "load", "train"):
            uniques, parts = per_stage[stage]
            assert uniques == 0, f"{stage} re-derived unique keys"
            assert parts == 0, f"{stage} re-partitioned keys"

    def test_unplanned_round_rederives_per_stage(self, cluster, monkeypatch):
        cluster.use_plan = False
        cluster.train(1)
        with counting_shims(monkeypatch) as counter:
            per_stage = _run_stages(cluster, counter)
        # The pre-plan path re-uniques in prepare and train, and
        # re-partitions in every tier-touching stage.
        assert per_stage["prepare"][0] > 0
        assert per_stage["prepare"][1] > 0
        assert per_stage["load"][1] > 0
        assert per_stage["train"][1] > 0
