"""Schema validation of the ``BENCH_e2e.json`` perf ledger (v6)."""

import json
import pathlib

import pytest

from repro.bench.harness import BENCH_E2E_SCHEMA, run_e2e_throughput

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent

ROW_FIELDS = {
    "mode": str,
    "wall_seconds": float,
    "rounds_per_s": float,
    "keys_per_s": float,
    "examples_per_s": float,
    "stage_seconds": dict,
    "scalar_fallbacks": int,
    "collision_splits": int,
    "admission_runs": int,
    "prefetch_depth_backoffs": int,
    "extent_cache_resizes": int,
}
STAGES = {"read", "prepare", "load", "train"}
DEFAULT_MODES = {"lockstep-unplanned", "lockstep-planned", "pipelined-planned"}
PREFETCH_MODES = {
    "lockstep-prefetch-oracle",
    "lockstep-prefetch",
    "pipelined-prefetch",
    "pipelined-prefetch-k2",
}
PRESSURE_MODES = {
    "lockstep-scalar-oracle",
    "lockstep-legacy",
    "lockstep-planned",
    "pipelined-planned",
} | PREFETCH_MODES

#: The recovery scenario's rows are simulated-seconds/bytes based and
#: deliberately carry none of the wall-clock throughput fields.
RECOVERY_ROW_FIELDS = {
    "snapshot-overhead": {
        "n_snapshots": int,
        "full_bytes": int,
        "delta_bytes_mean": float,
        "bytes_ratio_full_over_delta": float,
        "snapshot_sim_seconds": float,
        "snapshot_serialize_seconds": float,
        "snapshot_transfer_seconds": float,
        "snapshot_overlap_saving_seconds": float,
        "baseline_makespan": float,
        "snapshot_makespan": float,
        "makespan_overhead": float,
    },
    "recovery-downtime": {
        "full_restore_seconds": float,
        "full_replay_seconds": float,
        "full_recovery_seconds": float,
        "full_rounds_replayed": int,
        "partial_restore_seconds": float,
        "partial_recovery_seconds": float,
        "partial_rounds_replayed": int,
        "recovery_speedup_partial_over_full": float,
    },
}

#: The faults scenario's rows are simulated-seconds based (like the
#: recovery rows) and deliberately wall-clock free; both modes carry the
#: same field set.
FAULTS_ROW_FIELDS = {
    "faults_fired": int,
    "retries": int,
    "recoveries": int,
    "reports": int,
    "training_sim_seconds": float,
    "restore_sim_seconds": float,
    "replay_sim_seconds": float,
    "downtime_sim_seconds": float,
    "mttr_seconds": float,
    "downtime_fraction": float,
    "retry_overhead_seconds": float,
    "straggler_seconds": float,
    "bytes_reread": int,
}
FAULTS_MODES = {"faults-lockstep", "faults-pipelined"}

#: The committed lockstep-planned pressure rounds/s as of PR 5 — the
#: frozen baseline the prefetch acceptance claim is measured against.
PR5_PRESSURE_PLANNED_BASELINE = 30.36

#: The committed pipelined-prefetch pressure rounds/s as of PR 6 — the
#: frozen depth-1 baseline the depth-2 lookahead claim is measured
#: against.
PR6_PRESSURE_PREFETCH_BASELINE = 101.64


def _validate_rows(scenario: dict, modes: set[str]) -> None:
    assert {r["mode"] for r in scenario["rows"]} == modes
    for row in scenario["rows"]:
        for field, typ in ROW_FIELDS.items():
            assert isinstance(row[field], typ), f"{row['mode']}.{field}"
        stages = STAGES | (
            {"prefetch"} if row["mode"] in PREFETCH_MODES else set()
        )
        assert set(row["stage_seconds"]) == stages, row["mode"]
        assert row["wall_seconds"] > 0
        assert row["rounds_per_s"] > 0
        assert row["keys_per_s"] > 0


def validate_bench_e2e(doc: dict) -> None:
    assert doc["schema"] == BENCH_E2E_SCHEMA
    scenarios = {s["name"]: s for s in doc["scenarios"]}
    assert set(scenarios) == {"default", "pressure", "recovery", "faults"}

    default = scenarios["default"]
    for key in (
        "model",
        "n_rounds",
        "batch_size",
        "n_nodes",
        "gpus_per_node",
        "minibatches_per_gpu",
        "seed",
    ):
        assert key in default["workload"], f"default workload missing {key}"
    assert isinstance(default["parameter_parity"], bool)
    assert isinstance(default["speedup_planned_over_unplanned"], float)
    _validate_rows(default, DEFAULT_MODES)

    pressure = scenarios["pressure"]
    for key in (
        "model",
        "n_rounds",
        "mem_capacity_params",
        "cache_lru_fraction",
        "zipf_exponent",
        "warmup_rounds",
        "batch_size",
        "seed",
    ):
        assert key in pressure["workload"], f"pressure workload missing {key}"
    assert isinstance(pressure["parameter_parity"], bool)
    assert isinstance(pressure["seconds_parity"], bool)
    assert isinstance(pressure["prefetch_seconds_parity"], bool)
    assert isinstance(pressure["speedup_bulk_over_legacy"], float)
    assert isinstance(pressure["speedup_bulk_over_scalar"], float)
    assert isinstance(pressure["speedup_prefetch_over_bulk"], float)
    assert isinstance(pressure["speedup_prefetch_k2_over_k1"], float)
    _validate_rows(pressure, PRESSURE_MODES)
    # The committed ledger is also the acceptance record: the bulk modes
    # must never have degraded to the whole-batch per-key replay, while
    # the oracle modes must actually have exercised it.
    assert pressure["bulk_scalar_fallbacks"] == 0
    by_mode = {r["mode"]: r for r in pressure["rows"]}
    for mode in (
        "lockstep-planned",
        "pipelined-planned",
        "lockstep-prefetch",
        "pipelined-prefetch",
        "pipelined-prefetch-k2",
    ):
        assert by_mode[mode]["scalar_fallbacks"] == 0, mode
    assert by_mode["lockstep-scalar-oracle"]["scalar_fallbacks"] > 0
    assert by_mode["lockstep-prefetch-oracle"]["scalar_fallbacks"] > 0

    recovery = scenarios["recovery"]
    for key in (
        "model",
        "n_rounds",
        "n_sparse",
        "zipf_exponent",
        "warmup_rounds",
        "batch_size",
        "checkpoint_every",
        "kill_node",
        "seed",
    ):
        assert key in recovery["workload"], f"recovery workload missing {key}"
    assert isinstance(recovery["snapshot_parameter_parity"], bool)
    assert isinstance(recovery["recovery_parameter_parity"], bool)
    assert isinstance(recovery["bytes_ratio_full_over_delta"], float)
    by_mode = {r["mode"]: r for r in recovery["rows"]}
    assert set(by_mode) == set(RECOVERY_ROW_FIELDS)
    for mode, fields in RECOVERY_ROW_FIELDS.items():
        for field, typ in fields.items():
            assert isinstance(by_mode[mode][field], typ), f"{mode}.{field}"
    # Shape facts that hold at any scale, fresh or committed: deltas
    # really are cheaper than fulls, and the splice-in partial restore
    # replays nothing while the full restore replays something.
    assert by_mode["snapshot-overhead"]["bytes_ratio_full_over_delta"] > 1.0
    # The serialize/transfer split must account for the snapshot cost:
    # the flow-shop makespan saves real seconds over the serial sum but
    # never beats the transfer component alone.
    overhead = by_mode["snapshot-overhead"]
    assert overhead["snapshot_overlap_saving_seconds"] > 0.0
    assert overhead["snapshot_sim_seconds"] == pytest.approx(
        overhead["snapshot_serialize_seconds"]
        + overhead["snapshot_transfer_seconds"]
        - overhead["snapshot_overlap_saving_seconds"]
    )
    assert (
        overhead["snapshot_sim_seconds"]
        >= overhead["snapshot_transfer_seconds"]
    )
    assert by_mode["recovery-downtime"]["partial_rounds_replayed"] == 0
    assert by_mode["recovery-downtime"]["full_rounds_replayed"] > 0

    faults = scenarios["faults"]
    for key in (
        "model",
        "n_rounds",
        "n_sparse",
        "mem_capacity_params",
        "batch_size",
        "checkpoint_every",
        "schedule_seed",
        "max_faults",
        "rates",
        "seed",
    ):
        assert key in faults["workload"], f"faults workload missing {key}"
    assert isinstance(faults["parameter_parity"], bool)
    assert isinstance(faults["fault_kinds_fired"], list)
    by_mode = {r["mode"]: r for r in faults["rows"]}
    assert set(by_mode) == FAULTS_MODES
    for mode, row in by_mode.items():
        for field, typ in FAULTS_ROW_FIELDS.items():
            assert isinstance(row[field], typ), f"{mode}.{field}"
        # Wall-clock free: perf-smoke must skip these rows.
        assert "rounds_per_s" not in row
        # The schedule must have actually fired and been absorbed: a
        # fault-free 'faults' scenario would gate nothing.
        assert row["faults_fired"] > 0, mode
        assert row["retry_overhead_seconds"] > 0.0, mode
        assert 0.0 <= row["downtime_fraction"] < 1.0, mode
    # The healed runs must be bit-identical to their fault-free twins —
    # the tentpole invariant, recorded in the committed artifact.
    assert faults["parameter_parity"] is True
    assert faults["fault_kinds_fired"]


class TestBenchSchema:
    def test_fresh_run_matches_schema_and_roundtrips(self, tmp_path):
        out = tmp_path / "BENCH_e2e.json"
        result = run_e2e_throughput(
            n_rounds=2, batch_size=128, write_path=str(out)
        )
        validate_bench_e2e(result)
        validate_bench_e2e(json.loads(out.read_text()))

    def test_committed_ledger_is_valid(self):
        path = REPO_ROOT / "BENCH_e2e.json"
        if not path.exists():
            pytest.fail("BENCH_e2e.json must be committed at the repo root")
        validate_bench_e2e(json.loads(path.read_text()))

    def test_committed_ledger_records_pressure_win(self):
        """The acceptance claim lives in the committed artifact: ≥1.5×
        rounds/s over the pre-refactor pressure baseline.

        This reads the committed JSON, not a fresh run, so it is
        deterministic on every machine.  If it fails, the artifact being
        committed was refreshed on a machine too noisy to demonstrate
        the claim — regenerate it (``BENCH_WRITE=1``) on a quiet one
        rather than relaxing the floor.
        """
        doc = json.loads((REPO_ROOT / "BENCH_e2e.json").read_text())
        pressure = {s["name"]: s for s in doc["scenarios"]}["pressure"]
        assert pressure["speedup_bulk_over_legacy"] >= 1.5
        assert pressure["parameter_parity"] is True
        assert pressure["seconds_parity"] is True
        assert pressure["prefetch_seconds_parity"] is True

    def test_committed_ledger_records_prefetch_win(self):
        """The prefetch acceptance claim: the committed
        ``pipelined-prefetch`` pressure row must run at ≥3× the frozen
        PR-5 ``lockstep-planned`` pressure baseline (30.36 rounds/s).

        Like the pressure win above, this reads the committed artifact
        so it stays deterministic; regenerate on a quiet machine
        (``BENCH_WRITE=1``) rather than relaxing the floor.
        """
        doc = json.loads((REPO_ROOT / "BENCH_e2e.json").read_text())
        pressure = {s["name"]: s for s in doc["scenarios"]}["pressure"]
        by_mode = {r["mode"]: r for r in pressure["rows"]}
        floor = 3.0 * PR5_PRESSURE_PLANNED_BASELINE
        assert by_mode["pipelined-prefetch"]["rounds_per_s"] >= floor

    def test_committed_ledger_records_depth2_win(self):
        """The depth-2 lookahead acceptance claim: the committed
        ``pipelined-prefetch-k2`` pressure row must run at ≥1.15× the
        frozen PR-6 ``pipelined-prefetch`` depth-1 baseline
        (101.64 rounds/s).

        Reads the committed artifact, so it is deterministic on every
        machine; regenerate on a quiet machine (``BENCH_WRITE=1``)
        rather than relaxing the floor.
        """
        doc = json.loads((REPO_ROOT / "BENCH_e2e.json").read_text())
        pressure = {s["name"]: s for s in doc["scenarios"]}["pressure"]
        by_mode = {r["mode"]: r for r in pressure["rows"]}
        floor = 1.15 * PR6_PRESSURE_PREFETCH_BASELINE
        assert by_mode["pipelined-prefetch-k2"]["rounds_per_s"] >= floor
        # Deeper lookahead must never cost correctness: zero fallbacks
        # and full parameter parity are asserted by the shared validator.
        assert by_mode["pipelined-prefetch-k2"]["scalar_fallbacks"] == 0

    def test_committed_ledger_records_delta_snapshot_win(self):
        """The delta-checkpoint acceptance claims, read from the
        committed artifact so they are deterministic everywhere:

        * steady-state delta snapshots are ≥10× smaller than a full
          snapshot of the same state (the PR-7 tentpole claim), and
        * partial (single-node splice-in) recovery is strictly faster
          than full-cluster restore + replay, with bit-identical
          parameters in both cases.

        Unlike the wall-clock gates above, these numbers come off the
        simulated clock and byte counts, so a regeneration that moves
        them reflects a real semantic change, not machine noise.
        """
        doc = json.loads((REPO_ROOT / "BENCH_e2e.json").read_text())
        recovery = {s["name"]: s for s in doc["scenarios"]}["recovery"]
        assert recovery["bytes_ratio_full_over_delta"] >= 10.0
        assert recovery["snapshot_parameter_parity"] is True
        assert recovery["recovery_parameter_parity"] is True
        by_mode = {r["mode"]: r for r in recovery["rows"]}
        downtime = by_mode["recovery-downtime"]
        assert (
            downtime["partial_recovery_seconds"]
            < downtime["full_recovery_seconds"]
        )
