"""Schema validation of the ``BENCH_e2e.json`` perf ledger."""

import json
import pathlib

import pytest

from repro.bench.harness import BENCH_E2E_SCHEMA, run_e2e_throughput

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent

ROW_FIELDS = {
    "mode": str,
    "wall_seconds": float,
    "rounds_per_s": float,
    "keys_per_s": float,
    "examples_per_s": float,
    "stage_seconds": dict,
}
STAGES = {"read", "prepare", "load", "train"}
MODES = {"lockstep-unplanned", "lockstep-planned", "pipelined-planned"}


def validate_bench_e2e(doc: dict) -> None:
    assert doc["schema"] == BENCH_E2E_SCHEMA
    workload = doc["workload"]
    for key in (
        "model",
        "n_rounds",
        "batch_size",
        "n_nodes",
        "gpus_per_node",
        "minibatches_per_gpu",
        "seed",
    ):
        assert key in workload, f"workload missing {key}"
    assert isinstance(doc["parameter_parity"], bool)
    assert isinstance(doc["speedup_planned_over_unplanned"], float)
    assert {r["mode"] for r in doc["rows"]} == MODES
    for row in doc["rows"]:
        for field, typ in ROW_FIELDS.items():
            assert isinstance(row[field], typ), f"{row['mode']}.{field}"
        assert set(row["stage_seconds"]) == STAGES
        assert row["wall_seconds"] > 0
        assert row["rounds_per_s"] > 0
        assert row["keys_per_s"] > 0


class TestBenchSchema:
    def test_fresh_run_matches_schema_and_roundtrips(self, tmp_path):
        out = tmp_path / "BENCH_e2e.json"
        result = run_e2e_throughput(
            n_rounds=2, batch_size=128, write_path=str(out)
        )
        validate_bench_e2e(result)
        validate_bench_e2e(json.loads(out.read_text()))

    def test_committed_ledger_is_valid(self):
        path = REPO_ROOT / "BENCH_e2e.json"
        if not path.exists():
            pytest.fail("BENCH_e2e.json must be committed at the repo root")
        validate_bench_e2e(json.loads(path.read_text()))
