"""Unit tests for the per-round key plan builder."""

import numpy as np
import pytest

from repro.data.generator import CTRDataGenerator
from repro.hbm.partition import ModuloPartitioner
from repro.plan import build_round_plan, group_indices
from repro.utils.keys import as_keys

N_NODES = 2
N_GPUS = 2
MB_ROUNDS = 2

_NODE_SALT = 0x6E6F6465
_GPU_SALT = 0x67707573


@pytest.fixture
def partitioners():
    return (
        ModuloPartitioner(N_NODES, salt=_NODE_SALT),
        ModuloPartitioner(N_GPUS, salt=_GPU_SALT),
    )


@pytest.fixture
def plan(tiny_spec, partitioners):
    gen = CTRDataGenerator(tiny_spec, seed=3)
    batches = [gen.batch(i, 128) for i in range(N_NODES)]
    node_p, gpu_p = partitioners
    return (
        batches,
        build_round_plan(
            batches,
            node_partitioner=node_p,
            gpu_partitioner=gpu_p,
            n_gpus=N_GPUS,
            mb_rounds=MB_ROUNDS,
        ),
    )


class TestGroupIndices:
    def test_matches_flatnonzero(self, rng):
        parts = rng.integers(0, 5, 200)
        got = group_indices(parts, 5)
        for b in range(5):
            assert np.array_equal(got[b], np.flatnonzero(parts == b))

    def test_empty(self):
        got = group_indices(np.zeros(0, dtype=np.int64), 3)
        assert len(got) == 3 and all(g.size == 0 for g in got)


class TestNodePlan:
    def test_keys_are_batch_working_set(self, plan):
        batches, rp = plan
        for b, npn in zip(batches, rp.nodes):
            assert np.array_equal(npn.keys, b.unique_keys())

    def test_node_parts_partition_by_owner(self, plan, partitioners):
        _, rp = plan
        node_p, _ = partitioners
        for npn in rp.nodes:
            owners = node_p.part_of(npn.keys)
            together = np.concatenate([p for p in npn.node_parts])
            assert np.array_equal(np.sort(together), np.arange(npn.keys.size))
            for peer, idx in enumerate(npn.node_parts):
                assert np.array_equal(idx, np.flatnonzero(owners == peer))

    def test_gpu_parts_partition_by_gpu(self, plan, partitioners):
        _, rp = plan
        _, gpu_p = partitioners
        for npn in rp.nodes:
            assert np.array_equal(npn.gpu_of, gpu_p.part_of(npn.keys))
            for g, idx in enumerate(npn.gpu_parts):
                assert np.array_equal(idx, np.flatnonzero(npn.gpu_of == g))

    def test_minibatch_plans_align_with_shards(self, plan):
        _, rp = plan
        for npn in rp.nodes:
            assert len(npn.shards) == len(npn.minibatches) == N_GPUS * MB_ROUNDS
            for shard, mbp in zip(npn.shards, npn.minibatches):
                assert np.array_equal(mbp.keys, shard.unique_keys())
                # work_idx gathers the mini-batch keys from the working set
                assert np.array_equal(npn.keys[mbp.work_idx], mbp.keys)
                assert int(mbp.gpu_counts.sum()) == mbp.keys.size

    def test_sync_idx_points_into_round_union(self, plan):
        _, rp = plan
        for npn in rp.nodes:
            for m in range(MB_ROUNDS):
                group = npn.minibatches[m * N_GPUS : (m + 1) * N_GPUS]
                union = np.unique(
                    np.concatenate([p.keys for p in group])
                    if any(p.keys.size for p in group)
                    else as_keys([])
                )
                for mbp in group:
                    assert mbp.sync_size == union.size
                    assert np.array_equal(union[mbp.sync_idx], mbp.keys)


class TestSyncPlan:
    def test_global_keys_are_union_of_node_unions(self, plan):
        _, rp = plan
        for m, sp in enumerate(rp.sync):
            per_node = [n.keys for n in sp.nodes if n.keys.size]
            union = np.unique(np.concatenate(per_node))
            assert np.array_equal(sp.keys, union)

    def test_resident_missing_split(self, plan):
        _, rp = plan
        for sp in rp.sync:
            for npn, nsp in zip(rp.nodes, sp.nodes):
                in_working = np.isin(sp.keys, npn.keys)
                assert np.array_equal(nsp.resident_idx, np.flatnonzero(in_working))
                assert np.array_equal(nsp.missing_idx, np.flatnonzero(~in_working))
                assert np.array_equal(
                    npn.keys[nsp.resident_work_idx], sp.keys[nsp.resident_idx]
                )
                assert int(nsp.resident_gpu_counts.sum()) == nsp.resident_idx.size

    def test_missing_own_is_owner_filtered(self, plan, partitioners):
        _, rp = plan
        node_p, _ = partitioners
        for sp in rp.sync:
            for i, nsp in enumerate(sp.nodes):
                owners = node_p.part_of(sp.keys)
                expected = nsp.missing_idx[owners[nsp.missing_idx] == i]
                assert np.array_equal(nsp.missing_own_idx, expected)


class TestRecordPrepare:
    def test_plan_records_resolved_state(self, tiny_spec, small_config):
        from repro.core.cluster import HPSCluster, RoundContext

        cluster = HPSCluster(tiny_spec, small_config, functional_batch_size=128)
        ctx = RoundContext(round_index=0)
        cluster.stage_read(ctx)
        assert ctx.plan is not None
        for npn in ctx.plan.nodes:
            assert npn.local_slots is None  # not resolved yet
        cluster.stage_prepare(ctx)
        for node, npn in zip(cluster.nodes, ctx.plan.nodes):
            assert npn.local_slots is not None
            assert npn.local_slots.size == npn.local_idx.size
            assert npn.local_hits is not None
            assert npn.ssd_found is not None
            # the resolved rows hold exactly the pinned local working keys
            lru = node.mem_ps.cache.lru
            assert np.array_equal(
                lru._keys[npn.local_slots], npn.keys[npn.local_idx]
            )
            assert bool(np.all(lru._pinned[npn.local_slots]))
        cluster.stage_load(ctx)
        cluster.stage_train(ctx)  # leave the cluster quiescent


class TestAdmissionThreading:
    """The cache's admission outcome is threaded through plan + stats."""

    def test_plan_records_admission(self, tiny_spec, small_config):
        from repro.core.cluster import HPSCluster, RoundContext
        from repro.plan import AdmissionRecord

        cluster = HPSCluster(tiny_spec, small_config, functional_batch_size=128)
        ctx = RoundContext(round_index=0)
        cluster.stage_read(ctx)
        cluster.stage_prepare(ctx)
        for npn in ctx.plan.nodes:
            assert isinstance(npn.admission, AdmissionRecord)
            assert npn.admission.n_runs >= 1
            assert npn.admission.bulk_exact  # no whole-batch replay
        cluster.stage_load(ctx)
        cluster.stage_train(ctx)

    def test_batch_stats_carry_admission_counters(
        self, tiny_spec, small_config
    ):
        from repro.core.cluster import HPSCluster

        cluster = HPSCluster(tiny_spec, small_config, functional_batch_size=128)
        stats = cluster.train(2)
        assert all(s.cache_admission_runs > 0 for s in stats)
        assert all(s.cache_scalar_fallbacks == 0 for s in stats)

    def test_oracle_flag_surfaces_in_stats(self, tiny_spec, small_config):
        """REPRO_CACHE_ORACLE-style forcing is visible per round — the
        e2e pressure gate reads exactly this counter."""
        from repro.core.cluster import HPSCluster

        cluster = HPSCluster(tiny_spec, small_config, functional_batch_size=128)
        for node in cluster.nodes:
            node.mem_ps.cache.force_scalar = True
        stats = cluster.train(1)
        assert stats[0].cache_scalar_fallbacks > 0
