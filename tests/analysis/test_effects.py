"""The static stage-effect model: may-overlap, conflicts, contracts.

The load-bearing claim is the may-overlap relation: the engine can run
registry stage ``i`` (of a later round) concurrently with registry stage
``j`` (of an earlier round) exactly when ``i < j``.  ``TestMayOverlap``
re-derives that empirically from randomized
:class:`~repro.core.pipeline.PipelineSimulator` schedules rather than
trusting the docstring algebra.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.effects import (
    WINDOW_RESOURCE,
    OverlapContract,
    StageConflictError,
    check_stage_conflicts,
    find_stage_conflicts,
    may_overlap,
    window_overlap_contracts,
)
from repro.core.cluster import (
    BASE_OVERLAP_CONTRACTS,
    SNAPSHOT_OVERLAP_CONTRACTS,
    STAGE_EFFECTS,
    HPSCluster,
    StageSpec,
)
from repro.core.pipeline import PipelineSimulator


def spec(name, reads=(), writes=()):
    return StageSpec(name, lambda ctx: 0.0, frozenset(reads), frozenset(writes))


class TestMayOverlap:
    def test_relation(self):
        assert may_overlap(0, 1)
        assert may_overlap(0, 3)
        assert not may_overlap(1, 1)
        assert not may_overlap(2, 1)

    def test_empirical_only_upstream_overlaps_downstream(self):
        """No schedule ever overlaps (i, j) with i >= j across rounds."""
        rng = np.random.default_rng(42)
        sim = PipelineSimulator(n_stages=4, queue_capacity=2)
        for _ in range(25):
            times = rng.uniform(0.1, 3.0, size=(8, 4))
            sched = sim.schedule(times)
            start, finish = sched.start, sched.finish
            for b in range(8):
                for bp in range(b + 1, 8):
                    for s in range(4):
                        for sp in range(4):
                            overlaps = (
                                start[bp, sp] < finish[b, s]
                                and start[b, s] < finish[bp, sp]
                            )
                            if overlaps:
                                assert may_overlap(sp, s), (
                                    f"stage {sp} of round {bp} overlapped "
                                    f"stage {s} of round {b}"
                                )

    def test_empirical_every_allowed_pair_does_overlap(self):
        """may_overlap is tight: every i < j pair overlaps somewhere."""
        sim = PipelineSimulator(n_stages=4, queue_capacity=2)
        # Uniform long stages keep every stage busy simultaneously in
        # steady state, realizing every upstream/downstream pair.
        sched = sim.schedule(np.ones((12, 4)))
        start, finish = sched.start, sched.finish
        seen = set()
        for b in range(12):
            for bp in range(b + 1, 12):
                for s in range(4):
                    for sp in range(4):
                        if (
                            start[bp, sp] < finish[b, s]
                            and start[b, s] < finish[bp, sp]
                        ):
                            seen.add((sp, s))
        assert seen == {(i, j) for i in range(4) for j in range(4) if i < j}


class TestFindStageConflicts:
    def test_disjoint_stages_are_clean(self):
        stages = [
            spec("a", writes={"x"}),
            spec("b", writes={"y"}),
            spec("c", reads={"x"}, writes={"z"}),
        ]
        # a/c share x — a writes it and c (downstream) reads it
        conflicts = find_stage_conflicts(stages)
        assert len(conflicts) == 1
        assert conflicts[0].upstream == "a"
        assert conflicts[0].downstream == "c"
        assert conflicts[0].resources == {"x"}

    def test_fully_disjoint_is_empty(self):
        stages = [spec("a", writes={"x"}), spec("b", writes={"y"})]
        assert find_stage_conflicts(stages) == []
        check_stage_conflicts(stages)  # must not raise

    def test_read_read_sharing_is_not_a_conflict(self):
        stages = [spec("a", reads={"x"}), spec("b", reads={"x"})]
        assert find_stage_conflicts(stages) == []

    def test_write_write_is_a_conflict(self):
        stages = [spec("a", writes={"x"}), spec("b", writes={"x"})]
        (c,) = find_stage_conflicts(stages)
        assert c.resources == {"x"}

    def test_commutative_resource_is_exempt(self):
        stages = [spec("a", writes={"ledger"}), spec("b", writes={"ledger"})]
        assert find_stage_conflicts(stages) == []

    def test_round_local_resource_is_exempt(self):
        stages = [
            spec("a", writes={"round:plan"}),
            spec("b", reads={"round:plan"}, writes={"round:plan"}),
        ]
        assert find_stage_conflicts(stages) == []

    def test_contract_downgrades_exact_resources_only(self):
        stages = [
            spec("a", writes={"x", "y"}),
            spec("b", reads={"x", "y"}),
        ]
        contract = OverlapContract("a", "b", frozenset({"x"}), "pinned")
        (c,) = find_stage_conflicts(stages, contracts=[contract])
        assert c.resources == {"y"}
        both = OverlapContract("a", "b", frozenset({"x", "y"}), "pinned")
        assert find_stage_conflicts(stages, contracts=[both]) == []

    def test_contract_is_directional(self):
        # A contract for (a, b) does not sanction the pair (b, c).
        stages = [
            spec("a", writes={"x"}),
            spec("b", reads={"x"}),
            spec("c", reads={"x"}),
        ]
        contract = OverlapContract("a", "b", frozenset({"x"}), "pinned")
        (c,) = find_stage_conflicts(stages, contracts=[contract])
        assert (c.upstream, c.downstream) == ("a", "c")

    def test_wrong_order_contract_is_an_error(self):
        stages = [spec("a", writes={"x"}), spec("b", reads={"x"})]
        bad = OverlapContract("b", "a", frozenset({"x"}), "impossible")
        with pytest.raises(ValueError, match="unsatisfiable"):
            find_stage_conflicts(stages, contracts=[bad])

    def test_contract_for_absent_stage_is_ignored(self):
        stages = [spec("a", writes={"x"}), spec("b", writes={"y"})]
        ghost = OverlapContract("a", "snapshot", frozenset({"x"}), "optional")
        assert find_stage_conflicts(stages, contracts=[ghost]) == []

    def test_duplicate_stage_names_rejected(self):
        stages = [spec("a"), spec("a")]
        with pytest.raises(ValueError, match="duplicate"):
            find_stage_conflicts(stages)

    def test_error_message_names_the_pair(self):
        stages = [spec("up", writes={"x"}), spec("down", reads={"x"})]
        with pytest.raises(StageConflictError) as exc:
            check_stage_conflicts(stages)
        assert "up" in str(exc.value)
        assert "down" in str(exc.value)
        assert "OverlapContract" in str(exc.value)

    def test_contract_requires_justification(self):
        with pytest.raises(ValueError, match="justification"):
            OverlapContract("a", "b", frozenset({"x"}), "   ")


class TestDeclaredClusterStages:
    """The shipped stage sets must pass their own static check."""

    def _cluster(self, tiny_spec, small_config, **overrides):
        config = (
            dataclasses.replace(small_config, **overrides)
            if overrides
            else small_config
        )
        return HPSCluster(tiny_spec, config, functional_batch_size=192)

    def test_base_stage_set_passes(self, tiny_spec, small_config):
        cluster = self._cluster(tiny_spec, small_config)
        assert [s.name for s in cluster.stage_specs()] == [
            "read",
            "prepare",
            "load",
            "train",
        ]
        cluster.check_stage_conflicts()

    def test_prefetch_stage_set_passes(self, tiny_spec, small_config):
        cluster = self._cluster(tiny_spec, small_config, prefetch=True)
        assert [s.name for s in cluster.stage_specs()] == [
            "read",
            "prefetch",
            "prepare",
            "load",
            "train",
        ]
        cluster.check_stage_conflicts()

    def test_snapshot_stage_set_passes(self, tiny_spec, small_config, tmp_path):
        cluster = self._cluster(tiny_spec, small_config, prefetch=True)
        cluster.enable_snapshot_stage(str(tmp_path / "ckpt"))
        assert [s.name for s in cluster.stage_specs()] == [
            "read",
            "prefetch",
            "prepare",
            "load",
            "train",
            "snapshot",
        ]
        cluster.check_stage_conflicts()
        cluster.unregister_stage("snapshot")
        cluster.check_stage_conflicts()

    def test_contracts_are_load_bearing(self):
        """Without the sanctioned-overlap records the base set conflicts.

        This guards against the check silently passing because it sees
        nothing: the pinning-protected overlaps are real conflicts that
        the contracts — not the detector's blind spots — excuse.
        """
        stages = [
            StageSpec(name, lambda ctx: 0.0, *STAGE_EFFECTS[name])
            for name in ("read", "prefetch", "prepare", "load", "train")
        ]
        conflicts = find_stage_conflicts(stages)
        pairs = {(c.upstream, c.downstream) for c in conflicts}
        assert ("prepare", "train") in pairs
        assert ("load", "train") in pairs
        contracts = BASE_OVERLAP_CONTRACTS + SNAPSHOT_OVERLAP_CONTRACTS
        assert find_stage_conflicts(stages, contracts=contracts) == []


    def test_misdeclared_stage_is_refused_statically(
        self, tiny_spec, small_config
    ):
        """A registered stage writing MEM without a contract is caught."""
        cluster = self._cluster(tiny_spec, small_config)

        def poke(ctx):
            return 0.0

        cluster.register_stage(
            "poke", poke, after="train", writes=("mem",)
        )
        with pytest.raises(StageConflictError) as exc:
            cluster.train_pipelined(1)
        assert "poke" in str(exc.value)

        # A partial contract is not enough: prepare(b+1) *and* train(b+1)
        # both write mem over poke(b), and each pair needs its own record.
        cluster.unregister_stage("poke")
        cluster.register_stage(
            "poke",
            poke,
            after="train",
            writes=("mem",),
            contracts=[
                OverlapContract(
                    "prepare",
                    "poke",
                    frozenset({"mem"}),
                    "test-only: sanctioned by construction",
                ),
            ],
        )
        with pytest.raises(StageConflictError) as exc:
            cluster.check_stage_conflicts()
        assert "train" in str(exc.value)

        # The fully-contracted stage is accepted and runs.
        cluster.unregister_stage("poke")
        cluster.register_stage(
            "poke",
            poke,
            after="train",
            writes=("mem",),
            contracts=[
                OverlapContract(
                    up,
                    "poke",
                    frozenset({"mem"}),
                    "test-only: sanctioned by construction",
                )
                for up in ("prepare", "train")
            ],
        )
        cluster.check_stage_conflicts()
        run = cluster.train_pipelined(1)
        assert len(run.stats) == 1

    def test_effectless_stage_needs_no_contract(
        self, tiny_spec, small_config
    ):
        cluster = self._cluster(tiny_spec, small_config)
        cluster.register_stage("noop", lambda ctx: 0.0, after="train")
        cluster.check_stage_conflicts()
        run = cluster.train_pipelined(2)
        assert len(run.stats) == 2


class TestWindowContracts:
    """Depth-aware sanctioning of the shared ``mem:window`` pin state."""

    @pytest.mark.parametrize("depth", [1, 0, -3])
    def test_shallow_depth_contracts_are_rejected(self, depth):
        """The window never outlives its round at depth <= 1, so asking
        for its overlap contracts there is a caller bug, not an empty
        sanction."""
        with pytest.raises(ValueError, match="depth>1"):
            window_overlap_contracts(depth)

    def test_depth2_stage_set_passes(self, tiny_spec, small_config, tmp_path):
        config = dataclasses.replace(
            small_config, prefetch=True, prefetch_depth=2
        )
        cluster = HPSCluster(tiny_spec, config, functional_batch_size=192)
        cluster.check_stage_conflicts()
        cluster.enable_snapshot_stage(str(tmp_path / "ckpt"))
        cluster.check_stage_conflicts()

    def test_window_contracts_are_load_bearing(self):
        """At depth 2 the window writes are real conflicts that only the
        depth-aware contracts excuse."""
        effects = dict(STAGE_EFFECTS)
        for name in ("prefetch", "train"):
            reads, writes = effects[name]
            effects[name] = (reads, writes | {WINDOW_RESOURCE})
        stages = [
            StageSpec(name, lambda ctx: 0.0, *effects[name])
            for name in ("read", "prefetch", "prepare", "load", "train")
        ]
        base = BASE_OVERLAP_CONTRACTS + SNAPSHOT_OVERLAP_CONTRACTS
        conflicts = find_stage_conflicts(stages, contracts=base)
        assert {(c.upstream, c.downstream) for c in conflicts} == {
            ("prefetch", "train")
        }
        assert all(c.resources == {WINDOW_RESOURCE} for c in conflicts)
        sanctioned = base + window_overlap_contracts(2)
        assert find_stage_conflicts(stages, contracts=sanctioned) == []
