"""Dynamic effect tracing: declarations checked against real tier access.

The static check (``test_effects.py``) trusts what stages *declare*;
these tests verify the tracer catches stages that *lie* — and that
tracing a correct cluster neither flags anything nor perturbs training
(the proxies must be transparent).
"""

import dataclasses

import pytest

from repro.analysis.tracer import (
    EffectTracer,
    EffectViolationError,
)
from repro.core.cluster import HPSCluster


def _build(tiny_spec, small_config, **overrides):
    config = (
        dataclasses.replace(small_config, **overrides)
        if overrides
        else small_config
    )
    return HPSCluster(tiny_spec, config, functional_batch_size=192)


def _strip_effect(cluster, stage, resource):
    """Re-declare ``stage`` without ``resource`` in its write set."""
    cluster._stage_defs = [
        dataclasses.replace(s, writes=s.writes - {resource})
        if s.name == stage
        else s
        for s in cluster._stage_defs
    ]


class TestCleanRun:
    def test_traced_pipelined_run_is_clean(self, tiny_spec, small_config):
        cluster = _build(tiny_spec, small_config)
        with EffectTracer(cluster) as tracer:
            cluster.train_pipelined(3)
        assert tracer.violations == []

    def test_tracing_does_not_perturb_training(self, tiny_spec, small_config):
        plain = _build(tiny_spec, small_config)
        traced = _build(tiny_spec, small_config)
        runs = plain.train_pipelined(3)
        with EffectTracer(traced):
            runs_traced = traced.train_pipelined(3)
        assert [s.mean_loss for s in runs.stats] == [
            s.mean_loss for s in runs_traced.stats
        ]
        assert [s.pull_push_seconds for s in runs.stats] == [
            s.pull_push_seconds for s in runs_traced.stats
        ]

    def test_prefetch_and_snapshot_stages_trace_clean(
        self, tiny_spec, small_config, tmp_path
    ):
        cluster = _build(tiny_spec, small_config, prefetch=True)
        cluster.enable_snapshot_stage(str(tmp_path / "ckpt"))
        with EffectTracer(cluster) as tracer:
            cluster.train_pipelined(3)
        assert tracer.violations == []

    def test_depth2_lookahead_traces_clean(
        self, tiny_spec, small_config, tmp_path
    ):
        """The depth-2 window's extra pin traffic (prefetch extends it,
        train's unpin excepts it, snapshot unpins/re-pins around the MEM
        export) is fully covered by the declared effects + contracts."""
        cluster = _build(
            tiny_spec, small_config, prefetch=True, prefetch_depth=2
        )
        cluster.enable_snapshot_stage(str(tmp_path / "ckpt"), every=2)
        with EffectTracer(cluster) as tracer:
            cluster.train_pipelined(4)
        assert tracer.violations == []

    def test_uninstall_restores_the_cluster(self, tiny_spec, small_config):
        cluster = _build(tiny_spec, small_config)
        node = cluster.nodes[0]
        mem_before = node.mem_ps
        tracer = EffectTracer(cluster).install()
        assert node.mem_ps is not mem_before  # proxied
        tracer.uninstall()
        assert node.mem_ps is mem_before
        # the registry is unwrapped: training still works untraced
        cluster.train_pipelined(1)
        assert tracer.violations == []


class TestViolations:
    def test_stripped_write_declaration_is_caught(
        self, tiny_spec, small_config
    ):
        cluster = _build(tiny_spec, small_config)
        _strip_effect(cluster, "train", "hbm")
        tracer = EffectTracer(cluster)
        tracer.install()
        try:
            cluster.train_round()
        finally:
            tracer.uninstall()
        assert tracer.violations
        assert all(v.stage == "train" for v in tracer.violations)
        assert {v.resource for v in tracer.violations} == {"hbm"}
        with pytest.raises(EffectViolationError, match="undeclared write"):
            tracer.verify()

    def test_context_manager_raises_on_exit(self, tiny_spec, small_config):
        cluster = _build(tiny_spec, small_config)
        _strip_effect(cluster, "prepare", "mem")
        with pytest.raises(EffectViolationError, match="'prepare'"):
            with EffectTracer(cluster):
                cluster.train_round()

    def test_undeclared_stage_touching_a_tier_is_caught(
        self, tiny_spec, small_config
    ):
        """A registered stage with empty declarations must touch nothing."""
        cluster = _build(tiny_spec, small_config)

        def sneaky(ctx):
            cluster.nodes[0].ledger.add("sneaky", seconds=0.0)
            return 0.0

        cluster.register_stage("sneaky", sneaky, after="train")
        with pytest.raises(EffectViolationError, match="'sneaky'"):
            with EffectTracer(cluster):
                cluster.train_round()

    def test_accesses_outside_stages_are_not_judged(
        self, tiny_spec, small_config
    ):
        cluster = _build(tiny_spec, small_config)
        with EffectTracer(cluster) as tracer:
            # between-round user code: reads and writes through the
            # proxies with no stage executing
            cluster.nodes[0].ledger.total()
            cluster.train_pipelined(1)
        assert tracer.violations == []

    def test_double_install_is_an_error(self, tiny_spec, small_config):
        cluster = _build(tiny_spec, small_config)
        tracer = EffectTracer(cluster).install()
        try:
            with pytest.raises(RuntimeError, match="already installed"):
                tracer.install()
        finally:
            tracer.uninstall()
