"""Per-rule fixture snippets: positive, negative, and suppression.

Each rule gets (at least) one snippet that must be flagged, one that
must not, and one where an in-source ``# repro: allow(...)`` downgrades
the finding to suppressed.  Snippets are linted through
:func:`repro.analysis.lint_source` under a relpath chosen to land inside
(or outside) the rule's scope.
"""

import textwrap

from repro.analysis import DEFAULT_RULES, lint_source
from repro.analysis.rules import (
    AtomicWriteRule,
    Float64HotPathRule,
    HotLoopRule,
    SeededRngRule,
    SimTimeRule,
    TypedFaultsRule,
)

HOT = "src/repro/mem/example.py"
DURABLE = "src/repro/ckpt/example.py"
PLAIN = "src/repro/core/example.py"
FAULTS = "src/repro/faults/example.py"


def _lint(relpath, snippet, rules=DEFAULT_RULES):
    return lint_source(relpath, textwrap.dedent(snippet), rules)


def _active(findings, rule):
    return [f for f in findings if f.rule == rule and not f.suppressed]


def _suppressed(findings, rule):
    return [f for f in findings if f.rule == rule and f.suppressed]


class TestHotLoopRule:
    def test_per_key_loop_is_flagged(self):
        findings = _lint(
            HOT,
            """
            def absorb(keys, values):
                out = []
                for k in keys:
                    out.append(int(k))
                return out
            """,
        )
        (f,) = _active(findings, "hot-loop")
        assert f.line == 4
        assert "keys" in f.message

    def test_range_size_and_len_forms_are_flagged(self):
        findings = _lint(
            HOT,
            """
            def a(keys):
                for i in range(keys.size):
                    pass

            def b(uniq):
                for i in range(len(uniq)):
                    pass

            def c(keys, values):
                for i, k in enumerate(keys):
                    pass
            """,
        )
        assert len(_active(findings, "hot-loop")) == 3

    def test_vectorized_code_is_clean(self):
        findings = _lint(
            HOT,
            """
            import numpy as np

            def absorb(keys, values):
                order = np.argsort(keys)
                return keys[order], values[order]
            """,
        )
        assert not _active(findings, "hot-loop")

    def test_iterating_a_collection_of_key_arrays_is_clean(self):
        # ``for keys in self._served_keys`` iterates *arrays*, one per
        # peer — that is batch-at-a-time, not per-key.
        findings = _lint(
            HOT,
            """
            def merge(self):
                for keys in self._served_keys:
                    self.absorb(keys)
            """,
        )
        assert not _active(findings, "hot-loop")

    def test_three_arg_range_is_clean(self):
        findings = _lint(
            HOT,
            """
            def chunks(keys, n):
                for s in range(0, keys.size, n):
                    yield keys[s : s + n]
            """,
        )
        assert not _active(findings, "hot-loop")

    def test_out_of_scope_module_is_clean(self):
        findings = _lint(
            PLAIN,
            """
            def slow(keys):
                for k in keys:
                    print(k)
            """,
        )
        assert not _active(findings, "hot-loop")

    def test_allow_comment_suppresses(self):
        findings = _lint(
            HOT,
            """
            def oracle(keys, values):
                # repro: allow(hot-loop)
                for k in keys:
                    pass
            """,
        )
        assert not _active(findings, "hot-loop")
        assert len(_suppressed(findings, "hot-loop")) == 1

    def test_scope(self):
        rule = HotLoopRule()
        assert rule.applies_to("src/repro/mem/cache.py")
        assert rule.applies_to("src/repro/store/reference.py")
        assert not rule.applies_to("src/repro/core/cluster.py")
        assert not rule.applies_to("tests/mem/test_cache.py")


class TestAtomicWriteRule:
    def test_bare_write_is_flagged(self):
        findings = _lint(
            DURABLE,
            """
            def save(path, blob):
                with open(path, "w") as fh:
                    fh.write(blob)
            """,
        )
        (f,) = _active(findings, "atomic-write")
        assert "atomic_write_bytes" in f.message

    def test_all_write_modes_are_flagged(self):
        findings = _lint(
            DURABLE,
            """
            def save(path, blob):
                open(path, "wb")
                open(path, "a")
                open(path, "x")
                open(path, "r+")
                open(path, mode="w")
            """,
        )
        assert len(_active(findings, "atomic-write")) == 5

    def test_read_open_is_clean(self):
        findings = _lint(
            DURABLE,
            """
            def load(path):
                with open(path, "rb") as fh:
                    return fh.read()

            def load_default(path):
                with open(path) as fh:
                    return fh.read()
            """,
        )
        assert not _active(findings, "atomic-write")

    def test_utils_io_is_exempt(self):
        # The implementation of atomic_write_bytes itself must open for
        # writing — it is the one sanctioned site.
        findings = _lint(
            "src/repro/utils/io.py",
            """
            def atomic_write_bytes(path, data):
                with open(path + ".tmp", "wb") as fh:
                    fh.write(data)
            """,
        )
        assert not _active(findings, "atomic-write")

    def test_scope(self):
        rule = AtomicWriteRule()
        assert rule.applies_to("src/repro/ckpt/checkpoint.py")
        assert rule.applies_to("src/repro/ssd/file_store.py")
        assert rule.applies_to("src/repro/bench/harness.py")
        assert not rule.applies_to("src/repro/core/cluster.py")

    def test_regression_old_harness_snippet_is_flagged(self):
        # The exact shape fixed in this PR: run_e2e_bench used to dump
        # its JSON with a bare open(..., "w"), which a crash could leave
        # torn under the final name.  The linter must keep flagging it.
        findings = _lint(
            "src/repro/bench/harness.py",
            """
            import json

            def run_e2e_bench(result, write_path):
                if write_path is not None:
                    with open(write_path, "w") as fh:
                        json.dump(result, fh, indent=2, sort_keys=True)
                        fh.write("\\n")
                return result
            """,
        )
        assert len(_active(findings, "atomic-write")) == 1


class TestSeededRngRule:
    def test_global_np_random_is_flagged(self):
        findings = _lint(
            PLAIN,
            """
            import numpy as np

            def sample(n):
                return np.random.rand(n) + np.random.randint(0, 2)
            """,
        )
        assert len(_active(findings, "seeded-rng")) == 2

    def test_unseeded_default_rng_is_flagged(self):
        findings = _lint(
            PLAIN,
            """
            import numpy as np

            a = np.random.default_rng()
            b = np.random.default_rng(None)
            """,
        )
        assert len(_active(findings, "seeded-rng")) == 2

    def test_seeded_default_rng_and_annotations_are_clean(self):
        findings = _lint(
            PLAIN,
            """
            import numpy as np

            def make(seed: int) -> np.random.Generator:
                return np.random.default_rng(seed)

            def derive(ss: np.random.SeedSequence):
                return ss.spawn(2)
            """,
        )
        assert not _active(findings, "seeded-rng")

    def test_utils_rng_is_exempt(self):
        findings = _lint(
            "src/repro/utils/rng.py",
            """
            import numpy as np

            def make_rng(seed):
                return np.random.default_rng(seed)
            """,
        )
        assert not _active(findings, "seeded-rng")

    def test_scope_is_tree_wide(self):
        rule = SeededRngRule()
        assert rule.applies_to("tests/mem/test_cache.py")
        assert rule.applies_to("benchmarks/test_store_microbench.py")
        assert not rule.applies_to("src/repro/utils/rng.py")


class TestSimTimeRule:
    def test_wall_clock_reads_are_flagged(self):
        findings = _lint(
            PLAIN,
            """
            import time
            from datetime import datetime

            def stamp():
                return time.time(), datetime.now()
            """,
        )
        assert len(_active(findings, "sim-time")) == 2

    def test_simulated_seconds_are_clean(self):
        findings = _lint(
            PLAIN,
            """
            def cost(n_bytes, bandwidth):
                return n_bytes / bandwidth
            """,
        )
        assert not _active(findings, "sim-time")

    def test_bench_and_benchmarks_are_exempt(self):
        rule = SimTimeRule()
        assert not rule.applies_to("src/repro/bench/harness.py")
        assert not rule.applies_to("benchmarks/test_store_microbench.py")
        assert rule.applies_to("src/repro/core/cluster.py")
        assert rule.applies_to("tests/core/test_engine.py")

    def test_allow_comment_suppresses(self):
        findings = _lint(
            PLAIN,
            """
            import time

            def stamp():
                return time.monotonic()  # repro: allow(sim-time)
            """,
        )
        assert not _active(findings, "sim-time")
        assert len(_suppressed(findings, "sim-time")) == 1


class TestFloat64HotPathRule:
    def test_astype_and_dtype_are_flagged(self):
        findings = _lint(
            HOT,
            """
            import numpy as np

            def widen(values):
                a = values.astype(np.float64)
                b = values.astype("float64")
                c = np.zeros(4, dtype=np.float64)
                d = np.zeros(4, dtype="float64")
                return a, b, c, d
            """,
        )
        assert len(_active(findings, "f64-hot-path")) == 4

    def test_float32_and_scalar_float64_are_clean(self):
        findings = _lint(
            HOT,
            """
            import numpy as np

            def ok(values):
                a = values.astype(np.float32)
                b = np.zeros(4, dtype=np.float32)
                c = np.float64(values.sum())  # scalar accumulation
                return a, b, c
            """,
        )
        assert not _active(findings, "f64-hot-path")

    def test_out_of_scope_module_is_clean(self):
        findings = _lint(
            PLAIN,
            """
            import numpy as np

            def widen(values):
                return values.astype(np.float64)
            """,
        )
        assert not _active(findings, "f64-hot-path")

    def test_scope(self):
        rule = Float64HotPathRule()
        assert rule.applies_to("src/repro/hbm/allreduce.py")
        assert not rule.applies_to("src/repro/nn/optim.py")


class TestSuppressionMechanics:
    def test_same_line_and_line_above_both_work(self):
        same = _lint(
            HOT,
            """
            def a(keys):
                for k in keys:  # repro: allow(hot-loop)
                    pass
            """,
        )
        above = _lint(
            HOT,
            """
            def a(keys):
                # repro: allow(hot-loop)
                for k in keys:
                    pass
            """,
        )
        for findings in (same, above):
            assert not _active(findings, "hot-loop")
            assert len(_suppressed(findings, "hot-loop")) == 1

    def test_wrong_rule_id_does_not_suppress(self):
        findings = _lint(
            HOT,
            """
            def a(keys):
                # repro: allow(sim-time)
                for k in keys:
                    pass
            """,
        )
        assert len(_active(findings, "hot-loop")) == 1

    def test_allow_file_suppresses_everywhere(self):
        findings = _lint(
            HOT,
            """
            # repro: allow-file(hot-loop)

            def a(keys):
                for k in keys:
                    pass

            def b(uniq):
                for k in uniq:
                    pass
            """,
        )
        assert not _active(findings, "hot-loop")
        assert len(_suppressed(findings, "hot-loop")) == 2

    def test_comma_separated_ids(self):
        findings = _lint(
            HOT,
            """
            import numpy as np

            def a(keys):
                # repro: allow(hot-loop, f64-hot-path)
                for k in keys:
                    out = np.zeros(2, dtype=np.float64)
            """,
        )
        assert not _active(findings, "hot-loop")
        # dtype= is on the line *below* the allow comment — it anchors
        # to its own line, which the comment does not cover
        assert _active(findings, "f64-hot-path")

    def test_suppressed_findings_still_reported(self):
        findings = _lint(
            HOT,
            """
            def a(keys):
                for k in keys:  # repro: allow(hot-loop)
                    pass
            """,
        )
        assert len(findings) == 1
        assert findings[0].suppressed
        assert "(suppressed)" in findings[0].format()


class TestTypedFaultsRule:
    def test_bare_raise_is_flagged(self):
        findings = _lint(
            FAULTS,
            """
            def fail():
                raise RuntimeError("boom")
            """,
        )
        (f,) = _active(findings, "typed-faults")
        assert f.line == 3
        assert "RuntimeError" in f.message

    def test_raise_exception_call_and_name_are_flagged(self):
        findings = _lint(
            FAULTS,
            """
            def a():
                raise Exception("boom")

            def b():
                raise Exception
            """,
        )
        assert len(_active(findings, "typed-faults")) == 2

    def test_bare_except_and_tuple_catch_are_flagged(self):
        findings = _lint(
            FAULTS,
            """
            def a(op):
                try:
                    op()
                except Exception:
                    pass

            def b(op):
                try:
                    op()
                except (ValueError, RuntimeError):
                    pass

            def c(op):
                try:
                    op()
                except:
                    pass
            """,
        )
        assert len(_active(findings, "typed-faults")) == 3

    def test_typed_raise_and_catch_are_clean(self):
        findings = _lint(
            FAULTS,
            """
            from repro.faults.errors import FaultError, FaultExhaustedError

            def a(op):
                try:
                    op()
                except FaultExhaustedError as exc:
                    raise FaultError("escalated", surface="x") from exc
                except ValueError:
                    pass
            """,
        )
        assert not _active(findings, "typed-faults")

    def test_out_of_scope_module_is_clean(self):
        findings = _lint(
            PLAIN,
            """
            def fail():
                raise RuntimeError("boom")
            """,
        )
        assert not _active(findings, "typed-faults")

    def test_allow_comment_suppresses(self):
        findings = _lint(
            FAULTS,
            """
            def fail():
                raise RuntimeError("boom")  # repro: allow(typed-faults)
            """,
        )
        assert not _active(findings, "typed-faults")
        assert _suppressed(findings, "typed-faults")

    def test_scope(self):
        rule = TypedFaultsRule()
        assert rule.applies_to("src/repro/faults/inject.py")
        assert not rule.applies_to("src/repro/core/cluster.py")
        assert not rule.applies_to("tests/faults/test_soak.py")
