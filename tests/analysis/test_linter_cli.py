"""The ``python -m repro.analysis`` CLI and the tree-wide clean gate."""

import json
import os
import subprocess
import sys
import textwrap

from repro.analysis import DEFAULT_RULES, lint_paths
from repro.analysis.__main__ import main

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def _write(tmp_path, rel, snippet):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(snippet))
    return path


class TestLintPaths:
    def test_walks_directories_and_anchors_relpaths(self, tmp_path, monkeypatch):
        _write(
            tmp_path,
            "src/repro/mem/bad.py",
            """
            def f(keys):
                for k in keys:
                    pass
            """,
        )
        _write(tmp_path, "src/repro/mem/good.py", "x = 1\n")
        monkeypatch.chdir(tmp_path)
        report = lint_paths(["src"], DEFAULT_RULES)
        assert report.files_scanned == 2
        (finding,) = report.active
        assert finding.path == "src/repro/mem/bad.py"
        assert not report.ok

    def test_explicit_root_anchor(self, tmp_path):
        _write(
            tmp_path,
            "src/repro/ckpt/bad.py",
            """
            def f(p):
                open(p, "w")
            """,
        )
        report = lint_paths(
            [str(tmp_path / "src")], DEFAULT_RULES, root=str(tmp_path)
        )
        (finding,) = report.active
        assert finding.path == "src/repro/ckpt/bad.py"
        assert finding.rule == "atomic-write"

    def test_report_json_shape(self, tmp_path, monkeypatch):
        _write(
            tmp_path,
            "src/repro/mem/mixed.py",
            """
            def f(keys, uniq):
                for k in keys:  # repro: allow(hot-loop)
                    pass
                for k in uniq:
                    pass
            """,
        )
        monkeypatch.chdir(tmp_path)
        report = lint_paths(["src"], DEFAULT_RULES)
        payload = report.to_json()
        assert payload["schema"] == "repro-analysis/v1"
        assert payload["files_scanned"] == 1
        assert len(payload["active"]) == 1
        assert len(payload["suppressed"]) == 1
        assert set(payload["rules"]) == {r.id for r in DEFAULT_RULES}


class TestCLI:
    def test_exit_zero_and_json_on_clean_tree(self, tmp_path, monkeypatch, capsys):
        _write(tmp_path, "src/repro/mem/good.py", "x = 1\n")
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "findings.json"
        assert main(["src", "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-analysis/v1"
        assert payload["active"] == []
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_active_finding(self, tmp_path, monkeypatch, capsys):
        _write(
            tmp_path,
            "src/repro/mem/bad.py",
            """
            def f(keys):
                for k in keys:
                    pass
            """,
        )
        monkeypatch.chdir(tmp_path)
        assert main(["src"]) == 1
        captured = capsys.readouterr().out
        assert "src/repro/mem/bad.py:3: [hot-loop]" in captured
        assert "FAILED" in captured

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in DEFAULT_RULES:
            assert rule.id in out

    def test_at_least_five_active_rules(self):
        assert len(DEFAULT_RULES) >= 5
        assert len({r.id for r in DEFAULT_RULES}) == len(DEFAULT_RULES)


class TestTreeIsClean:
    """The repo itself must pass its own linter (the CI gate)."""

    def test_whole_tree_scan_is_clean(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        report = lint_paths(
            ["src", "tests", "benchmarks"], DEFAULT_RULES
        )
        assert report.files_scanned > 100
        assert report.ok, "\n".join(f.format() for f in report.active)
        # The calibrated escapes: the scalar parity oracles and the
        # bit-exact float64 accumulations are suppressed, not silently
        # dropped — a vanished suppression means a rule stopped seeing
        # real code.
        assert report.suppressed, "expected in-tree suppressions to exist"

    def test_module_invocation_matches_api(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "src", "--quiet"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout
