"""Tests for OP+OSRP hashing (Section 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.batching import Batch
from repro.hashing.op_osrp import OPOSRPHasher


def make_batch(rows, labels=None):
    keys = np.array([k for r in rows for k in r], dtype=np.uint64)
    offsets = np.cumsum([0] + [len(r) for r in rows])
    labels = labels if labels is not None else [0.0] * len(rows)
    return Batch(keys, offsets, np.array(labels, dtype=np.float32))


class TestConstruction:
    def test_invalid_p(self):
        with pytest.raises(ValueError):
            OPOSRPHasher(0, 1)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            OPOSRPHasher(100, 0)
        with pytest.raises(ValueError):
            OPOSRPHasher(100, 200)

    def test_out_dim_is_2k(self):
        assert OPOSRPHasher(1000, 64).out_dim == 128


class TestPermutation:
    def test_is_bijection(self):
        h = OPOSRPHasher(1009, 16, seed=0)  # prime p
        x = np.arange(1009, dtype=np.uint64)
        assert np.unique(h.perm(x)).size == 1009

    def test_bijection_composite_p(self):
        h = OPOSRPHasher(1024, 16, seed=3)
        x = np.arange(1024, dtype=np.uint64)
        assert np.unique(h.perm(x)).size == 1024

    def test_bins_balanced(self):
        h = OPOSRPHasher(10_000, 10, seed=0)
        bins = h._bins(np.arange(10_000, dtype=np.uint64))
        counts = np.bincount(bins, minlength=10)
        assert counts.max() - counts.min() <= 1

    def test_signs_are_rademacher(self):
        h = OPOSRPHasher(1000, 10, seed=0)
        s = h._signs(np.arange(1000, dtype=np.uint64))
        assert set(np.unique(s)) == {-1.0, 1.0}
        assert abs(s.mean()) < 0.15


class TestTransform:
    def test_output_keys_in_range(self):
        h = OPOSRPHasher(1000, 16, seed=0)
        out = h.transform(make_batch([[1, 2, 3], [4, 5]]))
        assert out.n_examples == 2
        if out.n_nonzeros:
            assert int(out.keys.max()) < 2 * 16

    def test_labels_preserved(self):
        h = OPOSRPHasher(100, 8, seed=0)
        out = h.transform(make_batch([[1], [2]], labels=[1, 0]))
        assert out.labels.tolist() == [1.0, 0.0]

    def test_deterministic(self):
        h = OPOSRPHasher(500, 16, seed=1)
        b = make_batch([[1, 2, 3, 4]])
        a, c = h.transform(b), h.transform(b)
        assert np.array_equal(a.keys, c.keys)

    def test_single_column_per_bin_keeps_info(self):
        """With k == p every column is its own bin: z = r_i, so every
        active input feature maps to exactly one output feature."""
        h = OPOSRPHasher(64, 64, seed=0)
        b = make_batch([[i] for i in range(64)])
        out = h.transform(b)
        assert out.n_nonzeros == 64
        assert np.all(out.row_lengths() == 1)

    def test_cancellation_drops_feature(self):
        """Two columns with opposite signs in one bin cancel to z=0 ->
        the paper's [0 0] case."""
        h = OPOSRPHasher(2, 1, seed=0)
        signs = h._signs(np.array([0, 1], dtype=np.uint64))
        b = make_batch([[0, 1]])
        out = h.transform(b)
        if signs[0] != signs[1]:
            assert out.n_nonzeros == 0
        else:
            assert out.n_nonzeros == 1

    def test_collision_rate_grows_as_k_shrinks(self):
        rng = np.random.default_rng(0)
        rows = [sorted(rng.choice(5000, 20, replace=False).tolist()) for _ in range(50)]
        b = make_batch(rows)
        outs = {k: OPOSRPHasher(5000, k, seed=0).transform(b) for k in (4096, 64)}
        # Fewer bins -> more columns share a bin -> fewer output nonzeros.
        assert outs[64].n_nonzeros < outs[4096].n_nonzeros

    def test_transform_many(self):
        h = OPOSRPHasher(100, 8)
        outs = h.transform_many([make_batch([[1]]), make_batch([[2]])])
        assert len(outs) == 2


@given(
    st.lists(
        st.lists(st.integers(0, 499), min_size=0, max_size=10),
        min_size=1,
        max_size=20,
    ),
    st.sampled_from([8, 32, 128]),
)
@settings(max_examples=40, deadline=None)
def test_transform_matches_bruteforce(rows, k):
    """Vectorized transform == per-example brute-force reference."""
    h = OPOSRPHasher(500, k, seed=7)
    batch = make_batch(rows)
    out = h.transform(batch)
    for i, row in enumerate(rows):
        keys = np.array(sorted(set(row)), dtype=np.uint64)
        # brute force: z per bin over the *multiset* of this row's columns
        all_keys = np.array(row, dtype=np.uint64)
        z = {}
        if all_keys.size:
            bins = h._bins(all_keys)
            signs = h._signs(all_keys)
            for b_, s_ in zip(bins.tolist(), signs.tolist()):
                z[b_] = z.get(b_, 0.0) + s_
        expected = sorted(2 * b_ + (1 if v > 0 else 0) for b_, v in z.items() if v != 0)
        got = sorted(out.keys[out.offsets[i] : out.offsets[i + 1]].tolist())
        assert got == expected
