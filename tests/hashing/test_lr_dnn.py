"""Tests for the LR baseline and the SimpleDNN hashing-study trainer."""

import numpy as np
import pytest

from repro.config import ModelSpec
from repro.data.generator import CTRDataGenerator
from repro.hashing.dnn import SimpleDNN
from repro.hashing.lr import SparseLogisticRegression


@pytest.fixture
def data():
    spec = ModelSpec(
        name="lr-test",
        nonzeros_per_example=8,
        n_sparse=2_000,
        n_dense=100,
        size_gb=0.001,
        mpi_nodes=1,
        embedding_dim=4,
        n_slots=4,
    )
    gen = CTRDataGenerator(spec, seed=0)
    return [gen.batch(i, 512) for i in range(6)], gen.batch(100, 2048)


class TestLR:
    def test_learns_signal(self, data):
        train, test = data
        lr = SparseLogisticRegression(2_000, lr=0.3)
        lr.fit(train, epochs=3)
        assert lr.evaluate_auc(test) > 0.6

    def test_loss_decreases(self, data):
        train, _ = data
        lr = SparseLogisticRegression(2_000, lr=0.3)
        losses = lr.fit(train, epochs=3)
        assert np.mean(losses[-3:]) < np.mean(losses[:3])

    def test_nonzero_weights_counts_touched_features(self, data):
        train, _ = data
        lr = SparseLogisticRegression(2_000, lr=0.3)
        assert lr.n_nonzero_weights == 0
        lr.partial_fit(train[0])
        assert 0 < lr.n_nonzero_weights <= 2_000

    def test_feature_out_of_range(self):
        lr = SparseLogisticRegression(10)
        bad = CTRDataGenerator(
            ModelSpec("x", 4, 1000, 10, 0.001, 1, embedding_dim=2, n_slots=2),
            seed=0,
        ).batch(0, 8)
        with pytest.raises(IndexError):
            lr.partial_fit(bad)

    def test_validation(self):
        with pytest.raises(ValueError):
            SparseLogisticRegression(0)
        with pytest.raises(ValueError):
            SparseLogisticRegression(10, lr=-1)

    def test_probabilities_valid(self, data):
        train, test = data
        lr = SparseLogisticRegression(2_000, lr=0.3)
        lr.fit(train[:2])
        p = lr.predict_proba(test)
        assert np.all((p > 0) & (p < 1))


class TestSimpleDNN:
    def test_learns_signal(self, data):
        train, test = data
        dnn = SimpleDNN(n_slots=4, seed=0)
        dnn.fit(train, epochs=3)
        assert dnn.evaluate_auc(test) > 0.6

    def test_beats_lr_with_slot_structure(self, data):
        """The embedding DNN must outperform LR on interaction-bearing
        data — the justification for DNN CTR models (Tables 1-2)."""
        train, test = data
        lr = SparseLogisticRegression(2_000, lr=0.3)
        lr.fit(train, epochs=3)
        dnn = SimpleDNN(n_slots=4, seed=0)
        dnn.fit(train, epochs=3)
        assert dnn.evaluate_auc(test) >= lr.evaluate_auc(test) - 0.02

    def test_embedding_store_grows(self, data):
        train, _ = data
        dnn = SimpleDNN(n_slots=4, seed=0)
        assert dnn.n_embedding_params == 0
        dnn.train_batch(train[0])
        assert dnn.n_embedding_params > 0

    def test_empty_batch_handled(self):
        from repro.data.batching import Batch

        dnn = SimpleDNN(n_slots=1)
        empty = Batch(
            np.array([], dtype=np.uint64),
            np.zeros(2, dtype=np.int64),
            np.array([0.0], dtype=np.float32),
        )
        loss = dnn.train_batch(empty)
        assert np.isnan(loss)

    def test_deterministic_given_seed(self, data):
        train, test = data
        a = SimpleDNN(n_slots=4, seed=1)
        b = SimpleDNN(n_slots=4, seed=1)
        a.fit(train[:2])
        b.fit(train[:2])
        assert np.array_equal(a.predict_proba(test), b.predict_proba(test))
