"""Every tier implements the batch-first ParameterStore protocol."""

import numpy as np
import pytest

from repro.hbm.distributed_table import DistributedHashTable
from repro.hbm.hash_table import HashTable
from repro.mem.cache import CombinedCache, LFUCache, LRUCache
from repro.ssd.ssd_ps import SSDPS
from repro.store import FlatStore, ParameterStore


def keys_of(xs):
    return np.array(xs, dtype=np.uint64)


def vals_of(n, dim=2, base=0.0):
    return (np.arange(n * dim, dtype=np.float32).reshape(n, dim) + base)


ALL_STORES = [
    lambda: HashTable(64, 2),
    lambda: DistributedHashTable(2, 64, 2),
    lambda: CombinedCache(64, value_dim=2),
    lambda: LRUCache(64, value_dim=2),
    lambda: LFUCache(64, value_dim=2),
    lambda: SSDPS(2, file_capacity=8),
    lambda: FlatStore(2),
]


@pytest.mark.parametrize("make", ALL_STORES)
def test_conforms_to_protocol(make):
    assert isinstance(make(), ParameterStore)


@pytest.mark.parametrize("make", ALL_STORES)
def test_roundtrip_through_protocol(make):
    """put → get → contains → transform → items behave uniformly."""
    store = make()
    keys = keys_of([3, 11, 42])
    values = vals_of(3)
    fk, fv = store.put_batch(keys, values)
    assert fk.size == 0 and fv.shape[1] == 2  # nothing evicted at this size

    got, found = store.get_batch(keys)
    assert found.all()
    assert np.array_equal(got, values)

    mask = store.contains(keys_of([11, 7]))
    assert mask.tolist() == [True, False]

    store.transform(keys, lambda v: v + 1.0)
    got, found = store.get_batch(keys)
    assert found.all()
    assert np.array_equal(got, values + 1.0)

    ik, iv = store.items()
    assert ik.tolist() == [3, 11, 42]  # sorted by key
    assert np.array_equal(iv, values + 1.0)


@pytest.mark.parametrize("make", ALL_STORES)
def test_get_batch_zero_fills_missing(make):
    store = make()
    store.put_batch(keys_of([1]), vals_of(1, base=5.0))
    got, found = store.get_batch(keys_of([2, 1]))
    assert found.tolist() == [False, True]
    assert (got[0] == 0.0).all()


@pytest.mark.parametrize("make", ALL_STORES)
def test_transform_absent_raises(make):
    store = make()
    store.put_batch(keys_of([1]), vals_of(1))
    with pytest.raises(KeyError):
        store.transform(keys_of([1, 99]), lambda v: v)


class TestFlatStore:
    def test_grows_unbounded(self):
        store = FlatStore(3, capacity=4)
        n = 10_000
        keys = np.arange(n, dtype=np.uint64)
        values = np.random.default_rng(0).normal(size=(n, 3)).astype(np.float32)
        store.put_batch(keys, values)
        assert len(store) == n
        got, found = store.get_batch(keys)
        assert found.all()
        assert np.array_equal(got, values)

    def test_overwrite_in_place(self):
        store = FlatStore(2)
        store.put_batch(keys_of([1, 2]), vals_of(2))
        store.put_batch(keys_of([2]), vals_of(1, base=100.0))
        got, _ = store.get_batch(keys_of([2]))
        assert np.array_equal(got[0], vals_of(1, base=100.0)[0])
        assert len(store) == 2

    def test_never_flushes(self):
        store = FlatStore(1, capacity=2)
        for start in range(0, 400, 100):
            keys = np.arange(start, start + 100, dtype=np.uint64)
            fk, _ = store.put_batch(keys, vals_of(100, dim=1))
            assert fk.size == 0
        assert len(store) == 400
