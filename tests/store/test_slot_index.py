"""Tests for the vectorized open-addressing SlotIndex."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store.slot_index import SlotIndex
from repro.utils.keys import EMPTY_KEY, TOMBSTONE_KEY


def keys_of(xs):
    return np.array(xs, dtype=np.uint64)


class TestBasics:
    def test_get_on_empty(self):
        idx = SlotIndex()
        vals, found = idx.get(keys_of([1, 2, 3]))
        assert not found.any()
        assert (vals == -1).all()

    def test_set_then_get(self):
        idx = SlotIndex()
        old, existed = idx.set(keys_of([5, 6]), np.array([50, 60]))
        assert not existed.any()
        assert (old == -1).all()
        vals, found = idx.get(keys_of([6, 5, 7]))
        assert vals.tolist() == [60, 50, -1]
        assert found.tolist() == [True, True, False]
        assert len(idx) == 2

    def test_overwrite_returns_old(self):
        idx = SlotIndex()
        idx.set(keys_of([5]), np.array([50]))
        old, existed = idx.set(keys_of([5]), np.array([51]))
        assert old.tolist() == [50]
        assert existed.tolist() == [True]
        assert len(idx) == 1

    def test_remove(self):
        idx = SlotIndex()
        idx.set(keys_of([1, 2]), np.array([10, 20]))
        old, existed = idx.remove(keys_of([2, 3]))
        assert old.tolist() == [20, -1]
        assert existed.tolist() == [True, False]
        assert len(idx) == 1
        _, found = idx.get(keys_of([2]))
        assert not found[0]

    def test_reinsert_after_remove_reuses_tombstone(self):
        idx = SlotIndex()
        idx.set(keys_of([1]), np.array([10]))
        idx.remove(keys_of([1]))
        idx.set(keys_of([1]), np.array([11]))
        vals, found = idx.get(keys_of([1]))
        assert found[0] and vals[0] == 11

    def test_reserved_keys_rejected(self):
        idx = SlotIndex()
        with pytest.raises(ValueError, match="reserved"):
            idx.set(keys_of([int(TOMBSTONE_KEY)]), np.array([1]))
        with pytest.raises(ValueError, match="reserved"):
            idx.set(keys_of([int(EMPTY_KEY)]), np.array([1]))

    def test_items(self):
        idx = SlotIndex()
        idx.set(keys_of([3, 1, 2]), np.array([30, 10, 20]))
        ks, vs = idx.items()
        assert dict(zip(ks.tolist(), vs.tolist())) == {1: 10, 2: 20, 3: 30}


class TestScalarPaths:
    def test_scalar_and_batch_agree(self):
        idx = SlotIndex()
        idx.set(keys_of([7, 8]), np.array([70, 80]))
        assert idx.get1(7) == 70
        assert idx.get1(9) == -1
        assert idx.set1(9, 90) == -1
        assert idx.set1(9, 91) == 90
        vals, found = idx.get(keys_of([9]))
        assert found[0] and vals[0] == 91
        assert idx.remove1(9) == 91
        assert idx.remove1(9) == -1
        assert idx.get1(9) == -1

    def test_growth_preserves_scalar_entries(self):
        idx = SlotIndex(capacity_hint=4)
        for k in range(200):
            idx.set1(k, k * 2)
        for k in range(200):
            assert idx.get1(k) == k * 2


class TestGrowth:
    def test_grows_past_initial_capacity(self):
        idx = SlotIndex(capacity_hint=8)
        n = 5_000
        ks = np.arange(n, dtype=np.uint64)
        idx.set(ks, np.arange(n))
        vals, found = idx.get(ks)
        assert found.all()
        assert np.array_equal(vals, np.arange(n))

    def test_tombstone_churn_does_not_degrade(self):
        idx = SlotIndex(capacity_hint=8)
        for start in range(0, 2_000, 100):
            ks = np.arange(start, start + 100, dtype=np.uint64)
            idx.set(ks, np.arange(100))
            idx.remove(ks)
        assert len(idx) == 0
        # A full insert/get cycle still works after heavy churn.
        ks = np.arange(64, dtype=np.uint64)
        idx.set(ks, np.arange(64))
        _, found = idx.get(ks)
        assert found.all()


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["set", "remove", "get"]), st.integers(0, 50)
        ),
        max_size=200,
    )
)
@settings(max_examples=40, deadline=None)
def test_matches_python_dict(ops):
    idx = SlotIndex(capacity_hint=4)
    model: dict[int, int] = {}
    for i, (op, k) in enumerate(ops):
        if op == "set":
            old = idx.set1(k, i)
            assert old == model.get(k, -1)
            model[k] = i
        elif op == "remove":
            old = idx.remove1(k)
            assert old == model.pop(k, -1)
        else:
            assert idx.get1(k) == model.get(k, -1)
        assert len(idx) == len(model)
    ks, vs = idx.items()
    assert dict(zip(ks.tolist(), vs.tolist())) == model
