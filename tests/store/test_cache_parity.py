"""Recorded-trace parity: slab caches vs the seed dict implementation.

The vectorized caches must be *sequential-equivalent*: identical eviction
order, flush pairs, hit/miss statistics, and final contents as the
original per-key implementation (kept in :mod:`repro.store.reference`)
on any access trace.  These tests replay deterministic recorded traces —
including MEM-PS-shaped pin/absorb/settle cycles under memory pressure —
through both implementations side by side.
"""

import numpy as np
import pytest

from repro.mem.cache import CombinedCache, LFUCache, LRUCache
from repro.store.reference import (
    DictCombinedCache,
    DictLFUCache,
    DictLRUCache,
)


def keys_of(xs):
    return np.array(xs, dtype=np.uint64)


def assert_pairs_equal(a: list, b: list, ctx=""):
    assert [k for k, _ in a] == [k for k, _ in b], ctx
    for (_, va), (_, vb) in zip(a, b):
        assert np.array_equal(va, vb), ctx


def assert_flush_equal(fa, fb, ctx=""):
    assert np.array_equal(fa[0], fb[0]), ctx
    assert np.array_equal(fa[1], fb[1]), ctx


def zipf_trace(n_ops: int, n_keys: int, seed: int) -> np.ndarray:
    """A skewed access trace, the workload the combined policy targets."""
    rng = np.random.default_rng(seed)
    ranks = np.minimum(
        n_keys - 1,
        np.floor(np.clip(rng.random(n_ops), 1e-9, None) ** (-1.0 / 0.6)),
    ).astype(np.int64)
    return ranks.astype(np.uint64)


class TestTierParity:
    def test_lru_single_op_trace(self):
        new, old = LRUCache(8), DictLRUCache(8)
        trace = zipf_trace(500, 40, seed=1)
        for i, k in enumerate(trace.tolist()):
            if i % 3 == 0:
                va, vb = new.get(k), old.get(k)
                assert (va is None) == (vb is None)
            else:
                v = np.array([float(i)], dtype=np.float32)
                assert_pairs_equal(new.put(k, v), old.put(k, v), f"op {i}")
        assert new.keys() == old.keys()  # full recency order matches

    def test_lfu_single_op_trace(self):
        new, old = LFUCache(8), DictLFUCache(8)
        trace = zipf_trace(500, 40, seed=2)
        for i, k in enumerate(trace.tolist()):
            if i % 3 == 0:
                va, vb = new.get(k), old.get(k)
                assert (va is None) == (vb is None)
            else:
                v = np.array([float(i)], dtype=np.float32)
                assert_pairs_equal(new.put(k, v), old.put(k, v), f"op {i}")
            assert new.frequency(k) == old.frequency(k)
        assert sorted(new.keys()) == sorted(old.keys())


class TestCombinedParity:
    def run_trace(self, new, old, ops):
        for i, (op, payload) in enumerate(ops):
            ctx = f"op {i}: {op}"
            if op == "get":
                va, vb = new.get(payload), old.get(payload)
                assert (va is None) == (vb is None), ctx
                if va is not None:
                    assert np.array_equal(va, vb), ctx
            elif op == "put":
                k, v, pin = payload
                assert_pairs_equal(
                    new.put(k, v, pin=pin), old.put(k, v, pin=pin), ctx
                )
            elif op == "get_batch":
                (va, ha) = new.get_batch(payload)
                (vb, hb) = old.get_batch(payload)
                assert np.array_equal(ha, hb), ctx
                assert np.array_equal(va, vb), ctx
            elif op == "put_batch":
                k, v, pin = payload
                assert_flush_equal(
                    new.put_batch(k, v, pin=pin),
                    old.put_batch(k, v, pin=pin),
                    ctx,
                )
            elif op == "unpin":
                new.unpin_batch(payload)
                old.unpin_batch(payload)
            elif op == "settle":
                assert_flush_equal(new.settle_overflow(), old.settle_overflow(), ctx)
            assert len(new) == len(old), ctx
            assert new.stats.hits == old.stats.hits, ctx
            assert new.stats.misses == old.stats.misses, ctx
            assert_flush_equal(new.take_pending_flush(), old.take_pending_flush(), ctx)
        ia, ib = new.items(), old.items()
        assert np.array_equal(ia[0], ib[0])
        assert np.array_equal(ia[1], ib[1])

    def test_single_op_zipf_trace(self):
        """Per-key gets/puts on a skewed trace: eviction order must match
        through both the LRU→LFU demotion and the LFU→SSD flush."""
        new = CombinedCache(16, lru_fraction=0.5, value_dim=2)
        old = DictCombinedCache(16, lru_fraction=0.5, value_dim=2)
        trace = zipf_trace(800, 60, seed=3)
        ops = []
        for i, k in enumerate(trace.tolist()):
            if i % 2 == 0:
                ops.append(("get", k))
            else:
                v = np.full(2, float(i), dtype=np.float32)
                ops.append(("put", (k, v, False)))
        self.run_trace(new, old, ops)

    def test_mem_ps_shaped_batches_under_pressure(self):
        """The MEM-PS cycle — batched lookup, pinned miss insert, absorb,
        unpin, settle — against a cache much smaller than the stream."""
        new = CombinedCache(64, lru_fraction=0.6, value_dim=2)
        old = DictCombinedCache(64, lru_fraction=0.6, value_dim=2)
        rng = np.random.default_rng(4)
        ops = []
        for round_ in range(30):
            working = np.unique(zipf_trace(48, 300, seed=100 + round_))
            values = rng.normal(size=(working.size, 2)).astype(np.float32)
            ops.append(("get_batch", working))
            ops.append(("put_batch", (working, values, True)))
            updated = values + 1.0
            ops.append(("put_batch", (working, updated, False)))
            ops.append(("unpin", working))
            ops.append(("settle", None))
        self.run_trace(new, old, ops)

    def test_batches_larger_than_the_lru_tier(self):
        """Insert streams that overflow the whole unpinned LRU spill the
        earliest batch positions — in the seed order."""
        new = CombinedCache(20, lru_fraction=0.5, value_dim=1)
        old = DictCombinedCache(20, lru_fraction=0.5, value_dim=1)
        ops = []
        for start in (0, 100, 200):
            keys = np.arange(start, start + 40, dtype=np.uint64)
            vals = np.arange(40, dtype=np.float32).reshape(-1, 1) + start
            ops.append(("put_batch", (keys, vals, False)))
            ops.append(("get_batch", keys[::3]))
        self.run_trace(new, old, ops)

    def test_promotion_heavy_batches(self):
        """Batched gets that promote LFU residents back into a full LRU."""
        new = CombinedCache(12, lru_fraction=0.5, value_dim=1)
        old = DictCombinedCache(12, lru_fraction=0.5, value_dim=1)
        warm = np.arange(12, dtype=np.uint64)
        vals = np.arange(12, dtype=np.float32).reshape(-1, 1)
        ops = [("put_batch", (warm, vals, False))]
        # keys 0.. demoted into the LFU by later inserts; batch-get them.
        more = np.arange(100, 106, dtype=np.uint64)
        ops.append(("put_batch", (more, np.zeros((6, 1), np.float32), False)))
        ops.append(("get_batch", np.arange(0, 8, dtype=np.uint64)))
        ops.append(("get_batch", np.arange(3, 12, dtype=np.uint64)))
        self.run_trace(new, old, ops)

    @pytest.mark.parametrize("seed", [10, 11, 12])
    def test_randomized_mixed_trace(self, seed):
        """Random mixture of every operation, pins included."""
        rng = np.random.default_rng(seed)
        new = CombinedCache(24, lru_fraction=0.4, value_dim=2)
        old = DictCombinedCache(24, lru_fraction=0.4, value_dim=2)
        ops = []
        pinned: set[int] = set()
        for i in range(250):
            kind = rng.choice(["get", "put", "get_batch", "put_batch", "unpin"])
            if kind == "get":
                ops.append(("get", int(rng.integers(0, 80))))
            elif kind == "put":
                pin = bool(rng.random() < 0.15) and len(pinned) < 8
                k = int(rng.integers(0, 80))
                if pin:
                    pinned.add(k)
                v = rng.normal(size=2).astype(np.float32)
                ops.append(("put", (k, v, pin)))
            elif kind == "get_batch":
                n = int(rng.integers(1, 10))
                ks = rng.choice(80, size=n, replace=False).astype(np.uint64)
                ops.append(("get_batch", ks))
            elif kind == "put_batch":
                n = int(rng.integers(1, 10))
                ks = rng.choice(80, size=n, replace=False).astype(np.uint64)
                vs = rng.normal(size=(n, 2)).astype(np.float32)
                ops.append(("put_batch", (ks, vs, False)))
            else:
                ops.append(("unpin", keys_of(sorted(pinned))))
                pinned.clear()
        ops.append(("unpin", keys_of(sorted(pinned))))
        ops.append(("settle", None))
        self.run_trace(new, old, ops)
