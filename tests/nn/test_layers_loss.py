"""Tests for dense layers, the MLP, and the loss — including numerical
gradient checks, the ground truth for all backward passes."""

import numpy as np
import pytest

from repro.nn.layers import MLP, Dense, ReLU, Sigmoid
from repro.nn.loss import bce_with_logits, sigmoid


class TestDense:
    def test_forward_shape(self):
        d = Dense(3, 5)
        out = d.forward(np.zeros((7, 3), dtype=np.float32))
        assert out.shape == (7, 5)

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Dense(2, 2).backward(np.zeros((1, 2)))

    def test_gradient_check_weights(self):
        rng = np.random.default_rng(0)
        d = Dense(4, 3, seed=1)
        x = rng.normal(size=(5, 4)).astype(np.float32)

        def loss_fn():
            return float((d.forward(x) ** 2).sum())

        base = d.forward(x)
        d.backward(2 * base)  # dL/dy for L = sum(y^2)
        eps = 1e-4
        for idx in [(0, 0), (2, 1), (3, 2)]:
            orig = d.W[idx]
            d.W[idx] = orig + eps
            up = loss_fn()
            d.W[idx] = orig - eps
            down = loss_fn()
            d.W[idx] = orig
            numeric = (up - down) / (2 * eps)
            assert d.dW[idx] == pytest.approx(numeric, rel=1e-2)

    def test_gradient_check_input(self):
        rng = np.random.default_rng(0)
        d = Dense(3, 2, seed=2)
        x = rng.normal(size=(4, 3))
        y = d.forward(x)
        gin = d.backward(np.ones_like(y))
        eps = 1e-6
        for i, j in [(0, 0), (3, 2)]:
            xp = x.copy()
            xp[i, j] += eps
            numeric = (d.forward(xp).sum() - y.sum()) / eps
            assert gin[i, j] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Dense(0, 2)

    def test_n_params(self):
        assert Dense(3, 5).n_params == 3 * 5 + 5


class TestActivations:
    def test_relu_masks_negatives(self):
        r = ReLU()
        out = r.forward(np.array([-1.0, 2.0]))
        assert out.tolist() == [0.0, 2.0]
        grad = r.backward(np.array([1.0, 1.0]))
        assert grad.tolist() == [0.0, 1.0]

    def test_sigmoid_stable_extremes(self):
        s = Sigmoid()
        out = s.forward(np.array([-1000.0, 0.0, 1000.0]))
        assert np.all(np.isfinite(out))
        assert out[1] == pytest.approx(0.5)

    def test_sigmoid_gradient(self):
        s = Sigmoid()
        y = s.forward(np.array([0.3]))
        g = s.backward(np.array([1.0]))
        assert g[0] == pytest.approx(float(y[0] * (1 - y[0])))


class TestMLP:
    def test_output_shape(self):
        mlp = MLP(6, (8, 4))
        out = mlp.forward(np.zeros((10, 6)))
        assert out.shape == (10,)

    def test_full_gradient_check(self):
        rng = np.random.default_rng(3)
        mlp = MLP(4, (5,), seed=0)
        x = rng.normal(size=(6, 4))
        labels = rng.integers(0, 2, 6).astype(np.float64)

        def total_loss():
            loss, _, _ = bce_with_logits(mlp.forward(x), labels)
            return loss

        loss, _, grad_logit = bce_with_logits(mlp.forward(x), labels)
        mlp.backward(grad_logit)
        eps = 1e-5
        for layer in mlp.dense_layers():
            idx = (0, 0)
            orig = layer.W[idx]
            layer.W[idx] = orig + eps
            up = total_loss()
            layer.W[idx] = orig - eps
            down = total_loss()
            layer.W[idx] = orig
            numeric = (up - down) / (2 * eps)
            # float32 weights bound the attainable agreement.
            assert layer.dW[idx] == pytest.approx(numeric, rel=5e-3, abs=1e-7)

    def test_state_roundtrip(self):
        a = MLP(3, (4,), seed=0)
        b = MLP(3, (4,), seed=99)
        b.set_state(a.get_state())
        x = np.ones((2, 3))
        assert np.array_equal(a.forward(x), b.forward(x))

    def test_state_shape_mismatch(self):
        a = MLP(3, (4,))
        b = MLP(3, (5,))
        with pytest.raises(ValueError):
            b.set_state(a.get_state())


class TestBCE:
    def test_gradient_is_p_minus_y_over_n(self):
        logits = np.array([0.5, -1.0])
        labels = np.array([1.0, 0.0])
        _, p, grad = bce_with_logits(logits, labels)
        assert np.allclose(grad, (p - labels) / 2)

    def test_stable_at_extreme_logits(self):
        loss, p, grad = bce_with_logits(np.array([1000.0, -1000.0]), np.array([1.0, 0.0]))
        assert np.isfinite(loss)
        assert loss < 1e-6

    def test_sigmoid_consistency(self):
        x = np.linspace(-10, 10, 50)
        _, p, _ = bce_with_logits(x, np.zeros(50))
        assert np.allclose(p, sigmoid(x))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bce_with_logits(np.array([]), np.array([]))
