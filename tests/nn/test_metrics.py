"""Tests for AUC and log-loss."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.metrics import auc, log_loss


class TestAUC:
    def test_perfect_ranking(self):
        assert auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_ranking(self):
        assert auc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 10_000)
        scores = rng.random(10_000)
        assert auc(labels, scores) == pytest.approx(0.5, abs=0.02)

    def test_ties_average(self):
        assert auc([0, 1], [0.5, 0.5]) == 0.5

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            auc([1, 1], [0.1, 0.2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            auc([], [])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            auc([0, 1], [0.5])

    def test_invariant_to_monotone_transform(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, 500)
        labels[0], labels[1] = 0, 1
        scores = rng.normal(size=500)
        assert auc(labels, scores) == pytest.approx(
            auc(labels, np.exp(scores)), abs=1e-12
        )

    @given(
        st.lists(st.booleans(), min_size=4, max_size=60),
        st.integers(0, 10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_pairwise_definition(self, labels, seed):
        labels = np.array(labels, dtype=float)
        if labels.sum() == 0 or labels.sum() == labels.size:
            return
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=labels.size)
        pos = scores[labels > 0.5]
        neg = scores[labels < 0.5]
        wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
        assert auc(labels, scores) == pytest.approx(wins / (len(pos) * len(neg)))


class TestLogLoss:
    def test_perfect_predictions_near_zero(self):
        assert log_loss([0, 1], [0.0, 1.0]) < 1e-10

    def test_uninformed_is_log2(self):
        assert log_loss([0, 1], [0.5, 0.5]) == pytest.approx(np.log(2))

    def test_clipping_avoids_inf(self):
        assert np.isfinite(log_loss([1], [0.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            log_loss([0, 1], [0.5])
