"""Tests for the embedding layer, sparse/dense optimizers, and the CTR
model's end-to-end gradients."""

import numpy as np
import pytest

from repro.config import ModelSpec
from repro.data.batching import Batch
from repro.nn.embedding import EmbeddingLayer
from repro.nn.loss import bce_with_logits
from repro.nn.model import CTRModel
from repro.nn.optim import (
    DenseAdagrad,
    DenseSGD,
    SparseAdagrad,
    SparseSGD,
)


def make_batch(rows, labels=None):
    keys = np.array([k for r in rows for k in r], dtype=np.uint64)
    offsets = np.cumsum([0] + [len(r) for r in rows])
    labels = labels if labels is not None else [0.0] * len(rows)
    return Batch(keys, offsets, np.array(labels, dtype=np.float32))


class TestEmbeddingForward:
    def test_sum_pooling_per_slot(self):
        layer = EmbeddingLayer(n_slots=2, dim=2)
        batch = make_batch([[0, 1, 2, 3]])  # 2 ids per slot
        uniq = np.array([0, 1, 2, 3], dtype=np.uint64)
        emb = np.array([[1, 0], [2, 0], [0, 3], [0, 4]], dtype=np.float32)
        out = layer.forward(batch, uniq, emb)
        # slot0 = rows 0+1 = [3,0]; slot1 = rows 2+3 = [0,7]
        assert out.tolist() == [[3.0, 0.0, 0.0, 7.0]]

    def test_repeated_key_counts_twice(self):
        layer = EmbeddingLayer(1, 1)
        batch = make_batch([[5, 5]])
        uniq = np.array([5], dtype=np.uint64)
        out = layer.forward(batch, uniq, np.array([[2.0]], dtype=np.float32))
        assert out[0, 0] == 4.0

    def test_missing_key_raises(self):
        layer = EmbeddingLayer(1, 1)
        batch = make_batch([[9]])
        with pytest.raises(KeyError):
            layer.forward(
                batch, np.array([1], dtype=np.uint64), np.zeros((1, 1), np.float32)
            )

    def test_non_divisible_row_rejected(self):
        layer = EmbeddingLayer(2, 1)
        batch = make_batch([[1, 2, 3]])  # length 3, 2 slots
        with pytest.raises(ValueError, match="divisible"):
            layer.forward(
                batch,
                np.array([1, 2, 3], dtype=np.uint64),
                np.zeros((3, 1), np.float32),
            )

    def test_empty_rows_with_single_slot(self):
        layer = EmbeddingLayer(1, 2)
        batch = make_batch([[], [4], []])
        uniq = np.array([4], dtype=np.uint64)
        out = layer.forward(batch, uniq, np.ones((1, 2), dtype=np.float32))
        assert out[0].tolist() == [0.0, 0.0]
        assert out[1].tolist() == [1.0, 1.0]


class TestEmbeddingBackward:
    def test_gradient_scatter(self):
        layer = EmbeddingLayer(1, 1)
        batch = make_batch([[1, 2], [2]])
        uniq = np.array([1, 2], dtype=np.uint64)
        layer.forward(batch, uniq, np.zeros((2, 1), np.float32))
        grad = layer.backward(np.array([[1.0], [10.0]]), uniq)
        # key1 appears in row0; key2 in rows 0 and 1.
        assert grad.grads[:, 0].tolist() == [1.0, 11.0]

    def test_numerical_gradient(self):
        rng = np.random.default_rng(0)
        layer = EmbeddingLayer(2, 2)
        batch = make_batch([[0, 1, 2, 3], [1, 0, 3, 2]], labels=[1, 0])
        uniq = np.array([0, 1, 2, 3], dtype=np.uint64)
        emb = rng.normal(size=(4, 2)).astype(np.float32)

        def loss_of(e):
            out = layer.forward(batch, uniq, e.astype(np.float32))
            loss, _, _ = bce_with_logits(out.sum(axis=1), batch.labels)
            return loss

        out = layer.forward(batch, uniq, emb)
        loss, _, gl = bce_with_logits(out.sum(axis=1), batch.labels)
        grad_feats = np.repeat(gl[:, None], out.shape[1], axis=1)
        sg = layer.backward(grad_feats, uniq)
        eps = 1e-4
        for i, j in [(0, 0), (3, 1)]:
            ep = emb.copy()
            ep[i, j] += eps
            em = emb.copy()
            em[i, j] -= eps
            numeric = (loss_of(ep) - loss_of(em)) / (2 * eps)
            assert sg.grads[i, j] == pytest.approx(numeric, rel=1e-2, abs=1e-6)

    def test_backward_before_forward(self):
        layer = EmbeddingLayer(1, 1)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 1)), np.array([1], dtype=np.uint64))


class TestSparseOptimizers:
    def test_sgd_value_dim(self):
        assert SparseSGD(4, 0.1).value_dim == 4

    def test_adagrad_value_dim_doubles(self):
        assert SparseAdagrad(4, 0.1).value_dim == 8

    def test_sgd_step(self):
        opt = SparseSGD(2, lr=0.5)
        new = opt.apply(np.ones((1, 2), np.float32), np.ones((1, 2)))
        assert np.all(new == 0.5)

    def test_adagrad_decreasing_effective_lr(self):
        opt = SparseAdagrad(1, lr=1.0)
        v = np.zeros((1, 2), np.float32)
        g = np.ones((1, 1))
        v1 = opt.apply(v, g)
        step1 = abs(v1[0, 0])
        v2 = opt.apply(v1, g)
        step2 = abs(v2[0, 0] - v1[0, 0])
        assert step2 < step1
        assert v2[0, 1] == 2.0  # accumulator = sum of squares

    def test_init_for_keys_deterministic_and_order_free(self):
        opt = SparseAdagrad(4, lr=0.1)
        keys = np.array([10, 20, 30], dtype=np.uint64)
        a = opt.init_for_keys(keys, seed=5)
        b = opt.init_for_keys(keys[::-1], seed=5)[::-1]
        assert np.array_equal(a, b)
        # accumulator half starts at zero
        assert np.all(a[:, 4:] == 0)

    def test_init_for_keys_seed_sensitivity(self):
        opt = SparseSGD(2, lr=0.1)
        keys = np.array([1, 2], dtype=np.uint64)
        assert not np.array_equal(
            opt.init_for_keys(keys, seed=1), opt.init_for_keys(keys, seed=2)
        )

    def test_embedding_slice(self):
        opt = SparseAdagrad(2, lr=0.1)
        values = np.array([[1, 2, 9, 9]], dtype=np.float32)
        assert opt.embedding(values).tolist() == [[1.0, 2.0]]

    def test_validation(self):
        with pytest.raises(ValueError):
            SparseSGD(0, 0.1)
        with pytest.raises(ValueError):
            SparseSGD(2, -1)
        with pytest.raises(ValueError):
            SparseAdagrad(2, 0.1).apply(np.zeros((1, 4), np.float32), np.zeros((2, 2)))


class TestDenseOptimizers:
    def test_sgd_step(self):
        p = [np.ones(3, dtype=np.float32)]
        DenseSGD(0.5).step(p, [np.ones(3)])
        assert np.all(p[0] == 0.5)

    def test_adagrad_bounded_first_step(self):
        p = [np.zeros(2, dtype=np.float32)]
        opt = DenseAdagrad(lr=0.1)
        opt.step(p, [np.array([1.0, 100.0])])
        # Adagrad normalizes: both coordinates move ~lr on first step.
        assert abs(p[0][0] + 0.1) < 1e-3
        assert abs(p[0][1] + 0.1) < 1e-3

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            DenseSGD(0.1).step([np.zeros(2)], [])


class TestCTRModel:
    @pytest.fixture
    def spec(self):
        return ModelSpec(
            name="m",
            nonzeros_per_example=4,
            n_sparse=100,
            n_dense=10,
            size_gb=0.001,
            mpi_nodes=1,
            embedding_dim=2,
            hidden_layers=(8,),
            n_slots=2,
        )

    def test_train_minibatch_returns_sparse_grads(self, spec):
        model = CTRModel(spec, seed=0)
        batch = make_batch([[0, 1, 2, 3]], labels=[1])
        uniq = np.array([0, 1, 2, 3], dtype=np.uint64)
        emb = np.zeros((4, 2), dtype=np.float32)
        result = model.train_minibatch(batch, uniq, emb)
        assert result.sparse_grad.keys.tolist() == [0, 1, 2, 3]
        assert result.sparse_grad.grads.shape == (4, 2)
        assert result.loss > 0

    def test_training_reduces_loss(self, spec):
        from repro.data.generator import CTRDataGenerator

        model = CTRModel(spec, seed=0)
        sparse_opt = SparseAdagrad(2, lr=0.2)
        dense_opt = DenseAdagrad(lr=0.2)
        gen = CTRDataGenerator(spec, seed=0)
        store: dict[int, np.ndarray] = {}

        def fetch(keys):
            out = np.zeros((keys.size, sparse_opt.value_dim), np.float32)
            for i, k in enumerate(keys):
                if int(k) not in store:
                    store[int(k)] = sparse_opt.init_for_keys(
                        keys[i : i + 1], seed=0
                    )[0]
                out[i] = store[int(k)]
            return out

        batch = gen.batch(0, 256)
        losses = []
        for _ in range(30):
            uniq = batch.unique_keys()
            values = fetch(uniq)
            res = model.train_minibatch(batch, uniq, sparse_opt.embedding(values))
            new_vals = sparse_opt.apply(values, res.sparse_grad.grads)
            for i, k in enumerate(uniq):
                store[int(k)] = new_vals[i]
            dense_opt.step(
                model.mlp.parameters(),
                [g.astype(np.float32) for g in model.mlp.gradients()],
            )
            losses.append(res.loss)
        assert losses[-1] < losses[0] * 0.8

    def test_predict_proba_in_unit_interval(self, spec):
        model = CTRModel(spec, seed=0)
        batch = make_batch([[0, 1, 2, 3]])
        uniq = np.array([0, 1, 2, 3], dtype=np.uint64)
        p = model.predict_proba(batch, uniq, np.zeros((4, 2), np.float32))
        assert np.all((p > 0) & (p < 1))

    def test_dense_state_roundtrip(self, spec):
        a = CTRModel(spec, seed=0)
        b = CTRModel(spec, seed=5)
        b.load_dense_state(a.dense_state())
        batch = make_batch([[0, 1, 2, 3]])
        uniq = np.array([0, 1, 2, 3], dtype=np.uint64)
        emb = np.ones((4, 2), dtype=np.float32)
        assert np.array_equal(
            a.forward(batch, uniq, emb), b.forward(batch, uniq, emb)
        )
