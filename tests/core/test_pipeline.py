"""Tests for the 4-stage pipeline simulator (Appendix B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import PipelineSimulator, STAGE_NAMES


class TestValidation:
    def test_invalid_stage_count(self):
        with pytest.raises(ValueError):
            PipelineSimulator(n_stages=0)

    def test_queue_capacity_count(self):
        with pytest.raises(ValueError):
            PipelineSimulator(n_stages=4, queue_capacity=(1, 2))

    def test_queue_capacity_positive(self):
        with pytest.raises(ValueError):
            PipelineSimulator(n_stages=2, queue_capacity=(0,))

    def test_stage_times_shape(self):
        sim = PipelineSimulator()
        with pytest.raises(ValueError):
            sim.schedule(np.ones((3, 2)))

    def test_negative_times(self):
        sim = PipelineSimulator()
        with pytest.raises(ValueError):
            sim.schedule(-np.ones((2, 4)))


class TestScheduling:
    def test_single_batch_is_serial(self):
        sim = PipelineSimulator()
        sched = sim.schedule(np.array([[1.0, 2.0, 3.0, 4.0]]))
        assert sched.makespan == pytest.approx(10.0)

    def test_steady_state_equals_bottleneck(self):
        """Paper: 'the overall execution time for each batch is dominated
        by the slowest stage'."""
        sim = PipelineSimulator()
        times = np.tile([1.0, 5.0, 2.0, 3.0], (20, 1))
        sched = sim.schedule(times)
        assert sched.steady_state_interval == pytest.approx(5.0)

    def test_pipeline_beats_serial(self):
        sim = PipelineSimulator()
        times = np.tile([2.0, 2.0, 2.0, 2.0], (10, 1))
        sched = sim.schedule(times)
        assert sched.makespan < sim.serial_makespan(times)
        # Ideal: fill (8) + 9 more bottleneck intervals (2 each).
        assert sched.makespan == pytest.approx(8 + 9 * 2)

    def test_stage_order_respected(self):
        sim = PipelineSimulator()
        sched = sim.schedule(np.ones((5, 4)))
        for b in range(5):
            for s in range(1, 4):
                assert sched.start[b, s] >= sched.finish[b, s - 1]

    def test_resource_serialization(self):
        sim = PipelineSimulator()
        sched = sim.schedule(np.ones((5, 4)))
        for b in range(1, 5):
            for s in range(4):
                assert sched.start[b, s] >= sched.finish[b - 1, s]

    def test_backpressure_with_queue_capacity_one(self):
        """A slow downstream stage stalls the producer once its queue
        of one is full."""
        sim = PipelineSimulator(n_stages=2, queue_capacity=1, stage_names=("a", "b"))
        times = np.tile([1.0, 10.0], (4, 1))
        sched = sim.schedule(times)
        # Stage a of batch 2 cannot start until stage b started batch 1.
        assert sched.start[2, 0] >= sched.start[1, 1]

    def test_deeper_queues_reduce_stalls(self):
        times = np.tile([1.0, 3.0, 1.0, 1.0], (12, 1))
        shallow = PipelineSimulator(queue_capacity=1).schedule(times)
        deep = PipelineSimulator(queue_capacity=4).schedule(times)
        assert deep.makespan <= shallow.makespan

    def test_bottleneck_stage_identified(self):
        sim = PipelineSimulator()
        sched = sim.schedule(np.tile([1.0, 1.0, 9.0, 1.0], (6, 1)))
        assert sched.bottleneck_stage() == 2
        assert sched.stage_names == STAGE_NAMES

    def test_empty_schedule(self):
        sim = PipelineSimulator()
        sched = sim.schedule(np.zeros((0, 4)))
        assert sched.makespan == 0.0


class TestHidesIOLatency:
    def test_io_hidden_behind_gpu(self):
        """Paper Section 3: with the GPU as the bottleneck, adding I/O
        stages does not change the steady-state interval."""
        sim = PipelineSimulator()
        gpu_only = np.tile([0.0, 0.0, 0.0, 4.0], (15, 1))
        with_io = np.tile([3.0, 3.0, 3.0, 4.0], (15, 1))
        a = sim.schedule(gpu_only).steady_state_interval
        b = sim.schedule(with_io).steady_state_interval
        assert b == pytest.approx(a)


@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=0, max_value=10**6),
)
@settings(max_examples=40, deadline=None)
def test_makespan_bounds(n_batches, n_stages, seed):
    """Pipelined makespan is between the bottleneck lower bound and the
    fully serial upper bound."""
    rng = np.random.default_rng(seed)
    times = rng.uniform(0.1, 5.0, size=(n_batches, n_stages))
    sim = PipelineSimulator(
        n_stages=n_stages, queue_capacity=2, stage_names=tuple(f"s{i}" for i in range(n_stages))
    )
    sched = sim.schedule(times)
    lower = times.sum(axis=0).max()
    upper = times.sum()
    assert lower - 1e-9 <= sched.makespan <= upper + 1e-9
