"""Failure-injection and boundary tests across the stack.

These pin down what happens when capacity assumptions are violated —
the errors must be loud and specific, never silent corruption.
"""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.core.cluster import HPSCluster
from repro.hbm.hash_table import HashTable
from repro.mem.cache import CombinedCache


class TestCapacityViolations:
    def test_hbm_overflow_is_loud(self, tiny_spec):
        """A working set beyond GPU capacity must raise, not wrap."""
        cfg = ClusterConfig(
            n_nodes=1,
            gpus_per_node=2,
            minibatches_per_gpu=1,
            mem_capacity_params=50_000,
            hbm_capacity_params=10,  # absurdly small
            ssd_file_capacity=64,
            seed=0,
        )
        cluster = HPSCluster(tiny_spec, cfg, functional_batch_size=512)
        with pytest.raises(RuntimeError, match="capacity"):
            cluster.train_round()

    def test_pinned_overflow_is_loud(self, tiny_spec):
        """A pinned working set beyond MEM capacity must raise with the
        paper's explanation."""
        cfg = ClusterConfig(
            n_nodes=1,
            gpus_per_node=2,
            minibatches_per_gpu=1,
            mem_capacity_params=20,  # smaller than any working set
            hbm_capacity_params=50_000,
            ssd_file_capacity=64,
            seed=0,
        )
        cluster = HPSCluster(tiny_spec, cfg, functional_batch_size=512)
        with pytest.raises(RuntimeError, match="pinned"):
            cluster.train_round()

    def test_hash_table_never_silently_drops(self):
        t = HashTable(4, 1)
        keys = np.arange(4, dtype=np.uint64)
        t.insert(keys, np.zeros((4, 1), np.float32))
        with pytest.raises(RuntimeError):
            t.insert(np.array([99], dtype=np.uint64), np.zeros((1, 1), np.float32))
        # The original contents are intact after the failed insert.
        _, found = t.get(keys)
        assert found.all()


class TestDataBoundaries:
    def test_minibatch_count_exceeding_examples(self, tiny_spec):
        """More (GPU x minibatch) slots than examples: empty shards must
        be skipped cleanly."""
        cfg = ClusterConfig(
            n_nodes=1,
            gpus_per_node=4,
            minibatches_per_gpu=4,
            mem_capacity_params=4_000,
            hbm_capacity_params=50_000,
            ssd_file_capacity=64,
            seed=0,
        )
        cluster = HPSCluster(tiny_spec, cfg, functional_batch_size=8)
        stats = cluster.train_round()
        assert stats.n_examples == 8

    def test_single_gpu_single_node(self, tiny_spec):
        cfg = ClusterConfig(
            n_nodes=1,
            gpus_per_node=1,
            minibatches_per_gpu=1,
            mem_capacity_params=4_000,
            hbm_capacity_params=50_000,
            ssd_file_capacity=64,
            seed=0,
        )
        cluster = HPSCluster(tiny_spec, cfg, functional_batch_size=64)
        stats = cluster.train_round()
        assert np.isfinite(stats.mean_loss)

    def test_repeated_rounds_keep_invariants(self, tiny_spec):
        cfg = ClusterConfig(
            n_nodes=2,
            gpus_per_node=2,
            minibatches_per_gpu=2,
            mem_capacity_params=2_000,
            hbm_capacity_params=50_000,
            ssd_file_capacity=64,
            cache_lru_fraction=0.6,
            seed=1,
        )
        cluster = HPSCluster(tiny_spec, cfg, functional_batch_size=256)
        cluster.train(6)
        for node in cluster.nodes:
            node.ssd_ps.check_invariants()
            # No pins leak across batches.
            assert node.mem_ps.cache.lru.pinned_count() == 0


class TestCacheEdges:
    def test_minimum_viable_cache(self):
        c = CombinedCache(2, lru_fraction=0.5, value_dim=1)
        c.put(1, np.zeros(1, np.float32))
        c.put(2, np.zeros(1, np.float32))
        c.put(3, np.zeros(1, np.float32))
        assert len(c) <= 2

    def test_pending_flush_empty_by_default(self):
        c = CombinedCache(4, value_dim=1)
        fk, fv = c.take_pending_flush()
        assert fk.size == 0 and fv.shape == (0, 1)
