"""Tests for the discrete-event pipelined executor (core/engine.py)."""

import numpy as np
import pytest

from repro.core.cluster import HPSCluster
from repro.core.engine import PipelinedEngine, StageDef
from repro.core.pipeline import PipelineSimulator


def recording_stages(durations, calls=None):
    """StageDefs whose closures replay ``durations[b, s]`` and log calls."""
    durations = np.asarray(durations, dtype=np.float64)
    calls = calls if calls is not None else []

    def make(s):
        def fn(b):
            calls.append((b, s))
            return float(durations[b, s])

        return fn

    return [
        StageDef(f"s{s}", make(s)) for s in range(durations.shape[1])
    ], calls


class TestValidation:
    def test_no_stages(self):
        with pytest.raises(ValueError):
            PipelinedEngine([])

    def test_queue_capacity_count(self):
        stages, _ = recording_stages(np.ones((1, 3)))
        with pytest.raises(ValueError):
            PipelinedEngine(stages, queue_capacity=(1,))

    def test_queue_capacity_positive(self):
        stages, _ = recording_stages(np.ones((1, 2)))
        with pytest.raises(ValueError):
            PipelinedEngine(stages, queue_capacity=0)

    def test_negative_duration_rejected(self):
        engine = PipelinedEngine([StageDef("bad", lambda b: -1.0)])
        with pytest.raises(ValueError, match="invalid duration"):
            engine.run(1)

    def test_nan_duration_rejected(self):
        engine = PipelinedEngine([StageDef("bad", lambda b: float("nan"))])
        with pytest.raises(ValueError, match="invalid duration"):
            engine.run(1)

    def test_negative_batches_rejected(self):
        stages, _ = recording_stages(np.ones((1, 2)))
        with pytest.raises(ValueError):
            PipelinedEngine(stages).run(-1)


class TestScheduleParity:
    """The engine and the analytic simulator share one recurrence, so a run
    over closures must produce the exact schedule the simulator computes
    from the recorded durations."""

    @pytest.mark.parametrize("queue_capacity", [1, 2, 4])
    def test_matches_simulator_exactly(self, queue_capacity):
        rng = np.random.default_rng(17)
        durations = rng.uniform(0.1, 5.0, size=(12, 4))
        stages, _ = recording_stages(durations)
        run = PipelinedEngine(stages, queue_capacity=queue_capacity).run(12)
        sim = PipelineSimulator(
            n_stages=4,
            queue_capacity=queue_capacity,
            stage_names=tuple(s.name for s in stages),
        )
        expected = sim.schedule(run.stage_times)
        assert np.array_equal(run.schedule.start, expected.start)
        assert np.array_equal(run.schedule.finish, expected.finish)
        assert np.array_equal(run.stage_times, durations)

    def test_execution_order_is_batch_major(self):
        """Closures fire in canonical dependency order — the parity
        guarantee for stateful stage work."""
        stages, calls = recording_stages(np.ones((4, 3)))
        run = PipelinedEngine(stages).run(4)
        expected = [(b, s) for b in range(4) for s in range(3)]
        assert calls == expected
        assert list(run.execution_order) == expected


class TestOverlap:
    def test_makespan_beats_serial(self):
        stages, _ = recording_stages(np.tile([2.0, 2.0, 2.0, 2.0], (8, 1)))
        run = PipelinedEngine(stages).run(8)
        assert run.makespan < run.serial_makespan
        assert run.speedup > 1.0

    def test_makespan_bounded_below_by_bottleneck(self):
        durations = np.tile([1.0, 5.0, 2.0, 3.0], (10, 1))
        stages, _ = recording_stages(durations)
        run = PipelinedEngine(stages).run(10)
        assert run.makespan >= durations.sum(axis=0).max()

    def test_single_batch_is_serial(self):
        stages, _ = recording_stages(np.array([[1.0, 2.0, 3.0, 4.0]]))
        run = PipelinedEngine(stages).run(1)
        assert run.makespan == pytest.approx(10.0)
        assert run.speedup == pytest.approx(1.0)

    def test_empty_run(self):
        stages, calls = recording_stages(np.ones((1, 4)))
        run = PipelinedEngine(stages).run(0)
        assert run.makespan == 0.0
        assert calls == []

    def test_events_sorted_by_start(self):
        rng = np.random.default_rng(3)
        stages, _ = recording_stages(rng.uniform(0.1, 2.0, size=(6, 4)))
        run = PipelinedEngine(stages).run(6)
        events = run.events()
        assert len(events) == 6 * 4
        starts = [e.start for e in events]
        assert starts == sorted(starts)
        assert all(e.duration >= 0 for e in events)


class TestBackpressure:
    def test_queue_capacity_one_stalls_producer(self):
        """A slow downstream stage stalls the producer once its queue of
        one is full: stage 0 of batch 2 waits for stage 1 to start batch 1."""
        stages, _ = recording_stages(np.tile([1.0, 10.0], (4, 1)))
        run = PipelinedEngine(stages, queue_capacity=1).run(4)
        assert run.schedule.start[2, 0] >= run.schedule.start[1, 1]
        assert run.queue_stall_seconds(0) > 0.0

    def test_deeper_queues_reduce_stalls(self):
        durations = np.tile([1.0, 3.0, 1.0, 1.0], (12, 1))
        shallow = PipelinedEngine(
            recording_stages(durations)[0], queue_capacity=1
        ).run(12)
        deep = PipelinedEngine(
            recording_stages(durations)[0], queue_capacity=4
        ).run(12)
        assert deep.makespan <= shallow.makespan
        assert deep.queue_stall_seconds(0) <= shallow.queue_stall_seconds(0)

    def test_no_stalls_without_bottleneck(self):
        stages, _ = recording_stages(np.tile([2.0, 1.0, 1.0, 1.0], (6, 1)))
        run = PipelinedEngine(stages).run(6)
        for s in range(4):
            assert run.queue_stall_seconds(s) == pytest.approx(0.0)

    def test_shadow_idle_is_span_minus_busy(self):
        """A fast stage behind a slow one idles; the bottleneck never does.

        With a 2s stage 0 feeding a 1s stage 1, stage 1 waits 1s between
        every pair of its 5 consecutive events — the shadow budget the
        depth-k prefetch stage schedules its resolve work into.
        """
        stages, _ = recording_stages(np.tile([2.0, 1.0, 1.0, 1.0], (6, 1)))
        run = PipelinedEngine(stages).run(6)
        assert run.shadow_idle_seconds(0) == pytest.approx(0.0)
        assert run.shadow_idle_seconds(1) == pytest.approx(5.0)

    def test_shadow_idle_empty_run(self):
        stages, _ = recording_stages(np.ones((1, 4)))
        run = PipelinedEngine(stages).run(0)
        assert run.shadow_idle_seconds(0) == 0.0


class TestClusterPipelined:
    """Lockstep-vs-pipelined parity on the real training stack."""

    @pytest.fixture
    def pair(self, tiny_spec, small_config):
        def build():
            return HPSCluster(
                tiny_spec, small_config, functional_batch_size=256
            )

        return build(), build()

    def test_parameters_bit_identical(self, pair):
        lockstep, pipelined = pair
        lockstep.train(4)
        pipelined.train_pipelined(4)
        probe = lockstep.generator.batch(77, 512).unique_keys()
        assert np.array_equal(
            lockstep.lookup_embeddings(probe),
            pipelined.lookup_embeddings(probe),
        )
        for node_a, node_b in zip(lockstep.nodes, pipelined.nodes):
            for a, b in zip(
                node_a.model.dense_state(), node_b.model.dense_state()
            ):
                assert np.array_equal(a, b)

    def test_stats_match_lockstep(self, pair):
        lockstep, pipelined = pair
        lock_stats = lockstep.train(3)
        run = pipelined.train_pipelined(3)
        assert [s.mean_loss for s in run.stats] == [
            s.mean_loss for s in lock_stats
        ]
        assert [s.cache_hit_rate for s in run.stats] == [
            s.cache_hit_rate for s in lock_stats
        ]
        derived = np.array([s.pipeline_stage_seconds for s in lock_stats])
        assert np.allclose(derived, run.stage_times, rtol=1e-12, atol=0)

    def test_makespan_strictly_below_serial(self, pair):
        _, pipelined = pair
        run = pipelined.train_pipelined(4)
        assert np.all(run.stage_times > 0)  # non-degenerate stages
        assert run.makespan < run.serial_makespan
        assert run.speedup > 1.0

    def test_rounds_and_history_advance(self, tiny_spec, small_config):
        cluster = HPSCluster(tiny_spec, small_config, functional_batch_size=256)
        cluster.train_round()
        run = cluster.train_pipelined(2)
        assert cluster.rounds_completed == 3
        assert len(cluster.history) == 3
        assert [s.round_index for s in run.stats] == [1, 2]
        assert cluster.history[1:] == run.stats

    def test_queue_capacity_changes_schedule_not_params(
        self, tiny_spec, small_config
    ):
        def build():
            return HPSCluster(
                tiny_spec, small_config, functional_batch_size=256
            )

        shallow, deep = build(), build()
        run_shallow = shallow.train_pipelined(4, queue_capacity=1)
        run_deep = deep.train_pipelined(4, queue_capacity=3)
        assert run_deep.makespan <= run_shallow.makespan
        probe = shallow.generator.batch(5, 256).unique_keys()
        assert np.array_equal(
            shallow.lookup_embeddings(probe), deep.lookup_embeddings(probe)
        )


class TestStageRegistry:
    """Hygiene of the cluster's pluggable stage registry."""

    @pytest.fixture
    def cluster(self, tiny_spec, small_config):
        return HPSCluster(tiny_spec, small_config, functional_batch_size=256)

    def test_unregister_removes_a_registered_stage(self, cluster):
        fired = []
        cluster.register_stage(
            "probe", lambda ctx: fired.append(ctx.round_index) or 0.0,
            after="train",
        )
        cluster.train(1)
        cluster.unregister_stage("probe")
        cluster.train(1)
        assert fired == [0]  # not fired after removal
        assert [n for n, _ in cluster.stage_functions()] == [
            "read", "prepare", "load", "train",
        ]
        # The name is free for re-registration after removal.
        cluster.register_stage("probe", lambda ctx: 0.0, after="train")

    def test_unregister_refuses_base_stages(self, cluster):
        for name in ("read", "prepare", "load", "train"):
            with pytest.raises(ValueError, match="base"):
                cluster.unregister_stage(name)

    def test_unregister_unknown_stage_is_an_error(self, cluster):
        with pytest.raises(ValueError, match="not registered"):
            cluster.unregister_stage("nope")

    def test_rewrapping_wrapped_stages_is_an_error(self, cluster):
        cluster.wrap_stages(lambda name, fn: fn)
        with pytest.raises(RuntimeError, match="already wrapped"):
            cluster.wrap_stages(lambda name, fn: fn)

    def test_unwrap_restores_the_original_registry(self, cluster):
        before = list(cluster.stage_functions())
        seen = []

        def wrap(name, fn):
            def wrapped(ctx):
                seen.append(name)
                return fn(ctx)

            return wrapped

        cluster.wrap_stages(wrap)
        assert list(cluster.stage_functions()) != before
        cluster.train(1)
        assert seen == ["read", "prepare", "load", "train"]
        cluster.unwrap_stages()
        assert list(cluster.stage_functions()) == before
        cluster.train(1)
        assert seen == ["read", "prepare", "load", "train"]  # no new entries
        # A second unwrap has nothing to undo.
        with pytest.raises(RuntimeError, match="not wrapped"):
            cluster.unwrap_stages()

    def test_unwrap_keeps_stages_registered_while_wrapped(self, cluster):
        cluster.wrap_stages(lambda name, fn: fn)
        fired = []
        cluster.register_stage(
            "late", lambda ctx: fired.append(ctx.round_index) or 0.0,
            after="train",
        )
        cluster.unwrap_stages()
        assert [n for n, _ in cluster.stage_functions()] == [
            "read", "prepare", "load", "train", "late",
        ]
        cluster.train(1)
        assert fired == [0]  # survived the unwrap, still driven

    def test_wrapped_stages_train_bit_identically(
        self, tiny_spec, small_config
    ):
        plain = HPSCluster(tiny_spec, small_config, functional_batch_size=256)
        wrapped = HPSCluster(
            tiny_spec, small_config, functional_batch_size=256
        )
        wrapped.wrap_stages(lambda name, fn: lambda ctx: fn(ctx))
        plain.train(3)
        wrapped.train(3)
        probe = plain.generator.batch(5, 256).unique_keys()
        assert np.array_equal(
            plain.lookup_embeddings(probe),
            wrapped.lookup_embeddings(probe),
        )
