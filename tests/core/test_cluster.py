"""Integration tests for the full hierarchical PS cluster (Algorithm 1)."""

import numpy as np
import pytest

from repro.config import ClusterConfig
from repro.core.cluster import HPSCluster
from repro.core.trainer import ReferenceTrainer, Trainer


@pytest.fixture
def cluster(tiny_spec, small_config):
    return HPSCluster(tiny_spec, small_config, functional_batch_size=256)


class TestTrainRound:
    def test_round_produces_stats(self, cluster):
        stats = cluster.train_round()
        assert stats.n_examples == 256 * 2  # 2 nodes
        assert stats.read_seconds > 0
        assert stats.mean_loss > 0
        assert stats.n_working_params > 0

    def test_rounds_advance(self, cluster):
        cluster.train(3)
        assert cluster.rounds_completed == 3
        assert len(cluster.history) == 3

    def test_loss_decreases_over_training(self, tiny_spec, small_config):
        cluster = HPSCluster(tiny_spec, small_config, functional_batch_size=512)
        stats = cluster.train(8)
        first = np.mean([s.mean_loss for s in stats[:2]])
        last = np.mean([s.mean_loss for s in stats[-2:]])
        assert last < first

    def test_cache_warms_up(self, cluster):
        # Round 0 is not exactly zero in multi-node runs: a node's remote
        # pulls warm the owner's cache before the owner's own prepare.
        stats = cluster.train(4)
        assert stats[0].cache_hit_rate < stats[-1].cache_hit_rate
        assert stats[-1].cache_hit_rate > 0.3

    def test_stage_times_positive(self, cluster):
        s = cluster.train_round()
        assert s.pull_push_seconds >= 0
        assert s.train_seconds > 0
        assert s.bottleneck_seconds == max(s.stage_times)

    def test_auc_improves_over_random(self, tiny_spec, small_config):
        cluster = HPSCluster(tiny_spec, small_config, functional_batch_size=512)
        cluster.train(8)
        eval_batch = cluster.generator.batch(500, 2048)
        assert cluster.evaluate_auc(eval_batch) > 0.55


class TestLosslessness:
    """Paper Fig. 3(b): hierarchical training is lossless — per-mini-batch
    synchronization makes it mathematically identical to the single-store
    reference up to float reduction order."""

    def test_losses_match_reference_exactly(self, tiny_spec, small_config):
        cluster = HPSCluster(tiny_spec, small_config, functional_batch_size=256)
        ref = ReferenceTrainer(tiny_spec, small_config, functional_batch_size=256)
        for _ in range(4):
            s = cluster.train_round()
            l = ref.train_round()
            assert s.mean_loss == pytest.approx(l, rel=1e-6)

    def test_embeddings_match_reference(self, tiny_spec, small_config):
        cluster = HPSCluster(tiny_spec, small_config, functional_batch_size=256)
        ref = ReferenceTrainer(tiny_spec, small_config, functional_batch_size=256)
        for _ in range(3):
            cluster.train_round()
            ref.train_round()
        probe = cluster.generator.batch(77, 128).unique_keys()
        a = cluster.lookup_embeddings(probe)
        b = ref.embedding_of(probe)
        assert np.allclose(a, b, atol=1e-5)

    def test_auc_parity_within_paper_tolerance(self, tiny_spec, small_config):
        cluster = HPSCluster(tiny_spec, small_config, functional_batch_size=256)
        ref = ReferenceTrainer(tiny_spec, small_config, functional_batch_size=256)
        for _ in range(4):
            cluster.train_round()
            ref.train_round()
        eval_batch = cluster.generator.batch(900, 2048)
        a = cluster.evaluate_auc(eval_batch)
        b = ref.evaluate_auc(eval_batch)
        assert abs(a / b - 1.0) < 1e-3  # paper: within 0.1%

    def test_dense_replicas_stay_identical(self, tiny_spec, small_config):
        cluster = HPSCluster(tiny_spec, small_config, functional_batch_size=256)
        cluster.train(3)
        states = [n.model.dense_state() for n in cluster.nodes]
        for s in states[1:]:
            for a, b in zip(states[0], s):
                assert np.array_equal(a, b)


class TestMultiNodeConsistency:
    def test_node_counts_agree(self, tiny_spec):
        """1-node and 2-node clusters on the same per-round data produce
        the same model (data-parallel determinism)."""
        cfg1 = ClusterConfig(
            n_nodes=1, gpus_per_node=4, minibatches_per_gpu=2,
            mem_capacity_params=8_000, hbm_capacity_params=50_000,
            ssd_file_capacity=128, seed=7,
        )
        # Note: a 2-node cluster reads 2 batches/round, so this checks
        # self-consistency of each deployment rather than cross-equality.
        c = HPSCluster(tiny_spec, cfg1, functional_batch_size=256)
        stats = c.train(3)
        assert all(s.n_examples == 256 for s in stats)

    def test_three_nodes_non_power_of_two(self, tiny_spec):
        cfg = ClusterConfig(
            n_nodes=3, gpus_per_node=2, minibatches_per_gpu=1,
            mem_capacity_params=6_000, hbm_capacity_params=50_000,
            ssd_file_capacity=128, seed=3,
        )
        cluster = HPSCluster(tiny_spec, cfg, functional_batch_size=128)
        ref = ReferenceTrainer(tiny_spec, cfg, functional_batch_size=128)
        for _ in range(2):
            s = cluster.train_round()
            l = ref.train_round()
            assert s.mean_loss == pytest.approx(l, rel=1e-6)


class TestTrainer:
    def test_history_collection(self, tiny_spec, small_config):
        cluster = HPSCluster(tiny_spec, small_config, functional_batch_size=256)
        eval_batch = cluster.generator.batch(999, 512)
        trainer = Trainer(cluster, eval_batch=eval_batch, eval_every=2)
        hist = trainer.run(4)
        assert hist.n_rounds == 4
        assert len(hist.aucs) == 2
        assert hist.throughput() > 0

    def test_final_auc_requires_eval_batch(self, cluster):
        trainer = Trainer(cluster)
        with pytest.raises(ValueError):
            trainer.final_auc()


class TestRoundBoundaryGuard:
    """Cross-tier reads are rejected while HBM holds the only fresh copy."""

    def test_lookup_rejected_mid_round(self, cluster):
        from repro.core.cluster import RoundContext

        cluster.train_round()
        probe = cluster.generator.batch(100, 64).unique_keys()
        ctx = RoundContext(round_index=cluster.rounds_completed)
        cluster.stage_read(ctx)
        cluster.stage_prepare(ctx)
        cluster.lookup_embeddings(probe)  # prepare alone is still coherent
        cluster.stage_load(ctx)
        with pytest.raises(RuntimeError, match="round boundary"):
            cluster.lookup_embeddings(probe)
        with pytest.raises(RuntimeError, match="round boundary"):
            cluster.evaluate_auc(cluster.generator.batch(101, 64))
        cluster.stage_train(ctx)
        # Write-back landed: the MEM tier is authoritative again.
        cluster.lookup_embeddings(probe)

    def test_training_modes_end_quiescent(self, tiny_spec, small_config):
        cluster = HPSCluster(tiny_spec, small_config, functional_batch_size=128)
        cluster.train(2)
        assert cluster._staged_rounds == 0
        cluster.train_pipelined(2)
        assert cluster._staged_rounds == 0
