"""Plan-driven MEM prefetch: stage registration, parity, pinning.

The prefetch stage resolves each node's full MEM working set (local
partition + peer-served partitions + owner-queue keys) in one cache
pass before prepare, pins it for the round, and every later MEM access
is a pure row gather.  Parameter values are cache-policy-independent,
so prefetch mode must train **bit-identical parameters** to every other
mode; simulated seconds form their own parity group (lockstep-prefetch,
pipelined-prefetch, and the scalar-cache oracle must agree exactly).
"""

import dataclasses

import numpy as np
import pytest

from repro.core.cluster import HPSCluster
from repro.plan import build_round_plan

N_ROUNDS = 16


def _build(spec, config, **kwargs):
    return HPSCluster(spec, config, functional_batch_size=192, **kwargs)


def _probe(cluster):
    return cluster.generator.batch(10_000, 1024).unique_keys()


def _assert_param_parity(a, b):
    probe = _probe(a)
    assert np.array_equal(a.lookup_embeddings(probe), b.lookup_embeddings(probe))
    for pa, pb in zip(
        a.nodes[0].model.dense_state(), b.nodes[0].model.dense_state()
    ):
        assert np.array_equal(pa, pb)


def _assert_stats_parity(stats_a, stats_b):
    assert len(stats_a) == len(stats_b)
    for sa, sb in zip(stats_a, stats_b):
        for f in dataclasses.fields(sa):
            va, vb = getattr(sa, f.name), getattr(sb, f.name)
            assert va == vb, f"BatchStats.{f.name}: {va} != {vb}"


@pytest.fixture
def pressured(small_config):
    # Small enough MEM tier that misses, evictions, and the SSD engage.
    return dataclasses.replace(small_config, mem_capacity_params=1_400)


@pytest.fixture
def pressured_prefetch(pressured):
    return dataclasses.replace(pressured, prefetch=True)


class TestStageRegistration:
    def test_prefetch_splices_into_the_pipeline(
        self, tiny_spec, pressured_prefetch
    ):
        cluster = _build(tiny_spec, pressured_prefetch)
        names = [n for n, _ in cluster.stage_functions()]
        assert names == ["read", "prefetch", "prepare", "load", "train"]

    def test_base_pipeline_unchanged_without_prefetch(
        self, tiny_spec, pressured
    ):
        cluster = _build(tiny_spec, pressured)
        names = [n for n, _ in cluster.stage_functions()]
        assert names == ["read", "prepare", "load", "train"]

    def test_register_validates(self, tiny_spec, pressured):
        cluster = _build(tiny_spec, pressured)
        with pytest.raises(ValueError, match="already registered"):
            cluster.register_stage("read", lambda ctx: 0.0, after="train")
        with pytest.raises(ValueError, match="unknown stage"):
            cluster.register_stage("extra", lambda ctx: 0.0, after="nope")
        # A registered stage really is driven by both execution modes.
        fired = []
        cluster.register_stage(
            "probe", lambda ctx: fired.append(ctx.round_index) or 0.0,
            after="load",
        )
        cluster.train(1)
        cluster.train_pipelined(2)
        assert fired == [0, 1, 2]

    def test_prefetch_requires_planned_execution(self, tiny_spec, pressured_prefetch):
        with pytest.raises(ValueError, match="use_plan"):
            _build(tiny_spec, pressured_prefetch, use_plan=False)


class TestPrefetchPlan:
    def test_segments_gather_their_constituents(self, tiny_spec, pressured):
        cluster = _build(tiny_spec, pressured)
        batches = [
            cluster.generator.batch(i, 192) for i in range(cluster.n_nodes)
        ]
        plan = build_round_plan(
            batches,
            node_partitioner=cluster.nodes[0].mem_ps.partitioner,
            gpu_partitioner=cluster.nodes[0].hbm_ps.params.partitioner,
            n_gpus=cluster.config.gpus_per_node,
            mb_rounds=cluster.config.minibatches_per_gpu,
            prefetch=True,
        )
        assert plan.prefetch is not None
        for i, pf in enumerate(plan.prefetch):
            node_plan = plan.nodes[i]
            # Sorted unique union.
            assert np.array_equal(pf.keys, np.unique(pf.keys))
            # Each segment gathers exactly its constituent key set.
            assert np.array_equal(
                pf.keys[pf.local_pos], node_plan.keys[node_plan.local_idx]
            )
            covered = [pf.local_pos]
            for p, pos in enumerate(pf.serve_pos):
                if p == i:
                    assert pos.size == 0
                    continue
                peer = plan.nodes[p]
                assert np.array_equal(
                    pf.keys[pos], peer.keys[peer.node_parts[i]]
                )
                covered.append(pos)
            for m, pos in enumerate(pf.update_pos):
                sp = plan.sync[m]
                assert np.array_equal(
                    pf.keys[pos], sp.keys[sp.nodes[i].missing_own_idx]
                )
                covered.append(pos)
            # The union holds nothing else.
            assert np.array_equal(
                np.unique(np.concatenate(covered)),
                np.arange(pf.keys.size, dtype=np.int64),
            )

    def test_unplanned_build_carries_no_prefetch(self, tiny_spec, pressured):
        cluster = _build(tiny_spec, pressured)
        batches = [
            cluster.generator.batch(i, 192) for i in range(cluster.n_nodes)
        ]
        plan = build_round_plan(
            batches,
            node_partitioner=cluster.nodes[0].mem_ps.partitioner,
            gpu_partitioner=cluster.nodes[0].hbm_ps.params.partitioner,
            n_gpus=cluster.config.gpus_per_node,
            mb_rounds=cluster.config.minibatches_per_gpu,
        )
        assert plan.prefetch is None


class TestPrefetchParity:
    def test_parameters_bit_identical_to_unprefetched(
        self, tiny_spec, pressured, pressured_prefetch
    ):
        base = _build(tiny_spec, pressured)
        pf = _build(tiny_spec, pressured_prefetch)
        stats_base = base.train(N_ROUNDS)
        stats_pf = pf.train(N_ROUNDS)
        # The workload must exercise the SSD tier for parity to bite.
        assert any(s.ssd_io_seconds > 0 for s in stats_base)
        _assert_param_parity(base, pf)
        # Losses ride on parameters, so they agree too; simulated seconds
        # legitimately differ (prefetch is its own sim-clock mode).
        assert [s.mean_loss for s in stats_base] == [
            s.mean_loss for s in stats_pf
        ]

    def test_pipelined_prefetch_matches_lockstep_exactly(
        self, tiny_spec, pressured_prefetch
    ):
        lock = _build(tiny_spec, pressured_prefetch)
        piped = _build(tiny_spec, pressured_prefetch)
        stats_lock = lock.train(N_ROUNDS)
        run = piped.train_pipelined(N_ROUNDS)
        _assert_stats_parity(stats_lock, run.stats)
        _assert_param_parity(lock, piped)

    def test_scalar_cache_oracle_matches_bulk_exactly(
        self, tiny_spec, pressured_prefetch
    ):
        bulk = _build(tiny_spec, pressured_prefetch)
        oracle = _build(tiny_spec, pressured_prefetch)
        for node in bulk.nodes:
            node.mem_ps.cache.force_scalar = False
        for node in oracle.nodes:
            node.mem_ps.cache.force_scalar = True
        stats_bulk = bulk.train(N_ROUNDS)
        stats_oracle = oracle.train(N_ROUNDS)
        for sb, so in zip(stats_bulk, stats_oracle):
            for f in dataclasses.fields(sb):
                if f.name.startswith("cache_"):
                    continue  # admission counters differ by construction
                assert getattr(sb, f.name) == getattr(so, f.name), f.name
        _assert_param_parity(bulk, oracle)
        # The bulk run never degraded to the per-key replay...
        assert all(s.cache_scalar_fallbacks == 0 for s in stats_bulk)
        # ...while the oracle replayed everything per key.
        assert all(s.cache_scalar_fallbacks > 0 for s in stats_oracle)

    def test_prefetch_admission_stays_collision_free(
        self, tiny_spec, pressured_prefetch
    ):
        """Under eviction pressure the prefetch-shaped batches (hot
        residents mixed with miss storms) must run collision-free: the
        LFU mixed-run planner handles the resident bumps in bulk."""
        pf = _build(tiny_spec, pressured_prefetch)
        for node in pf.nodes:
            node.mem_ps.cache.force_scalar = False
        stats = pf.train(N_ROUNDS)
        assert all(s.cache_scalar_fallbacks == 0 for s in stats)
        assert all(s.cache_collision_splits == 0 for s in stats)


class TestPrefetchMechanics:
    def test_round_boundary_releases_every_pin(
        self, tiny_spec, pressured_prefetch
    ):
        pf = _build(tiny_spec, pressured_prefetch)
        pf.train(3)
        for node in pf.nodes:
            assert node.mem_ps.cache.lru.pinned_count() == 0
            assert node.mem_ps._prefetch_plan is None

    def test_prefetch_seconds_reported_and_folded(
        self, tiny_spec, pressured_prefetch
    ):
        pf = _build(tiny_spec, pressured_prefetch)
        stats = pf.train(N_ROUNDS)
        # Under pressure the prefetch stage pays real SSD load time...
        assert any(s.prefetch_seconds > 0 for s in stats)
        for s in stats:
            # ...it is part of the MEM/SSD stage total...
            assert s.pull_push_seconds >= s.prefetch_seconds
            # ...and the 4-way stage decomposition still sums to the
            # serial makespan (prefetch folds into the prepare element).
            assert s.pipeline_stage_seconds[1] >= s.prefetch_seconds

    def test_checkpoint_restore_replays_bit_identically(
        self, tiny_spec, pressured_prefetch, tmp_path
    ):
        pf = _build(tiny_spec, pressured_prefetch)
        pf.train(4)
        pf.save_checkpoint(str(tmp_path))
        restored = HPSCluster.restore(str(tmp_path))
        assert restored.config.prefetch is True
        straight = _build(tiny_spec, pressured_prefetch)
        straight.train(6)
        restored.train(2)
        _assert_param_parity(straight, restored)


class TestExtentCachePlumbing:
    def test_config_reaches_the_file_store(self, tiny_spec, small_config):
        cfg = dataclasses.replace(small_config, ssd_extent_cache_files=3)
        cluster = _build(tiny_spec, cfg)
        for node in cluster.nodes:
            assert node.ssd_ps.store.extent_cache.max_files == 3
            assert node.ssd_ps.store.extent_cache.enabled

    def test_enabled_by_default(self, tiny_spec, small_config):
        # Default on since hits are priced at the warm host-copy rate —
        # the cache no longer forks sim-seconds parity groups.
        cluster = _build(tiny_spec, small_config)
        for node in cluster.nodes:
            assert node.ssd_ps.store.extent_cache.enabled
        off = _build(
            tiny_spec,
            dataclasses.replace(small_config, ssd_extent_cache_files=0),
        )
        for node in off.nodes:
            assert not node.ssd_ps.store.extent_cache.enabled

    def test_validation(self):
        from repro.config import ClusterConfig

        with pytest.raises(ValueError, match="ssd_extent_cache_files"):
            ClusterConfig(ssd_extent_cache_files=-1)


class TestDepthSweep:
    """Depth-k lookahead: parameters are depth-invariant, each depth's
    lockstep/pipelined pair is its own exact sim-seconds parity group,
    and the bulk admission path never degrades to the per-key replay."""

    @pytest.fixture
    def depth_cfg(self, pressured_prefetch):
        def at(k, **overrides):
            return dataclasses.replace(
                pressured_prefetch, prefetch_depth=k, **overrides
            )

        return at

    def test_depth_sweep_parity(self, tiny_spec, depth_cfg):
        baseline = _build(tiny_spec, depth_cfg(1))
        stats_base = baseline.train(N_ROUNDS)
        # The workload must exercise the SSD tier for parity to bite.
        assert any(s.ssd_io_seconds > 0 for s in stats_base)
        for k in (2, 3):
            lock = _build(tiny_spec, depth_cfg(k))
            piped = _build(tiny_spec, depth_cfg(k))
            stats_lock = lock.train(N_ROUNDS)
            run = piped.train_pipelined(N_ROUNDS)
            # Lockstep and pipelined at depth k agree on *every* stats
            # field — one sim-clock group per depth.
            _assert_stats_parity(stats_lock, run.stats)
            _assert_param_parity(lock, piped)
            # Parameters (and therefore losses) are depth-invariant:
            # lookahead is residency policy, not arithmetic.
            _assert_param_parity(baseline, lock)
            assert [s.mean_loss for s in stats_base] == [
                s.mean_loss for s in stats_lock
            ]
            # Zero bulk fallbacks at every depth, both modes.
            assert all(s.cache_scalar_fallbacks == 0 for s in stats_lock)
            assert all(s.cache_scalar_fallbacks == 0 for s in run.stats)

    def test_depth1_window_is_inert(self, tiny_spec, depth_cfg):
        """At the default depth the window machinery never engages:
        no backoffs are ever counted."""
        one = _build(tiny_spec, depth_cfg(1))
        stats = one.train(N_ROUNDS)
        assert all(s.prefetch_depth_backoffs == 0 for s in stats)

    def test_pin_ceiling_backs_off_and_is_counted(self, tiny_spec, depth_cfg):
        """A pin fraction too small for the depth-2 window forces
        shallower rounds; the backoffs are counted and parameters stay
        bit-identical to the unconstrained run."""
        tight = _build(tiny_spec, depth_cfg(2, prefetch_pin_fraction=0.05))
        loose = _build(tiny_spec, depth_cfg(2))
        stats_tight = tight.train(N_ROUNDS)
        loose.train(N_ROUNDS)
        assert sum(s.prefetch_depth_backoffs for s in stats_tight) > 0
        _assert_param_parity(tight, loose)
