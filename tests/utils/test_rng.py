"""Tests for deterministic RNG derivation."""

import numpy as np

from repro.utils.rng import derive_seed, make_rng, spawn


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_tag_order_matters(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")

    def test_different_seeds_differ(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_int_vs_string_tags_differ(self):
        assert derive_seed(0, 1) != derive_seed(0, "1")

    def test_result_is_valid_seed(self):
        s = derive_seed(123, "component", 5)
        assert 0 <= s < 2**31


class TestSpawn:
    def test_spawned_streams_reproducible(self):
        a = spawn(7, "gen").normal(size=10)
        b = spawn(7, "gen").normal(size=10)
        assert np.array_equal(a, b)

    def test_spawned_streams_independent(self):
        a = spawn(7, "gen", 0).normal(size=10)
        b = spawn(7, "gen", 1).normal(size=10)
        assert not np.array_equal(a, b)


def test_make_rng_none_is_nondeterministic_type():
    assert isinstance(make_rng(None), np.random.Generator)
