"""Tests for the analytic unique-count / head-mass estimators, including
agreement with Monte-Carlo simulation of the actual generator law."""

import numpy as np
import pytest

from repro.utils.stats import (
    expected_overlap_fraction,
    expected_unique_uniform,
    expected_unique_zipf,
    zipf_head_mass,
)


class TestExpectedUniqueUniform:
    def test_zero_draws(self):
        assert expected_unique_uniform(0, 100) == 0.0

    def test_single_draw(self):
        assert expected_unique_uniform(1, 100) == pytest.approx(1.0)

    def test_saturates_at_key_space(self):
        assert expected_unique_uniform(1e9, 100) == pytest.approx(100.0, rel=1e-6)

    def test_monotone_in_draws(self):
        vals = [expected_unique_uniform(n, 1000) for n in (10, 100, 1000, 10000)]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        draws, k = 5000, 2000
        sims = [
            np.unique(rng.integers(0, k, size=draws)).size for _ in range(20)
        ]
        assert expected_unique_uniform(draws, k) == pytest.approx(
            np.mean(sims), rel=0.02
        )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            expected_unique_uniform(-1, 10)
        with pytest.raises(ValueError):
            expected_unique_uniform(10, 0)


class TestExpectedUniqueZipf:
    def test_zero_draws(self):
        assert expected_unique_zipf(0, 100) == 0.0

    def test_below_draw_count_and_key_space(self):
        u = expected_unique_zipf(10_000, 1_000_000)
        assert 0 < u <= 10_000

    def test_monotone_in_key_space(self):
        a = expected_unique_zipf(1e6, 1e7)
        b = expected_unique_zipf(1e6, 1e9)
        assert b > a  # bigger key space -> less dedup

    def test_heavier_skew_fewer_uniques(self):
        mild = expected_unique_zipf(1e6, 1e8, exponent=1.01)
        heavy = expected_unique_zipf(1e6, 1e8, exponent=1.5)
        assert heavy < mild

    def test_small_key_space_exact_branch(self):
        # key_space < n_buckets exercises the exact enumeration path.
        u = expected_unique_zipf(1e6, 100, exponent=1.05)
        assert u == pytest.approx(100.0, rel=1e-3)

    def test_matches_monte_carlo_zipf(self):
        # Sample via the same inverse-CDF approximation as the generator.
        rng = np.random.default_rng(1)
        k, n, a = 50_000, 20_000, 1.3
        sims = []
        for _ in range(10):
            u = rng.random(n)
            ranks = np.minimum(
                k - 1, np.floor(np.clip(u, 1e-12, None) ** (-1.0 / (a - 1.0)))
            ).astype(np.int64)
            sims.append(np.unique(ranks).size)
        est = expected_unique_zipf(n, k, exponent=a)
        # The generator's truncated power-law differs slightly from the
        # exact Zipf pmf; agreement within ~15% is what we rely on.
        assert est == pytest.approx(np.mean(sims), rel=0.15)


class TestZipfHeadMass:
    def test_zero_top(self):
        assert zipf_head_mass(0, 1000) == 0.0

    def test_full_head_is_one(self):
        assert zipf_head_mass(1000, 1000) == pytest.approx(1.0, rel=1e-6)

    def test_monotone_in_top_k(self):
        vals = [zipf_head_mass(t, 10**9) for t in (10**3, 10**5, 10**7)]
        assert all(a < b for a, b in zip(vals, vals[1:]))

    def test_head_heavier_than_uniform(self):
        assert zipf_head_mass(100, 10_000) > 100 / 10_000


class TestOverlapFraction:
    def test_in_unit_interval(self):
        f = expected_overlap_fraction(1e6, 1e9)
        assert 0.0 <= f <= 1.0

    def test_small_key_space_high_overlap(self):
        # Draws saturate the space -> batches nearly identical.
        f = expected_overlap_fraction(1e6, 1e3)
        assert f > 0.95

    def test_sparse_draws_low_overlap(self):
        f = expected_overlap_fraction(10, 1e12)
        assert f < 0.2
