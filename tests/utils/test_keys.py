"""Unit and property tests for key utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.keys import (
    EMPTY_KEY,
    KEY_DTYPE,
    as_keys,
    mix_hash,
    splitmix64,
    unique_keys,
)


class TestAsKeys:
    def test_list_coerced_to_uint64(self):
        out = as_keys([1, 2, 3])
        assert out.dtype == KEY_DTYPE
        assert out.tolist() == [1, 2, 3]

    def test_empty_input(self):
        out = as_keys([])
        assert out.dtype == KEY_DTYPE
        assert out.size == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            as_keys([-1, 2])

    def test_float_rejected(self):
        with pytest.raises(ValueError, match="float"):
            as_keys(np.array([1.5, 2.0]))

    def test_uint64_passthrough_values(self):
        big = np.array([2**63 + 5], dtype=np.uint64)
        assert as_keys(big)[0] == 2**63 + 5

    def test_int32_input(self):
        out = as_keys(np.array([7, 8], dtype=np.int32))
        assert out.dtype == KEY_DTYPE

    def test_result_contiguous(self):
        arr = np.arange(10, dtype=np.uint64)[::2]
        assert as_keys(arr).flags["C_CONTIGUOUS"]


class TestSplitmix64:
    def test_deterministic(self):
        x = np.arange(100, dtype=np.uint64)
        assert np.array_equal(splitmix64(x), splitmix64(x))

    def test_no_collisions_on_sequential_input(self):
        x = np.arange(100_000, dtype=np.uint64)
        assert np.unique(splitmix64(x)).size == x.size

    def test_input_not_mutated(self):
        x = np.arange(10, dtype=np.uint64)
        before = x.copy()
        splitmix64(x)
        assert np.array_equal(x, before)

    def test_avalanche_single_bit(self):
        a = splitmix64(np.array([0], dtype=np.uint64))[0]
        b = splitmix64(np.array([1], dtype=np.uint64))[0]
        diff_bits = bin(int(a) ^ int(b)).count("1")
        assert diff_bits > 16  # a decent mixer flips ~32 of 64

    def test_distribution_roughly_uniform(self):
        x = np.arange(10_000, dtype=np.uint64)
        h = splitmix64(x)
        # High bit should be ~50/50.
        frac = np.mean((h >> np.uint64(63)).astype(float))
        assert 0.45 < frac < 0.55


class TestMixHash:
    def test_seed_changes_output(self):
        x = np.arange(100, dtype=np.uint64)
        assert not np.array_equal(mix_hash(x, seed=1), mix_hash(x, seed=2))

    def test_seed_zero_equals_plain_splitmix(self):
        x = np.arange(50, dtype=np.uint64)
        assert np.array_equal(mix_hash(x, seed=0), splitmix64(x))


class TestUniqueKeys:
    def test_union_of_arrays(self):
        out = unique_keys([3, 1], [2, 3], [1])
        assert out.tolist() == [1, 2, 3]

    def test_empty_args(self):
        assert unique_keys().size == 0

    def test_all_empty_arrays(self):
        assert unique_keys([], []).size == 0

    def test_sorted_output(self):
        out = unique_keys([5, 1, 9, 1])
        assert np.all(np.diff(out.astype(np.int64)) > 0)


@given(
    st.lists(st.integers(min_value=0, max_value=2**64 - 2), max_size=200),
    st.lists(st.integers(min_value=0, max_value=2**64 - 2), max_size=200),
)
@settings(max_examples=50, deadline=None)
def test_unique_keys_matches_python_set(a, b):
    out = unique_keys(np.array(a, dtype=np.uint64), np.array(b, dtype=np.uint64))
    assert set(out.tolist()) == set(a) | set(b)


@given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), max_size=300))
@settings(max_examples=50, deadline=None)
def test_splitmix_is_injective_on_sample(xs):
    arr = np.array(sorted(set(xs)), dtype=np.uint64)
    assert np.unique(splitmix64(arr)).size == arr.size


def test_empty_key_sentinel_is_max_uint64():
    assert int(EMPTY_KEY) == 2**64 - 1
