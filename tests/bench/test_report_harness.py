"""Tests for report formatting and the experiment harness (smoke-level for
the expensive entry points; the benchmarks exercise them fully)."""

import numpy as np
import pytest

from repro.bench.harness import (
    functional_model,
    run_fig3c_stage_times,
    run_fig4b_mem_times,
    run_fig5b_scalability,
    run_pipeline_overlap,
    run_table4_speedups,
    small_cluster_config,
)
from repro.bench.report import ascii_bars, ascii_gantt, format_series, format_table
from repro.core.pipeline import PipelineSimulator


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(["name", "value"], [("a", 1.5), ("bb", 22.25)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_title(self):
        out = format_table(["x"], [(1,)], title="T")
        assert out.splitlines()[0] == "T"

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out

    def test_large_and_small_floats(self):
        out = format_table(["v"], [(1e9,), (1e-9,), (0.0,)])
        assert "1e+09" in out and "1e-09" in out and "0" in out


class TestSeriesAndBars:
    def test_series(self):
        out = format_series([1, 2], [0.1, 0.2], x_name="t", y_name="v")
        assert "t" in out and "v" in out

    def test_bars_scale_to_max(self):
        out = ascii_bars(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_bars_zero_values(self):
        out = ascii_bars(["a"], [0.0])
        assert "a" in out


class TestGantt:
    def test_rows_and_legend(self):
        sched = PipelineSimulator().schedule(np.tile([1.0, 1.0, 1.0, 1.0], (3, 1)))
        out = ascii_gantt(sched, width=40)
        lines = out.splitlines()
        assert len(lines) == 4  # 3 batch rows + legend
        assert lines[0].startswith("batch  0 |")
        assert "N=network" in lines[-1]

    def test_overlap_visible(self):
        """Consecutive batches occupy overlapping columns."""
        sched = PipelineSimulator().schedule(np.tile([2.0, 2.0, 2.0, 2.0], (2, 1)))
        out = ascii_gantt(sched, width=40).splitlines()
        row0, row1 = out[0], out[1]
        overlap = [
            i
            for i, (a, b) in enumerate(zip(row0, row1))
            if a not in " |" and b not in " |"
        ]
        assert overlap

    def test_empty_schedule(self):
        sched = PipelineSimulator().schedule(np.zeros((0, 4)))
        assert "empty" in ascii_gantt(sched)


class TestHarnessEntryPoints:
    def test_table4_rows_complete(self):
        rows = run_table4_speedups()
        assert {r["model"] for r in rows} == set("ABCDE")
        for r in rows:
            assert r["speedup"] > 0
            assert r["cost_normalized_speedup"] > 0

    def test_fig3c_columns(self):
        rows = run_fig3c_stage_times()
        assert all(
            {"read_examples", "pull_push", "train_dnn"} <= set(r) for r in rows
        )

    def test_fig4b_single_node_nan(self):
        rows = run_fig4b_mem_times(node_counts=(1, 2))
        assert np.isnan(rows[0]["pull_remote"])
        assert rows[1]["pull_remote"] > 0

    def test_fig5b_ideal_line(self):
        rows = run_fig5b_scalability(node_counts=(1, 2))
        assert rows[0]["ideal"] == pytest.approx(rows[0]["real"])
        assert rows[1]["ideal"] == pytest.approx(2 * rows[0]["real"])

    def test_functional_model_bigger_than_cache(self):
        spec = functional_model()
        cfg = small_cluster_config()
        assert spec.n_sparse > 10 * cfg.mem_capacity_params

    def test_small_cluster_config_overrides(self):
        cfg = small_cluster_config(n_nodes=3, compaction_threshold=1.4)
        assert cfg.n_nodes == 3
        assert cfg.compaction_threshold == 1.4

    def test_pipeline_overlap_smoke(self):
        row = run_pipeline_overlap(n_batches=3, batch_size=128)
        assert row["parameter_parity"] is True
        assert row["pipelined_makespan"] < row["lockstep_makespan"]
