"""Tests for the paper-scale analytical timing model — these pin down the
qualitative shapes the paper's evaluation section reports."""

import pytest

from repro.bench.analytical import AnalyticalHPS
from repro.config import PAPER_MODELS


class TestBatchTime:
    def test_all_components_positive(self):
        t = AnalyticalHPS(PAPER_MODELS["C"]).batch_time()
        for field in (
            t.read_seconds,
            t.pull_local_seconds,
            t.pull_remote_seconds,
            t.hbm_pull_seconds,
            t.gpu_train_seconds,
            t.allreduce_seconds,
        ):
            assert field > 0

    def test_read_stage_flat_across_models(self):
        """Fig. 3(c): the HDFS stage is model-independent."""
        reads = [
            AnalyticalHPS(s).batch_time().read_seconds
            for s in PAPER_MODELS.values()
        ]
        assert max(reads) == pytest.approx(min(reads))

    def test_small_models_read_bound(self):
        """Fig. 3(c): models A and B are bottlenecked by HDFS reads."""
        for name in ("A", "B"):
            t = AnalyticalHPS(PAPER_MODELS[name]).batch_time()
            assert t.read_seconds > t.pull_push_seconds
            assert t.read_seconds > t.train_seconds

    def test_large_models_pull_push_bound(self):
        """Fig. 3(c): pull/push dominates for models D and E."""
        for name in ("D", "E"):
            t = AnalyticalHPS(PAPER_MODELS[name]).batch_time()
            assert t.pull_push_seconds > t.read_seconds
            assert t.pull_push_seconds > t.train_seconds

    def test_crossover_at_model_c(self):
        """Fig. 3(c): pull/push 'catches up' with reading at model C."""
        t = AnalyticalHPS(PAPER_MODELS["C"]).batch_time()
        ratio = t.pull_push_seconds / t.read_seconds
        assert 0.7 < ratio < 1.7

    def test_pull_push_monotone_in_model_scale(self):
        times = [
            AnalyticalHPS(PAPER_MODELS[m]).batch_time().pull_push_seconds
            for m in "ABCDE"
        ]
        assert times[0] < times[1] < times[2] < times[3]

    def test_hbm_pull_tracks_nonzeros(self):
        """Fig. 4(a): pull/push HBM time follows #non-zeros (A,B=100 vs
        C,D,E=500)."""
        a = AnalyticalHPS(PAPER_MODELS["A"]).batch_time().hbm_pull_seconds
        c = AnalyticalHPS(PAPER_MODELS["C"]).batch_time().hbm_pull_seconds
        assert c > 2 * a

    def test_gpu_train_tracks_dense_params(self):
        """Fig. 4(a): training time follows the dense tower size; model E
        (7M dense) costs the most."""
        trains = {
            m: AnalyticalHPS(PAPER_MODELS[m]).batch_time().gpu_train_seconds
            for m in "ABCDE"
        }
        assert trains["E"] == max(trains.values())
        assert trains["B"] == min(trains.values())


class TestCacheHitModel:
    def test_model_e_hit_near_paper_value(self):
        """Fig. 4(c): the paper measures a ~46% steady-state hit rate."""
        hit = AnalyticalHPS(PAPER_MODELS["E"]).cache_hit_rate()
        assert 0.40 < hit < 0.55

    def test_hit_falls_with_model_size(self):
        hits = [AnalyticalHPS(PAPER_MODELS[m]).cache_hit_rate() for m in "ABCDE"]
        assert all(a >= b for a, b in zip(hits, hits[1:]))

    def test_override_respected(self):
        m = AnalyticalHPS(PAPER_MODELS["E"], cache_hit_rate=0.9)
        assert m.cache_hit_rate() == 0.9


class TestMemPS:
    def test_fig4b_local_flat_over_nodes(self):
        """Fig. 4(b): overall MEM-PS pull time 'does not hike much' as
        nodes are added."""
        spec = PAPER_MODELS["E"]
        t1 = AnalyticalHPS(spec, n_nodes=1).batch_time()
        t4 = AnalyticalHPS(spec, n_nodes=4).batch_time()
        total1 = max(t1.pull_local_seconds, t1.pull_remote_seconds)
        total4 = max(t4.pull_local_seconds, t4.pull_remote_seconds)
        assert total4 < 1.5 * total1

    def test_remote_pull_zero_single_node(self):
        t = AnalyticalHPS(PAPER_MODELS["E"], n_nodes=1).batch_time()
        assert t.pull_remote_seconds == 0.0


class TestScalability:
    def test_fig5b_sublinear_speedup(self):
        """Fig. 5(b): 4-node speedup ~3.5 out of the ideal 4."""
        spec = PAPER_MODELS["E"]
        base = AnalyticalHPS(spec, n_nodes=1).throughput()
        s4 = AnalyticalHPS(spec, n_nodes=4).throughput() / base
        assert 3.0 < s4 < 4.0

    def test_speedup_monotone_in_nodes(self):
        spec = PAPER_MODELS["E"]
        thr = [AnalyticalHPS(spec, n_nodes=n).throughput() for n in (1, 2, 3, 4)]
        assert all(a < b for a, b in zip(thr, thr[1:]))


class TestPipelineToggle:
    def test_pipelining_helps(self):
        spec = PAPER_MODELS["C"]
        on = AnalyticalHPS(spec, pipelined=True).throughput()
        off = AnalyticalHPS(spec, pipelined=False).throughput()
        assert on > 1.5 * off

    def test_validation(self):
        with pytest.raises(ValueError):
            AnalyticalHPS(PAPER_MODELS["A"], n_nodes=0)
