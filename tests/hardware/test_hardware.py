"""Tests for the hardware cost models and ledger."""

import pytest

from repro.hardware.gpu import GPUDevice, NVLink, dense_flops_per_example
from repro.hardware.ledger import CostLedger
from repro.hardware.network import Network
from repro.hardware.specs import (
    GPUSpec,
    HDFSSpec,
    NetworkSpec,
    NVLinkSpec,
    SSDSpec,
    default_node_hardware,
)
from repro.hardware.ssd_device import SSDDevice


class TestLedger:
    def test_add_and_total(self):
        l = CostLedger()
        l.add("a", 1.0)
        l.add("a", 2.0)
        l.add("b", 0.5)
        assert l.total("a") == 3.0
        assert l.total() == 3.5
        assert l.count("a") == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostLedger().add("x", -1.0)

    def test_merge(self):
        a, b = CostLedger(), CostLedger()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 1.0)
        a.merge(b)
        assert a.total("x") == 3.0
        assert a.total("y") == 1.0

    def test_snapshot_delta(self):
        l = CostLedger()
        l.add("x", 1.0)
        snap = l.snapshot()
        l.add("x", 2.0)
        l.add("y", 5.0)
        delta = l.delta_since(snap)
        assert delta == {"x": 2.0, "y": 5.0}

    def test_snapshot_independent(self):
        l = CostLedger()
        snap = l.snapshot()
        l.add("x", 1.0)
        assert snap.total("x") == 0.0

    def test_reset(self):
        l = CostLedger()
        l.add("x", 1.0)
        l.reset()
        assert l.total() == 0.0

    def test_iteration_sorted(self):
        l = CostLedger()
        l.add("b", 1.0)
        l.add("a", 1.0)
        assert [c for c, _ in l] == ["a", "b"]


class TestNetwork:
    def test_rdma_faster_than_bounce(self):
        rdma = Network(NetworkSpec(rdma=True))
        bounce = Network(NetworkSpec(rdma=False))
        n = 10**8
        assert rdma.transfer_time(n) < bounce.transfer_time(n)

    def test_latency_per_message(self):
        net = Network(NetworkSpec())
        one = net.transfer_time(0, n_messages=1)
        ten = net.transfer_time(0, n_messages=10)
        assert ten == pytest.approx(10 * one)

    def test_send_accounts(self):
        net = Network(NetworkSpec())
        t = net.send(1000)
        assert net.bytes_sent == 1000
        assert net.messages_sent == 1
        assert net.ledger.total("net_remote_pull") == pytest.approx(t)

    def test_zero_transfer(self):
        net = Network(NetworkSpec())
        assert net.transfer_time(0, n_messages=0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Network(NetworkSpec()).transfer_time(-1)


class TestSSDDevice:
    def test_block_rounding(self):
        dev = SSDDevice(SSDSpec(block_bytes=4096))
        assert dev.read_time(1) == dev.read_time(4096)
        assert dev.read_time(4097) > dev.read_time(4096)

    def test_sequential_faster_than_random_for_small_io(self):
        dev = SSDDevice(SSDSpec())
        small = 4096
        assert dev.read_time(small, sequential=True) < dev.read_time(
            small, sequential=False
        )

    def test_accounting(self):
        dev = SSDDevice(SSDSpec())
        dev.read(8192)
        dev.write(4096)
        assert dev.bytes_read == 8192
        assert dev.bytes_written == 4096
        assert dev.read_ops == 1 and dev.write_ops == 1
        assert dev.ledger.total("ssd_read") > 0
        assert dev.ledger.total("ssd_write") > 0

    def test_zero_io(self):
        dev = SSDDevice(SSDSpec())
        assert dev.read_time(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SSDDevice(SSDSpec()).read_time(-5)


class TestGPU:
    def test_compute_time_linear_in_flops(self):
        gpu = GPUDevice(GPUSpec())
        assert gpu.compute_time(2e12) == pytest.approx(2 * gpu.compute_time(1e12))

    def test_hashtable_time_has_launch_floor(self):
        gpu = GPUDevice(GPUSpec())
        assert gpu.hashtable_time(0, 8) >= GPUSpec().kernel_launch_s

    def test_train_accounts(self):
        gpu = GPUDevice(GPUSpec())
        t = gpu.train(1e12)
        assert gpu.ledger.total("gpu_compute") == pytest.approx(t)

    def test_dense_flops_formula(self):
        # dims: 4*2=8 -> 4 -> 1 : 6*(8*4 + 4*1) = 216
        assert dense_flops_per_example(4, 2, (4,)) == 216.0


class TestNVLink:
    def test_transfer_time(self):
        nv = NVLink(NVLinkSpec(bandwidth=1e9, latency_s=1e-6))
        assert nv.transfer_time(1e9) == pytest.approx(1.0 + 1e-6)

    def test_send_accounts(self):
        nv = NVLink(NVLinkSpec())
        nv.send(500)
        assert nv.bytes_moved == 500
        assert nv.ledger.total("nvlink") > 0


class TestSpecs:
    def test_default_node_hardware(self):
        hw = default_node_hardware()
        assert hw.gpus_per_node == 8
        assert hw.network.rdma

    def test_rdma_toggle(self):
        assert not default_node_hardware(rdma=False).network.rdma

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec(hbm_bytes=0)
        with pytest.raises(ValueError):
            SSDSpec(block_bytes=0)
        with pytest.raises(ValueError):
            HDFSSpec(bandwidth=0)
        with pytest.raises(ValueError):
            NVLinkSpec(bandwidth=-1)
