"""Ablations of the design choices DESIGN.md calls out.

Not paper figures, but each isolates one claim from the text:
  * the 4-stage pipeline hides I/O latency (Section 3, Appendix B);
  * LRU+LFU beats either policy alone on skewed reuse (Appendix D);
  * GPUDirect RDMA beats the CPU-bounce path (Figure 8);
  * the 50%-stale compaction rule bounds disk usage at ~2x (Appendix E);
  * parameter-file size trades I/O amplification vs bandwidth (App. E).
"""

import numpy as np

from repro.bench.analytical import AnalyticalHPS
from repro.bench.report import format_table
from repro.config import PAPER_MODELS
from repro.hardware.network import Network
from repro.hardware.specs import NetworkSpec, SSDSpec
from repro.hbm.allreduce import SparseUpdate, hierarchical_allreduce
from repro.mem.cache import CombinedCache, LFUCache, LRUCache
from repro.ssd.compaction import Compactor
from repro.ssd.file_store import FileStore


def test_ablation_pipeline(benchmark):
    """4-stage pipeline on vs off, paper-scale models."""

    def run():
        return [
            {
                "model": m,
                "pipelined": AnalyticalHPS(PAPER_MODELS[m]).throughput(),
                "serial": AnalyticalHPS(
                    PAPER_MODELS[m], pipelined=False
                ).throughput(),
            }
            for m in "ABCDE"
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["model", "pipelined ex/s", "serial ex/s", "gain"],
            [
                (r["model"], r["pipelined"], r["serial"], r["pipelined"] / r["serial"])
                for r in rows
            ],
            title="Ablation: 4-stage pipeline",
        )
    )
    # Every model gains; the gain is largest where stages are balanced
    # (model C: read ~= pull/push) and smaller when one stage dominates.
    for r in rows:
        assert r["pipelined"] > 1.2 * r["serial"]
    gains = {r["model"]: r["pipelined"] / r["serial"] for r in rows}
    assert gains["C"] == max(gains.values())
    assert gains["C"] > 1.8


def _zipf_stream(n_keys: int, n_accesses: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    u = rng.random(n_accesses)
    ranks = np.minimum(
        n_keys - 1, np.floor(np.clip(u, 1e-12, None) ** (-1.0 / 0.25))
    ).astype(np.int64)
    rng.shuffle(perm := np.arange(n_keys))
    return perm[ranks]


def test_ablation_cache_policy(benchmark):
    """LRU vs LFU vs the paper's combined policy on a Zipf stream with a
    periodic cold scan (the workload LRU alone handles poorly)."""

    def run():
        stream = _zipf_stream(5000, 30_000)
        # Inject cold scans every 3000 accesses.
        scans = np.arange(100_000, 100_000 + 500)
        full = []
        for i in range(0, stream.size, 3000):
            full.append(stream[i : i + 3000])
            full.append(scans)
        stream_full = np.concatenate(full)
        results = {}
        val = np.zeros(1, dtype=np.float32)
        for name in ("lru", "lfu", "combined"):
            hits = misses = 0
            if name == "combined":
                cache = CombinedCache(600, lru_fraction=0.5, value_dim=1)
                for k in stream_full.tolist():
                    if cache.get(k) is None:
                        cache.put(k, val)
                hits, misses = cache.stats.hits, cache.stats.misses
            else:
                cache = LRUCache(600) if name == "lru" else LFUCache(600)
                for k in stream_full.tolist():
                    if cache.get(k) is None:
                        misses += 1
                        cache.put(k, val)
                    else:
                        hits += 1
            results[name] = hits / (hits + misses)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["policy", "hit rate"],
            list(results.items()),
            title="Ablation: cache eviction policy (Zipf + cold scans)",
        )
    )
    # The combined policy must not lose to plain LRU, and must beat it
    # when cold scans thrash the recency tier.
    assert results["combined"] > results["lru"]


def test_ablation_rdma(benchmark):
    """GPUDirect RDMA vs the CPU-bounce baseline (Figure 8) on the
    per-mini-batch all-reduce."""

    def run(rdma: bool):
        nets = [Network(NetworkSpec(rdma=rdma)) for _ in range(4)]
        updates = [
            SparseUpdate(
                np.arange(i, 200_000 + i, dtype=np.uint64),
                np.ones((200_000, 8)),
            )
            for i in range(4)
        ]
        return hierarchical_allreduce(updates, networks=nets, gpus_per_node=8)[1]

    t_rdma = benchmark.pedantic(run, args=(True,), rounds=1, iterations=1)
    t_bounce = run(False)
    print(
        "\n"
        + format_table(
            ["path", "all-reduce seconds"],
            [("RDMA (RoCE)", t_rdma), ("CPU bounce", t_bounce)],
            title="Ablation: inter-node communication path",
        )
    )
    assert t_rdma < t_bounce
    # Two extra PCIe crossings at ~12 GB/s vs one NIC pass at 12.5 GB/s:
    # the bounce path should cost ~2-4x.
    assert t_bounce / t_rdma > 1.5


def test_ablation_compaction_threshold(benchmark):
    """Disk-usage bound and write amplification vs compaction threshold."""

    def run():
        rows = []
        for threshold in (1.2, 1.6, 2.0):
            store = FileStore(1, file_capacity=8)
            comp = Compactor(store, usage_threshold=threshold)
            rng = np.random.default_rng(0)
            for _ in range(150):
                keys = np.unique(rng.integers(0, 200, 16)).astype(np.uint64)
                store.write(keys, np.ones((keys.size, 1), dtype=np.float32))
                comp.compact()
            rows.append(
                {
                    "threshold": threshold,
                    "usage_ratio": store.total_bytes / store.live_bytes,
                    "bytes_written": store.device.bytes_written,
                    "compactions": comp.total_compactions,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["threshold", "disk/live ratio", "bytes written", "compactions"],
            [
                (r["threshold"], r["usage_ratio"], r["bytes_written"], r["compactions"])
                for r in rows
            ],
            title="Ablation: compaction usage threshold",
        )
    )
    # Tighter thresholds compact more (write amplification) but bound
    # disk usage lower.
    assert rows[0]["compactions"] >= rows[-1]["compactions"]
    assert rows[0]["bytes_written"] >= rows[-1]["bytes_written"]
    for r in rows:
        assert r["usage_ratio"] <= r["threshold"] + 1.0


def test_ablation_file_size(benchmark):
    """Appendix E: file size trades read amplification vs I/O bandwidth —
    'We tune the file size to obtain the optimal performance.'"""

    def run():
        rng = np.random.default_rng(0)
        all_keys = np.arange(50_000, dtype=np.uint64)
        rows = []
        # Tiny block device so per-file fixed costs matter.
        spec = SSDSpec(seq_read_bandwidth=500e6, block_bytes=4096)
        for cap in (16, 256, 4096):
            store = FileStore(8, file_capacity=cap, ssd_spec=spec)
            store.write(all_keys, np.ones((all_keys.size, 8), dtype=np.float32))
            request = np.unique(rng.choice(all_keys, 2_000, replace=False))
            result = store.read(request)
            useful = request.size * (8 + 32)
            rows.append(
                {
                    "file_capacity": cap,
                    "read_seconds": result.seconds,
                    "amplification": result.bytes_read / useful,
                    "files_read": result.files_read,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["file capacity", "read seconds", "amplification", "files read"],
            [
                (r["file_capacity"], r["read_seconds"], r["amplification"], r["files_read"])
                for r in rows
            ],
            title="Ablation: parameter-file size (I/O amplification trade-off)",
        )
    )
    # Bigger files -> fewer reads but more amplification.
    assert rows[0]["files_read"] > rows[-1]["files_read"]
    assert rows[0]["amplification"] < rows[-1]["amplification"]
