"""Microbenchmark: vectorized MEM tier vs the seed per-key implementation.

The batch-first refactor's acceptance bar: at 100k-key batches the
slab-backed :class:`~repro.mem.cache.CombinedCache` and the MEM-PS
``prepare()`` path must beat the original dict-of-ndarray per-key code
(preserved in :mod:`repro.store.reference`) by at least 5x wall clock.
In practice the gap is one to two orders of magnitude — the point of the
paper's batch-everything discipline.

Methodology: every measurement is best-of-3 on fresh state, after a
throwaway warm-up round so one-time NumPy dispatch costs don't land on
whichever implementation happens to run first.
"""

import os
import time

import numpy as np

from repro.bench.report import format_table
from repro.mem.cache import CombinedCache
from repro.mem.mem_ps import MemPS
from repro.nn.optim import SparseSGD
from repro.ssd.ssd_ps import SSDPS
from repro.store.reference import DictCombinedCache

N_KEYS = 100_000
VALUE_DIM = 4
#: Wall-clock assertions are relaxed on shared CI runners, where noisy
#: neighbours can shave 2x off any timing ratio; the full 5x bar is
#: enforced on dedicated machines (the tier-1 gate).
REQUIRED_SPEEDUP = 3.0 if os.environ.get("CI") else 5.0
REPS = 3

IMPLEMENTATIONS = (
    ("slab (vectorized)", CombinedCache),
    ("seed (per-key)", DictCombinedCache),
)


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _working_set(rng, n: int) -> np.ndarray:
    """Sorted unique keys — the shape ``unique_keys()`` hands the tiers."""
    return np.sort(rng.choice(10 * n, size=n, replace=False).astype(np.uint64))


def _best_of(measure, reps: int = REPS) -> tuple[float, ...]:
    """Min over ``reps`` runs of ``measure()`` (a tuple of timings)."""
    runs = [measure() for _ in range(reps)]
    return tuple(min(col) for col in zip(*runs))


def test_microbench_cache_batch_ops():
    """CombinedCache.get_batch / put_batch at 100k-key batches."""
    rows = []
    timings = {}
    for name, factory in IMPLEMENTATIONS:

        def measure():
            rng = np.random.default_rng(7)
            cache = factory(400_000, lru_fraction=0.5, value_dim=VALUE_DIM)
            warm_keys = _working_set(rng, N_KEYS)
            cache.put_batch(
                warm_keys, rng.normal(size=(N_KEYS, VALUE_DIM)).astype(np.float32)
            )
            cache.get_batch(warm_keys)
            put_keys = _working_set(rng, N_KEYS)
            put_vals = rng.normal(size=(N_KEYS, VALUE_DIM)).astype(np.float32)
            t_put = _timed(lambda: cache.put_batch(put_keys, put_vals))
            t_get = _timed(lambda: cache.get_batch(put_keys))
            return t_put, t_get

        t_put, t_get = _best_of(measure)
        timings[name] = (t_put, t_get)
        rows.append((name, t_put, t_get))
    print(
        "\n"
        + format_table(
            ["implementation", "put_batch s", "get_batch s"],
            rows,
            title=f"Store microbench: {N_KEYS // 1000}k-key cache batches",
        )
    )
    put_speedup = timings["seed (per-key)"][0] / timings["slab (vectorized)"][0]
    get_speedup = timings["seed (per-key)"][1] / timings["slab (vectorized)"][1]
    print(f"put_batch speedup: {put_speedup:.1f}x, get_batch: {get_speedup:.1f}x")
    assert put_speedup >= REQUIRED_SPEEDUP
    assert get_speedup >= REQUIRED_SPEEDUP


def _make_mem_ps(cache) -> MemPS:
    opt = SparseSGD(VALUE_DIM, lr=1.0)
    ssd = SSDPS(opt.value_dim, file_capacity=2**14)
    return MemPS(0, 1, opt, ssd, cache=cache, seed=0)


def test_microbench_mem_ps_prepare():
    """MemPS.prepare() — the Alg. 1 lines 3–4 hot path — at 100k keys.

    The ≥5x bar applies to the steady-state prepare (every batch after
    the first touch of a key, the recurring cost training pays).  The
    cold first-touch prepare is also reported but only held to a lower
    floor: its runtime is dominated by work *shared* between both
    implementations — the key-deterministic Box–Muller init and the SSD
    miss path, vectorized identically for each — which caps the
    achievable ratio regardless of how fast the cache tier gets.
    """
    rows = []
    timings = {}
    for name, factory in IMPLEMENTATIONS:

        def measure():
            rng = np.random.default_rng(11)
            scout = _make_mem_ps(
                factory(1_000, lru_fraction=0.5, value_dim=VALUE_DIM)
            )
            scout.prepare(np.arange(64, dtype=np.uint64))
            scout.end_batch()
            mem = _make_mem_ps(
                factory(400_000, lru_fraction=0.5, value_dim=VALUE_DIM)
            )
            cold_keys = _working_set(rng, N_KEYS)
            t_cold = _timed(lambda: mem.prepare(cold_keys))
            mem.absorb_updates(
                cold_keys,
                np.zeros((cold_keys.size, VALUE_DIM), dtype=np.float32),
            )
            mem.end_batch()
            t_warm = _timed(lambda: mem.prepare(cold_keys))
            mem.end_batch()
            return t_cold, t_warm

        t_cold, t_warm = _best_of(measure)
        timings[name] = (t_cold, t_warm)
        rows.append((name, t_cold, t_warm))
    print(
        "\n"
        + format_table(
            ["implementation", "cold prepare s", "warm prepare s"],
            rows,
            title=f"Store microbench: MemPS.prepare() at {N_KEYS // 1000}k keys",
        )
    )
    cold = timings["seed (per-key)"][0] / timings["slab (vectorized)"][0]
    warm = timings["seed (per-key)"][1] / timings["slab (vectorized)"][1]
    print(f"prepare speedup: cold {cold:.1f}x, warm {warm:.1f}x")
    assert warm >= REQUIRED_SPEEDUP
    assert cold >= (1.5 if os.environ.get("CI") else 2.5)
