"""Table 2: OP+OSRP on the (synthetic) web-search ads dataset.

Same experiment as Table 1 on a larger feature space and more data — the
trend is "essentially similar" (paper), and the verdict the same: even
mild hashing loses accuracy the business cannot afford.
"""

from repro.bench.harness import run_op_osrp_study
from repro.bench.report import format_table


def test_table2_op_osrp_web(benchmark):
    rows = benchmark.pedantic(
        run_op_osrp_study,
        kwargs=dict(
            n_features=2**18,
            n_slots=8,
            nonzeros=40,
            n_train_batches=35,
            batch_size=1024,
            eval_size=8192,
            # k is capped at 2^13: beyond that the synthetic train set
            # (~36k examples) undertrains the hashed embeddings and the
            # monotone trend the paper observes at production scale breaks.
            k_values=(2**13, 2**11, 2**9),
            epochs=3,
            seed=1,
        ),
        rounds=1,
        iterations=1,
    )
    print(
        "\n"
        + format_table(
            ["method", "#weights", "test AUC"],
            [(r["method"], r["n_weights"], r["auc"]) for r in rows],
            title="Table 2: OP+OSRP for web-search sponsored ads (synthetic)",
        )
    )
    by = {r["method"]: r for r in rows}
    assert by["Baseline DNN"]["auc"] > by["Baseline LR"]["auc"]
    hash_rows = sorted(
        (r for r in rows if r["k"] is not None), key=lambda r: -r["k"]
    )
    aucs = [r["auc"] for r in hash_rows]
    # Monotone degradation with smaller k; always below the raw DNN.
    assert all(a >= b for a, b in zip(aucs, aucs[1:]))
    assert all(a < by["Baseline DNN"]["auc"] for a in aucs)
