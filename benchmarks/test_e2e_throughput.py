"""End-to-end throughput ledger: planned vs pre-plan wall-clock speed.

The BatchPlan threads one per-round key plan through every tier; this
benchmark is the repo's perf trajectory anchor.  It asserts

* losslessness — planned and pipelined parameters bit-identical to the
  pre-plan path;
* the plan pays — ≥ 1.5× rounds/s over the pre-plan baseline;
* no silent regression — fresh rounds/s within 30% of the committed
  ``BENCH_e2e.json`` baseline (skipped when the machines obviously
  differ is not attempted: the CI perf-smoke job running this check is
  non-blocking).

Set ``BENCH_WRITE=1`` to refresh ``BENCH_e2e.json`` at the repo root
(the CI perf job does, and uploads it as an artifact).
"""

import json
import os
import pathlib

from repro.bench.harness import BENCH_E2E_SCHEMA, run_e2e_throughput
from repro.bench.report import format_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_e2e.json"

#: Fail only on a >30% rounds/s drop vs the committed baseline.
REGRESSION_TOLERANCE = 0.30

#: Wall-clock ratio floor, relaxed on shared CI runners (noisy neighbors
#: compress the planned/unplanned ratio) — microbenchmark convention.
REQUIRED_SPEEDUP = 1.2 if os.environ.get("CI") else 1.5


def test_e2e_throughput(benchmark):
    row = benchmark.pedantic(run_e2e_throughput, rounds=1, iterations=1)
    # Refresh the ledger before any assertion so a failing run still
    # uploads its actual measurement, not the stale committed baseline.
    baseline_snapshot = (
        json.loads(BASELINE_PATH.read_text()) if BASELINE_PATH.exists() else None
    )
    if os.environ.get("BENCH_WRITE") == "1":
        BASELINE_PATH.write_text(
            json.dumps(row, indent=2, sort_keys=True) + "\n"
        )
    print(
        "\n"
        + format_table(
            ["mode", "rounds/s", "keys/s", "examples/s", "wall (s)"],
            [
                (
                    r["mode"],
                    r["rounds_per_s"],
                    r["keys_per_s"],
                    r["examples_per_s"],
                    r["wall_seconds"],
                )
                for r in row["rows"]
            ],
            title="End-to-end training throughput (wall clock)",
        )
    )
    print(
        f"planned-over-unplanned speedup: "
        f"{row['speedup_planned_over_unplanned']:.2f}x"
    )

    # Losslessness: the plan changes bookkeeping, never the math.
    assert row["parameter_parity"] is True
    assert row["schema"] == BENCH_E2E_SCHEMA
    # The perf claim: the planned path beats the pre-plan baseline.
    assert row["speedup_planned_over_unplanned"] >= REQUIRED_SPEEDUP

    # Absolute rounds/s vs the committed ledger is machine-relative, so
    # the comparison only arms inside the CI perf-smoke job (which is
    # non-blocking); the ratio checks above run everywhere.
    modes = {r["mode"]: r for r in row["rows"]}
    if os.environ.get("BENCH_COMPARE") == "1" and baseline_snapshot:
        for base_row in baseline_snapshot.get("rows", []):
            fresh = modes.get(base_row["mode"])
            if fresh is None:
                continue
            floor = base_row["rounds_per_s"] * (1.0 - REGRESSION_TOLERANCE)
            assert fresh["rounds_per_s"] >= floor, (
                f"{base_row['mode']} regressed: {fresh['rounds_per_s']:.2f} "
                f"rounds/s < 70% of committed {base_row['rounds_per_s']:.2f}"
            )
