"""End-to-end throughput ledger: per-scenario wall-clock speed.

The BatchPlan threads one per-round key plan through every tier, and the
admission engine keeps cache batch ops bulk-exact under memory pressure;
this benchmark is the repo's perf trajectory anchor.  Per scenario it
asserts

* losslessness — every mode's parameters bit-identical (and, for the
  pressure scenario, simulated seconds bit-identical to the per-key
  oracle of each parity group — the non-prefetch modes and the
  prefetch modes each have their own scalar oracle);
* the refactors pay — the planned path ≥ 1.5× rounds/s over the
  pre-plan baseline, and the admission engine ≥ 1.5× rounds/s over the
  pre-refactor plan-or-replay cache on the pressure workload;
* no scalar regressions — the bulk modes report **zero** whole-batch
  per-key replays under pressure;
* no silent perf regression — fresh rounds/s within 30% of the
  committed ``BENCH_e2e.json`` baseline, compared per (scenario, mode)
  inside the non-blocking CI perf-smoke job;
* checkpointing stays cheap and lossless — the recovery scenario's
  parity flags hold on every fresh run (its byte/seconds claims are
  deterministic and pinned in tests/plan/test_bench_schema.py);
* fault recovery stays lossless and bounded — the faults scenario's
  healed runs are bit-identical to their fault-free twins on every
  fresh run, and (inside the perf-smoke job) the fresh downtime
  fraction never exceeds the committed baseline's by more than the
  regression tolerance.  Its rows are simulated-seconds based and
  wall-clock free, so the rounds/s comparison skips them like the
  recovery rows.

Set ``BENCH_WRITE=1`` to refresh ``BENCH_e2e.json`` at the repo root
(the CI perf job does, and uploads it as an artifact).
"""

import json
import os
import pathlib

from repro.bench.harness import BENCH_E2E_SCHEMA, run_e2e_throughput
from repro.bench.report import format_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_e2e.json"

#: Fail only on a >30% rounds/s drop vs the committed baseline.
REGRESSION_TOLERANCE = 0.30

#: Wall-clock ratio floor.  The documented claims (≥1.5× planned over
#: unplanned, ≥1.5× bulk over legacy under pressure) are enforced at
#: full strength on dedicated machines; shared CI runners compress
#: every timing ratio, so the *live* floor relaxes to 1.2 there and the
#: full 1.5× pressure claim is pinned deterministically against the
#: committed artifact in tests/plan/test_bench_schema.py.
REQUIRED_SPEEDUP = 1.2 if os.environ.get("CI") else 1.5


def test_e2e_throughput(benchmark):
    # Snapshot the committed baseline, then (under BENCH_WRITE=1) let the
    # harness's own serializer refresh it *before* any assertion, so a
    # failing run still uploads its actual measurement and manual
    # regenerations produce byte-identical files.
    baseline_snapshot = (
        json.loads(BASELINE_PATH.read_text()) if BASELINE_PATH.exists() else None
    )
    write_path = (
        str(BASELINE_PATH) if os.environ.get("BENCH_WRITE") == "1" else None
    )
    doc = benchmark.pedantic(
        run_e2e_throughput, kwargs={"write_path": write_path}, rounds=1,
        iterations=1,
    )
    scenarios = {s["name"]: s for s in doc["scenarios"]}
    for scenario in doc["scenarios"]:
        # The recovery scenario's rows are simulated-seconds/bytes based
        # and carry no wall-clock throughput fields.
        rows = [r for r in scenario["rows"] if "rounds_per_s" in r]
        if not rows:
            continue
        print(
            "\n"
            + format_table(
                ["mode", "rounds/s", "keys/s", "examples/s", "wall (s)"],
                [
                    (
                        r["mode"],
                        r["rounds_per_s"],
                        r["keys_per_s"],
                        r["examples_per_s"],
                        r["wall_seconds"],
                    )
                    for r in rows
                ],
                title=f"End-to-end throughput: {scenario['name']} scenario",
            )
        )

    assert doc["schema"] == BENCH_E2E_SCHEMA
    default = scenarios["default"]
    pressure = scenarios["pressure"]
    recovery = scenarios["recovery"]
    faults = scenarios["faults"]
    print(
        f"planned-over-unplanned: "
        f"{default['speedup_planned_over_unplanned']:.2f}x, "
        f"pressure bulk-over-legacy: "
        f"{pressure['speedup_bulk_over_legacy']:.2f}x, "
        f"bulk-over-scalar: {pressure['speedup_bulk_over_scalar']:.2f}x, "
        f"prefetch-over-bulk: {pressure['speedup_prefetch_over_bulk']:.2f}x, "
        f"depth2-over-depth1: "
        f"{pressure['speedup_prefetch_k2_over_k1']:.2f}x, "
        f"full-over-delta bytes: "
        f"{recovery['bytes_ratio_full_over_delta']:.2f}x"
    )

    # Losslessness: neither the plan, the admission engine, nor the
    # prefetch stage changes the math — and under pressure not even the
    # simulated clock (within each parity group).
    assert default["parameter_parity"] is True
    assert pressure["parameter_parity"] is True
    assert pressure["seconds_parity"] is True
    assert pressure["prefetch_seconds_parity"] is True
    assert recovery["snapshot_parameter_parity"] is True
    assert recovery["recovery_parameter_parity"] is True
    # The fault-tolerance invariant: every fault in the bench schedule
    # is recoverable, so the supervised runs must heal to bit-identical
    # parameters.
    assert faults["parameter_parity"] is True
    # The admission engine never degrades to the whole-batch per-key
    # replay (the acceptance gate for the bulk-exact cache path).
    assert pressure["bulk_scalar_fallbacks"] == 0
    # The perf claims: the planned path beats the pre-plan baseline
    # (fat margin — safe for the blocking tier-1 job), and the admission
    # engine beats the pre-refactor plan-or-replay cache on the pressure
    # workload.  The pressure margin is thinner and machine-relative, so
    # its live assert arms only inside the non-blocking perf-smoke job;
    # the committed-artifact claim is asserted deterministically in
    # tests/plan/test_bench_schema.py.
    assert default["speedup_planned_over_unplanned"] >= REQUIRED_SPEEDUP
    if os.environ.get("BENCH_COMPARE") == "1":
        assert pressure["speedup_bulk_over_legacy"] >= REQUIRED_SPEEDUP

    # Absolute rounds/s vs the committed ledger is machine-relative, so
    # the comparison only arms inside the CI perf-smoke job (which is
    # non-blocking); the ratio checks above run everywhere.  The gate is
    # per (scenario, mode): an aggregate comparison would let a pressure
    # regression hide behind a default-scenario win.
    if os.environ.get("BENCH_COMPARE") == "1" and baseline_snapshot:
        fresh_rows = {
            (s["name"], r["mode"]): r
            for s in doc["scenarios"]
            for r in s["rows"]
        }
        for base_scenario in baseline_snapshot.get("scenarios", []):
            for base_row in base_scenario.get("rows", []):
                fresh = fresh_rows.get(
                    (base_scenario["name"], base_row["mode"])
                )
                if fresh is None:
                    continue
                if "rounds_per_s" not in base_row:
                    # Recovery/faults rows carry no wall-clock fields;
                    # the faults rows instead gate on downtime fraction
                    # (simulated, so any drift is a semantic change,
                    # not machine noise — the tolerance only absorbs
                    # deliberate workload retuning).
                    if "downtime_fraction" in base_row:
                        ceiling = (
                            base_row["downtime_fraction"]
                            * (1.0 + REGRESSION_TOLERANCE)
                            + 1e-9
                        )
                        assert fresh["downtime_fraction"] <= ceiling, (
                            f"{base_scenario['name']}/{base_row['mode']} "
                            f"downtime regressed: "
                            f"{fresh['downtime_fraction']:.4f} > "
                            f"{ceiling:.4f} (committed "
                            f"{base_row['downtime_fraction']:.4f} "
                            f"+ tolerance)"
                        )
                    continue
                floor = base_row["rounds_per_s"] * (1.0 - REGRESSION_TOLERANCE)
                assert fresh["rounds_per_s"] >= floor, (
                    f"{base_scenario['name']}/{base_row['mode']} regressed: "
                    f"{fresh['rounds_per_s']:.2f} rounds/s < 70% of "
                    f"committed {base_row['rounds_per_s']:.2f}"
                )
