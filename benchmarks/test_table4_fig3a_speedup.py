"""Table 4 + Figure 3(a): HPS-4 vs MPI-cluster speedup per model.

Paper values — speedup: A=1.8 B=2.7 C=4.8 D=2.2 E=2.6;
cost-normalized: A=4.4 B=5.4 C=9.0 D=8.4 E=8.3.
Shape asserted: HPS wins everywhere, C peaks, cost-normalized 4–11×.
"""

from repro.bench.harness import run_fig3a_throughput, run_table4_speedups
from repro.bench.report import format_table

PAPER_SPEEDUP = {"A": 1.8, "B": 2.7, "C": 4.8, "D": 2.2, "E": 2.6}
PAPER_COST_NORM = {"A": 4.4, "B": 5.4, "C": 9.0, "D": 8.4, "E": 8.3}


def test_table4_speedups(benchmark):
    rows = benchmark.pedantic(run_table4_speedups, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["model", "MPI nodes", "speedup", "paper", "cost-norm", "paper"],
            [
                (
                    r["model"],
                    r["mpi_nodes"],
                    r["speedup"],
                    PAPER_SPEEDUP[r["model"]],
                    r["cost_normalized_speedup"],
                    PAPER_COST_NORM[r["model"]],
                )
                for r in rows
            ],
            title="Table 4: training speedup over the MPI-cluster solution",
        )
    )
    by_model = {r["model"]: r for r in rows}
    # HPS-4 beats the MPI cluster on every model.
    assert all(r["speedup"] > 1.3 for r in rows)
    # The paper's range is 1.8-4.8x; ours must land in the same band.
    assert all(1.3 < r["speedup"] < 6.5 for r in rows)
    # Model C (fewest MPI nodes for its size) shows the largest speedup.
    assert by_model["C"]["speedup"] == max(r["speedup"] for r in rows)
    # Cost-normalized: paper reports 4.4-9.0x.
    assert all(3.5 < r["cost_normalized_speedup"] < 12.0 for r in rows)
    # Cost-normalization amplifies every model (MPI clusters cost more).
    assert all(r["cost_normalized_speedup"] > r["speedup"] for r in rows)


def test_fig3a_throughput(benchmark):
    rows = benchmark.pedantic(run_fig3a_throughput, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["model", "size (GB)", "MPI-cluster ex/s", "HPS-4 ex/s"],
            [
                (r["model"], r["size_gb"], r["mpi_cluster"], r["hps_4"])
                for r in rows
            ],
            title="Fig 3(a): #examples trained/sec",
        )
    )
    # HPS throughput in the paper's ballpark (bars reach ~2e5 ex/s).
    assert all(5e4 < r["hps_4"] < 5e5 for r in rows)
    # Throughput falls for the SSD-bound big models (D, E < A, B).
    by = {r["model"]: r["hps_4"] for r in rows}
    assert by["D"] < by["A"] and by["E"] < by["A"]
