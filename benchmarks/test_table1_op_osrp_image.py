"""Table 1: OP+OSRP on the (synthetic) image-search ads dataset.

Paper shape: the DNN beats LR; Hash+DNN AUC decreases monotonically as k
shrinks; model size (distinct weights) shrinks by orders of magnitude.
"""

from repro.bench.harness import run_op_osrp_study
from repro.bench.report import format_table


def test_table1_op_osrp_image(benchmark):
    rows = benchmark.pedantic(
        run_op_osrp_study,
        kwargs=dict(
            n_features=2**16,
            n_slots=8,
            nonzeros=32,
            n_train_batches=25,
            batch_size=1024,
            eval_size=8192,
            k_values=(2**14, 2**12, 2**10, 2**8),
            epochs=3,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    print(
        "\n"
        + format_table(
            ["method", "#weights", "test AUC"],
            [(r["method"], r["n_weights"], r["auc"]) for r in rows],
            title="Table 1: OP+OSRP for image-search sponsored ads (synthetic)",
        )
    )
    by = {r["method"]: r for r in rows}
    auc_lr = by["Baseline LR"]["auc"]
    auc_dnn = by["Baseline DNN"]["auc"]
    # DNN substantially improves over LR (the case for DNN CTR models).
    assert auc_dnn > auc_lr
    # Hashing reduces accuracy at every k, monotonically.
    hash_rows = [r for r in rows if r["k"] is not None]
    hash_rows.sort(key=lambda r: -r["k"])
    aucs = [r["auc"] for r in hash_rows]
    assert all(a >= b for a, b in zip(aucs, aucs[1:]))
    assert all(a < auc_dnn for a in aucs)
    # Model size shrinks with k.
    weights = [r["n_weights"] for r in hash_rows]
    assert all(a > b for a, b in zip(weights, weights[1:]))
