"""Figure 5(a): SSD-PS I/O time per batch (functional, end-to-end).

Paper shape: I/O time grows while the materialized set builds; once disk
usage crosses the threshold (~batch 54 in the paper) the compaction
thread kicks in and I/O time hikes and fluctuates.
"""

import numpy as np

from repro.bench.harness import run_fig5a_ssd_io
from repro.bench.report import format_series


def test_fig5a_ssd_io(benchmark):
    rows = benchmark.pedantic(
        run_fig5a_ssd_io, kwargs={"n_batches": 80}, rounds=1, iterations=1
    )
    io = np.array([r["ssd_io_seconds"] for r in rows])
    comp = np.array([r["compactions"] for r in rows])
    onset = int(np.argmax(comp > 0)) if comp.any() else -1
    print(
        "\n"
        + format_series(
            [r["batch"] for r in rows][::8],
            (io * 1e3)[::8],
            x_name="#batch",
            y_name="SSD I/O (ms)",
            title=f"Fig 5(a): SSD-PS I/O time (compaction onset: batch {onset})",
        )
    )
    # Compaction does kick in mid-run, not at the start.
    assert comp.any(), "compaction never triggered"
    assert onset > 10
    # I/O time after compaction onset exceeds the early-run level (hike).
    early = io[2:10].mean()
    late = io[onset:].mean()
    assert late > 1.5 * early
    # Compaction keeps running (regular merges), causing fluctuation.
    assert comp[onset:].sum() >= 2
