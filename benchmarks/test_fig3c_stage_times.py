"""Figure 3(c): execution-time distribution across pipeline stages.

Paper shape: Read examples is ~flat and dominates A and B; Pull/push
catches up at C and dominates D and E; Train DNN grows with dense size.
"""

from repro.bench.harness import run_fig3c_stage_times
from repro.bench.report import ascii_bars, format_table


def test_fig3c_stage_times(benchmark):
    rows = benchmark.pedantic(run_fig3c_stage_times, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["model", "read examples (s)", "pull/push (s)", "train DNN (s)"],
            [
                (r["model"], r["read_examples"], r["pull_push"], r["train_dnn"])
                for r in rows
            ],
            title="Fig 3(c): execution time distribution (per 4M-example batch)",
        )
    )
    by = {r["model"]: r for r in rows}
    # Read stage flat across models.
    reads = [r["read_examples"] for r in rows]
    assert max(reads) / min(reads) < 1.05
    # A, B read-bound.
    for m in "AB":
        assert by[m]["read_examples"] > by[m]["pull_push"]
        assert by[m]["read_examples"] > by[m]["train_dnn"]
    # Crossover at C.
    assert 0.7 < by["C"]["pull_push"] / by["C"]["read_examples"] < 1.7
    # D, E pull/push-bound.
    for m in "DE":
        assert by[m]["pull_push"] > by[m]["read_examples"]
        assert by[m]["pull_push"] > by[m]["train_dnn"]
    print(
        "\n"
        + ascii_bars(
            [r["model"] for r in rows],
            [r["pull_push"] for r in rows],
            title="pull/push seconds by model",
        )
    )
