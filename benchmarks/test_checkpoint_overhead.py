"""Checkpoint overhead and failure recovery (paper Section 7).

Paper shape: batch-granular snapshots of the hierarchical parameter
server make machine failures survivable by restore-and-replay, and
recovery lands bit-identically on the state a never-failed run reaches —
fault tolerance costs snapshot I/O, never model quality.
"""

from repro.bench.harness import run_checkpoint_overhead
from repro.bench.report import format_table


def test_checkpoint_overhead(benchmark):
    row = benchmark.pedantic(run_checkpoint_overhead, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["metric", "value"],
            [
                ("rounds", row["n_rounds"]),
                ("snapshot cadence (rounds)", row["checkpoint_every"]),
                ("snapshots taken", row["n_checkpoints"]),
                ("training time (s)", row["train_seconds"]),
                ("snapshot time (s)", row["checkpoint_seconds"]),
                ("snapshot serialize (s)", row["checkpoint_serialize_seconds"]),
                ("snapshot transfer (s)", row["checkpoint_transfer_seconds"]),
                ("snapshot bytes", row["checkpoint_bytes"]),
                ("overhead fraction", row["checkpoint_overhead"]),
                ("killed node", row["kill_node"]),
                ("killed after round", row["kill_after_round"]),
                ("restored from round", row["checkpoint_round"]),
                ("rounds replayed", row["rounds_replayed"]),
                ("restore time (s)", row["restore_seconds"]),
                ("replay time (s)", row["replay_seconds"]),
                ("recovery downtime (s)", row["recovery_seconds"]),
                ("parameter parity", row["parameter_parity"]),
            ],
            title="Checkpoint overhead and failure recovery",
        )
    )
    # Recovery is lossless: the replayed run is bit-identical to one that
    # never failed.
    assert row["parameter_parity"] is True
    # Replay is bounded by the snapshot cadence.
    assert 0 < row["rounds_replayed"] <= row["checkpoint_every"]
    assert row["restore_seconds"] > 0
    assert row["recovery_seconds"] > row["restore_seconds"]
    # Snapshot cost is a two-stage flow shop (serialize shard n+1 while
    # shipping shard n), so the makespan must beat the unoverlapped
    # serialize + transfer sum...
    assert row["checkpoint_seconds"] < (
        row["checkpoint_serialize_seconds"]
        + row["checkpoint_transfer_seconds"]
    )
    # ...and can never undercut the total bytes shipped.
    assert row["checkpoint_seconds"] >= row["checkpoint_transfer_seconds"]
    # Snapshots cost real (simulated) I/O but stay amortizable: one
    # snapshot costs less than the cadence of training rounds it
    # protects (the functional workload's rounds are unrealistically
    # cheap next to its state size, so per-round is the wrong yardstick
    # for a single snapshot).
    per_snapshot = row["checkpoint_seconds"] / row["n_checkpoints"]
    per_round = row["train_seconds"] / row["n_rounds"]
    assert per_snapshot < row["checkpoint_every"] * per_round
