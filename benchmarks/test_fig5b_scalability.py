"""Figure 5(b): throughput scalability over 1-4 nodes (model E).

Paper shape: near-linear but sub-linear speedup — 3.57 out of the ideal 4
at 4 nodes (extra inter-node communication).
"""

from repro.bench.harness import run_fig5b_scalability
from repro.bench.report import format_table


def test_fig5b_scalability(benchmark):
    rows = benchmark.pedantic(run_fig5b_scalability, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["#nodes", "real ex/s", "ideal ex/s", "speedup"],
            [(r["n_nodes"], r["real"], r["ideal"], r["speedup"]) for r in rows],
            title="Fig 5(b): speedup on model E (paper: 3.57 of 4)",
        )
    )
    by = {r["n_nodes"]: r for r in rows}
    # Monotone scaling.
    speeds = [r["speedup"] for r in rows]
    assert all(a < b for a, b in zip(speeds, speeds[1:]))
    # Sub-linear at every multi-node point.
    for n in (2, 3, 4):
        assert by[n]["speedup"] < n
    # 4-node speedup in the paper's band (3.57/4 = 89% efficiency).
    assert 3.0 < by[4]["speedup"] < 4.0
