"""Figure 4(b): MEM-PS local vs remote pull time over 1/2/4 nodes.

Paper shape: remote pulling is N/A at 1 node; local and remote run in
parallel; the overall MEM-PS pull time stays roughly flat as nodes are
added (less local SSD work per node, more remote serving).
"""

from repro.bench.harness import run_fig4b_mem_times
from repro.bench.report import format_table


def test_fig4b_mem_times(benchmark):
    rows = benchmark.pedantic(run_fig4b_mem_times, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["#nodes", "pull-local (s)", "pull-remote (s)"],
            [(r["n_nodes"], r["pull_local"], r["pull_remote"]) for r in rows],
            title="Fig 4(b): time distribution in MEM-PS (model E)",
        )
    )
    by = {r["n_nodes"]: r for r in rows}
    # Remote pulling not applicable at 1 node.
    import math

    assert math.isnan(by[1]["pull_remote"])
    # Remote pulls exist with >= 2 nodes.
    assert by[2]["pull_remote"] > 0 and by[4]["pull_remote"] > 0
    # Overall time (max of parallel local/remote) ~flat across node counts.
    def overall(r):
        remote = 0.0 if math.isnan(r["pull_remote"]) else r["pull_remote"]
        return max(r["pull_local"], remote)

    times = [overall(r) for r in rows]
    assert max(times) / min(times) < 1.6
