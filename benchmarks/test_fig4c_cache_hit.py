"""Figure 4(c): MEM-PS cache hit rate per batch (functional, end-to-end).

Paper shape: cold start near zero, steep climb over the first ~10 batches,
stable plateau (paper: ~46% by batch 40 for model E).
"""

import numpy as np

from repro.bench.harness import run_fig4c_cache_hit
from repro.bench.report import format_series


def test_fig4c_cache_hit(benchmark):
    rows = benchmark.pedantic(
        run_fig4c_cache_hit, kwargs={"n_batches": 50}, rounds=1, iterations=1
    )
    hits = [r["hit_rate"] for r in rows]
    print(
        "\n"
        + format_series(
            [r["batch"] for r in rows][::5],
            hits[::5],
            x_name="#batch",
            y_name="hit rate",
            title="Fig 4(c): cache hit rate (every 5th batch shown)",
        )
    )
    # Cold start.
    assert hits[0] < 0.05
    # Steep warm-up within the first ~10 batches.
    assert hits[9] > 0.25
    # Plateau: stable from batch 40 on — low variance, no trend.
    tail = np.array(hits[35:])
    assert tail.std() < 0.06
    assert 0.25 < tail.mean() < 0.65
    # The plateau is a genuine equilibrium: last 10 ~= previous 10.
    assert abs(np.mean(hits[-10:]) - np.mean(hits[-20:-10])) < 0.05
