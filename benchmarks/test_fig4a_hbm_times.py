"""Figure 4(a): HBM-PS time distribution (pull / training / push).

Paper shape: pull/push HBM time follows #non-zeros per example (A,B=100
vs C,D,E=500); training time follows the dense tower size (E largest).
"""

from repro.bench.harness import run_fig4a_hbm_times
from repro.bench.report import format_table


def test_fig4a_hbm_times(benchmark):
    rows = benchmark.pedantic(run_fig4a_hbm_times, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["model", "pull-HBM-PS (s)", "training (s)", "push-HBM-PS (s)"],
            [
                (r["model"], r["pull_hbm_ps"], r["training"], r["push_hbm_ps"])
                for r in rows
            ],
            title="Fig 4(a): time distribution in HBM-PS (per batch)",
        )
    )
    by = {r["model"]: r for r in rows}
    # Pull/push follow non-zeros: the 500-nnz models cost >2x the 100-nnz.
    for big in "CDE":
        for small in "AB":
            assert by[big]["pull_hbm_ps"] > 2 * by[small]["pull_hbm_ps"]
            assert by[big]["push_hbm_ps"] > 2 * by[small]["push_hbm_ps"]
    # Training cost ordering tracks dense parameter count: E > D > C, B min.
    assert by["E"]["training"] > by["D"]["training"] > by["C"]["training"]
    assert by["B"]["training"] == min(r["training"] for r in rows)
