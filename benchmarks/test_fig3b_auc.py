"""Figure 3(b): relative AUC of hierarchical vs reference training.

Paper claim: all five models are within ±0.1% relative AUC of the MPI
solution — the hierarchy is lossless.  Here both trainers see identical
data, so the functional reproduction asserts the same bound end to end.
"""

from repro.bench.harness import functional_model, run_fig3b_auc
from repro.bench.report import format_table


def test_fig3b_relative_auc(benchmark):
    result = benchmark.pedantic(
        run_fig3b_auc,
        args=(functional_model(),),
        kwargs={"n_rounds": 5, "batch_size": 768},
        rounds=1,
        iterations=1,
    )
    print(
        "\n"
        + format_table(
            ["AUC (HPS)", "AUC (reference)", "relative"],
            [(result["auc_hps"], result["auc_reference"], result["relative_auc"])],
            title="Fig 3(b): relative AUC (paper bound: within 0.1%)",
        )
    )
    # The paper's acceptance bound.
    assert abs(result["relative_auc"] - 1.0) < 1e-3
    # And the trained model is genuinely better than chance.
    assert result["auc_hps"] > 0.55
