"""Lockstep vs pipelined end-to-end training (paper Section 3).

Paper shape: the 4-stage prefetch pipeline hides HDFS/MEM/SSD/network
latency behind GPU compute, so the overlapped makespan drops strictly
below the serial one while training stays lossless — pipelined parameters
are bit-identical to lockstep.
"""

from repro.bench.harness import run_pipeline_overlap
from repro.bench.report import format_table


def test_pipeline_overlap(benchmark):
    row = benchmark.pedantic(run_pipeline_overlap, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["metric", "value"],
            [
                ("batches", row["n_batches"]),
                ("lockstep makespan (s)", row["lockstep_makespan"]),
                ("pipelined makespan (s)", row["pipelined_makespan"]),
                ("speedup", row["speedup"]),
                ("steady-state interval (s)", row["steady_state_interval"]),
                ("bottleneck stage", row["bottleneck_stage"]),
                ("lockstep throughput (ex/s)", row["lockstep_throughput"]),
                ("pipelined throughput (ex/s)", row["pipelined_throughput"]),
                ("parameter parity", row["parameter_parity"]),
            ],
            title="Lockstep vs pipelined execution",
        )
    )
    # Losslessness: the pipeline reorders the clock, never the math.
    assert row["parameter_parity"] is True
    # Overlap: strictly below serial whenever stages are non-degenerate.
    assert row["pipelined_makespan"] < row["lockstep_makespan"]
    assert row["speedup"] > 1.0
    assert row["pipelined_throughput"] > row["lockstep_throughput"]
