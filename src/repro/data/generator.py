"""Synthetic CTR click-log generator.

Substitutes the paper's production search-ads logs.  What matters for every
experiment in the paper is preserved:

* **Slot structure** — each example has one (or a few) active ids per
  feature slot (query, ad, user, context, …), i.e. one-hot/multi-hot groups.
* **Skew** — feature popularity is Zipfian, so a small set of hot keys
  recurs across batches (this is what makes the MEM-PS cache reach a stable
  ~46% hit rate in Fig. 4(c)).
* **Planted signal** — labels come from a ground-truth sparse logistic model
  with pairwise interaction terms, so a DNN beats LR (Table 1/2) and AUC is
  a meaningful, improvable metric.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ModelSpec
from repro.data.batching import Batch
from repro.utils.keys import KEY_DTYPE, splitmix64
from repro.utils.rng import spawn

__all__ = ["CTRDataGenerator", "zipf_probabilities"]


def zipf_probabilities(n: int, exponent: float = 1.05) -> np.ndarray:
    """Normalized Zipf pmf over ``n`` ranks (rank 1 most popular)."""
    if n <= 0:
        raise ValueError("n must be positive")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    p = ranks ** (-exponent)
    return p / p.sum()


@dataclass
class _SlotSampler:
    """Draws ids for one feature slot from a Zipf-over-hashed-ranks law."""

    slot: int
    vocab: int
    key_base: int
    exponent: float

    def sample(self, rng: np.random.Generator, n: int, ids_per_slot: int) -> np.ndarray:
        # Inverse-CDF sampling of Zipf ranks, then hash ranks to keys so hot
        # keys are scattered across the key space (as real feature ids are).
        u = rng.random(n * ids_per_slot)
        # Zipf via inverse transform on the truncated harmonic CDF is
        # expensive; use the standard approximation: rank ~ u^(-1/(a-1))
        # clipped to the vocab, which preserves the heavy head.
        a = max(self.exponent, 1.0001)
        with np.errstate(over="ignore"):
            raw_rank = np.floor(np.clip(u, 1e-12, None) ** (-1.0 / (a - 1.0)))
        ranks = np.minimum(float(self.vocab - 1), raw_rank).astype(np.int64)
        return (self.key_base + ranks).astype(KEY_DTYPE)


class CTRDataGenerator:
    """Streaming generator of :class:`Batch` objects for a model spec.

    Parameters
    ----------
    spec:
        Model shape: key-space size, slots, nonzeros per example.
    seed:
        Master seed; batch ``i`` is a pure function of ``(seed, i)``.
    zipf_exponent:
        Popularity skew.  ``~1.05`` reproduces production-like reuse.
    noise:
        Label noise scale added to the planted logit.
    """

    def __init__(
        self,
        spec: ModelSpec,
        *,
        seed: int = 0,
        zipf_exponent: float = 1.05,
        noise: float = 0.3,
    ) -> None:
        if zipf_exponent <= 1.0:
            raise ValueError("zipf_exponent must exceed 1.0")
        self.spec = spec
        self.seed = seed
        self.zipf_exponent = zipf_exponent
        self.noise = noise
        vocab = spec.n_sparse // spec.n_slots
        if vocab == 0:
            raise ValueError("n_sparse must be >= n_slots")
        self._samplers = [
            _SlotSampler(s, vocab, s * vocab, zipf_exponent)
            for s in range(spec.n_slots)
        ]
        # Planted ground-truth weights are derived lazily per key via
        # hashing, so the generator never materializes the full key space.
        self._w_seed = spawn(seed, "truth").integers(0, 2**31)

    # ------------------------------------------------------------------
    def _ground_truth_weight(self, keys: np.ndarray) -> np.ndarray:
        """Deterministic per-key weight in roughly N(0, 0.35)."""
        h = splitmix64(keys ^ np.uint64(self._w_seed))
        # Map 64-bit hash to (-1, 1) uniformly, then shape it.
        u = (h >> np.uint64(11)).astype(np.float64) / float(2**53)
        return (u - 0.5) * 1.4

    def _interaction_logit(self, batch_keys: np.ndarray, offsets: np.ndarray) -> np.ndarray:
        """Pairwise-interaction signal: hash adjacent slot ids together.

        Gives the data genuinely non-linear structure a logistic model
        cannot express but an embedding DNN can.
        """
        lengths = np.diff(offsets)
        n = lengths.size
        out = np.zeros(n, dtype=np.float64)
        if batch_keys.size == 0:
            return out
        # Pair each key with the next key of the same example.
        if n and bool(np.all(lengths == lengths[0])):
            # Uniform rows (the generator's own layout): the pair
            # positions are pure index arithmetic — pair ``j`` of row
            # ``r`` sits at flat position ``r*L + j``, so with
            # ``i = r*(L-1) + j`` that is ``i + i // (L-1)``.  Same
            # pairs in the same order as the generic mask below.
            L = int(lengths[0])
            if L < 2:
                return out
            idx = np.arange(n * (L - 1), dtype=np.int64)
            row_of_pair = idx // (L - 1)
            pair_idx = idx + row_of_pair
        else:
            row = np.repeat(np.arange(n), lengths)
            same_row = row[:-1] == row[1:]
            pair_idx = np.flatnonzero(same_row)
            row_of_pair = row[:-1][same_row]
        with np.errstate(over="ignore"):
            pair_hash = splitmix64(
                batch_keys[pair_idx] * np.uint64(0x9E3779B97F4A7C15)
                ^ batch_keys[pair_idx + 1]
            )
        u = (pair_hash >> np.uint64(11)).astype(np.float64) / float(2**53)
        contrib = (u - 0.5) * 2.0
        # Sequential float64 accumulation, bit-identical to np.add.at.
        out += np.bincount(row_of_pair, weights=contrib, minlength=n)
        return out

    # ------------------------------------------------------------------
    def batch(self, batch_index: int, n_examples: int) -> Batch:
        """Generate batch ``batch_index`` with ``n_examples`` examples."""
        if n_examples <= 0:
            raise ValueError("n_examples must be positive")
        rng = spawn(self.seed, "batch", batch_index)
        spec = self.spec
        ids_per_slot = max(1, spec.nonzeros_per_example // spec.n_slots)
        cols = []
        for sampler in self._samplers:
            cols.append(sampler.sample(rng, n_examples, ids_per_slot))
        # Layout: example-major, slot-minor.
        keys = (
            np.stack([c.reshape(n_examples, ids_per_slot) for c in cols], axis=1)
            .reshape(n_examples, -1)
            .ravel()
        )
        nnz_per_example = spec.n_slots * ids_per_slot
        offsets = np.arange(n_examples + 1, dtype=np.int64) * nnz_per_example

        logit = self._ground_truth_weight(keys).reshape(n_examples, -1).sum(axis=1)
        logit += self._interaction_logit(keys, offsets)
        logit += rng.normal(0.0, self.noise, size=n_examples)
        logit -= np.median(logit)  # balanced-ish classes
        prob = 1.0 / (1.0 + np.exp(-logit))
        labels = (rng.random(n_examples) < prob).astype(np.float32)
        return Batch(keys, offsets, labels)

    def batches(self, n_batches: int, n_examples: int):
        """Yield ``n_batches`` consecutive batches."""
        for i in range(n_batches):
            yield self.batch(i, n_examples)
