"""Simulated HDFS batch stream.

The paper streams click-log batches from HDFS into each node's main memory
(Algorithm 1 line 2); in Fig. 3(c) this "Read examples" stage is the
bottleneck for the small models.  :class:`HDFSStream` wraps a
:class:`~repro.data.generator.CTRDataGenerator` and charges the read-time
model for every batch it yields.

Data-parallel sharding: node ``i`` of ``n`` receives batches
``i, i+n, i+2n, …`` — different nodes see disjoint data, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.batching import Batch
from repro.data.generator import CTRDataGenerator
from repro.hardware.ledger import CostLedger
from repro.hardware.specs import HDFSSpec

__all__ = ["HDFSStream", "TimedBatch"]


@dataclass(frozen=True)
class TimedBatch:
    """A batch plus the simulated seconds spent streaming it from HDFS."""

    index: int
    batch: Batch
    read_seconds: float


class HDFSStream:
    """Per-node view of the training data on the distributed FS."""

    def __init__(
        self,
        generator: CTRDataGenerator,
        spec: HDFSSpec,
        *,
        node_id: int = 0,
        n_nodes: int = 1,
        batch_size: int = 4096,
        ledger: CostLedger | None = None,
    ) -> None:
        if not 0 <= node_id < n_nodes:
            raise ValueError("node_id must be in [0, n_nodes)")
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.generator = generator
        self.spec = spec
        self.node_id = node_id
        self.n_nodes = n_nodes
        self.batch_size = batch_size
        self.ledger = ledger if ledger is not None else CostLedger()
        self.batches_read = 0
        self.bytes_read = 0
        #: fault-injection guard for batch reads
        #: (:class:`repro.faults.policy.FaultArm`; None = fault-free)
        self.faults = None

    def transfer_seconds(self, n_bytes: int) -> float:
        """Simulated seconds to move ``n_bytes`` to/from the distributed
        FS — the one place the latency + bytes/bandwidth cost model lives
        (batch reads and checkpoint shard traffic both price through it).
        """
        return self.spec.latency_s + n_bytes / self.spec.bandwidth

    def read_time(self, batch: Batch) -> float:
        """Simulated seconds to stream ``batch`` from HDFS."""
        return self.transfer_seconds(batch.nbytes_raw_log())

    def peek(self, global_index: int) -> TimedBatch:
        """Materialize one batch without charging the ledger or counters.

        Batches are pure functions of the global index, so a peeked
        batch is bit-identical to what :meth:`read` would return for the
        same index; the lookahead planner peeks rounds ``b+1..b+k-1``
        and settles each via :meth:`account` in the round that actually
        consumes it, keeping the ledger/fault op order identical to the
        depth-1 schedule.
        """
        batch = self.generator.batch(global_index, self.batch_size)
        return TimedBatch(global_index, batch, self.read_time(batch))

    def account(self, timed: TimedBatch) -> TimedBatch:
        """Charge the ledger/fault/counter side effects for a peeked batch.

        Performs exactly the side effects :meth:`read` would, in the
        same order, and returns the batch with any fault-retry seconds
        folded into ``read_seconds``.
        """
        t = timed.read_seconds
        extra = 0.0
        if self.faults is not None:
            extra = self.faults.guard(
                {"hdfs_timeout": t, "hdfs_read_failure": 0.0}, scope="round"
            )
        self.ledger.add("hdfs_read", t)
        self.batches_read += 1
        self.bytes_read += timed.batch.nbytes_raw_log()
        if extra:
            return TimedBatch(timed.index, timed.batch, t + extra)
        return timed

    def read(self, global_index: int) -> TimedBatch:
        """Fetch one batch by global index, charging the ledger.

        When armed, transfer timeouts (a timed-out attempt wastes the
        whole transfer) and transient read failures (fail fast, backoff
        only) retry under the policy *before* the stream's counters
        advance — an exhausted fault escapes with round scope and the
        retried round re-reads the identical batch (batches are pure
        functions of the global index, so a retry cannot fork the data).
        """
        return self.account(self.peek(global_index))

    def stream(self, n_rounds: int):
        """Yield this node's share of ``n_rounds`` global rounds.

        In round ``r`` every node reads one batch; node ``i`` reads global
        batch ``r * n_nodes + i``.
        """
        for r in range(n_rounds):
            yield self.read(r * self.n_nodes + self.node_id)
