"""Batch and mini-batch containers.

A :class:`Batch` stores a set of CTR examples in CSR-like form: a flat key
array plus row offsets, with one binary label per example.  This is the unit
streamed from HDFS (paper: ~4M examples per batch).  ``shard`` implements
Algorithm 1 line 5 — splitting a batch into per-GPU mini-batches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.keys import KEY_DTYPE, as_keys, unique_keys

__all__ = ["Batch", "concat_batches"]


@dataclass
class Batch:
    """CSR-encoded sparse examples.

    Attributes
    ----------
    keys:
        Flat ``uint64`` array of all non-zero feature ids, row-major.
    offsets:
        ``int64`` array of length ``n_examples + 1``; example ``i`` owns
        ``keys[offsets[i]:offsets[i+1]]``.
    labels:
        ``float32`` array of 0/1 click labels, length ``n_examples``.
    """

    keys: np.ndarray
    offsets: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        self.keys = as_keys(self.keys)
        self.offsets = np.asarray(self.offsets, dtype=np.int64)
        self.labels = np.asarray(self.labels, dtype=np.float32)
        if self.offsets.ndim != 1 or self.offsets.size == 0:
            raise ValueError("offsets must be a 1-D array with >= 1 entry")
        if self.offsets[0] != 0 or self.offsets[-1] != self.keys.size:
            raise ValueError("offsets must start at 0 and end at len(keys)")
        if np.any(np.diff(self.offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        if self.labels.size != self.offsets.size - 1:
            raise ValueError("labels length must equal number of examples")
        self._unique: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def n_examples(self) -> int:
        return int(self.offsets.size - 1)

    @property
    def n_nonzeros(self) -> int:
        return int(self.keys.size)

    def unique_keys(self) -> np.ndarray:
        """Sorted unique feature keys referenced by this batch —
        the batch's *working parameters* (Algorithm 1 line 3).

        Memoized (batches are immutable once built, and the plan builder
        and every stage ask for the same set); treat the returned array
        as read-only.
        """
        if self._unique is None:
            self._unique = unique_keys(self.keys)
        return self._unique

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.offsets)

    # ------------------------------------------------------------------
    @classmethod
    def _trusted(
        cls, keys: np.ndarray, offsets: np.ndarray, labels: np.ndarray
    ) -> "Batch":
        """Construct from arrays that already satisfy the invariants.

        For internal producers (contiguous shard slices of an
        already-validated batch) whose CSR structure is correct by
        construction — skips ``__post_init__`` validation scans.
        """
        b = cls.__new__(cls)
        b.keys = keys
        b.offsets = offsets
        b.labels = labels
        b._unique = None
        return b

    def select(self, example_idx: np.ndarray) -> "Batch":
        """Sub-batch containing ``example_idx`` rows (in the given order)."""
        example_idx = np.asarray(example_idx, dtype=np.int64)
        if example_idx.size == 0:
            return Batch(
                np.empty(0, dtype=KEY_DTYPE),
                np.zeros(1, dtype=np.int64),
                np.empty(0, dtype=np.float32),
            )
        if example_idx.min() < 0 or example_idx.max() >= self.n_examples:
            raise IndexError("example index out of range")
        lengths = self.row_lengths()[example_idx]
        new_offsets = np.zeros(example_idx.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=new_offsets[1:])
        # Gather the flat key ranges without a Python-level inner loop.
        starts = self.offsets[example_idx]
        take = _ranges(starts, lengths)
        return Batch(self.keys[take], new_offsets, self.labels[example_idx])

    def shard(self, n_shards: int) -> list["Batch"]:
        """Split into ``n_shards`` contiguous mini-batches (Alg. 1 line 5).

        Shard sizes differ by at most one example.  Empty shards are
        produced when ``n_shards > n_examples``.
        """
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        bounds = np.linspace(0, self.n_examples, n_shards + 1).astype(np.int64)
        # Shards are contiguous example ranges, so each is a pure slice
        # of the CSR arrays — identical to ``select(arange(lo, hi))``
        # without the generic gather.
        offsets, keys, labels = self.offsets, self.keys, self.labels
        out = []
        for i in range(n_shards):
            lo, hi = int(bounds[i]), int(bounds[i + 1])
            ks, ke = int(offsets[lo]), int(offsets[hi])
            out.append(
                Batch._trusted(
                    keys[ks:ke],
                    offsets[lo : hi + 1] - offsets[lo],
                    labels[lo:hi],
                )
            )
        return out

    # ------------------------------------------------------------------
    def nbytes_raw_log(self, *, bytes_per_key: int = 8, header: int = 16) -> int:
        """Approximate on-disk click-log footprint of this batch.

        Drives the HDFS read-time model: each example is a header (label,
        ids, timestamps) plus one encoded key per non-zero.
        """
        return self.n_examples * header + self.n_nonzeros * bytes_per_key


def _ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Vectorized ``concatenate([arange(s, s+l) for s, l in zip(...)])``.

    Implemented as a restarting cumulative sum: every element steps by one
    except each row's first element, which jumps to that row's start.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    mask = lengths > 0
    starts, lengths = starts[mask], lengths[mask]
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    inc = np.ones(total, dtype=np.int64)
    row_first = np.concatenate(([0], np.cumsum(lengths)[:-1]))
    inc[row_first] = np.concatenate(
        ([starts[0]], np.diff(starts) - lengths[:-1] + 1)
    )
    return inc.cumsum()


def concat_batches(batches: list[Batch]) -> Batch:
    """Concatenate batches preserving example order."""
    if not batches:
        raise ValueError("need at least one batch")
    keys = np.concatenate([b.keys for b in batches])
    labels = np.concatenate([b.labels for b in batches])
    offsets = np.zeros(sum(b.n_examples for b in batches) + 1, dtype=np.int64)
    np.cumsum(np.concatenate([b.row_lengths() for b in batches]), out=offsets[1:])
    return Batch(keys, offsets, labels)
