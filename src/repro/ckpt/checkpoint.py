"""Cluster-level checkpoint save/restore.

:func:`save_cluster` snapshots a quiescent
:class:`~repro.core.cluster.HPSCluster` into a checkpoint directory;
:func:`restore_cluster` rebuilds a cluster from one.  Both charge the
simulated cost of moving the snapshot to/from the distributed FS through
each node's :class:`~repro.hardware.ledger.CostLedger` (categories
``ckpt_write`` / ``ckpt_read``) using the node's HDFS model.  Saves
split a shard's cost into serialization vs HDFS transfer and overlap
them (serialize shard ``n + 1`` while shipping shard ``n``), so the
save-level cost is a flow-shop makespan; restores read shards in
parallel, so their cost is the slowest node.

Delta snapshots (:func:`save_cluster_delta`, format v3) record only the
state that changed since the previous snapshot: new SSD parameter files
plus the mapping/stale-counter diff, the MEM cache's metadata plus only
its changed value rows, and the (full, tiny) dense/optimizer state.  The
diff source is the cluster's in-memory record of its last snapshot
(``cluster._ckpt_base``), refreshed on every save, so steady-state
snapshot bytes scale with the round's write set, not the model.  Restore
walks the manifest chain (:func:`~repro.ckpt.format.resolve_chain`) —
base first, deltas replayed in order.

Partial restore (:func:`restore_node`): node shards are independent, so
when one node dies at a round boundary where a snapshot exists, the
surviving majority reloads *nothing* — a fresh replacement node loads
its base shard, replays its delta chain, and splices in.

Resume parity: batches are pure functions of ``(seed, index)`` and every
piece of mutable training state is captured (dense tower, dense/sparse
optimizer state, MEM cache contents *and* replacement order, SSD file
layout with stale counters, stream position), so ``train(k) + save +
restore + train(m)`` is bit-identical to ``train(k + m)`` in both
lockstep and pipelined modes — for full snapshots, delta chains, and
partial-node restores alike.
"""

from __future__ import annotations

import hashlib
import io
import os
from dataclasses import asdict, dataclass

import numpy as np

from repro.ckpt import format as fmt
from repro.ckpt.format import (
    DENSE_SHARD,
    FORMAT_VERSION,
    CheckpointError,
    fingerprint,
    node_shard_name,
)
from repro.config import ClusterConfig, ModelSpec

__all__ = [
    "CheckpointStats",
    "save_cluster",
    "save_cluster_delta",
    "restore_cluster",
    "restore_node",
]


@dataclass(frozen=True)
class CheckpointStats:
    """Cost accounting for one save or restore."""

    op: str  # "save" | "restore"
    directory: str
    rounds_completed: int
    #: Critical path.  Saves price as a serialize/transfer flow shop
    #: (shard ``n + 1`` serializes while shard ``n`` ships), so this is
    #: the pipeline makespan; restores keep the parallel-shard model
    #: (slowest node).
    seconds: float
    nbytes: int
    per_node_seconds: tuple[float, ...]
    #: "full" | "delta" for saves; "full" | "delta" | "partial" for
    #: restores (what the newest chain member / restore mode was).
    kind: str = "full"
    #: Total CPU-side shard serialization time across nodes (saves only;
    #: zero for restores).
    serialize_seconds: float = 0.0
    #: Total HDFS transfer time across nodes (saves only; zero for
    #: restores).
    transfer_seconds: float = 0.0


# ----------------------------------------------------------------------
def _config_payload(cluster) -> dict:
    """The JSON-able identity a checkpoint is only valid against.

    Covers everything that shapes training semantics: model/cluster
    config, optimizer identities (the sparse value layout in particular),
    and the data stream's RNG identity (seed, skew, batch size) — batch
    ``i`` is a pure function of these, which is what makes replay exact.
    """
    return {
        "format_version": FORMAT_VERSION,
        "model_spec": asdict(cluster.model_spec),
        "cluster_config": asdict(cluster.config),
        "sparse_optimizer": cluster.sparse_optimizer.spec(),
        "dense_optimizer": cluster.nodes[0].dense_optimizer.spec(),
        "data_seed": cluster.generator.seed,
        "zipf_exponent": cluster.generator.zipf_exponent,
        "noise": cluster.generator.noise,
        "functional_batch_size": cluster.functional_batch_size,
    }


def _write_shard(directory: str, name: str, arrays: dict) -> tuple[int, str]:
    """Serialize ``arrays`` to an ``.npz`` shard; returns (bytes, digest).

    The shard is built in memory so its digest is of exactly what was
    committed, then written durably (temp + ``os.replace``).
    """
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    data = buf.getvalue()
    fmt.atomic_write_bytes(os.path.join(directory, name), data)
    return len(data), hashlib.sha256(data).hexdigest()


def _hdfs_transfer_seconds(node, nbytes: int) -> float:
    """Checkpoint traffic prices through the node's HDFS stream model."""
    return node.hdfs.transfer_seconds(nbytes)


def _overlap_snapshot_cost(
    cluster, node_bytes: list[int], dense_bytes: int, manifest_bytes: int
) -> tuple[tuple[float, ...], float, float, float]:
    """Flow-shop cost of materializing a snapshot's shards.

    A shard costs two distinct things: CPU-side serialization (priced by
    the HDFS spec's ``serialize_bandwidth``) and the HDFS transfer
    itself.  The snapshot stage overlaps them — shard ``n + 1``
    serializes while shard ``n`` is in flight — so the snapshot-level
    cost is the two-machine flow-shop makespan over shards in node
    order, not the serial sum of both components.  Node 0's shard also
    carries the dense replica and the manifest.

    Charges each node's ledger its own ``serialize + transfer`` share
    and returns ``(per_node_seconds, serialize_total, transfer_total,
    makespan)``.
    """
    serialize: list[float] = []
    transfer: list[float] = []
    for node, nbytes in zip(cluster.nodes, node_bytes):
        total = nbytes + (
            dense_bytes + manifest_bytes if node.node_id == 0 else 0
        )
        serialize.append(total / node.hdfs.spec.serialize_bandwidth)
        transfer.append(_hdfs_transfer_seconds(node, total))
    per_node: list[float] = []
    s_done = 0.0
    t_done = 0.0
    for node, s, t in zip(cluster.nodes, serialize, transfer):
        s_done += s
        t_done = max(t_done, s_done) + t
        node.ledger.add("ckpt_write", s + t)
        per_node.append(s + t)
    return tuple(per_node), sum(serialize), sum(transfer), t_done


def _dense_arrays(cluster) -> dict[str, np.ndarray]:
    """Dense replica + dense optimizer state (identical on every node by
    the all-reduce invariant; node 0's copy is canonical).  Dense state
    is small, so both full and delta snapshots ship it whole."""
    dense: dict[str, np.ndarray] = dict(cluster.nodes[0].model.mlp.state_dict())
    for i, acc in enumerate(cluster.nodes[0].dense_optimizer.get_state()):
        dense[f"adagrad_acc_{i}"] = acc
    return dense


def _node_shard_arrays(node, tiers: dict[str, dict]) -> dict[str, np.ndarray]:
    """Pack one node's tier exports (full or delta) into shard arrays.

    Tier arrays are namespaced with a 4-char prefix (``mem_``/``ssd_``/
    ``hbm_``); the stream position and the long-horizon cost accounting
    ride alongside — the cost of *this* save lands after the snapshot
    (it depends on the shard bytes), exactly as a deployment would book
    it.
    """
    arrays: dict[str, np.ndarray] = {}
    for tier, state in tiers.items():
        for key, value in state.items():
            arrays[f"{tier}_{key}"] = value
    arrays["hdfs_batches_read"] = np.int64(node.hdfs.batches_read)
    arrays["hdfs_bytes_read"] = np.int64(node.hdfs.bytes_read)
    ledger_state = node.ledger.export_state()
    arrays["ledger_categories"] = np.array(
        ledger_state["categories"], dtype=np.str_
    )
    arrays["ledger_totals"] = np.array(ledger_state["totals"], dtype=np.float64)
    arrays["ledger_counts"] = np.array(ledger_state["counts"], dtype=np.int64)
    return arrays


def _split_tier_arrays(arrays: dict[str, np.ndarray]) -> dict[str, dict]:
    """Invert :func:`_node_shard_arrays`'s tier namespacing."""
    from repro.core.node import HPSNode

    return {
        tier: {
            k[len(tier) + 1 :]: v
            for k, v in arrays.items()
            if k.startswith(f"{tier}_")
        }
        for tier in HPSNode.TIERS
    }


def _load_npz(path: str) -> dict[str, np.ndarray]:
    with np.load(path) as z:
        return {key: z[key] for key in z.files}


def _load_node_counters(node, arrays: dict[str, np.ndarray]) -> None:
    """Stream position + cost history (restored first, then the restore
    itself is charged on top — accounting continues, it does not
    restart)."""
    node.hdfs.batches_read = int(arrays["hdfs_batches_read"])
    node.hdfs.bytes_read = int(arrays["hdfs_bytes_read"])
    node.ledger.load_state(
        {
            "categories": arrays["ledger_categories"].tolist(),
            "totals": arrays["ledger_totals"].tolist(),
            "counts": arrays["ledger_counts"].tolist(),
        }
    )


def _record_base(cluster, directory: str, node_states: list[dict]) -> None:
    """Remember the snapshot just committed as the next delta's base."""
    cluster._ckpt_base = {
        "directory": os.path.abspath(directory),
        "rounds": cluster.rounds_completed,
        "manifest_sha256": fmt.manifest_sha256(directory),
        "node_states": node_states,
    }


def _require_boundary(cluster) -> None:
    if cluster._staged_rounds:
        raise CheckpointError(
            "cannot checkpoint: a round has working parameters staged in "
            "HBM — checkpoints are only valid at a round boundary"
        )


# ----------------------------------------------------------------------
def save_cluster(cluster, directory: str) -> CheckpointStats:
    """Materialize a full checkpoint of ``cluster`` into ``directory``.

    The cluster must be quiescent (no round staged between HBM load and
    write-back) — both training modes are quiescent between ``train`` /
    ``train_pipelined`` calls.  The manifest is invalidated first and
    committed last, so a crash mid-save can never leave a directory that
    reads back as a valid-but-inconsistent checkpoint.
    """
    _require_boundary(cluster)
    os.makedirs(directory, exist_ok=True)
    fmt.invalidate(directory)

    shards: dict[str, str] = {}
    dense_bytes, digest = _write_shard(directory, DENSE_SHARD, _dense_arrays(cluster))
    shards[DENSE_SHARD] = digest

    node_bytes: list[int] = []
    node_states: list[dict] = []
    for node in cluster.nodes:
        tiers = node.tier_states()
        name = node_shard_name(node.node_id)
        nbytes, digest = _write_shard(
            directory, name, _node_shard_arrays(node, tiers)
        )
        shards[name] = digest
        node_bytes.append(nbytes)
        node_states.append(tiers)

    payload = _config_payload(cluster)
    manifest = {
        "format_version": FORMAT_VERSION,
        "kind": "full",
        "fingerprint": fingerprint(payload),
        "config": payload,
        "rounds_completed": cluster.rounds_completed,
        "n_nodes": cluster.n_nodes,
        "shards": shards,
    }
    manifest_bytes = fmt.write_manifest(directory, manifest)
    _record_base(cluster, directory, node_states)

    # Simulated cost: serialize/transfer flow shop over node shards —
    # shard n+1 serializes while shard n ships; node 0 additionally
    # commits the dense replica and the manifest.
    per_node, ser_s, xfer_s, makespan = _overlap_snapshot_cost(
        cluster, node_bytes, dense_bytes, manifest_bytes
    )
    return CheckpointStats(
        op="save",
        directory=directory,
        rounds_completed=cluster.rounds_completed,
        seconds=makespan,
        nbytes=sum(node_bytes) + dense_bytes + manifest_bytes,
        per_node_seconds=per_node,
        kind="full",
        serialize_seconds=ser_s,
        transfer_seconds=xfer_s,
    )


def delta_base_valid(cluster, directory: str) -> bool:
    """Whether a delta into ``directory`` has a usable in-memory base:
    one exists, it is a committed *sibling* of the target, the on-disk
    manifest still hashes to the recorded link, and training has
    advanced past it."""
    base = getattr(cluster, "_ckpt_base", None)
    if base is None:
        return False
    abs_dir = os.path.abspath(directory)
    if os.path.dirname(abs_dir) != os.path.dirname(base["directory"]):
        return False
    if abs_dir == base["directory"]:
        return False
    if cluster.rounds_completed <= base["rounds"]:
        return False
    try:
        return fmt.manifest_sha256(base["directory"]) == base["manifest_sha256"]
    except CheckpointError:
        return False


def save_cluster_delta(
    cluster, directory: str, *, dirty_keys=None
) -> CheckpointStats:
    """Materialize a delta snapshot chained to the previous snapshot.

    The diff source is the cluster's in-memory base record (set by the
    previous :func:`save_cluster` / :func:`save_cluster_delta` /
    restore), so no disk reads are needed to diff.  ``directory`` must
    be a *sibling* of the base (the manifest's ``base`` link is a
    directory name).  ``dirty_keys`` is an optional per-node list of
    key arrays — the union of keys each node's MEM tier wrote since the
    base (the snapshot stage feeds it straight from the round plans);
    without it the cache diff compares value slabs.

    Same atomicity discipline as a full save: invalidate first, commit
    the manifest last.  The base record only advances after the manifest
    commits, so a crashed delta save can be retried into the same
    directory against the unchanged base.
    """
    _require_boundary(cluster)
    base = getattr(cluster, "_ckpt_base", None)
    if base is None:
        raise CheckpointError(
            "no base snapshot in memory — take a full checkpoint first"
        )
    abs_dir = os.path.abspath(directory)
    if os.path.dirname(abs_dir) != os.path.dirname(base["directory"]):
        raise CheckpointError(
            "a delta snapshot must be a sibling of its base "
            f"({base['directory']!r})"
        )
    if abs_dir == base["directory"]:
        raise CheckpointError("a delta snapshot cannot overwrite its base")
    if cluster.rounds_completed <= base["rounds"]:
        raise CheckpointError(
            "no training progress since the base snapshot — nothing to delta"
        )
    actual = fmt.manifest_sha256(base["directory"])
    if actual != base["manifest_sha256"]:
        raise CheckpointError(
            f"base snapshot at {base['directory']!r} changed on disk since "
            "it was recorded — take a full checkpoint"
        )
    if dirty_keys is not None and len(dirty_keys) != cluster.n_nodes:
        raise ValueError("dirty_keys must list one key array per node")

    os.makedirs(directory, exist_ok=True)
    fmt.invalidate(directory)

    shards: dict[str, str] = {}
    dense_bytes, digest = _write_shard(directory, DENSE_SHARD, _dense_arrays(cluster))
    shards[DENSE_SHARD] = digest

    node_bytes: list[int] = []
    node_states: list[dict] = []
    for node in cluster.nodes:
        tiers = node.tier_states()  # current full state — the next base
        deltas = node.tier_deltas(
            base["node_states"][node.node_id],
            dirty_keys=(
                dirty_keys[node.node_id] if dirty_keys is not None else None
            ),
        )
        name = node_shard_name(node.node_id)
        nbytes, digest = _write_shard(
            directory, name, _node_shard_arrays(node, deltas)
        )
        shards[name] = digest
        node_bytes.append(nbytes)
        node_states.append(tiers)

    payload = _config_payload(cluster)
    manifest = {
        "format_version": FORMAT_VERSION,
        "kind": "delta",
        "base": os.path.basename(base["directory"]),
        "base_manifest_sha256": base["manifest_sha256"],
        "fingerprint": fingerprint(payload),
        "config": payload,
        "rounds_completed": cluster.rounds_completed,
        "n_nodes": cluster.n_nodes,
        "shards": shards,
    }
    manifest_bytes = fmt.write_manifest(directory, manifest)
    _record_base(cluster, directory, node_states)

    per_node, ser_s, xfer_s, makespan = _overlap_snapshot_cost(
        cluster, node_bytes, dense_bytes, manifest_bytes
    )
    return CheckpointStats(
        op="save",
        directory=directory,
        rounds_completed=cluster.rounds_completed,
        seconds=makespan,
        nbytes=sum(node_bytes) + dense_bytes + manifest_bytes,
        per_node_seconds=per_node,
        kind="delta",
        serialize_seconds=ser_s,
        transfer_seconds=xfer_s,
    )


# ----------------------------------------------------------------------
def _diff_hint(saved: dict, current: dict) -> str:
    # Compare by canonical digest, not equality: the saved payload went
    # through JSON (tuples became lists), the current one did not.
    diffs = [
        key
        for key in sorted(set(saved) | set(current))
        if fingerprint({"v": saved.get(key)})
        != fingerprint({"v": current.get(key)})
    ]
    return ", ".join(diffs) if diffs else "unknown"


def _verify_chain_shards(chain, node_ids, *, dense: bool = True):
    """Digest-verify every shard the restore will read, up front.

    Returns one ``{shard name: verified path}`` dict per chain member.
    A truncated or missing shard anywhere in the chain fails the restore
    before any state has been loaded.
    """
    verified: list[dict[str, str]] = []
    for directory, manifest in chain:
        shards = dict(manifest["shards"])
        wanted: list[str] = []
        if dense:
            if DENSE_SHARD not in shards:
                raise CheckpointError("checkpoint manifest lists no dense shard")
            wanted.append(DENSE_SHARD)
        for node_id in node_ids:
            name = node_shard_name(node_id)
            if name not in shards:
                raise CheckpointError(
                    f"checkpoint manifest lists no shard {name!r}"
                )
            wanted.append(name)
        verified.append(
            {
                name: fmt.verify_shard(directory, name, shards[name])
                for name in wanted
            }
        )
    return verified


def _load_dense(node, dense: dict[str, np.ndarray]) -> None:
    mlp_state = {k: v for k, v in dense.items() if k.startswith("layer")}
    acc = [
        dense[f"adagrad_acc_{i}"]
        for i in range(sum(k.startswith("adagrad_acc_") for k in dense))
    ]
    node.model.mlp.load_state_dict(mlp_state)
    node.dense_optimizer.set_state([a.copy() for a in acc])


def restore_cluster(
    cluster_cls,
    directory: str,
    cluster_config: ClusterConfig | None = None,
    *,
    model_spec: ModelSpec | None = None,
    sparse_optimizer=None,
    hardware=None,
    data_seed: int | None = None,
    functional_batch_size: int | None = None,
    zipf_exponent: float | None = None,
    ssd_directory: str | None = None,
    use_plan: bool = True,
):
    """Rebuild a cluster from a committed checkpoint (full or delta).

    A delta target resolves its whole chain first
    (:func:`~repro.ckpt.format.resolve_chain`); every chain member's
    shard digests are verified before any state loads, then each node
    loads its base shard and replays its deltas oldest-first.
    Construction parameters left as ``None`` are taken from the
    manifest; parameters passed explicitly must hash to the saved
    configuration fingerprint (a checkpoint restored under a different
    config would silently train a different model, so mismatches are
    errors, not warnings).
    """
    chain = fmt.resolve_chain(directory)
    newest_dir, manifest = chain[-1]
    saved = manifest["config"]
    if model_spec is None:
        kwargs = dict(saved["model_spec"])
        kwargs["hidden_layers"] = tuple(kwargs["hidden_layers"])
        model_spec = ModelSpec(**kwargs)
    if cluster_config is None:
        cluster_config = ClusterConfig(**saved["cluster_config"])
    cluster = cluster_cls(
        model_spec,
        cluster_config,
        sparse_optimizer=sparse_optimizer,
        hardware=hardware,
        data_seed=saved["data_seed"] if data_seed is None else data_seed,
        functional_batch_size=(
            saved["functional_batch_size"]
            if functional_batch_size is None
            else functional_batch_size
        ),
        zipf_exponent=(
            saved["zipf_exponent"] if zipf_exponent is None else zipf_exponent
        ),
        ssd_directory=ssd_directory,
        use_plan=use_plan,
    )
    current = _config_payload(cluster)
    if fingerprint(current) != manifest["fingerprint"]:
        raise CheckpointError(
            "checkpoint configuration mismatch (differs in: "
            f"{_diff_hint(saved, current)}) — refusing to restore"
        )
    if int(manifest["n_nodes"]) != cluster.n_nodes:
        raise CheckpointError("checkpoint n_nodes does not match cluster")

    node_ids = [node.node_id for node in cluster.nodes]
    verified = _verify_chain_shards(chain, node_ids)

    dense_path = verified[-1][DENSE_SHARD]
    dense = _load_npz(dense_path)
    dense_bytes = os.path.getsize(dense_path)
    manifest_bytes = sum(
        os.path.getsize(os.path.join(d, fmt.MANIFEST_NAME)) for d, _ in chain
    )

    per_node: list[float] = []
    read_bytes = 0
    for node in cluster.nodes:
        name = node_shard_name(node.node_id)
        own_bytes = 0
        arrays: dict[str, np.ndarray] = {}
        for i, member in enumerate(verified):
            path = member[name]
            arrays = _load_npz(path)
            if i == 0:
                node.load_tier_states(_split_tier_arrays(arrays))
            else:
                node.load_tier_deltas(_split_tier_arrays(arrays))
            own_bytes += os.path.getsize(path)
        _load_dense(node, dense)
        _load_node_counters(node, arrays)  # newest chain member's counters
        # Every node pulls its own shard chain plus the shared dense
        # replica and the chain's manifests back from the distributed FS.
        t = _hdfs_transfer_seconds(node, own_bytes + dense_bytes + manifest_bytes)
        node.ledger.add("ckpt_read", t)
        per_node.append(t)
        read_bytes += own_bytes

    cluster.rounds_completed = int(manifest["rounds_completed"])
    cluster.restore_stats = CheckpointStats(
        op="restore",
        directory=directory,
        rounds_completed=cluster.rounds_completed,
        seconds=max(per_node),
        nbytes=read_bytes + dense_bytes + manifest_bytes,
        per_node_seconds=tuple(per_node),
        kind=manifest.get("kind", "full"),
    )
    # The restored state *is* the newest snapshot — record it as the
    # next delta's base so a resumed run keeps chaining.
    _record_base(cluster, newest_dir, [n.tier_states() for n in cluster.nodes])
    return cluster


def restore_node(cluster, directory: str, node_id: int) -> CheckpointStats:
    """Partial restore: replace one dead node, survivors reload nothing.

    Node shards are independent (format v2+), so when node ``node_id``
    dies the surviving majority's state is already exactly the newest
    committed snapshot *iff* that snapshot was taken at the survivors'
    current round boundary — which is the only condition under which
    zero-replay recovery is sound, and is therefore enforced.  A fresh
    replacement node loads the dense replica, its base shard, and its
    delta chain, then splices into the cluster; only the replacement
    pays ``ckpt_read``.
    """
    if not 0 <= node_id < cluster.n_nodes:
        raise ValueError("node_id out of range")
    _require_boundary(cluster)
    chain = fmt.resolve_chain(directory)
    newest_dir, manifest = chain[-1]
    current = _config_payload(cluster)
    if fingerprint(current) != manifest["fingerprint"]:
        raise CheckpointError(
            "checkpoint configuration mismatch — refusing a partial restore"
        )
    if int(manifest["n_nodes"]) != cluster.n_nodes:
        raise CheckpointError("checkpoint n_nodes does not match cluster")
    if int(manifest["rounds_completed"]) != cluster.rounds_completed:
        raise CheckpointError(
            "partial restore requires a snapshot at the survivors' round "
            f"boundary (snapshot at round {manifest['rounds_completed']}, "
            f"survivors at {cluster.rounds_completed}) — restore the full "
            "cluster and replay instead"
        )

    verified = _verify_chain_shards(chain, [node_id], dense=False)
    name = node_shard_name(node_id)
    dense_path = fmt.verify_shard(
        newest_dir, DENSE_SHARD, dict(manifest["shards"])[DENSE_SHARD]
    )

    node = cluster._make_node(node_id)
    _load_dense(node, _load_npz(dense_path))
    own_bytes = 0
    arrays: dict[str, np.ndarray] = {}
    for i, member in enumerate(verified):
        path = member[name]
        arrays = _load_npz(path)
        if i == 0:
            node.load_tier_states(_split_tier_arrays(arrays))
        else:
            node.load_tier_deltas(_split_tier_arrays(arrays))
        own_bytes += os.path.getsize(path)
    _load_node_counters(node, arrays)

    dense_bytes = os.path.getsize(dense_path)
    manifest_bytes = sum(
        os.path.getsize(os.path.join(d, fmt.MANIFEST_NAME)) for d, _ in chain
    )
    t = _hdfs_transfer_seconds(node, own_bytes + dense_bytes + manifest_bytes)
    node.ledger.add("ckpt_read", t)

    cluster.nodes[node_id] = node
    peers = [n.mem_ps for n in cluster.nodes]
    for n in cluster.nodes:
        n.mem_ps.peers = peers

    # The in-memory delta base stays valid only if it records exactly
    # the chain we just restored from; otherwise the next delta would
    # diff the replacement against a different snapshot.
    base = getattr(cluster, "_ckpt_base", None)
    if base is not None and base["manifest_sha256"] != fmt.manifest_sha256(
        newest_dir
    ):
        cluster._ckpt_base = None

    per_node = tuple(
        t if n.node_id == node_id else 0.0 for n in cluster.nodes
    )
    stats = CheckpointStats(
        op="restore",
        directory=directory,
        rounds_completed=cluster.rounds_completed,
        seconds=t,
        nbytes=own_bytes + dense_bytes + manifest_bytes,
        per_node_seconds=per_node,
        kind="partial",
    )
    cluster.restore_stats = stats
    return stats
