"""Cluster-level checkpoint save/restore.

:func:`save_cluster` snapshots a quiescent
:class:`~repro.core.cluster.HPSCluster` into a checkpoint directory;
:func:`restore_cluster` rebuilds a cluster from one.  Both charge the
simulated cost of moving the snapshot to/from the distributed FS through
each node's :class:`~repro.hardware.ledger.CostLedger` (categories
``ckpt_write`` / ``ckpt_read``) using the node's HDFS model — nodes
snapshot in parallel, so the cluster-level cost is the slowest node.

Resume parity: batches are pure functions of ``(seed, index)`` and every
piece of mutable training state is captured (dense tower, dense/sparse
optimizer state, MEM cache contents *and* replacement order, SSD file
layout with stale counters, stream position), so ``train(k) + save +
restore + train(m)`` is bit-identical to ``train(k + m)`` in both
lockstep and pipelined modes.
"""

from __future__ import annotations

import hashlib
import io
import os
from dataclasses import asdict, dataclass

import numpy as np

from repro.ckpt import format as fmt
from repro.ckpt.format import (
    DENSE_SHARD,
    FORMAT_VERSION,
    CheckpointError,
    fingerprint,
    node_shard_name,
)
from repro.config import ClusterConfig, ModelSpec

__all__ = ["CheckpointStats", "save_cluster", "restore_cluster"]


@dataclass(frozen=True)
class CheckpointStats:
    """Cost accounting for one save or restore."""

    op: str  # "save" | "restore"
    directory: str
    rounds_completed: int
    #: Cluster critical path — nodes move their shards in parallel.
    seconds: float
    nbytes: int
    per_node_seconds: tuple[float, ...]


# ----------------------------------------------------------------------
def _config_payload(cluster) -> dict:
    """The JSON-able identity a checkpoint is only valid against.

    Covers everything that shapes training semantics: model/cluster
    config, optimizer identities (the sparse value layout in particular),
    and the data stream's RNG identity (seed, skew, batch size) — batch
    ``i`` is a pure function of these, which is what makes replay exact.
    """
    return {
        "format_version": FORMAT_VERSION,
        "model_spec": asdict(cluster.model_spec),
        "cluster_config": asdict(cluster.config),
        "sparse_optimizer": cluster.sparse_optimizer.spec(),
        "dense_optimizer": cluster.nodes[0].dense_optimizer.spec(),
        "data_seed": cluster.generator.seed,
        "zipf_exponent": cluster.generator.zipf_exponent,
        "noise": cluster.generator.noise,
        "functional_batch_size": cluster.functional_batch_size,
    }


def _write_shard(directory: str, name: str, arrays: dict) -> tuple[int, str]:
    """Serialize ``arrays`` to an ``.npz`` shard; returns (bytes, digest).

    The shard is built in memory so its digest is of exactly what was
    committed, then written durably (temp + ``os.replace``).
    """
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    data = buf.getvalue()
    fmt.atomic_write_bytes(os.path.join(directory, name), data)
    return len(data), hashlib.sha256(data).hexdigest()


def _hdfs_transfer_seconds(node, nbytes: int) -> float:
    """Checkpoint traffic prices through the node's HDFS stream model."""
    return node.hdfs.transfer_seconds(nbytes)


# ----------------------------------------------------------------------
def save_cluster(cluster, directory: str) -> CheckpointStats:
    """Materialize a checkpoint of ``cluster`` into ``directory``.

    The cluster must be quiescent (no round staged between HBM load and
    write-back) — both training modes are quiescent between ``train`` /
    ``train_pipelined`` calls.  The manifest is invalidated first and
    committed last, so a crash mid-save can never leave a directory that
    reads back as a valid-but-inconsistent checkpoint.
    """
    if cluster._staged_rounds:
        raise CheckpointError(
            "cannot checkpoint: a round has working parameters staged in "
            "HBM — checkpoints are only valid at a round boundary"
        )
    os.makedirs(directory, exist_ok=True)
    fmt.invalidate(directory)

    shards: dict[str, str] = {}
    # Dense replica + dense optimizer state (identical on every node by
    # the all-reduce invariant; node 0's copy is canonical).
    dense: dict[str, np.ndarray] = dict(cluster.nodes[0].model.mlp.state_dict())
    for i, acc in enumerate(cluster.nodes[0].dense_optimizer.get_state()):
        dense[f"adagrad_acc_{i}"] = acc
    dense_bytes, digest = _write_shard(directory, DENSE_SHARD, dense)
    shards[DENSE_SHARD] = digest

    node_bytes: list[int] = []
    for node in cluster.nodes:
        arrays: dict[str, np.ndarray] = {}
        for key, value in node.mem_ps.export_state().items():
            arrays[f"mem_{key}"] = value
        for key, value in node.ssd_ps.export_state().items():
            arrays[f"ssd_{key}"] = value
        arrays["hdfs_batches_read"] = np.int64(node.hdfs.batches_read)
        arrays["hdfs_bytes_read"] = np.int64(node.hdfs.bytes_read)
        # Long-horizon cost accounting rides in the shard; the cost of
        # *this* save lands after the snapshot (it depends on the shard
        # bytes), exactly as a deployment would book it.
        ledger_state = node.ledger.export_state()
        arrays["ledger_categories"] = np.array(
            ledger_state["categories"], dtype=np.str_
        )
        arrays["ledger_totals"] = np.array(
            ledger_state["totals"], dtype=np.float64
        )
        arrays["ledger_counts"] = np.array(
            ledger_state["counts"], dtype=np.int64
        )
        name = node_shard_name(node.node_id)
        nbytes, digest = _write_shard(directory, name, arrays)
        shards[name] = digest
        node_bytes.append(nbytes)

    payload = _config_payload(cluster)
    manifest = {
        "format_version": FORMAT_VERSION,
        "fingerprint": fingerprint(payload),
        "config": payload,
        "rounds_completed": cluster.rounds_completed,
        "n_nodes": cluster.n_nodes,
        "shards": shards,
    }
    manifest_bytes = fmt.write_manifest(directory, manifest)

    # Simulated cost: every node streams its own shard to the distributed
    # FS in parallel; node 0 additionally commits the dense replica and
    # the manifest.
    per_node: list[float] = []
    for node, nbytes in zip(cluster.nodes, node_bytes):
        total = nbytes + (
            dense_bytes + manifest_bytes if node.node_id == 0 else 0
        )
        t = _hdfs_transfer_seconds(node, total)
        node.ledger.add("ckpt_write", t)
        per_node.append(t)
    return CheckpointStats(
        op="save",
        directory=directory,
        rounds_completed=cluster.rounds_completed,
        seconds=max(per_node),
        nbytes=sum(node_bytes) + dense_bytes + manifest_bytes,
        per_node_seconds=tuple(per_node),
    )


# ----------------------------------------------------------------------
def _diff_hint(saved: dict, current: dict) -> str:
    # Compare by canonical digest, not equality: the saved payload went
    # through JSON (tuples became lists), the current one did not.
    diffs = [
        key
        for key in sorted(set(saved) | set(current))
        if fingerprint({"v": saved.get(key)})
        != fingerprint({"v": current.get(key)})
    ]
    return ", ".join(diffs) if diffs else "unknown"


def restore_cluster(
    cluster_cls,
    directory: str,
    cluster_config: ClusterConfig | None = None,
    *,
    model_spec: ModelSpec | None = None,
    sparse_optimizer=None,
    hardware=None,
    data_seed: int | None = None,
    functional_batch_size: int | None = None,
    zipf_exponent: float | None = None,
    ssd_directory: str | None = None,
    use_plan: bool = True,
):
    """Rebuild a cluster from a committed checkpoint.

    Construction parameters left as ``None`` are taken from the manifest;
    parameters passed explicitly must hash to the saved configuration
    fingerprint (a checkpoint restored under a different config would
    silently train a different model, so mismatches are errors, not
    warnings).  Every shard's digest is verified before any state loads.
    """
    manifest = fmt.read_manifest(directory)
    saved = manifest["config"]
    if model_spec is None:
        kwargs = dict(saved["model_spec"])
        kwargs["hidden_layers"] = tuple(kwargs["hidden_layers"])
        model_spec = ModelSpec(**kwargs)
    if cluster_config is None:
        cluster_config = ClusterConfig(**saved["cluster_config"])
    cluster = cluster_cls(
        model_spec,
        cluster_config,
        sparse_optimizer=sparse_optimizer,
        hardware=hardware,
        data_seed=saved["data_seed"] if data_seed is None else data_seed,
        functional_batch_size=(
            saved["functional_batch_size"]
            if functional_batch_size is None
            else functional_batch_size
        ),
        zipf_exponent=(
            saved["zipf_exponent"] if zipf_exponent is None else zipf_exponent
        ),
        ssd_directory=ssd_directory,
        use_plan=use_plan,
    )
    current = _config_payload(cluster)
    if fingerprint(current) != manifest["fingerprint"]:
        raise CheckpointError(
            "checkpoint configuration mismatch (differs in: "
            f"{_diff_hint(saved, current)}) — refusing to restore"
        )
    if int(manifest["n_nodes"]) != cluster.n_nodes:
        raise CheckpointError("checkpoint n_nodes does not match cluster")

    # Verify every shard digest up front: a truncated or missing shard
    # fails the restore before any state has been loaded.
    shards = dict(manifest["shards"])
    if DENSE_SHARD not in shards:
        raise CheckpointError("checkpoint manifest lists no dense shard")
    for node in cluster.nodes:
        name = node_shard_name(node.node_id)
        if name not in shards:
            raise CheckpointError(f"checkpoint manifest lists no shard {name!r}")
    verified = {
        name: fmt.verify_shard(directory, name, digest)
        for name, digest in shards.items()
    }

    dense_path = verified[DENSE_SHARD]
    with np.load(dense_path) as z:
        dense = {key: z[key] for key in z.files}
    mlp_state = {k: v for k, v in dense.items() if k.startswith("layer")}
    acc = [
        dense[f"adagrad_acc_{i}"]
        for i in range(sum(k.startswith("adagrad_acc_") for k in dense))
    ]
    dense_bytes = os.path.getsize(dense_path)
    manifest_bytes = os.path.getsize(os.path.join(directory, fmt.MANIFEST_NAME))

    per_node: list[float] = []
    for node in cluster.nodes:
        path = verified[node_shard_name(node.node_id)]
        with np.load(path) as z:
            arrays = {key: z[key] for key in z.files}
        node.model.mlp.load_state_dict(mlp_state)
        node.dense_optimizer.set_state([a.copy() for a in acc])
        node.mem_ps.load_state(
            {k[4:]: v for k, v in arrays.items() if k.startswith("mem_")}
        )
        node.ssd_ps.load_state(
            {k[4:]: v for k, v in arrays.items() if k.startswith("ssd_")}
        )
        node.hdfs.batches_read = int(arrays["hdfs_batches_read"])
        node.hdfs.bytes_read = int(arrays["hdfs_bytes_read"])
        # Restore the cost history first, then charge the restore itself
        # on top of it — accounting continues, it does not restart.
        node.ledger.load_state(
            {
                "categories": arrays["ledger_categories"].tolist(),
                "totals": arrays["ledger_totals"].tolist(),
                "counts": arrays["ledger_counts"].tolist(),
            }
        )
        # Every node pulls its own shard plus the shared dense replica
        # and manifest back from the distributed FS.
        t = _hdfs_transfer_seconds(
            node, os.path.getsize(path) + dense_bytes + manifest_bytes
        )
        node.ledger.add("ckpt_read", t)
        per_node.append(t)

    cluster.rounds_completed = int(manifest["rounds_completed"])
    cluster.restore_stats = CheckpointStats(
        op="restore",
        directory=directory,
        rounds_completed=cluster.rounds_completed,
        seconds=max(per_node),
        nbytes=sum(
            os.path.getsize(os.path.join(directory, name)) for name in shards
        )
        + manifest_bytes,
        per_node_seconds=tuple(per_node),
    )
    return cluster
