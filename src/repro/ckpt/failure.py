"""Failure injection: kill a node mid-run, recover via restore + replay.

The paper's deployment tolerates machine failures by replaying from the
last materialized snapshot.  :class:`FailureInjector` reproduces that
protocol deterministically: it drives a cluster round by round, taking a
checkpoint every ``checkpoint_every`` rounds, kills a chosen node after a
chosen round (training is batch-synchronous, so losing one node's MEM/HBM
state aborts the whole job), then recovers by restoring the newest
committed checkpoint and replaying the lost rounds.  Because replayed
batches are pure functions of ``(seed, index)``, the recovered cluster is
bit-identical to a run that never failed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.ckpt.checkpoint import CheckpointStats
from repro.ckpt.format import CheckpointError, checkpoint_dir_name

__all__ = ["FailureInjector", "RecoveryReport"]


@dataclass(frozen=True)
class RecoveryReport:
    """What one injected failure cost to recover from."""

    kill_node: int
    #: The failure strikes after this (0-based) global round completes.
    kill_after_round: int
    #: ``rounds_completed`` of the checkpoint recovery restarted from.
    checkpoint_round: int
    rounds_replayed: int
    restore_seconds: float
    #: Simulated serial seconds spent re-running the lost rounds.
    replay_seconds: float
    #: Checkpointing overhead paid across the whole run (all snapshots).
    checkpoint_seconds: float
    checkpoint_nbytes: int
    checkpoints: tuple[CheckpointStats, ...] = field(default=())
    #: True when recovery replaced only the dead node (zero replay) —
    #: the surviving majority's state was already the newest snapshot.
    partial: bool = False

    @property
    def recovery_seconds(self) -> float:
        """Downtime: reading the snapshot back plus redoing lost work."""
        return self.restore_seconds + self.replay_seconds


class FailureInjector:
    """Deterministic crash/recovery driver over an ``HPSCluster``."""

    def __init__(
        self,
        directory: str,
        *,
        checkpoint_every: int = 2,
        snapshot_mode: str = "full",
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if snapshot_mode not in ("full", "delta"):
            raise ValueError("snapshot_mode must be 'full' or 'delta'")
        self.directory = directory
        self.checkpoint_every = checkpoint_every
        #: "full" writes self-contained snapshots; "delta" chains each
        #: snapshot to the previous one (the first is full regardless),
        #: and recovery replays the chain through the restore path.
        self.snapshot_mode = snapshot_mode

    # ------------------------------------------------------------------
    def _checkpoint_dir(self, rounds_completed: int) -> str:
        return os.path.join(self.directory, checkpoint_dir_name(rounds_completed))

    def _round_seconds(self, stats) -> float:
        return float(sum(stats.pipeline_stage_seconds))

    def run(
        self,
        cluster,
        n_rounds: int,
        *,
        kill_node: int = 0,
        kill_after_round: int,
        restore_kwargs: dict | None = None,
        partial: bool = False,
    ):
        """Train to ``n_rounds``, surviving one injected node failure.

        Returns ``(cluster, report)`` — ``cluster`` is the *recovered*
        cluster (the one passed in is dead the moment the failure fires;
        its in-memory state must not be reused).  ``restore_kwargs`` is
        forwarded to ``HPSCluster.restore`` for deployments built with a
        non-default optimizer or hardware model.

        ``partial=True`` models a single-node failure striking *after*
        a boundary snapshot committed: the surviving majority's state is
        exactly that snapshot, so only a replacement node restores
        (:meth:`HPSCluster.restore_node`) and nothing replays.  It
        therefore requires the failure to land on the checkpoint cadence
        (``kill_after_round + 1`` a multiple of ``checkpoint_every``);
        off-cadence failures lose in-flight state on every node and must
        use the full restore + replay path.
        """
        base = cluster.rounds_completed
        if not base <= kill_after_round < n_rounds:
            raise ValueError(
                "kill_after_round must fall inside the requested rounds"
            )
        if kill_node < 0 or kill_node >= cluster.n_nodes:
            raise ValueError("kill_node out of range")
        if partial and (kill_after_round + 1 - base) % self.checkpoint_every:
            raise ValueError(
                "partial recovery requires the failure to strike at a "
                "checkpoint boundary (kill_after_round + 1 - start must be "
                f"a multiple of checkpoint_every={self.checkpoint_every})"
            )

        checkpoints: list[CheckpointStats] = []

        def take_checkpoint() -> None:
            checkpoints.append(
                cluster.save_checkpoint(
                    self._checkpoint_dir(cluster.rounds_completed),
                    mode="auto" if self.snapshot_mode == "delta" else "full",
                )
            )

        # Round-0 snapshot: recovery never has to fall back to "retrain
        # from scratch with no checkpoint to restore".
        take_checkpoint()
        restore_seconds = 0.0
        replay_seconds = 0.0
        checkpoint_round = -1
        rounds_replayed = 0
        r = base
        while r < n_rounds:
            cluster.train_round()
            if partial:
                if (r + 1 - base) % self.checkpoint_every == 0:
                    take_checkpoint()
                if r == kill_after_round:
                    # The boundary snapshot committed before the node
                    # died, so the survivors' state *is* the snapshot:
                    # splice in a replacement node, replay nothing.
                    newest = max(
                        checkpoints, key=lambda c: c.rounds_completed
                    )
                    stats = cluster.restore_node(newest.directory, kill_node)
                    restore_seconds = stats.seconds
                    checkpoint_round = stats.rounds_completed
                    rounds_replayed = 0
                r = cluster.rounds_completed
                continue
            if r == kill_after_round:
                # Node `kill_node` dies before the next snapshot commits;
                # batch-synchronous training cannot proceed without it,
                # and the cluster's volatile state (MEM caches, HBM
                # tables, dense replicas) is lost with it.  Recovery uses
                # the newest snapshot *this run* wrote — the directory
                # may also hold stale round_* checkpoints from earlier
                # runs with a different config, which must not be picked.
                own = [c for c in checkpoints if c.rounds_completed <= r]
                if not own:
                    raise CheckpointError(
                        "no committed checkpoint to recover from"
                    )
                newest = max(own, key=lambda c: c.rounds_completed)
                cluster = type(cluster).restore(
                    newest.directory, **(restore_kwargs or {})
                )
                restore_seconds = cluster.restore_stats.seconds
                checkpoint_round = cluster.rounds_completed
                rounds_replayed = (r + 1) - checkpoint_round
                # Replay the lost rounds; identical work, so the replayed
                # rounds land the cluster exactly where round r left it.
                for _ in range(rounds_replayed):
                    replay_seconds += self._round_seconds(cluster.train_round())
            if (r + 1 - base) % self.checkpoint_every == 0:
                take_checkpoint()
            r = cluster.rounds_completed
        report = RecoveryReport(
            kill_node=kill_node,
            kill_after_round=kill_after_round,
            checkpoint_round=checkpoint_round,
            rounds_replayed=rounds_replayed,
            restore_seconds=restore_seconds,
            replay_seconds=replay_seconds,
            checkpoint_seconds=sum(c.seconds for c in checkpoints),
            checkpoint_nbytes=sum(c.nbytes for c in checkpoints),
            checkpoints=tuple(checkpoints),
            partial=partial,
        )
        return cluster, report
