"""Crash-consistent checkpoint/restore for the three-tier store.

The paper's production deployment survives machine failures by
materializing batch-granular snapshots of the hierarchical parameter
server and replaying from the last snapshot.  This package implements
that: a versioned on-disk format (``manifest.json`` + per-node ``.npz``
shards) capturing the dense tower, dense/sparse optimizer state, every
node's MEM cache (contents *and* replacement order), the SSD file store
(files, mapping, stale counters), the data-stream position, and the RNG
identity — everything needed for ``train(k) + save + restore + train(m)``
to be bit-identical to ``train(k + m)``.

Durability model: shards are written to temp files and ``os.replace``d
into place; the manifest is removed first and rewritten *last*, so a
directory either holds a complete, self-consistent checkpoint or no
manifest at all.  Simulated write/read cost is charged per node through
the HDFS model (snapshots persist to the distributed FS, as in the
paper) under the ``ckpt_write`` / ``ckpt_read`` ledger categories.
"""

from repro.ckpt.checkpoint import (
    CheckpointStats,
    restore_cluster,
    save_cluster,
)
from repro.ckpt.failure import FailureInjector, RecoveryReport
from repro.ckpt.format import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    CheckpointError,
    CheckpointScanWarning,
    latest_checkpoint,
    prune_checkpoints,
    read_manifest,
)

__all__ = [
    "CheckpointError",
    "CheckpointScanWarning",
    "CheckpointStats",
    "FORMAT_VERSION",
    "FailureInjector",
    "MANIFEST_NAME",
    "RecoveryReport",
    "latest_checkpoint",
    "prune_checkpoints",
    "read_manifest",
    "restore_cluster",
    "save_cluster",
]
