"""On-disk checkpoint format: versioned manifest + content-hashed shards.

A checkpoint directory holds::

    manifest.json        # commit record: version, fingerprint, shard digests
    dense.npz            # dense tower parameters + dense optimizer state
    node_0000.npz        # node 0: MEM cache + SSD file store + HDFS counters
    node_0001.npz        # ...one shard per node

The manifest is the *commit point*: it is deleted before any shard is
touched and atomically rewritten (temp file + ``os.replace``) only after
every shard is durable, so an interrupted save leaves either the old
checkpoint intact or an uncommitted directory that :func:`read_manifest`
rejects — never a mix.  Each shard's SHA-256 is recorded in the manifest
and verified on restore, so a truncated or tampered shard is detected
before any state is loaded.

Format v3 adds *delta* snapshots: a manifest whose ``kind`` is
``"delta"`` records only the state that changed since its ``base``
snapshot (a sibling directory, itself full or delta), chained through
``base_manifest_sha256`` so a restore can prove the exact base it was
diffed against is the one on disk.  :func:`resolve_chain` walks the
links and returns the chain oldest-first; :func:`prune_checkpoints`
never drops a snapshot that a surviving delta still references.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import warnings

from repro.utils.io import atomic_write_bytes

__all__ = [
    "CHECKPOINT_DIR_PREFIX",
    "CheckpointError",
    "CheckpointScanWarning",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "atomic_write_bytes",
    "checkpoint_dir_name",
    "fingerprint",
    "latest_checkpoint",
    "manifest_sha256",
    "prune_checkpoints",
    "read_manifest",
    "resolve_chain",
    "sha256_file",
    "write_manifest",
]

#: Bump when the manifest schema or shard layout changes incompatibly.
#: v2: node shards carry the per-node CostLedger totals/counts, so a
#: restored run continues long-horizon cost accounting.
#: v3: manifests carry ``kind`` ("full" | "delta"); delta manifests chain
#: to a sibling ``base`` directory via ``base_manifest_sha256``.
FORMAT_VERSION = 3

MANIFEST_NAME = "manifest.json"
DENSE_SHARD = "dense.npz"

#: Per-snapshot subdirectory prefix used by every periodic writer
#: (Trainer, FailureInjector) and by :func:`latest_checkpoint`'s scan.
CHECKPOINT_DIR_PREFIX = "round_"


class CheckpointError(RuntimeError):
    """A checkpoint directory is missing, incomplete, or incompatible."""


class CheckpointScanWarning(UserWarning):
    """A snapshot subdirectory was skipped during a directory scan.

    Scans (:func:`latest_checkpoint`, :func:`prune_checkpoints`) race
    benignly with concurrent pruning and with crash debris: a directory
    whose manifest disappears (or is torn) between ``os.listdir`` and
    the manifest read is not an error — the snapshot is simply not
    available — but the skip is *recorded* via this warning category so
    a supervisor's scan never silently narrows its restore options.
    """


def _scan_committed(directory: str) -> list[tuple[str, str, dict]]:
    """All committed snapshot subdirectories of ``directory``.

    Returns ``(entry, path, manifest)`` triples in name order.  A
    :data:`CHECKPOINT_DIR_PREFIX` subdirectory whose manifest cannot be
    read — missing (concurrently pruned, or uncommitted crash debris),
    torn, or version-incompatible — is skipped with a
    :class:`CheckpointScanWarning` instead of aborting the scan.
    """
    committed: list[tuple[str, str, dict]] = []
    for entry in sorted(os.listdir(directory)):
        sub = os.path.join(directory, entry)
        if not (entry.startswith(CHECKPOINT_DIR_PREFIX) and os.path.isdir(sub)):
            continue
        try:
            manifest = read_manifest(sub)
        except CheckpointError as exc:
            warnings.warn(
                f"skipping snapshot directory {sub!r} during scan: {exc}",
                CheckpointScanWarning,
                stacklevel=3,
            )
            continue
        committed.append((entry, sub, manifest))
    return committed


def node_shard_name(node_id: int) -> str:
    return f"node_{node_id:04d}.npz"


def checkpoint_dir_name(rounds_completed: int) -> str:
    """Canonical snapshot-subdirectory name for a round boundary."""
    return f"{CHECKPOINT_DIR_PREFIX}{rounds_completed:06d}"


def fingerprint(payload: dict) -> str:
    """Stable hash of a JSON-able configuration payload.

    Canonical JSON (sorted keys, no whitespace) keeps the digest
    independent of dict ordering and of whether sequences arrive as
    tuples or lists.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def sha256_file(path: str) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def write_manifest(directory: str, manifest: dict) -> int:
    """Atomically commit ``manifest``; returns its size in bytes."""
    blob = json.dumps(manifest, sort_keys=True, indent=2).encode("utf-8")
    atomic_write_bytes(os.path.join(directory, MANIFEST_NAME), blob)
    return len(blob)


def invalidate(directory: str) -> None:
    """Remove the commit record before shards are mutated in place."""
    path = os.path.join(directory, MANIFEST_NAME)
    if os.path.exists(path):
        os.remove(path)


def read_manifest(directory: str) -> dict:
    """Load and version-check a committed manifest."""
    path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.isfile(path):
        raise CheckpointError(
            f"no committed checkpoint at {directory!r} (missing {MANIFEST_NAME})"
        )
    try:
        with open(path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint manifest: {exc}") from exc
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint format v{version} is not supported "
            f"(this build reads v{FORMAT_VERSION})"
        )
    return manifest


def manifest_sha256(directory: str) -> str:
    """Digest of a directory's committed manifest file (the chain link)."""
    path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.isfile(path):
        raise CheckpointError(
            f"no committed checkpoint at {directory!r} (missing {MANIFEST_NAME})"
        )
    return sha256_file(path)


def resolve_chain(directory: str) -> list[tuple[str, dict]]:
    """Resolve a snapshot's delta chain, base first.

    Walks ``base`` links from ``directory`` back to its full snapshot,
    validating at each hop that

    * the base is a sibling directory with a committed manifest,
    * the base manifest's bytes hash to the child's recorded
      ``base_manifest_sha256`` (the diff was taken against *this exact*
      base, not a same-named rewrite),
    * every link shares the child's config ``fingerprint``,
    * ``rounds_completed`` strictly decreases walking backwards, and
    * the chain terminates at a ``kind == "full"`` snapshot.

    Returns ``[(directory, manifest), ...]`` oldest (the full base)
    first; a full snapshot resolves to a single-element chain.
    """
    chain: list[tuple[str, dict]] = []
    seen: set[str] = set()
    current = directory
    while True:
        real = os.path.realpath(current)
        if real in seen:
            raise CheckpointError(f"checkpoint chain has a cycle at {current!r}")
        seen.add(real)
        manifest = read_manifest(current)
        if chain:
            _, child = chain[-1]
            if manifest.get("fingerprint") != child.get("fingerprint"):
                raise CheckpointError(
                    f"delta base {current!r} was written by a different "
                    "configuration (fingerprint mismatch)"
                )
            if int(manifest["rounds_completed"]) >= int(
                child["rounds_completed"]
            ):
                raise CheckpointError(
                    f"delta base {current!r} is not older than its child "
                    f"(rounds {manifest['rounds_completed']} >= "
                    f"{child['rounds_completed']})"
                )
            expected = child["base_manifest_sha256"]
            actual = manifest_sha256(current)
            if actual != expected:
                raise CheckpointError(
                    f"delta base manifest at {current!r} does not match the "
                    f"chain link (sha256 {actual[:12]}… != recorded "
                    f"{expected[:12]}…)"
                )
        chain.append((current, manifest))
        kind = manifest.get("kind", "full")
        if kind == "full":
            break
        if kind != "delta":
            raise CheckpointError(f"unknown snapshot kind {kind!r}")
        base_name = manifest.get("base")
        if not base_name or os.path.basename(base_name) != base_name:
            raise CheckpointError(
                f"delta manifest at {current!r} has an invalid base "
                f"{base_name!r} (must be a sibling directory name)"
            )
        current = os.path.join(os.path.dirname(current), base_name)
    chain.reverse()
    return chain


def verify_shard(directory: str, name: str, expected_digest: str) -> str:
    """Existence + integrity check for one shard; returns its path."""
    path = os.path.join(directory, name)
    if not os.path.isfile(path):
        raise CheckpointError(f"checkpoint shard {name!r} is missing")
    digest = sha256_file(path)
    if digest != expected_digest:
        raise CheckpointError(
            f"checkpoint shard {name!r} is corrupt "
            f"(sha256 {digest[:12]}… != manifest {expected_digest[:12]}…)"
        )
    return path


def prune_checkpoints(
    directory: str, keep_last: int, *, keep_every: int | None = None
) -> list[str]:
    """Retention-ladder GC over committed snapshots.

    Scans ``directory`` for :func:`checkpoint_dir_name` subdirectories
    with a committed manifest, sorted by ``rounds_completed``, and
    removes every snapshot outside the retention ladder:

    * the newest ``keep_last`` snapshots are always kept (the dense
      rung — cheap rollback to any recent round);
    * with ``keep_every=M``, snapshots whose ``rounds_completed`` is a
      multiple of ``M`` are *also* kept, however old (the sparse rung —
      long-horizon restore points that survive the sliding window).

    The two rungs compose as a union: a snapshot survives if **either**
    rule keeps it.  The ladder is then closed over delta chains: a
    snapshot referenced (transitively, via ``base`` links) by any kept
    snapshot is also kept, however old — GC may never strand a live
    delta chain without its full base.  Deletion is crash-safe in the
    same delete-manifest-first discipline every writer uses: the commit
    record goes first (:func:`invalidate`), so an interrupted prune
    leaves an *uncommitted* directory that every reader already rejects
    — never a half-valid snapshot.  Uncommitted directories (crash
    debris) are left untouched for inspection, each recorded with a
    :class:`CheckpointScanWarning`.  Returns the removed paths, oldest
    first.
    """
    if keep_last < 1:
        raise ValueError("keep_last must be >= 1")
    if keep_every is not None and keep_every < 1:
        raise ValueError("keep_every must be >= 1")
    if not os.path.isdir(directory):
        return []
    committed: list[tuple[int, str]] = []
    manifests: dict[str, dict] = {}
    for entry, sub, manifest in _scan_committed(directory):
        committed.append((int(manifest["rounds_completed"]), sub))
        manifests[entry] = manifest
    committed.sort()
    keep: set[str] = {os.path.basename(sub) for _, sub in committed[-keep_last:]}
    if keep_every is not None:
        keep |= {
            os.path.basename(sub)
            for rounds, sub in committed
            if rounds % keep_every == 0
        }
    # Close over base links: a kept delta pins its whole ancestry.
    frontier = list(keep)
    while frontier:
        entry = frontier.pop()
        base = manifests.get(entry, {}).get("base")
        if base and base in manifests and base not in keep:
            keep.add(base)
            frontier.append(base)
    removed: list[str] = []
    for _, sub in committed:
        if os.path.basename(sub) in keep:
            continue
        invalidate(sub)  # commit record first — readers reject from here on
        shutil.rmtree(sub)
        removed.append(sub)
    return removed


def latest_checkpoint(directory: str, upto_round: int | None = None) -> str | None:
    """Newest committed checkpoint under ``directory``.

    Scans for :func:`checkpoint_dir_name` subdirectories (the layout the
    trainer and :class:`~repro.ckpt.failure.FailureInjector` write),
    keeping only those with a committed manifest at
    ``rounds_completed <= upto_round``; returns the path of the newest,
    or None.  A directory whose manifest disappears (or is torn) mid-scan
    — e.g. a concurrent prune racing the scan — is skipped with a
    recorded :class:`CheckpointScanWarning` instead of aborting.
    """
    if not os.path.isdir(directory):
        return None
    best: tuple[int, str] | None = None
    for _, sub, manifest in _scan_committed(directory):
        rounds = int(manifest["rounds_completed"])
        if upto_round is not None and rounds > upto_round:
            continue
        if best is None or rounds > best[0]:
            best = (rounds, sub)
    return best[1] if best else None
