"""On-disk checkpoint format: versioned manifest + content-hashed shards.

A checkpoint directory holds::

    manifest.json        # commit record: version, fingerprint, shard digests
    dense.npz            # dense tower parameters + dense optimizer state
    node_0000.npz        # node 0: MEM cache + SSD file store + HDFS counters
    node_0001.npz        # ...one shard per node

The manifest is the *commit point*: it is deleted before any shard is
touched and atomically rewritten (temp file + ``os.replace``) only after
every shard is durable, so an interrupted save leaves either the old
checkpoint intact or an uncommitted directory that :func:`read_manifest`
rejects — never a mix.  Each shard's SHA-256 is recorded in the manifest
and verified on restore, so a truncated or tampered shard is detected
before any state is loaded.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil

from repro.utils.io import atomic_write_bytes

__all__ = [
    "CHECKPOINT_DIR_PREFIX",
    "CheckpointError",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "atomic_write_bytes",
    "checkpoint_dir_name",
    "fingerprint",
    "latest_checkpoint",
    "prune_checkpoints",
    "read_manifest",
    "sha256_file",
    "write_manifest",
]

#: Bump when the manifest schema or shard layout changes incompatibly.
#: v2: node shards carry the per-node CostLedger totals/counts, so a
#: restored run continues long-horizon cost accounting.
FORMAT_VERSION = 2

MANIFEST_NAME = "manifest.json"
DENSE_SHARD = "dense.npz"

#: Per-snapshot subdirectory prefix used by every periodic writer
#: (Trainer, FailureInjector) and by :func:`latest_checkpoint`'s scan.
CHECKPOINT_DIR_PREFIX = "round_"


class CheckpointError(RuntimeError):
    """A checkpoint directory is missing, incomplete, or incompatible."""


def node_shard_name(node_id: int) -> str:
    return f"node_{node_id:04d}.npz"


def checkpoint_dir_name(rounds_completed: int) -> str:
    """Canonical snapshot-subdirectory name for a round boundary."""
    return f"{CHECKPOINT_DIR_PREFIX}{rounds_completed:06d}"


def fingerprint(payload: dict) -> str:
    """Stable hash of a JSON-able configuration payload.

    Canonical JSON (sorted keys, no whitespace) keeps the digest
    independent of dict ordering and of whether sequences arrive as
    tuples or lists.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def sha256_file(path: str) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def write_manifest(directory: str, manifest: dict) -> int:
    """Atomically commit ``manifest``; returns its size in bytes."""
    blob = json.dumps(manifest, sort_keys=True, indent=2).encode("utf-8")
    atomic_write_bytes(os.path.join(directory, MANIFEST_NAME), blob)
    return len(blob)


def invalidate(directory: str) -> None:
    """Remove the commit record before shards are mutated in place."""
    path = os.path.join(directory, MANIFEST_NAME)
    if os.path.exists(path):
        os.remove(path)


def read_manifest(directory: str) -> dict:
    """Load and version-check a committed manifest."""
    path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.isfile(path):
        raise CheckpointError(
            f"no committed checkpoint at {directory!r} (missing {MANIFEST_NAME})"
        )
    try:
        with open(path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint manifest: {exc}") from exc
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint format v{version} is not supported "
            f"(this build reads v{FORMAT_VERSION})"
        )
    return manifest


def verify_shard(directory: str, name: str, expected_digest: str) -> str:
    """Existence + integrity check for one shard; returns its path."""
    path = os.path.join(directory, name)
    if not os.path.isfile(path):
        raise CheckpointError(f"checkpoint shard {name!r} is missing")
    digest = sha256_file(path)
    if digest != expected_digest:
        raise CheckpointError(
            f"checkpoint shard {name!r} is corrupt "
            f"(sha256 {digest[:12]}… != manifest {expected_digest[:12]}…)"
        )
    return path


def prune_checkpoints(
    directory: str, keep_last: int, *, keep_every: int | None = None
) -> list[str]:
    """Retention-ladder GC over committed snapshots.

    Scans ``directory`` for :func:`checkpoint_dir_name` subdirectories
    with a committed manifest, sorted by ``rounds_completed``, and
    removes every snapshot outside the retention ladder:

    * the newest ``keep_last`` snapshots are always kept (the dense
      rung — cheap rollback to any recent round);
    * with ``keep_every=M``, snapshots whose ``rounds_completed`` is a
      multiple of ``M`` are *also* kept, however old (the sparse rung —
      long-horizon restore points that survive the sliding window).

    The two rungs compose as a union: a snapshot survives if **either**
    rule keeps it.  Deletion is crash-safe in the same
    delete-manifest-first discipline every writer uses: the commit
    record goes first (:func:`invalidate`), so an interrupted prune
    leaves an *uncommitted* directory that every reader already rejects
    — never a half-valid snapshot.  Uncommitted directories (crash
    debris) are left untouched for inspection.  Returns the removed
    paths, oldest first.
    """
    if keep_last < 1:
        raise ValueError("keep_last must be >= 1")
    if keep_every is not None and keep_every < 1:
        raise ValueError("keep_every must be >= 1")
    if not os.path.isdir(directory):
        return []
    committed: list[tuple[int, str]] = []
    for entry in sorted(os.listdir(directory)):
        sub = os.path.join(directory, entry)
        if not (entry.startswith(CHECKPOINT_DIR_PREFIX) and os.path.isdir(sub)):
            continue
        try:
            manifest = read_manifest(sub)
        except CheckpointError:
            continue
        committed.append((int(manifest["rounds_completed"]), sub))
    committed.sort()
    removed: list[str] = []
    for rounds, sub in committed[: max(0, len(committed) - keep_last)]:
        if keep_every is not None and rounds % keep_every == 0:
            continue  # sparse rung of the ladder keeps it
        invalidate(sub)  # commit record first — readers reject from here on
        shutil.rmtree(sub)
        removed.append(sub)
    return removed


def latest_checkpoint(directory: str, upto_round: int | None = None) -> str | None:
    """Newest committed checkpoint under ``directory``.

    Scans for :func:`checkpoint_dir_name` subdirectories (the layout the
    trainer and :class:`~repro.ckpt.failure.FailureInjector` write),
    keeping only those with a committed manifest at
    ``rounds_completed <= upto_round``; returns the path of the newest,
    or None.
    """
    if not os.path.isdir(directory):
        return None
    best: tuple[int, str] | None = None
    for entry in sorted(os.listdir(directory)):
        sub = os.path.join(directory, entry)
        if not (entry.startswith(CHECKPOINT_DIR_PREFIX) and os.path.isdir(sub)):
            continue
        try:
            manifest = read_manifest(sub)
        except CheckpointError:
            continue
        rounds = int(manifest["rounds_completed"])
        if upto_round is not None and rounds > upto_round:
            continue
        if best is None or rounds > best[0]:
            best = (rounds, sub)
    return best[1] if best else None
