"""The invariant-lint engine: rule protocol, module model, tree driver.

Seven PRs of optimisation left the repo's correctness resting on
conventions no tool enforced: hot paths stay vectorized, durable writes
go through :func:`repro.utils.io.atomic_write_bytes`, randomness flows
from seeded generators, simulation code never reads wall clocks, hot
paths avoid accidental float64 widening.  Each convention is a
:class:`Rule`: a scoped AST check that yields findings with exact
``path:line`` anchors; intentional exceptions are suppressed in-source
(:mod:`repro.analysis.findings`) so every escape carries its
justification.  ``python -m repro.analysis`` runs the whole rule set
over a tree and fails on any unsuppressed finding; the tier-1 suite
runs the same scan, so a violation fails CI *and* local tests.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Protocol, Sequence

from repro.analysis.findings import Finding, SuppressionIndex

__all__ = ["Rule", "ModuleSource", "RawFinding", "Report", "lint_paths", "lint_source"]


@dataclass(frozen=True)
class RawFinding:
    """A rule hit before suppression resolution: ``(line, message)``."""

    line: int
    message: str


@dataclass(frozen=True)
class ModuleSource:
    """One parsed Python module handed to every applicable rule.

    ``relpath`` is the path the rule scopes match against — relative to
    the repository root, ``/``-separated (e.g.
    ``src/repro/mem/cache.py``).
    """

    relpath: str
    text: str
    tree: ast.Module

    @property
    def parts(self) -> tuple[str, ...]:
        return tuple(self.relpath.split("/"))

    @classmethod
    def parse(cls, relpath: str, text: str) -> "ModuleSource":
        return cls(
            relpath=relpath.replace(os.sep, "/"),
            text=text,
            tree=ast.parse(text, filename=relpath),
        )


class Rule(Protocol):
    """One machine-checked repo invariant."""

    #: stable identifier used in reports and ``allow(...)`` comments
    id: str
    #: one-line statement of the invariant
    title: str
    #: why the invariant exists (shown by ``--list-rules``)
    rationale: str

    def applies_to(self, relpath: str) -> bool:
        """Is ``relpath`` inside this rule's scope?"""
        ...

    def check(self, module: ModuleSource) -> Iterator[RawFinding]:
        """Yield every violation in an in-scope module."""
        ...


@dataclass
class Report:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules: tuple[str, ...] = ()

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.active

    def to_json(self) -> dict:
        return {
            "schema": "repro-analysis/v1",
            "files_scanned": self.files_scanned,
            "rules": list(self.rules),
            "active": [f.__dict__ for f in self.active],
            "suppressed": [f.__dict__ for f in self.suppressed],
        }


def lint_source(
    relpath: str, text: str, rules: Sequence[Rule]
) -> list[Finding]:
    """Lint one module's source text with every in-scope rule."""
    relpath = relpath.replace(os.sep, "/")
    in_scope = [r for r in rules if r.applies_to(relpath)]
    if not in_scope:
        return []
    module = ModuleSource.parse(relpath, text)
    suppressions = SuppressionIndex.scan(text.splitlines())
    findings: list[Finding] = []
    for rule in in_scope:
        for raw in rule.check(module):
            findings.append(
                Finding(
                    rule=rule.id,
                    path=relpath,
                    line=raw.line,
                    message=raw.message,
                    suppressed=suppressions.suppresses(rule.id, raw.line),
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _iter_python_files(root: str) -> Iterator[str]:
    if os.path.isfile(root):
        if root.endswith(".py"):
            yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames if d != "__pycache__" and not d.startswith(".")
        )
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def lint_paths(
    paths: Iterable[str],
    rules: Sequence[Rule],
    *,
    root: str | None = None,
) -> Report:
    """Lint every ``.py`` file under ``paths``.

    ``root`` anchors the rule-scope relpaths (defaults to the current
    working directory — run from the repository root, as CI does).
    """
    root = os.path.abspath(root or os.getcwd())
    report = Report(rules=tuple(r.id for r in rules))
    for path in paths:
        for filename in _iter_python_files(path):
            abspath = os.path.abspath(filename)
            relpath = (
                os.path.relpath(abspath, root)
                if abspath.startswith(root + os.sep)
                else filename
            )
            with open(abspath, "r", encoding="utf-8") as fh:
                text = fh.read()
            report.files_scanned += 1
            report.findings.extend(lint_source(relpath, text, rules))
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report
