"""Finding records and the ``# repro: allow(...)`` suppression syntax.

A finding pins a rule violation to ``path:line``.  Intentional
exceptions are suppressed in the source itself so the justification
lives next to the code it excuses:

* ``# repro: allow(<rule-id>)`` on the offending line, or on the line
  directly above it, suppresses that line for that rule;
* ``# repro: allow-file(<rule-id>)`` anywhere in a file suppresses the
  whole file for that rule (for files whose entire purpose is the
  exception, e.g. the per-key parity oracles in ``store/reference.py``).

Multiple rule ids may be comma-separated inside one ``allow(...)``.
Suppressed findings are still counted and reported (as suppressed) so a
stale or overly-broad allow is visible in the report.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

__all__ = ["Finding", "SuppressionIndex"]

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")
_ALLOW_FILE_RE = re.compile(r"#\s*repro:\s*allow-file\(([^)]*)\)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at ``path:line``."""

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False

    def format(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}{tag}"


def _parse_ids(blob: str) -> frozenset[str]:
    return frozenset(p.strip() for p in blob.split(",") if p.strip())


@dataclass
class SuppressionIndex:
    """Per-file index of ``allow`` / ``allow-file`` comments."""

    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    file_wide: frozenset[str] = frozenset()

    @classmethod
    def scan(cls, lines: list[str]) -> "SuppressionIndex":
        by_line: dict[int, frozenset[str]] = {}
        file_wide: set[str] = set()
        for i, text in enumerate(lines, start=1):
            m = _ALLOW_RE.search(text)
            if m:
                by_line[i] = _parse_ids(m.group(1))
            m = _ALLOW_FILE_RE.search(text)
            if m:
                file_wide |= _parse_ids(m.group(1))
        return cls(by_line, frozenset(file_wide))

    def suppresses(self, rule: str, line: int) -> bool:
        """Is ``rule`` allowed at ``line`` (same line or the line above)?"""
        if rule in self.file_wide:
            return True
        for candidate in (line, line - 1):
            ids = self.by_line.get(candidate)
            if ids is not None and rule in ids:
                return True
        return False
