"""Stage-effect model for the pipelined execution engine.

The :class:`~repro.core.engine.PipelinedEngine` overlaps consecutive
rounds' stages on the simulated clock.  Each stage therefore needs a
*declared* effect set — the named resources it reads and writes — so that
the overlap the schedule claims can be checked against the state the
stages actually share.  This module defines the effect vocabulary, the
engine's may-overlap relation, and the static conflict check; the dynamic
counterpart (verifying that a running stage touches only what it
declared) lives in :mod:`repro.analysis.tracer`.

Resources
---------
Resources are plain strings.  The cluster's vocabulary:

``stream``
    the per-node HDFS stream cursor (advanced by the read stage);
``mem`` / ``ssd`` / ``hbm``
    the three storage tiers (cache slabs + replacement state, file store
    + extent cache, per-GPU hash tables);
``model``
    the dense tower replicas and their optimizer state;
``ledger``
    per-node simulated-cost accounting (commutative — see below);
``fault``
    fault-injection state — the seeded schedule's draw streams and the
    incident log of :mod:`repro.faults` (commutative — see below);
``ckpt``
    the checkpoint directory and the in-memory delta base (read by the
    cache-touching stages when an exhausted SSD read quarantines and
    re-materializes a payload from the newest checkpoint chain);
``stats``
    the cluster's round history / round counter.

Two structural escapes keep the model honest without drowning it in
noise:

* resources prefixed ``round:`` (e.g. ``round:plan``) are *per-round*
  instances: stage ``s`` of round ``b`` only ever touches round ``b``'s
  copy, and the engine never overlaps two stages of the same round
  (stage precedence), so ``round:`` resources cannot race across rounds
  and are excluded from the static conflict check — they still matter to
  the dynamic tracer;
* *commutative* resources (the cost ledger) are append-only accumulators
  whose final state is order-independent, so concurrent writes commute
  and are not conflicts.

The may-overlap relation
------------------------
Under :func:`~repro.core.pipeline.earliest_start` with queue capacities
``>= 1`` (the engine enforces this), for rounds ``b' > b``:

* *serialization* gives ``start[b', s] >= finish[b, s]`` for every stage
  ``s``;
* chaining serialization with *stage precedence* gives
  ``start[b', s'] >= finish[b, s]`` for every ``s' >= s``.

So stage ``s'`` of a later round can only overlap stage ``s`` of an
earlier round when ``s' < s``: an **upstream** (earlier-registry) stage
of a later round may run concurrently with any **downstream** stage of
an earlier round, and that is the *only* concurrency the engine ever
schedules.  :func:`may_overlap` encodes exactly this, and
``tests/analysis/test_effects.py`` confirms it empirically against
randomized :class:`~repro.core.pipeline.PipelineSimulator` schedules.

Sanctioned overlaps
-------------------
Some conflicts are the point of the paper: MEM prepare of round ``b+1``
overlapping the GPU/write-back stage of round ``b`` is safe *because*
the tiers implement the pinning + canonical-order write-back discipline
(paper Section 5), and the engine executes closures in batch-major
dependency order.  Such pairs must be declared as
:class:`OverlapContract` records carrying a justification — exactly like
a lint suppression, the escape is explicit and reviewable.  A stage that
introduces a new conflicting overlap without a contract fails
:func:`check_stage_conflicts`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

__all__ = [
    "StageEffectsLike",
    "OverlapContract",
    "StageConflict",
    "StageConflictError",
    "COMMUTATIVE_RESOURCES",
    "ROUND_LOCAL_PREFIX",
    "WINDOW_RESOURCE",
    "may_overlap",
    "find_stage_conflicts",
    "check_stage_conflicts",
    "window_overlap_contracts",
]

#: Resources whose writes are order-independent appends (accumulators):
#: concurrent writers commute, so they never constitute a conflict.
#: ``ledger`` is cost accounting; ``fault`` is the fault-injection state
#: (the schedule's per-(kind, node) RNG streams plus the incident log,
#: :mod:`repro.faults`) — both only ever advance/append, and the engine
#: executes closures in canonical order, so their final state is
#: schedule-independent.
COMMUTATIVE_RESOURCES: frozenset[str] = frozenset({"ledger", "fault"})

#: Resources with this prefix are per-round instances — two overlapping
#: stages always belong to different rounds and touch different copies.
ROUND_LOCAL_PREFIX = "round:"

#: The depth-k prefetch window's shared pin state (the sliding set of
#: future-round rows held pinned in the MEM cache across rounds).  Only
#: meaningful at ``prefetch_depth`` > 1: the prefetch stage extends the
#: window, train's end-of-round unpin must except it, and a snapshot
#: export transiently unpins + re-pins it.  Those stages may overlap on
#: the clock, so every pair needs an :class:`OverlapContract` — built by
#: :func:`window_overlap_contracts`, which refuses depths the window
#: machinery never engages at.
WINDOW_RESOURCE = "mem:window"


def window_overlap_contracts(depth: int) -> tuple[OverlapContract, ...]:
    """The sanctioned ``mem:window`` overlaps of a depth-``k`` window.

    At depth ``k`` > 1 the prefetch stage of round ``b+k'`` (any
    ``k' >= 1`` the queues admit) may share the clock with train(b) and
    snapshot(b) while all three touch the window's pin state.  The
    overlaps are safe for the same structural reason as the base
    contracts — the engine fires closures in canonical batch-major
    order, so the window mutations are totally ordered in execution no
    matter what the clock claims — but they only *exist* at depth > 1,
    so asking for contracts at depth 1 (or less) is a contradiction in
    terms and raises instead of returning an empty sanction.
    """
    if depth < 2:
        raise ValueError(
            f"window overlap contracts are a depth>1 construct (the "
            f"window never outlives its round at depth {depth}); do not "
            "register them for shallow prefetch"
        )
    w = frozenset({WINDOW_RESOURCE})
    return (
        OverlapContract(
            "prefetch",
            "train",
            w,
            f"prefetch(b+k) extends the depth-{depth} window after "
            "train(b)'s end-of-round unpin in canonical batch-major "
            "execution; the unpin excepts exactly the window rows, so "
            "the clock overlap cannot release a speculative pin",
        ),
        OverlapContract(
            "prefetch",
            "snapshot",
            w,
            "snapshot(b) unpins + re-pins the window around its MEM "
            "export strictly before prefetch(b+1) extends it (canonical "
            "order): the export observes a pin-free cache and hands the "
            "window back untouched",
        ),
        OverlapContract(
            "train",
            "snapshot",
            w,
            "train(b+1)'s window-aware unpin runs after snapshot(b) "
            "re-pinned the window in canonical order, so both see the "
            "window whole",
        ),
    )


class StageEffectsLike(Protocol):
    """Anything with a name and declared read/write sets.

    Both :class:`repro.core.engine.StageDef` and the cluster's
    :class:`repro.core.cluster.StageSpec` satisfy this.
    """

    @property
    def name(self) -> str: ...

    @property
    def reads(self) -> frozenset[str]: ...

    @property
    def writes(self) -> frozenset[str]: ...


@dataclass(frozen=True)
class OverlapContract:
    """A sanctioned concurrent overlap between two stages.

    Declares that ``upstream`` (the earlier-registry stage, running a
    *later* round) may overlap ``downstream`` (the later-registry stage,
    running an *earlier* round) on ``resources``, and why that is safe.
    """

    upstream: str
    downstream: str
    resources: frozenset[str]
    reason: str

    def __post_init__(self) -> None:
        if not isinstance(self.resources, frozenset):
            object.__setattr__(self, "resources", frozenset(self.resources))
        if not self.reason.strip():
            raise ValueError(
                "an OverlapContract must carry a non-empty justification"
            )


@dataclass(frozen=True)
class StageConflict:
    """One undeclared potentially-concurrent write/read+write overlap."""

    upstream: str
    downstream: str
    resources: frozenset[str]

    def __str__(self) -> str:
        res = ", ".join(sorted(self.resources))
        return (
            f"stage '{self.upstream}' (round b+k) may overlap stage "
            f"'{self.downstream}' (round b) on {{{res}}} with at least one "
            "writer and no OverlapContract"
        )


class StageConflictError(RuntimeError):
    """The registered stage set has undeclared concurrent conflicts."""

    def __init__(self, conflicts: Sequence[StageConflict]) -> None:
        self.conflicts = tuple(conflicts)
        lines = "\n  ".join(str(c) for c in conflicts)
        super().__init__(
            "stage-effect conflict(s) in the pipeline registry:\n  "
            + lines
            + "\n(declare an OverlapContract with a justification if the "
            "overlap is protected by the pinning / canonical-order "
            "discipline, or fix the stage's effect sets)"
        )


def may_overlap(upstream_index: int, downstream_index: int) -> bool:
    """Can these two registry positions run concurrently on the clock?

    Derivation in the module docstring: with queue capacities ``>= 1``,
    the engine can overlap stage ``i`` of round ``b+k`` with stage ``j``
    of round ``b`` exactly when ``i < j``.  Same-stage events are
    serialized; later-registry stages of later rounds are ordered after
    earlier rounds' earlier stages by precedence + serialization.
    """
    return upstream_index < downstream_index


def _conflicting(
    up: StageEffectsLike,
    down: StageEffectsLike,
    commutative: frozenset[str],
) -> frozenset[str]:
    shared_writes = (up.writes & (down.reads | down.writes)) | (
        down.writes & (up.reads | up.writes)
    )
    return frozenset(
        r
        for r in shared_writes
        if r not in commutative and not r.startswith(ROUND_LOCAL_PREFIX)
    )


def find_stage_conflicts(
    stages: Sequence[StageEffectsLike],
    *,
    contracts: Iterable[OverlapContract] = (),
    commutative: frozenset[str] = COMMUTATIVE_RESOURCES,
) -> list[StageConflict]:
    """All undeclared conflicts in a registered stage set.

    ``stages`` must be in pipeline registry order.  A conflict is a pair
    of stages that :func:`may_overlap` with a non-commutative,
    non-round-local resource written by at least one of them and not
    covered by an :class:`OverlapContract` for that ordered pair.
    Contracts naming stages absent from ``stages`` are ignored (they
    describe optional stages such as ``prefetch`` or ``snapshot``), but
    a contract whose stages are both present in the *wrong order* is an
    error — it sanctions an overlap the engine can never schedule.
    """
    names = [s.name for s in stages]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate stage names in registry: {names}")
    index = {n: i for i, n in enumerate(names)}
    allowed: dict[tuple[str, str], set[str]] = {}
    for c in contracts:
        iu, idn = index.get(c.upstream), index.get(c.downstream)
        if iu is None or idn is None:
            continue
        if not may_overlap(iu, idn):
            raise ValueError(
                f"OverlapContract({c.upstream!r}, {c.downstream!r}) is "
                "unsatisfiable: the engine never overlaps that ordered pair"
            )
        allowed.setdefault((c.upstream, c.downstream), set()).update(
            c.resources
        )
    conflicts: list[StageConflict] = []
    for i, up in enumerate(stages):
        for j in range(i + 1, len(stages)):
            down = stages[j]
            res = _conflicting(up, down, commutative)
            res -= frozenset(allowed.get((up.name, down.name), ()))
            if res:
                conflicts.append(StageConflict(up.name, down.name, res))
    return conflicts


def check_stage_conflicts(
    stages: Sequence[StageEffectsLike],
    *,
    contracts: Iterable[OverlapContract] = (),
    commutative: frozenset[str] = COMMUTATIVE_RESOURCES,
) -> None:
    """Raise :class:`StageConflictError` on any undeclared conflict."""
    conflicts = find_stage_conflicts(
        stages, contracts=contracts, commutative=commutative
    )
    if conflicts:
        raise StageConflictError(conflicts)
