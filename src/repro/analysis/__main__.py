"""``python -m repro.analysis`` — run the invariant linter over a tree.

Exit status 0 iff every finding is suppressed in-source.  CI runs
``python -m repro.analysis src tests benchmarks --json analysis-findings.json``
in the lint job and uploads the JSON as an artifact; the tier-1 suite
runs the same scan through ``tests/analysis/test_linter_cli.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.linter import lint_paths
from repro.analysis.rules import DEFAULT_RULES
from repro.utils.io import atomic_write_bytes


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST invariant linter for the repro tree",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also write the full report (active + suppressed) as JSON",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule with its rationale and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-suppression detail lines",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in DEFAULT_RULES:
            print(f"{rule.id}: {rule.title}")
            print(f"    {rule.rationale}")
        return 0

    report = lint_paths(args.paths, DEFAULT_RULES)
    for finding in report.active:
        print(finding.format())
    if not args.quiet:
        for finding in report.suppressed:
            print(finding.format())
    if args.json:
        payload = json.dumps(report.to_json(), indent=2, sort_keys=True)
        atomic_write_bytes(args.json, (payload + "\n").encode())
    status = "clean" if report.ok else "FAILED"
    print(
        f"repro.analysis: {status} — {report.files_scanned} files, "
        f"{len(report.rules)} rules, {len(report.active)} active finding(s), "
        f"{len(report.suppressed)} suppressed"
    )
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
