"""Static analysis for the repo's unwritten contracts.

Two halves:

* the **invariant linter** (:mod:`~repro.analysis.linter`,
  :mod:`~repro.analysis.rules`) — AST rules enforcing the conventions
  seven optimisation PRs left implicit: vectorized hot paths, atomic
  durable writes, seeded randomness, wall-clock-free simulation code,
  float32 hot-path arithmetic.  ``python -m repro.analysis`` is the CLI;
  suppressions are in-source ``# repro: allow(<rule>)`` comments;
* the **stage-effect race detector** (:mod:`~repro.analysis.effects`,
  :mod:`~repro.analysis.tracer`) — declared read/write effect sets on
  pipeline stages, a static conflict check against the engine's
  may-overlap relation (with explicit :class:`OverlapContract` records
  for the pinning-protected overlaps), and a dynamic tracer that fails
  a test run when a stage touches a resource it never declared.
"""

from repro.analysis.effects import (
    COMMUTATIVE_RESOURCES,
    OverlapContract,
    StageConflict,
    StageConflictError,
    check_stage_conflicts,
    find_stage_conflicts,
    may_overlap,
)
from repro.analysis.findings import Finding, SuppressionIndex
from repro.analysis.linter import (
    ModuleSource,
    RawFinding,
    Report,
    Rule,
    lint_paths,
    lint_source,
)
from repro.analysis.rules import DEFAULT_RULES
from repro.analysis.tracer import (
    EffectTracer,
    EffectViolation,
    EffectViolationError,
)

__all__ = [
    "COMMUTATIVE_RESOURCES",
    "OverlapContract",
    "StageConflict",
    "StageConflictError",
    "check_stage_conflicts",
    "find_stage_conflicts",
    "may_overlap",
    "Finding",
    "SuppressionIndex",
    "ModuleSource",
    "RawFinding",
    "Report",
    "Rule",
    "lint_paths",
    "lint_source",
    "DEFAULT_RULES",
    "EffectTracer",
    "EffectViolation",
    "EffectViolationError",
]
