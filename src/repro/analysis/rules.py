"""The repo's machine-checked invariants, one :class:`Rule` each.

===============  ======================================================
rule id          invariant
===============  ======================================================
``hot-loop``     hot-path modules (``mem/ ssd/ hbm/ plan/ store/``)
                 never iterate batch key arrays per element in Python —
                 the PR-1/5/6 vectorization work must not silently rot
``atomic-write`` durable-artifact modules (``ckpt/ ssd/ bench/``) never
                 write files with bare ``open(..., "w")`` — every
                 durable byte goes through ``atomic_write_bytes`` so a
                 crash can never expose a torn file under its final name
``seeded-rng``   randomness flows from seeded generators: no
                 global-state ``np.random.*`` calls, no unseeded
                 ``default_rng()`` outside ``utils/rng.py`` — the
                 bit-parity oracles depend on byte-reproducible streams
``sim-time``     simulation code never reads a wall clock
                 (``time.time`` / ``datetime.now``): simulated seconds
                 come from the cost model, and sim-seconds parity gates
                 would silently become machine-dependent otherwise
``f64-hot-path`` hot-path arithmetic does not introduce float64
                 temporaries (``astype(np.float64)`` / ``dtype=float64``)
                 outside the explicitly-allowed bit-exact accumulations
``typed-faults`` fault-injection code (``faults/``) never raises or
                 catches bare ``Exception``/``RuntimeError`` — the
                 supervisor's recovery classification depends on every
                 failure carrying a typed ``FaultError`` scope
===============  ======================================================

Every escape is an in-source ``# repro: allow(<rule>)`` with the
justification next to the code (see :mod:`repro.analysis.findings`).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import ModuleSource, RawFinding

__all__ = [
    "HotLoopRule",
    "AtomicWriteRule",
    "SeededRngRule",
    "SimTimeRule",
    "Float64HotPathRule",
    "TypedFaultsRule",
    "DEFAULT_RULES",
]

#: package subdirectories whose code is on the vectorized hot path
HOT_PATH_DIRS = frozenset({"mem", "ssd", "hbm", "plan", "store"})

#: package subdirectories that materialize durable artifacts
DURABLE_DIRS = frozenset({"ckpt", "ssd", "bench"})


def _repro_subdir(relpath: str) -> str | None:
    """The package segment directly under ``repro`` (None outside it)."""
    parts = relpath.split("/")
    try:
        i = parts.index("repro")
    except ValueError:
        return None
    return parts[i + 1] if i + 1 < len(parts) - 1 else None


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` attribute chains as a dotted string (else None)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _terminal_name(node: ast.expr) -> str | None:
    """The final identifier of a Name / Attribute expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class HotLoopRule:
    """No per-key Python loops over batch arrays in hot-path modules."""

    id = "hot-loop"
    title = "hot-path modules must not iterate batch key arrays per key"
    rationale = (
        "PRs 1/5/6 made every store/cache/plan hot path batch-first; a "
        "per-key Python loop over a key array reintroduces the seed's "
        "O(batch) interpreter overhead and silently regresses rounds/s. "
        "Intentional scalar paths (parity oracles, collision-split runs) "
        "carry an explicit allow."
    )

    #: iterable names treated as batch key arrays
    _KEYISH_EXACT = frozenset({"keys", "working", "uniq"})

    def applies_to(self, relpath: str) -> bool:
        return _repro_subdir(relpath) in HOT_PATH_DIRS

    def _keyish(self, name: str | None) -> bool:
        return name is not None and (
            name in self._KEYISH_EXACT or name.endswith("_keys")
        )

    def _target_is_array_collection(self, target: ast.expr) -> bool:
        """``for keys in list_of_key_arrays`` iterates arrays, not keys."""
        names = [
            n.id for n in ast.walk(target) if isinstance(n, ast.Name)
        ]
        return any(self._keyish(n) for n in names)

    def _iter_hits(self, node: ast.expr) -> str | None:
        """The offending array name if ``node`` iterates per key."""
        name = _terminal_name(node)
        if self._keyish(name):
            return name
        if not isinstance(node, ast.Call):
            return None
        fn = _terminal_name(node.func)
        if fn == "range" and len(node.args) == 1:
            (arg,) = node.args
            # range(x.size) / range(len(x))
            if isinstance(arg, ast.Attribute) and arg.attr == "size":
                inner = _terminal_name(arg.value)
                if self._keyish(inner):
                    return inner
            if (
                isinstance(arg, ast.Call)
                and _terminal_name(arg.func) == "len"
                and len(arg.args) == 1
            ):
                inner = _terminal_name(arg.args[0])
                if self._keyish(inner):
                    return inner
            return None
        if fn in ("enumerate", "zip", "as_keys"):
            for arg in node.args:
                inner = _terminal_name(arg)
                if self._keyish(inner):
                    return inner
        return None

    def check(self, module: ModuleSource) -> Iterator[RawFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            hit = self._iter_hits(node.iter)
            if hit is None:
                continue
            if self._target_is_array_collection(node.target):
                continue
            yield RawFinding(
                node.lineno,
                f"per-key Python loop over batch array '{hit}' in a "
                "hot-path module; vectorize it (or justify with "
                "`# repro: allow(hot-loop)`)",
            )


class AtomicWriteRule:
    """Durable writes must go through ``atomic_write_bytes``."""

    id = "atomic-write"
    title = "durable-artifact modules must not open files for writing"
    rationale = (
        "The crash-consistency sweeps (PR 3/7) assume every durable "
        "write is write-temp -> fsync -> os.replace; one bare "
        "open(..., 'w') can expose a torn payload, manifest, or bench "
        "ledger under its final name after a crash."
    )

    def applies_to(self, relpath: str) -> bool:
        if relpath.endswith("utils/io.py"):
            return False  # the one sanctioned open("wb"): the implementation
        return _repro_subdir(relpath) in DURABLE_DIRS

    def check(self, module: ModuleSource) -> Iterator[RawFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (
                isinstance(node.func, ast.Name) and node.func.id == "open"
            ):
                continue
            mode: ast.expr | None = None
            if len(node.args) >= 2:
                mode = node.args[1]
            for kw in node.keywords:
                if kw.arg == "mode":
                    mode = kw.value
            if not (isinstance(mode, ast.Constant) and isinstance(mode.value, str)):
                continue
            if any(ch in mode.value for ch in ("w", "a", "x", "+")):
                yield RawFinding(
                    node.lineno,
                    f"bare open(..., {mode.value!r}) in a durable-write "
                    "module; route the write through "
                    "repro.utils.io.atomic_write_bytes",
                )


class SeededRngRule:
    """All randomness flows from explicitly seeded generators."""

    id = "seeded-rng"
    title = "no global-state np.random.* or unseeded default_rng()"
    rationale = (
        "Bit-parity oracles (planned vs unplanned, lockstep vs "
        "pipelined, checkpoint resume) require byte-identical random "
        "streams; process-global or unseeded RNG state breaks them "
        "nondeterministically.  utils/rng.py is the one seeding point."
    )

    _ALLOWED_ATTRS = frozenset(
        {"Generator", "BitGenerator", "SeedSequence", "default_rng"}
    )

    def applies_to(self, relpath: str) -> bool:
        return not relpath.endswith("utils/rng.py")

    def check(self, module: ModuleSource) -> Iterator[RawFinding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if dotted is None:
                    continue
                for prefix in ("np.random.", "numpy.random."):
                    if dotted.startswith(prefix):
                        leaf = dotted.split(".")[2]
                        if leaf not in self._ALLOWED_ATTRS:
                            yield RawFinding(
                                node.lineno,
                                f"global-state RNG '{dotted}': use "
                                "repro.utils.rng.make_rng/spawn with an "
                                "explicit seed",
                            )
                        break
            elif isinstance(node, ast.Call):
                fn = _terminal_name(node.func)
                if fn != "default_rng":
                    continue
                unseeded = not node.args and not node.keywords
                if node.args and (
                    isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                ):
                    unseeded = True
                if unseeded:
                    yield RawFinding(
                        node.lineno,
                        "unseeded default_rng(): derive the generator "
                        "from an explicit seed (repro.utils.rng)",
                    )


class SimTimeRule:
    """Simulation code never reads the wall clock."""

    id = "sim-time"
    title = "no wall-clock reads outside the bench harness"
    rationale = (
        "Every duration in the simulator is simulated seconds charged "
        "through the cost ledger; a time.time()/datetime.now() read "
        "makes results machine-dependent and breaks the bit-exact "
        "sim-seconds parity gates.  Wall-clock instrumentation belongs "
        "to repro/bench and the benchmarks/ harness only."
    )

    _CLOCKS = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.process_time",
            "datetime.now",
            "datetime.utcnow",
            "datetime.today",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.date.today",
            "date.today",
        }
    )

    def applies_to(self, relpath: str) -> bool:
        if relpath.split("/")[0] == "benchmarks":
            return False  # wall-clock measurement is the benchmarks' job
        return _repro_subdir(relpath) != "bench"

    def check(self, module: ModuleSource) -> Iterator[RawFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            dotted = _dotted(node)
            if dotted in self._CLOCKS:
                yield RawFinding(
                    node.lineno,
                    f"wall-clock read '{dotted}' in simulation code; "
                    "durations must come from the simulated cost model",
                )


class Float64HotPathRule:
    """No float64 temporaries in hot-path arithmetic."""

    id = "f64-hot-path"
    title = "hot-path modules keep value arrays float32"
    rationale = (
        "Parameter slabs and gradient buffers are float32 by design "
        "(PR 4 removed per-mini-batch float64 temporaries); an "
        "accidental astype(np.float64) doubles bandwidth and memory on "
        "the hot path.  The sanctioned exceptions — bit-exact float64 "
        "accumulation in the all-reduce and gradient-apply paths — each "
        "carry an explicit allow."
    )

    def applies_to(self, relpath: str) -> bool:
        return _repro_subdir(relpath) in HOT_PATH_DIRS

    @staticmethod
    def _is_f64(node: ast.expr) -> bool:
        dotted = _dotted(node)
        if dotted in ("np.float64", "numpy.float64", "float"):
            return True
        return isinstance(node, ast.Constant) and node.value == "float64"

    def check(self, module: ModuleSource) -> Iterator[RawFinding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and node.args
                and self._is_f64(node.args[0])
            ):
                yield RawFinding(
                    node.lineno,
                    "float64 temporary (astype) in hot-path arithmetic; "
                    "keep slabs float32 or justify the bit-exact "
                    "accumulation with `# repro: allow(f64-hot-path)`",
                )
                continue
            for kw in node.keywords:
                if kw.arg == "dtype" and self._is_f64(kw.value):
                    yield RawFinding(
                        node.lineno,
                        "float64 array allocation (dtype=) in a hot-path "
                        "module; keep slabs float32 or justify with "
                        "`# repro: allow(f64-hot-path)`",
                    )
                    break


class TypedFaultsRule:
    """Fault-layer failures stay typed end to end."""

    id = "typed-faults"
    title = "faults/ must not raise or catch bare Exception/RuntimeError"
    rationale = (
        "The supervisor classifies escaped failures by their FaultError "
        "scope (round / node / global) to pick the cheapest safe "
        "recovery; a bare Exception or RuntimeError raised inside the "
        "fault layer would bypass that classification, and a bare "
        "`except Exception` would swallow the typed signal before the "
        "supervisor sees it."
    )

    _BARE = frozenset({"Exception", "RuntimeError"})

    def applies_to(self, relpath: str) -> bool:
        return _repro_subdir(relpath) == "faults"

    def _bare_name(self, node: ast.expr | None) -> str | None:
        """The offending name if ``node`` denotes a bare builtin error."""
        if node is None:
            return None
        if isinstance(node, ast.Call):
            node = node.func
        name = _terminal_name(node)
        return name if name in self._BARE else None

    def check(self, module: ModuleSource) -> Iterator[RawFinding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Raise):
                hit = self._bare_name(node.exc)
                if hit is not None:
                    yield RawFinding(
                        node.lineno,
                        f"bare `raise {hit}` in fault-injection code; "
                        "raise a typed repro.faults.errors.FaultError "
                        "subclass so the supervisor can classify it",
                    )
            elif isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    yield RawFinding(
                        node.lineno,
                        "bare `except:` in fault-injection code; catch "
                        "the specific FaultError type instead",
                    )
                    continue
                types = (
                    node.type.elts
                    if isinstance(node.type, ast.Tuple)
                    else [node.type]
                )
                for t in types:
                    hit = self._bare_name(t)
                    if hit is not None:
                        yield RawFinding(
                            node.lineno,
                            f"`except {hit}` in fault-injection code "
                            "swallows the typed fault signal; catch the "
                            "specific FaultError subclass",
                        )


DEFAULT_RULES = (
    HotLoopRule(),
    AtomicWriteRule(),
    SeededRngRule(),
    SimTimeRule(),
    Float64HotPathRule(),
    TypedFaultsRule(),
)
