"""Dynamic stage-effect tracing: verify declarations against reality.

:func:`~repro.analysis.effects.check_stage_conflicts` trusts each
stage's *declared* effect sets; this module checks the declarations
themselves.  :class:`EffectTracer` wraps a cluster's stage registry
(:meth:`~repro.core.cluster.HPSCluster.wrap_stages`) to know which stage
is executing, and replaces each node's tier-facing attributes with
transparent recording proxies.  Any access to a resource a stage did not
declare — a write outside its write set, a read outside its read+write
sets — is recorded as a :class:`EffectViolation`, and leaving the
tracer's ``with`` block raises unless the run was clean.

Tracing is *method-call granular and best-effort by design*: components
hold direct references to each other (the MEM tier charges its ledger
internally, peers pull through stored references), and those internal
edges bypass the node-attribute proxies.  That bias is safe — it can
only under-report, never fabricate a violation — and the proxies
delegate every call unchanged, so a traced run returns bit-identical
results to an untraced one (asserted by the pipelined parity tests).

Typical use::

    with EffectTracer(cluster):
        cluster.train_pipelined(4)
    # raises EffectViolationError if any stage exceeded its declaration
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "EffectTracer",
    "EffectViolation",
    "EffectViolationError",
    "DEFAULT_NODE_RESOURCES",
]

#: node attribute -> traced resource name
DEFAULT_NODE_RESOURCES: tuple[tuple[str, str], ...] = (
    ("hdfs", "stream"),
    ("mem_ps", "mem"),
    ("ssd_ps", "ssd"),
    ("hbm_ps", "hbm"),
    ("model", "model"),
    ("dense_optimizer", "model"),
    ("ledger", "ledger"),
)


@dataclass(frozen=True)
class _Classification:
    """Per-resource access classification for proxy members.

    Unknown *method calls* default to ``write`` (mutation until proven
    otherwise); unknown *attribute reads* default to neutral unless the
    attribute is listed as state-bearing.  ``neutral`` members (pure
    configuration like partitioners) are never recorded.
    """

    reads: frozenset[str] = frozenset()
    neutral: frozenset[str] = frozenset()
    state_attrs: frozenset[str] = frozenset()


_CLASSIFY: dict[str, _Classification] = {
    "stream": _Classification(
        reads=frozenset({"transfer_seconds"}),
        state_attrs=frozenset({"batches_read", "bytes_read"}),
    ),
    "mem": _Classification(
        reads=frozenset(
            {
                "owner_of",
                "_admission_snapshot",
                "export_state",
                "export_delta",
            }
        ),
        neutral=frozenset({"partitioner"}),
        state_attrs=frozenset({"cache"}),
    ),
    "ssd": _Classification(
        reads=frozenset({"export_state", "export_delta"}),
        state_attrs=frozenset({"store", "compactor"}),
    ),
    "hbm": _Classification(
        reads=frozenset({"export_state", "export_delta"}),
        # .params / .nvlink expose partitioner + fabric config on the
        # read path; mutation goes through the HBMPS methods.
        neutral=frozenset({"partitioner", "params", "nvlink"}),
    ),
    "model": _Classification(
        reads=frozenset(
            {
                "predict_proba",
                "dense_state",
                "state_dict",
                "get_state",
                "spec",
            }
        ),
        state_attrs=frozenset({"mlp"}),
    ),
    "ledger": _Classification(
        reads=frozenset({"total", "export_state"}),
    ),
}


@dataclass(frozen=True)
class EffectViolation:
    """One access outside the executing stage's declared effect sets."""

    stage: str
    resource: str
    access: str  # "read" | "write"
    member: str  # the method or attribute that was touched

    def __str__(self) -> str:
        return (
            f"stage '{self.stage}' performed an undeclared {self.access} "
            f"of resource '{self.resource}' (via .{self.member})"
        )


class EffectViolationError(RuntimeError):
    """A traced run touched resources outside stage declarations."""

    def __init__(self, violations: tuple[EffectViolation, ...]) -> None:
        self.violations = violations
        lines = "\n  ".join(str(v) for v in violations)
        super().__init__(
            "stage effect declaration(s) violated at runtime:\n  "
            + lines
            + "\n(extend the stage's reads/writes declaration, or stop "
            "touching the resource)"
        )


class _ResourceProxy:
    """Transparent delegate that reports accesses to the tracer."""

    __slots__ = ("_rp_obj", "_rp_resource", "_rp_tracer")

    def __init__(
        self, obj: Any, resource: str, tracer: "EffectTracer"
    ) -> None:
        object.__setattr__(self, "_rp_obj", obj)
        object.__setattr__(self, "_rp_resource", resource)
        object.__setattr__(self, "_rp_tracer", tracer)

    def __getattr__(self, name: str) -> Any:
        obj = object.__getattribute__(self, "_rp_obj")
        resource = object.__getattribute__(self, "_rp_resource")
        tracer = object.__getattribute__(self, "_rp_tracer")
        value = getattr(obj, name)
        spec = _CLASSIFY.get(resource, _Classification())
        if callable(value) and not isinstance(value, type):
            if name in spec.neutral:
                return value
            access = "read" if name in spec.reads else "write"

            def traced_call(*args: Any, **kwargs: Any) -> Any:
                tracer._record(resource, access, name)
                return value(*args, **kwargs)

            traced_call.__name__ = getattr(value, "__name__", name)
            return traced_call
        if name in spec.state_attrs:
            tracer._record(resource, "read", name)
        return value

    def __setattr__(self, name: str, value: Any) -> None:
        tracer = object.__getattribute__(self, "_rp_tracer")
        resource = object.__getattribute__(self, "_rp_resource")
        tracer._record(resource, "write", name)
        setattr(object.__getattribute__(self, "_rp_obj"), name, value)


class EffectTracer:
    """Instrument a cluster; fail if a stage exceeds its declaration.

    Accesses outside any stage (user code between rounds, checkpoint
    restores, evaluation) are not judged — the effect contract governs
    pipeline stages only.  Stages registered *after* the tracer is
    installed are unknown to it and traced against empty declarations.
    """

    def __init__(self, cluster: Any) -> None:
        self.cluster = cluster
        self.violations: list[EffectViolation] = []
        self._seen: set[EffectViolation] = set()
        self._current: str | None = None
        self._effects: dict[str, tuple[frozenset[str], frozenset[str]]] = {
            spec.name: (spec.reads, spec.writes)
            for spec in cluster.stage_specs()
        }
        self._saved_attrs: list[tuple[Any, str, Any]] = []
        self._installed = False

    # -- recording ------------------------------------------------------
    def _record(self, resource: str, access: str, member: str) -> None:
        stage = self._current
        if stage is None:
            return
        reads, writes = self._effects.get(stage, (frozenset(), frozenset()))
        if resource in writes:
            return  # a declared writer may also read
        if access == "read" and resource in reads:
            return
        violation = EffectViolation(stage, resource, access, member)
        if violation not in self._seen:
            self._seen.add(violation)
            self.violations.append(violation)

    def _wrap(
        self, name: str, fn: Callable[[Any], float]
    ) -> Callable[[Any], float]:
        def traced_stage(ctx: Any) -> float:
            previous = self._current
            self._current = name
            try:
                return fn(ctx)
            finally:
                self._current = previous

        return traced_stage

    # -- lifecycle ------------------------------------------------------
    def install(self) -> "EffectTracer":
        if self._installed:
            raise RuntimeError("tracer is already installed")
        self.cluster.wrap_stages(self._wrap)
        for node in self.cluster.nodes:
            for attr, resource in DEFAULT_NODE_RESOURCES:
                original = getattr(node, attr)
                self._saved_attrs.append((node, attr, original))
                setattr(node, attr, _ResourceProxy(original, resource, self))
        self._installed = True
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        for node, attr, original in reversed(self._saved_attrs):
            setattr(node, attr, original)
        self._saved_attrs.clear()
        self.cluster.unwrap_stages()
        self._installed = False

    def verify(self) -> None:
        """Raise :class:`EffectViolationError` if the run was dirty."""
        if self.violations:
            raise EffectViolationError(tuple(self.violations))

    def __enter__(self) -> "EffectTracer":
        return self.install()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.uninstall()
        if exc_type is None:
            self.verify()
