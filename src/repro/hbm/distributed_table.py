"""Multi-GPU distributed hash table (paper Section 4.1, Algorithm 2).

One node's working parameters are partitioned *non-overlapping* across the
node's GPUs; each GPU owns a local :class:`~repro.hbm.hash_table.HashTable`.
Workers address the whole node's table through this facade — ``get`` pulls
remote partitions over NVLink, ``accumulate`` routes deltas to their owning
GPU (Algorithm 2), ``insert`` scatters a fresh working set.

Timing: every cross-GPU movement is charged to the NVLink model and every
table touch to the owning GPU's hash-table cost model.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.gpu import GPUDevice, NVLink
from repro.hardware.ledger import CostLedger
from repro.hardware.specs import GPUSpec, NVLinkSpec
from repro.hbm.hash_table import HashTable
from repro.hbm.partition import ModuloPartitioner, bucket_order
from repro.utils.keys import KEY_DTYPE, all_unique, as_keys

__all__ = ["DistributedHashTable"]

_GPU_SALT = 0x67707573  # "gpus" — distinct from the node-level salt


class DistributedHashTable:
    """Node-local distributed key→value store across ``n_gpus`` tables."""

    def __init__(
        self,
        n_gpus: int,
        capacity_per_gpu: int,
        value_dim: int,
        *,
        gpu_spec: GPUSpec | None = None,
        nvlink_spec: NVLinkSpec | None = None,
        ledger: CostLedger | None = None,
    ) -> None:
        if n_gpus <= 0:
            raise ValueError("n_gpus must be positive")
        self.n_gpus = n_gpus
        self.value_dim = value_dim
        self.ledger = ledger if ledger is not None else CostLedger()
        self.partitioner = ModuloPartitioner(n_gpus, salt=_GPU_SALT)
        self.tables = [
            HashTable(capacity_per_gpu, value_dim) for _ in range(n_gpus)
        ]
        self.devices = [
            GPUDevice(gpu_spec or GPUSpec(), self.ledger) for _ in range(n_gpus)
        ]
        self.nvlink = NVLink(nvlink_spec or NVLinkSpec(), self.ledger)

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return sum(t.size for t in self.tables)

    def _value_bytes(self) -> int:
        return 4 * self.value_dim

    def _dispatch(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Shard dispatch as index arrays: one hash + one stable sort.

        Returns ``(order, bounds)`` where ``order[bounds[g]:bounds[g+1]]``
        are the positions of GPU ``g``'s keys (in original batch order).
        Replaces the per-GPU ``split`` copies on the hot paths — callers
        slice the index array instead of materializing per-GPU key lists.
        """
        return bucket_order(self.partitioner.part_of(keys), self.n_gpus)

    # ------------------------------------------------------------------
    def insert(self, keys: np.ndarray, values: np.ndarray) -> float:
        """Partition and insert a working set; returns simulated seconds.

        This is Algorithm 1 line 9 (``insert_into_hashtable``): the CPU has
        already staged ``(keys, values)``; each GPU ingests its partition.
        Per-GPU inserts run concurrently, so the simulated time is the max
        over GPUs, not the sum.
        """
        keys = as_keys(keys)
        values = np.asarray(values, dtype=np.float32)
        order, bounds = self._dispatch(keys)
        times = []
        for gpu in range(self.n_gpus):
            idx = order[bounds[gpu] : bounds[gpu + 1]]
            self.tables[gpu].insert(keys[idx], values[idx])
            times.append(
                self.devices[gpu].table_op(
                    idx.size, self._value_bytes(), "hbm_insert"
                )
            )
        return max(times, default=0.0)

    def get(
        self, keys: np.ndarray, *, source_gpu: int = 0
    ) -> tuple[np.ndarray, float]:
        """Values for ``keys`` as seen from ``source_gpu``.

        Local-partition keys are read straight from HBM; remote partitions
        are fetched over NVLink (paper: "it directly fetches the parameter
        from the remote GPU").  Raises ``KeyError`` on absent keys — a
        worker can only reference parameters of the staged working set.
        """
        keys = as_keys(keys)
        self._check_gpu(source_gpu)
        uniq, inv = np.unique(keys, return_inverse=True)
        order, bounds = self._dispatch(uniq)
        out = np.zeros((uniq.size, self.value_dim), dtype=np.float32)
        remote_bytes = 0
        remote_msgs = 0
        t_table = 0.0
        for gpu in range(self.n_gpus):
            idx = order[bounds[gpu] : bounds[gpu + 1]]
            if idx.size == 0:
                continue
            vals, found = self.tables[gpu].get(uniq[idx])
            if not np.all(found):
                raise KeyError(
                    f"GPU {gpu} missing {int((~found).sum())} requested keys"
                )
            out[idx] = vals
            t_table = max(
                t_table,
                self.devices[gpu].table_op(
                    idx.size, self._value_bytes(), "hbm_pull"
                ),
            )
            if gpu != source_gpu:
                remote_bytes += idx.size * (8 + self._value_bytes())
                remote_msgs += 1
        t_link = (
            self.nvlink.send(remote_bytes, n_messages=remote_msgs)
            if remote_msgs
            else 0.0
        )
        return out[inv], t_table + t_link

    def accumulate(
        self,
        keys: np.ndarray,
        deltas: np.ndarray,
        *,
        source_gpu: int = 0,
        upsert: bool = False,
    ) -> float:
        """Algorithm 2: route deltas to owning GPUs and accumulate.

        ``keys`` may repeat (several examples touching one parameter);
        owners apply the summed delta atomically.
        """
        keys = as_keys(keys)
        deltas = np.asarray(deltas, dtype=np.float32)
        if deltas.shape != (keys.size, self.value_dim):
            raise ValueError("deltas shape mismatch")
        self._check_gpu(source_gpu)
        # Line 2: parallel partition on the source GPU (index dispatch).
        order, bounds = self._dispatch(keys)
        send_bytes = 0
        send_msgs = 0
        t_table = 0.0
        for gpu in range(self.n_gpus):
            idx = order[bounds[gpu] : bounds[gpu + 1]]
            if idx.size == 0:
                continue
            # Lines 3–7: async send of non-local partitions.
            if gpu != source_gpu:
                send_bytes += idx.size * (8 + self._value_bytes())
                send_msgs += 1
            # Lines 9–12: owner applies the accumulation.
            self.tables[gpu].accumulate(keys[idx], deltas[idx], upsert=upsert)
            t_table = max(
                t_table,
                self.devices[gpu].table_op(
                    idx.size, self._value_bytes(), "hbm_push"
                ),
            )
        t_link = (
            self.nvlink.send(send_bytes, n_messages=send_msgs) if send_msgs else 0.0
        )
        return t_table + t_link

    def transform(self, keys: np.ndarray, fn) -> float:
        """Apply an optimizer transform to resident ``keys`` on their owners.

        ``keys`` must be unique — duplicates would silently last-write-win
        inside a partition, corrupting optimizer updates.
        """
        keys = as_keys(keys)
        if not all_unique(keys):
            raise ValueError("transform requires unique keys")
        parts = self.partitioner.split(keys)
        t = 0.0
        for gpu, (k,) in enumerate(parts):
            if k.size == 0:
                continue
            self.tables[gpu].transform(k, fn)
            t = max(
                t, self.devices[gpu].table_op(k.size, self._value_bytes(), "hbm_push")
            )
        return t

    # ------------------------------------------------------------------
    # ParameterStore protocol (functional surface: no NVLink/ledger
    # charges — workers account data movement through get/accumulate).
    # ------------------------------------------------------------------
    def get_batch(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Values + found mask across all GPU partitions."""
        keys = as_keys(keys)
        out = np.zeros((keys.size, self.value_dim), dtype=np.float32)
        found = np.zeros(keys.size, dtype=bool)
        order, bounds = self._dispatch(keys)
        for gpu in range(self.n_gpus):
            idx = order[bounds[gpu] : bounds[gpu + 1]]
            if idx.size == 0:
                continue
            vals, ok = self.tables[gpu].get(keys[idx])
            out[idx] = vals
            found[idx] = ok
        return out, found

    def put_batch(
        self, keys: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Protocol face of :meth:`insert`; working-set tables never
        evict, so the flush pair is always empty."""
        self.insert(keys, values)
        return (
            np.zeros(0, dtype=KEY_DTYPE),
            np.zeros((0, self.value_dim), dtype=np.float32),
        )

    # ------------------------------------------------------------------
    def contains(self, keys: np.ndarray) -> np.ndarray:
        keys = as_keys(keys)
        order, bounds = self._dispatch(keys)
        out = np.zeros(keys.size, dtype=bool)
        for gpu in range(self.n_gpus):
            idx = order[bounds[gpu] : bounds[gpu + 1]]
            if idx.size:
                out[idx] = self.tables[gpu].contains(keys[idx])
        return out

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """All resident (keys, values) across GPUs, sorted by key."""
        ks, vs = [], []
        for t in self.tables:
            k, v = t.items()
            ks.append(k)
            vs.append(v)
        keys = np.concatenate(ks)
        values = (
            np.concatenate(vs)
            if keys.size
            else np.zeros((0, self.value_dim), dtype=np.float32)
        )
        order = np.argsort(keys)
        return keys[order], values[order]

    def clear(self) -> None:
        for t in self.tables:
            t.clear()

    def _check_gpu(self, gpu: int) -> None:
        if not 0 <= gpu < self.n_gpus:
            raise IndexError(f"gpu {gpu} out of range [0, {self.n_gpus})")
