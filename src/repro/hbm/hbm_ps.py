"""HBM-PS — the top layer of the hierarchy (paper Section 4).

One :class:`HBMPS` instance manages a node's GPUs.  It holds two
distributed hash tables:

* ``params`` — the staged working parameters (value = embedding +
  optimizer state, as defined by the sparse optimizer's value layout);
* ``grads`` — a gradient buffer the workers ``accumulate`` into after each
  backward pass (Algorithm 1 line 14).

Per mini-batch the trainer drains the gradient buffer, all-reduces it
across nodes, and calls :meth:`apply_update`, which applies the optimizer
transform to every resident key and reports the keys this node does *not*
have staged (the MEM-PS owner applies those — Section 5 "Update
parameters").

Planned rounds
--------------
When the caller threads a :class:`~repro.plan.NodePlan` through
:meth:`load_working_set` (and the matching mini-batch / sync plans through
the worker-facing calls), the working set is staged as a dense value array
aligned with the plan's sorted keys and every operation becomes a pure
index gather/scatter — no hashing, no probing, no per-stage ``np.unique``.
The simulated cost model charges *exactly* what the hash-table path would
(same per-GPU key counts, same devices, same NVLink objects, same ledger
categories), and the float arithmetic is performed in the same order, so
planned rounds are bit-identical to unplanned ones in both parameters and
simulated seconds.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.ledger import CostLedger
from repro.hardware.specs import GPUSpec, NVLinkSpec
from repro.hbm.allreduce import SparseUpdate
from repro.hbm.distributed_table import DistributedHashTable
from repro.nn.optim import SparseOptimizer
from repro.plan.batch_plan import MinibatchPlan, NodePlan, NodeSyncPlan
from repro.utils.keys import as_keys

__all__ = ["HBMPS"]


class _PlannedRound:
    """Dense working-set staging for one planned round."""

    __slots__ = ("plan", "values", "grad_buf")

    def __init__(self, plan: NodePlan, values: np.ndarray) -> None:
        self.plan = plan
        #: (n_working, value_dim) float32, mutated in place by apply_update
        self.values = values
        #: (sync_size, dim) float32 gradient buffer of the current sync
        #: round; allocated lazily at the first push, dropped at drain
        self.grad_buf: np.ndarray | None = None


class HBMPS:
    """Node-level High-Bandwidth-Memory parameter server."""

    def __init__(
        self,
        n_gpus: int,
        capacity_per_gpu: int,
        optimizer: SparseOptimizer,
        *,
        gpu_spec: GPUSpec | None = None,
        nvlink_spec: NVLinkSpec | None = None,
        ledger: CostLedger | None = None,
    ) -> None:
        self.optimizer = optimizer
        self.ledger = ledger if ledger is not None else CostLedger()
        self.capacity_per_gpu = capacity_per_gpu
        self.params = DistributedHashTable(
            n_gpus,
            capacity_per_gpu,
            optimizer.value_dim,
            gpu_spec=gpu_spec,
            nvlink_spec=nvlink_spec,
            ledger=self.ledger,
        )
        self.grads = DistributedHashTable(
            n_gpus,
            capacity_per_gpu,
            optimizer.dim,
            gpu_spec=gpu_spec,
            nvlink_spec=nvlink_spec,
            ledger=self.ledger,
        )
        self._planned: _PlannedRound | None = None
        #: fault-injection guard for cross-GPU pull/push dispatch, armed
        #: here (not on the hash tables) so the planned fast path and the
        #: unplanned table path draw the identical fault sequence
        #: (:class:`repro.faults.policy.FaultArm`; None = fault-free)
        self.faults = None

    # ------------------------------------------------------------------
    @property
    def n_gpus(self) -> int:
        return self.params.n_gpus

    @property
    def nvlink(self):
        return self.params.nvlink

    def _charge_table_ops(
        self,
        dht: DistributedHashTable,
        counts,
        category: str,
        *,
        source_gpu: int | None = None,
        include_empty: bool = False,
    ) -> float:
        """Charge per-GPU table ops from precomputed key counts.

        This is the single cost-charging primitive of every planned path;
        it mirrors the unplanned :class:`DistributedHashTable` exactly —
        same devices, same NVLink object, same ledger categories, and the
        same skip rules (``insert`` charges empty partitions, the others
        skip them; cross-GPU traffic only with a ``source_gpu``).
        """
        vb = 4 * dht.value_dim
        t_table = 0.0
        link_bytes = 0
        link_msgs = 0
        for g in range(self.n_gpus):
            c = int(counts[g])
            if c == 0 and not include_empty:
                continue
            t_table = max(t_table, dht.devices[g].table_op(c, vb, category))
            if source_gpu is not None and g != source_gpu and c:
                link_bytes += c * (8 + vb)
                link_msgs += 1
        t_link = (
            dht.nvlink.send(link_bytes, n_messages=link_msgs)
            if link_msgs
            else 0.0
        )
        return t_table + t_link

    def load_working_set(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        *,
        plan: NodePlan | None = None,
    ) -> float:
        """Stage the batch's working parameters (Alg. 1 lines 6–10).

        With a :class:`~repro.plan.NodePlan`, the working set is staged as
        a dense array aligned with ``plan.keys`` and per-GPU insert costs
        are charged from the plan's precomputed partition sizes.
        """
        if plan is None:
            self._planned = None
            self.params.clear()
            self.grads.clear()
            return self.params.insert(keys, values)
        # Planned fast path: drop any stale hash-table staging once (the
        # tables stay empty across consecutive planned rounds, so this
        # clear is free in steady state), then stage densely.
        if self.params.size:
            self.params.clear()
        if self.grads.size:
            self.grads.clear()
        for g in range(self.n_gpus):
            if plan.gpu_parts[g].size > self.capacity_per_gpu:
                raise RuntimeError(
                    f"hash table capacity exceeded: 0+{plan.gpu_parts[g].size}"
                    f" > {self.capacity_per_gpu} (room for "
                    f"{self.capacity_per_gpu})"
                )
        self._planned = _PlannedRound(
            plan, np.array(values, dtype=np.float32, copy=True)
        )
        return self._charge_table_ops(
            self.params,
            [p.size for p in plan.gpu_parts],
            "hbm_insert",
            include_empty=True,
        )

    def pull_embeddings(
        self,
        keys: np.ndarray,
        *,
        gpu: int = 0,
        mb: MinibatchPlan | None = None,
    ) -> tuple[np.ndarray, float]:
        """Embedding rows for a worker's mini-batch keys (line 12)."""
        extra = 0.0
        if self.faults is not None:
            # Transient dispatch fault: a retried fetch costs only
            # backoff (it restarts before any table was touched);
            # exhaustion escapes with global scope — mid-train HBM state
            # is only recoverable by a full restore.
            extra = self.faults.guard({"hbm_dispatch": 0.0}, scope="global")
        if self._planned is None or mb is None:
            values, t = self.params.get(keys, source_gpu=gpu)
            return self.optimizer.embedding(values), t + extra
        st = self._planned
        values = st.values[mb.work_idx]
        t = self._charge_table_ops(
            self.params, mb.gpu_counts, "hbm_pull", source_gpu=gpu
        )
        return self.optimizer.embedding(values), t + extra

    def push_gradients(
        self,
        keys: np.ndarray,
        grads: np.ndarray,
        *,
        gpu: int = 0,
        mb: MinibatchPlan | None = None,
    ) -> float:
        """Worker pushes its sparse gradient (line 14, Algorithm 2)."""
        extra = 0.0
        if self.faults is not None:
            # Guard before any gradient is applied, so a retried push
            # never double-applies a delta and an exhausted one escapes
            # with the tables/buffers still consistent.
            extra = self.faults.guard({"hbm_dispatch": 0.0}, scope="global")
        if self._planned is None or mb is None:
            return extra + self.grads.accumulate(
                keys, grads, source_gpu=gpu, upsert=True
            )
        st = self._planned
        if st.grad_buf is None:
            st.grad_buf = np.zeros(
                (mb.sync_size, self.optimizer.dim), dtype=np.float32
            )
        # Mini-batch keys are unique, so this scatter-add matches the hash
        # table's insert-then-accumulate bit for bit (0 + d == d, and
        # float32 -> float64 -> float32 round-trips exactly).
        st.grad_buf[mb.sync_idx] += np.asarray(grads, dtype=np.float32)
        return extra + self._charge_table_ops(
            self.grads, mb.gpu_counts, "hbm_push", source_gpu=gpu
        )

    def drain_gradients(self, *, sync: NodeSyncPlan | None = None) -> SparseUpdate:
        """Collect and clear the gradient buffer for the all-reduce."""
        if self._planned is None or sync is None:
            keys, grads = self.grads.items()
            self.grads.clear()
            # SparseUpdate carries float64 gradients by contract (see
            # allreduce.SparseUpdate).
            # repro: allow(f64-hot-path)
            return SparseUpdate(keys, grads.astype(np.float64))
        st = self._planned
        buf = st.grad_buf
        st.grad_buf = None
        if buf is None:
            buf = np.zeros((sync.keys.size, self.optimizer.dim), dtype=np.float32)
        # Plan keys are sorted-unique by construction; skip re-validation.
        return SparseUpdate.trusted(
            sync.keys, buf.astype(np.float64)  # repro: allow(f64-hot-path)
        )

    def apply_update(
        self, update: SparseUpdate, *, sync: NodeSyncPlan | None = None
    ) -> tuple[np.ndarray, float]:
        """Apply a (post-all-reduce) global update to resident keys.

        Returns ``(missing_keys, seconds)`` — keys in ``update`` that are
        not staged on this node; the caller forwards those to the MEM-PS
        owner queue.
        """
        if update.n_keys == 0:
            return as_keys([]), 0.0
        if self._planned is not None and sync is not None:
            st = self._planned
            missing = update.keys[sync.missing_idx]
            if sync.resident_idx.size == 0:
                return missing, 0.0
            rows = sync.resident_work_idx
            st.values[rows] = self.optimizer.apply(
                st.values[rows], update.grads[sync.resident_idx]
            )
            t = self._charge_table_ops(
                self.params, sync.resident_gpu_counts, "hbm_push"
            )
            return missing, t
        resident = self.params.contains(update.keys)
        missing = update.keys[~resident]
        keys = update.keys[resident]
        grads = update.grads[resident]
        if keys.size == 0:
            return missing, 0.0
        # The optimizer transform must see (value, grad) pairs; close over
        # the gradient rows in key order.  ``transform`` visits each GPU's
        # partition, so re-align gradients per partition via a dict-free
        # searchsorted lookup (keys are sorted and unique).
        opt = self.optimizer

        def fn_factory(part_keys: np.ndarray):
            idx = keys.searchsorted(part_keys)

            def fn(values: np.ndarray) -> np.ndarray:
                return opt.apply(values, grads[idx])

            return fn

        t = 0.0
        parts = self.params.partitioner.split(keys)
        for gpu, (k,) in enumerate(parts):
            if k.size == 0:
                continue
            self.params.tables[gpu].transform(k, fn_factory(k))
            t = max(
                t,
                self.params.devices[gpu].table_op(
                    k.size, 4 * opt.value_dim, "hbm_push"
                ),
            )
        return missing, t

    def dump(self) -> tuple[np.ndarray, np.ndarray]:
        """All staged (keys, values) — the MEM-PS pull-back (line 16)."""
        if self._planned is not None:
            return self._planned.plan.keys, self._planned.values
        return self.params.items()

    def clear(self) -> None:
        self._planned = None
        self.params.clear()
        self.grads.clear()

    # ------------------------------------------------------------------
    # Checkpoint protocol.  The HBM tier is *transient*: every round
    # restages its working set from the MEM tier and the round-end
    # write-back (``dump`` + ``MemPS.absorb_updates``) pulls the values
    # back down, so between rounds the staged tables/arrays are a
    # non-authoritative shadow (the next ``load_working_set`` clears them
    # unconditionally).  The export pair therefore ships nothing — but it
    # *asserts* the tier is actually quiescent, catching any attempt to
    # snapshot mid-round, and keeps the per-tier protocol uniform so the
    # checkpoint writer can drive every tier identically.
    def _require_quiescent(self) -> None:
        if self._planned is not None and self._planned.grad_buf is not None:
            raise RuntimeError(
                "HBM-PS gradient buffer not drained — checkpoint only at "
                "a round boundary"
            )
        if self.grads.size:
            raise RuntimeError(
                "HBM-PS gradient table not empty — checkpoint only at "
                "a round boundary"
            )

    def export_state(self) -> dict[str, np.ndarray]:
        """Checkpoint hook: asserts quiescence, exports nothing."""
        self._require_quiescent()
        return {}

    def load_state(self, state: dict[str, np.ndarray]) -> None:
        """Checkpoint hook: restore to the cleared (pre-round) state."""
        self.clear()

    def export_delta(self, base: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Delta hook: same quiescence contract as :meth:`export_state`."""
        self._require_quiescent()
        return {}

    def load_delta(self, delta: dict[str, np.ndarray]) -> None:
        """Delta hook: identical to a full load — the tier is transient."""
        self.clear()
