"""HBM-PS — the top layer of the hierarchy (paper Section 4).

One :class:`HBMPS` instance manages a node's GPUs.  It holds two
distributed hash tables:

* ``params`` — the staged working parameters (value = embedding +
  optimizer state, as defined by the sparse optimizer's value layout);
* ``grads`` — a gradient buffer the workers ``accumulate`` into after each
  backward pass (Algorithm 1 line 14).

Per mini-batch the trainer drains the gradient buffer, all-reduces it
across nodes, and calls :meth:`apply_update`, which applies the optimizer
transform to every resident key and reports the keys this node does *not*
have staged (the MEM-PS owner applies those — Section 5 "Update
parameters").
"""

from __future__ import annotations

import numpy as np

from repro.hardware.ledger import CostLedger
from repro.hardware.specs import GPUSpec, NVLinkSpec
from repro.hbm.allreduce import SparseUpdate
from repro.hbm.distributed_table import DistributedHashTable
from repro.nn.optim import SparseOptimizer
from repro.utils.keys import as_keys

__all__ = ["HBMPS"]


class HBMPS:
    """Node-level High-Bandwidth-Memory parameter server."""

    def __init__(
        self,
        n_gpus: int,
        capacity_per_gpu: int,
        optimizer: SparseOptimizer,
        *,
        gpu_spec: GPUSpec | None = None,
        nvlink_spec: NVLinkSpec | None = None,
        ledger: CostLedger | None = None,
    ) -> None:
        self.optimizer = optimizer
        self.ledger = ledger if ledger is not None else CostLedger()
        self.params = DistributedHashTable(
            n_gpus,
            capacity_per_gpu,
            optimizer.value_dim,
            gpu_spec=gpu_spec,
            nvlink_spec=nvlink_spec,
            ledger=self.ledger,
        )
        self.grads = DistributedHashTable(
            n_gpus,
            capacity_per_gpu,
            optimizer.dim,
            gpu_spec=gpu_spec,
            nvlink_spec=nvlink_spec,
            ledger=self.ledger,
        )

    # ------------------------------------------------------------------
    @property
    def n_gpus(self) -> int:
        return self.params.n_gpus

    @property
    def nvlink(self):
        return self.params.nvlink

    def load_working_set(self, keys: np.ndarray, values: np.ndarray) -> float:
        """Stage the batch's working parameters (Alg. 1 lines 6–10)."""
        self.params.clear()
        self.grads.clear()
        return self.params.insert(keys, values)

    def pull_embeddings(
        self, keys: np.ndarray, *, gpu: int = 0
    ) -> tuple[np.ndarray, float]:
        """Embedding rows for a worker's mini-batch keys (line 12)."""
        values, t = self.params.get(keys, source_gpu=gpu)
        return self.optimizer.embedding(values), t

    def push_gradients(
        self, keys: np.ndarray, grads: np.ndarray, *, gpu: int = 0
    ) -> float:
        """Worker pushes its sparse gradient (line 14, Algorithm 2)."""
        return self.grads.accumulate(keys, grads, source_gpu=gpu, upsert=True)

    def drain_gradients(self) -> SparseUpdate:
        """Collect and clear the gradient buffer for the all-reduce."""
        keys, grads = self.grads.items()
        self.grads.clear()
        return SparseUpdate(keys, grads.astype(np.float64))

    def apply_update(self, update: SparseUpdate) -> tuple[np.ndarray, float]:
        """Apply a (post-all-reduce) global update to resident keys.

        Returns ``(missing_keys, seconds)`` — keys in ``update`` that are
        not staged on this node; the caller forwards those to the MEM-PS
        owner queue.
        """
        if update.n_keys == 0:
            return as_keys([]), 0.0
        resident = self.params.contains(update.keys)
        missing = update.keys[~resident]
        keys = update.keys[resident]
        grads = update.grads[resident]
        if keys.size == 0:
            return missing, 0.0
        # The optimizer transform must see (value, grad) pairs; close over
        # the gradient rows in key order.  ``transform`` visits each GPU's
        # partition, so re-align gradients per partition via a dict-free
        # searchsorted lookup (keys are sorted and unique).
        opt = self.optimizer

        def fn_factory(part_keys: np.ndarray):
            idx = np.searchsorted(keys, part_keys)

            def fn(values: np.ndarray) -> np.ndarray:
                return opt.apply(values, grads[idx])

            return fn

        t = 0.0
        parts = self.params.partitioner.split(keys)
        for gpu, (k,) in enumerate(parts):
            if k.size == 0:
                continue
            self.params.tables[gpu].transform(k, fn_factory(k))
            t = max(
                t,
                self.params.devices[gpu].table_op(
                    k.size, 4 * opt.value_dim, "hbm_push"
                ),
            )
        return missing, t

    def dump(self) -> tuple[np.ndarray, np.ndarray]:
        """All staged (keys, values) — the MEM-PS pull-back (line 16)."""
        return self.params.items()

    def clear(self) -> None:
        self.params.clear()
        self.grads.clear()
