"""Inter-node GPU parameter synchronization (paper §4.2, Appendix C.3).

After every mini-batch, each GPU must receive all parameter updates from
all other GPUs and reduce them — an all-reduce.  The paper's communication
schedule (Figure 9) is hierarchical:

1. ``log2(n_nodes)`` **inter-node** recursive-doubling steps: in step *s*,
   node *i* exchanges its current partial update with node ``i XOR 2^s``,
   GPU *j* talking to GPU *j* over RDMA; all node pairs run in parallel.
2. ``log2(gpus_per_node)`` **intra-node** tree steps over NVLink.

Node counts that are not powers of two (the paper's Fig. 4(b)/5(b) sweep
includes 3) use the standard MPI trick: surplus nodes fold their update
into a partner before the doubling phase and receive the result after it.

The functional reduction (key-union + gradient sum) and the timing model
run together: message sizes at each step are the true partial-update sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.gpu import NVLink
from repro.hardware.network import Network
from repro.utils.keys import KEY_DTYPE, as_keys, compact_unique

__all__ = [
    "SparseUpdate",
    "merge_updates",
    "hierarchical_allreduce",
    "allreduce_dense",
    "DenseGradAccumulator",
]


@dataclass(frozen=True)
class SparseUpdate:
    """Sorted-unique keys with one gradient row per key."""

    keys: np.ndarray
    grads: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "keys", as_keys(self.keys))
        # Gradient accumulation is deliberately float64: summation must be
        # order-independent across ring/tree reduce topologies for the
        # bit-exact parity oracles.
        # repro: allow(f64-hot-path)
        g = np.asarray(self.grads, dtype=np.float64)
        object.__setattr__(self, "grads", g)
        if self.keys.shape[0] != g.shape[0]:
            raise ValueError("keys/grads length mismatch")
        if self.keys.size > 1 and np.any(np.diff(self.keys.astype(np.uint64)) == 0):
            raise ValueError("keys must be unique")
        if self.keys.size > 1 and np.any(
            self.keys[1:] < self.keys[:-1]
        ):
            raise ValueError("keys must be sorted")

    @property
    def n_keys(self) -> int:
        return int(self.keys.size)

    def nbytes(self) -> int:
        """Wire size: 8 B key + 4 B float per gradient coordinate."""
        if self.grads.ndim == 1:
            per_key = 4
        else:
            per_key = 4 * self.grads.shape[1]
        return self.n_keys * (8 + per_key)

    @staticmethod
    def empty(dim: int) -> "SparseUpdate":
        return SparseUpdate(
            np.empty(0, dtype=KEY_DTYPE),
            np.zeros((0, dim), dtype=np.float64),  # repro: allow(f64-hot-path)
        )

    @staticmethod
    def trusted(keys: np.ndarray, grads: np.ndarray) -> "SparseUpdate":
        """Wrap arrays that already satisfy the invariants.

        For producers whose keys are sorted-unique *by construction*
        (plan-derived key sets, already-validated updates) and whose
        grads are already float64 — skips the per-construction
        validation scans of ``__post_init__``.
        """
        u = object.__new__(SparseUpdate)
        object.__setattr__(u, "keys", keys)
        object.__setattr__(u, "grads", grads)
        return u


def merge_updates(a: SparseUpdate, b: SparseUpdate) -> SparseUpdate:
    """Union of keys; gradients of shared keys sum."""
    if a.n_keys == 0:
        return b
    if b.n_keys == 0:
        return a
    keys = np.concatenate([a.keys, b.keys])
    grads = np.concatenate([a.grads, b.grads])
    uniq, inv = compact_unique(keys, return_inverse=True)
    # float64 merge buffer: shared-key gradient sums must not depend on
    # the reduce order (bit-exact all-reduce parity).
    # repro: allow(f64-hot-path)
    out = np.zeros((uniq.size,) + a.grads.shape[1:], dtype=np.float64)
    np.add.at(out, inv, grads)
    return SparseUpdate(uniq, out)


def hierarchical_allreduce(
    node_updates: list[SparseUpdate],
    *,
    networks: list[Network] | None = None,
    nvlinks: list[NVLink] | None = None,
    gpus_per_node: int = 8,
    union_plan: tuple[np.ndarray, list[np.ndarray]] | None = None,
) -> tuple[SparseUpdate, float]:
    """All-reduce per-node sparse updates; returns (global update, seconds).

    ``networks``/``nvlinks`` are each node's fabric models; when omitted the
    call is purely functional (zero simulated time).  The returned time is
    the critical path: max over participating nodes per step, summed over
    steps.

    ``union_plan`` is ``(union_keys, positions)`` with ``positions[i]``
    the index of node ``i``'s keys inside ``union_keys`` — the key plan
    already knows the round's sync union, so for the two-node topology
    (one binary merge, where scatter order equals merge order) the
    functional reduce is a pair of dense scatter-adds instead of a
    sort-based key merge.  Ignored for other node counts, whose merge
    tree fixes a different float summation order.
    """
    n = len(node_updates)
    if n == 0:
        raise ValueError("need at least one node")
    partial = list(node_updates)
    total_time = 0.0

    def _xchg_time(node: int, nbytes: int) -> float:
        if networks is None:
            return 0.0
        # GPU j of one node talks to GPU j of the other: gpus_per_node
        # parallel flows sharing one NIC -> the NIC moves all bytes but
        # pays only one latency per parallel lane.
        return networks[node].transfer_time(nbytes, n_messages=gpus_per_node)

    # --- fold surplus nodes into partners (non-power-of-two case) -------
    p = 1
    while p * 2 <= n:
        p *= 2
    surplus = list(range(p, n))
    step_t = 0.0
    for i in surplus:
        partner = i - p
        step_t = max(step_t, _xchg_time(i, partial[i].nbytes()))
        partial[partner] = merge_updates(partial[partner], partial[i])
    total_time += step_t

    # --- recursive doubling among the first p nodes ---------------------
    step = 1
    while step < p:
        last = step * 2 >= p
        merged = list(partial[:p])
        step_t = 0.0
        for i in range(p):
            j = i ^ step
            if j < p:
                step_t = max(step_t, _xchg_time(i, partial[j].nbytes()))
                if last and i != 0:
                    # Final doubling step: only node 0's merge is ever
                    # read again (it becomes the result; surplus nodes
                    # receive it over the wire), and by symmetry the
                    # sibling merges carry identical values — skip the
                    # dead functional work, the exchange time above is
                    # already charged.
                    continue
                a, b = partial[i], partial[j]
                if (
                    union_plan is not None
                    and n == 2
                    and a.n_keys
                    and b.n_keys
                ):
                    keys, positions = union_plan
                    assert positions[i].size == a.n_keys
                    assert positions[j].size == b.n_keys
                    # repro: allow(f64-hot-path)
                    out = np.zeros(
                        (keys.size,) + a.grads.shape[1:],
                        dtype=np.float64,
                    )
                    # Scatter in (i, j) order — for a single binary
                    # merge this is the exact float summation order of
                    # ``merge_updates(a, b)``.
                    out[positions[i]] += a.grads
                    out[positions[j]] += b.grads
                    merged[i] = SparseUpdate.trusted(keys, out)
                else:
                    merged[i] = merge_updates(a, b)
        partial[:p] = merged
        total_time += step_t
        step *= 2

    result = partial[0]
    # --- send result back to surplus nodes ------------------------------
    step_t = 0.0
    for i in surplus:
        step_t = max(step_t, _xchg_time(i - p, result.nbytes()))
    total_time += step_t

    # --- intra-node NVLink tree (Figure 9 step 3) ------------------------
    if nvlinks is not None and gpus_per_node > 1:
        rounds = int(np.ceil(np.log2(gpus_per_node)))
        shard_bytes = result.nbytes() / gpus_per_node
        t_intra = 0.0
        for nv in nvlinks:
            t_node = rounds * nv.transfer_time(int(shard_bytes), n_messages=1)
            nv.bytes_moved += int(shard_bytes) * rounds
            nv.ledger.add("allreduce", t_node)
            t_intra = max(t_intra, t_node)
        total_time += t_intra

    if networks is not None:
        for net in networks:
            net.ledger.add("allreduce", total_time / max(len(networks), 1))
    return result, total_time


class DenseGradAccumulator:
    """Reused float32 accumulation buffers for dense gradients.

    The gradient hot path used to allocate fresh ``float64`` temporaries
    per mini-batch (one ``astype(float64).copy()`` per worker plus a
    ``zeros_like`` inside :func:`allreduce_dense`); this accumulator keeps
    one set of float32 buffers alive and overwrites them in place.  Dense
    towers are tiny and their per-step gradients are summed over at most
    ``n_nodes * gpus_per_node`` contributions, so float32 accumulation is
    well within tolerance (verified by a regression test).
    """

    def __init__(self) -> None:
        self._bufs: list[np.ndarray] | None = None

    def _ensure(self, templates: list[np.ndarray]) -> list[np.ndarray]:
        if self._bufs is None or len(self._bufs) != len(templates) or any(
            b.shape != t.shape for b, t in zip(self._bufs, templates)
        ):
            self._bufs = [
                np.zeros(t.shape, dtype=np.float32) for t in templates
            ]
        return self._bufs

    @property
    def arrays(self) -> list[np.ndarray]:
        if self._bufs is None:
            raise RuntimeError("accumulator used before start()/start_zero()")
        return self._bufs

    def start(self, grads: list[np.ndarray]) -> "DenseGradAccumulator":
        """Overwrite the buffers with ``grads`` (the first contribution)."""
        for b, g in zip(self._ensure(grads), grads):
            np.copyto(b, g)
        return self

    def start_zero(self, templates: list[np.ndarray]) -> "DenseGradAccumulator":
        """Zero the buffers (a node that contributed no examples)."""
        for b in self._ensure(templates):
            b.fill(0.0)
        return self

    def add(self, grads: list[np.ndarray]) -> None:
        """In-place ``buf += grad`` for each buffer."""
        for b, g in zip(self.arrays, grads):
            b += g


def allreduce_dense(
    node_grads: list[list[np.ndarray]],
    *,
    networks: list[Network] | None = None,
    out: DenseGradAccumulator | None = None,
) -> tuple[list[np.ndarray], float]:
    """Sum dense-parameter gradients across nodes (Appendix C.4).

    Dense towers are replicated on every GPU; their gradients are tiny
    (≤ a few million floats), so a flat recursive-doubling reduce suffices.
    The sum accumulates in float32; pass a :class:`DenseGradAccumulator`
    as ``out`` to reuse its buffers across calls (the returned arrays are
    then views of the accumulator and are overwritten by the next call).
    """
    n = len(node_grads)
    if n == 0:
        raise ValueError("need at least one node")
    shapes = [g.shape for g in node_grads[0]]
    for grads in node_grads[1:]:
        if [g.shape for g in grads] != shapes:
            raise ValueError("dense gradient shapes differ across nodes")
    acc = out if out is not None else DenseGradAccumulator()
    acc.start(node_grads[0])
    for grads in node_grads[1:]:
        acc.add(grads)
    total = acc.arrays
    nbytes = int(sum(4 * g.size for g in total))
    steps = int(np.ceil(np.log2(n))) if n > 1 else 0
    t = 0.0
    if networks is not None and steps:
        per_step = max(net.transfer_time(nbytes) for net in networks)
        t = steps * per_step
        for net in networks:
            net.ledger.add("allreduce", t / len(networks))
    return total, t
