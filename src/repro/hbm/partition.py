"""Partition policies: key → GPU and key → node.

The paper uses modulo hashing for both levels (Section 5, Appendix C.1):
it is constant-memory, balanced for randomly distributed feature ids, and
cheap.  We hash with splitmix64 before the modulo so that structured key
spaces (our generator's slot-banded ids) still balance; a plain ``key % n``
policy is also provided for tests and for the Appendix-A worked example.
"""

from __future__ import annotations

import numpy as np

from repro.utils.keys import as_keys, mix_hash

__all__ = ["ModuloPartitioner", "partition_arrays", "bucket_order"]


def bucket_order(parts: np.ndarray, n_parts: int) -> tuple[np.ndarray, np.ndarray]:
    """Shared grouping primitive: ``(order, bounds)`` from bucket ids.

    ``order[bounds[b]:bounds[b+1]]`` are the positions of bucket ``b``'s
    elements in ascending original order (stable sort).  Every consumer of
    a bucket split — :meth:`ModuloPartitioner.split`, the plan builder's
    ``group_indices``, the distributed table's shard dispatch — routes
    through this one function so the grouping contract stays in one place.
    """
    order = np.argsort(parts, kind="stable")
    bounds = np.searchsorted(parts[order], np.arange(n_parts + 1))
    return order, bounds


class ModuloPartitioner:
    """Maps keys to ``n_parts`` buckets by hashed modulo.

    Parameters
    ----------
    n_parts:
        Number of buckets (GPUs on a node, or nodes in the cluster).
    salt:
        Distinct salts give independent partitions for the two levels, so
        a node's shard still spreads evenly over its GPUs.
    hashed:
        If False, uses raw ``key % n_parts`` (the paper's round-robin
        example in Appendix A).
    """

    def __init__(self, n_parts: int, *, salt: int = 0, hashed: bool = True) -> None:
        if n_parts <= 0:
            raise ValueError("n_parts must be positive")
        self.n_parts = n_parts
        self.salt = salt
        self.hashed = hashed

    def part_of(self, keys: np.ndarray) -> np.ndarray:
        """Bucket index for every key (vectorized)."""
        keys = as_keys(keys)
        if self.hashed:
            h = mix_hash(keys, seed=self.salt)
        else:
            h = keys
        return (h % np.uint64(self.n_parts)).astype(np.int64)

    def split(self, keys: np.ndarray, *arrays: np.ndarray):
        """Partition ``keys`` (and parallel ``arrays``) into buckets.

        Returns a list of tuples, one per bucket: ``(keys_b, *arrays_b)``.
        This is the ``parallel_partition`` of Algorithm 2 line 2.
        """
        keys = as_keys(keys)
        parts = self.part_of(keys)
        order, bounds = bucket_order(parts, self.n_parts)
        out = []
        for b in range(self.n_parts):
            sel = order[bounds[b] : bounds[b + 1]]
            out.append((keys[sel], *(np.asarray(a)[sel] for a in arrays)))
        return out

    def counts(self, keys: np.ndarray) -> np.ndarray:
        """Number of keys per bucket."""
        return np.bincount(self.part_of(keys), minlength=self.n_parts)


def partition_arrays(
    partitioner: ModuloPartitioner, keys: np.ndarray, values: np.ndarray
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Convenience wrapper returning ``[(keys_b, values_b), ...]``."""
    return [
        (k, v) for k, v in partitioner.split(keys, values)
    ]
