"""Partition policies: key → GPU and key → node.

The paper uses modulo hashing for both levels (Section 5, Appendix C.1):
it is constant-memory, balanced for randomly distributed feature ids, and
cheap.  We hash with splitmix64 before the modulo so that structured key
spaces (our generator's slot-banded ids) still balance; a plain ``key % n``
policy is also provided for tests and for the Appendix-A worked example.
"""

from __future__ import annotations

import numpy as np

from repro.utils.keys import KEY_DTYPE, as_keys, mix_hash

__all__ = ["ModuloPartitioner", "partition_arrays", "bucket_order"]

#: Largest key domain served by the memoized bucket table (mirrors the
#: dense caps in :mod:`repro.store.slot_index` and :mod:`repro.utils.keys`).
#: Compact domains pay the hashed modulo once per key ever, then gather.
_PART_TABLE_CAP = 1 << 22


def bucket_order(parts: np.ndarray, n_parts: int) -> tuple[np.ndarray, np.ndarray]:
    """Shared grouping primitive: ``(order, bounds)`` from bucket ids.

    ``order[bounds[b]:bounds[b+1]]`` are the positions of bucket ``b``'s
    elements in ascending original order (stable sort).  Every consumer of
    a bucket split — :meth:`ModuloPartitioner.split`, the plan builder's
    ``group_indices``, the distributed table's shard dispatch — routes
    through this one function so the grouping contract stays in one place.
    """
    order = np.argsort(parts, kind="stable")
    bounds = np.searchsorted(parts[order], np.arange(n_parts + 1))
    return order, bounds


class ModuloPartitioner:
    """Maps keys to ``n_parts`` buckets by hashed modulo.

    Parameters
    ----------
    n_parts:
        Number of buckets (GPUs on a node, or nodes in the cluster).
    salt:
        Distinct salts give independent partitions for the two levels, so
        a node's shard still spreads evenly over its GPUs.
    hashed:
        If False, uses raw ``key % n_parts`` (the paper's round-robin
        example in Appendix A).
    """

    def __init__(self, n_parts: int, *, salt: int = 0, hashed: bool = True) -> None:
        if n_parts <= 0:
            raise ValueError("n_parts must be positive")
        self.n_parts = n_parts
        self.salt = salt
        self.hashed = hashed
        self._table: np.ndarray | None = None
        self._untabled = 0

    def part_of(self, keys: np.ndarray) -> np.ndarray:
        """Bucket index for every key (vectorized)."""
        keys = as_keys(keys)
        if not self.hashed:
            return (keys % np.uint64(self.n_parts)).astype(np.int64)
        if keys.size:
            mx = int(keys.max())
            if mx < _PART_TABLE_CAP:
                tab = self._table
                if tab is not None and tab.size > mx:
                    return tab[keys.astype(np.int64)]
                # Build the table only once the keys hashed without it
                # would have paid for the build — a one-shot large batch
                # (e.g. a cold 100k-key prepare) keeps the direct hash,
                # a steady stream over a compact domain converts.
                self._untabled += keys.size
                if self._untabled >= mx + 1:
                    # Doubling amortizes rebuilds while the observed
                    # domain grows toward its true bound (n_sparse).
                    dom = np.arange(max(1024, 2 * (mx + 1)), dtype=KEY_DTYPE)
                    self._table = (
                        mix_hash(dom, seed=self.salt)
                        % np.uint64(self.n_parts)
                    ).astype(np.int64)
                    return self._table[keys.astype(np.int64)]
        h = mix_hash(keys, seed=self.salt)
        return (h % np.uint64(self.n_parts)).astype(np.int64)

    def split(self, keys: np.ndarray, *arrays: np.ndarray):
        """Partition ``keys`` (and parallel ``arrays``) into buckets.

        Returns a list of tuples, one per bucket: ``(keys_b, *arrays_b)``.
        This is the ``parallel_partition`` of Algorithm 2 line 2.
        """
        keys = as_keys(keys)
        parts = self.part_of(keys)
        order, bounds = bucket_order(parts, self.n_parts)
        out = []
        for b in range(self.n_parts):
            sel = order[bounds[b] : bounds[b + 1]]
            out.append((keys[sel], *(np.asarray(a)[sel] for a in arrays)))
        return out

    def counts(self, keys: np.ndarray) -> np.ndarray:
        """Number of keys per bucket."""
        return np.bincount(self.part_of(keys), minlength=self.n_parts)


def partition_arrays(
    partitioner: ModuloPartitioner, keys: np.ndarray, values: np.ndarray
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Convenience wrapper returning ``[(keys_b, values_b), ...]``."""
    return [
        (k, v) for k, v in partitioner.split(keys, values)
    ]
