"""Fixed-capacity open-addressing hash table (the cuDF analogue).

The paper's HBM-PS uses cuDF's ``concurrent_unordered_map``: capacity fixed
at construction (dynamic GPU allocation is slow), open addressing with
linear probing, atomics for parallel updates.  This NumPy port keeps those
properties — storage is a pair of parallel arrays (keys, values) and every
operation is *batched*: probing advances all unresolved keys one step per
round, so the Python-level loop runs O(max probe length) times, not O(n).
"""

from __future__ import annotations

import numpy as np

from repro.utils.keys import EMPTY_KEY, KEY_DTYPE, all_unique, as_keys, mix_hash

__all__ = ["HashTable"]


class HashTable:
    """Open-addressing key→value map over preallocated NumPy arrays.

    Parameters
    ----------
    capacity:
        Maximum number of resident keys.  Insertion beyond capacity raises
        ``RuntimeError`` (the GPU would OOM); choose capacity from the known
        working-set size, as Algorithm 1 does.
    value_dim:
        Number of float32s per value.
    load_factor:
        Slots are over-provisioned by ``1 / load_factor`` to keep probe
        sequences short.
    """

    def __init__(
        self, capacity: int, value_dim: int, *, load_factor: float = 0.6
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if value_dim <= 0:
            raise ValueError("value_dim must be positive")
        if not 0.0 < load_factor <= 1.0:
            raise ValueError("load_factor must be in (0, 1]")
        self.capacity = capacity
        self.value_dim = value_dim
        self.n_slots = max(8, int(np.ceil(capacity / load_factor)))
        self._keys = np.full(self.n_slots, EMPTY_KEY, dtype=KEY_DTYPE)
        self._values = np.zeros((self.n_slots, value_dim), dtype=np.float32)
        self.size = 0
        # Instrumentation for the timing layer / tests.
        self.probe_rounds = 0

    # ------------------------------------------------------------------
    def _base_slots(self, keys: np.ndarray) -> np.ndarray:
        return (mix_hash(keys) % np.uint64(self.n_slots)).astype(np.int64)

    def _locate(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Slot index of each key and a found mask (vectorized probing).

        A key's probe ends at its match or at the first empty slot (meaning
        absent).  Returned slots for absent keys are those empty slots.
        """
        n = keys.size
        slots = self._base_slots(keys)
        result = np.full(n, -1, dtype=np.int64)
        found = np.zeros(n, dtype=bool)
        pending = np.arange(n)
        offset = 0
        while pending.size:
            if offset > self.n_slots:
                raise RuntimeError("probe loop exceeded table size")
            s = (slots[pending] + offset) % self.n_slots
            occupant = self._keys[s]
            hit = occupant == keys[pending]
            empty = occupant == EMPTY_KEY
            done = hit | empty
            result[pending[done]] = s[done]
            found[pending[hit]] = True
            pending = pending[~done]
            offset += 1
            self.probe_rounds += 1
        return result, found

    # ------------------------------------------------------------------
    def insert(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Insert (or overwrite) unique ``keys`` with ``values``.

        Mirrors the HBM-PS batch insert of Algorithm 1 line 9.  ``keys``
        must be duplicate-free — the working set is a set by construction.
        """
        keys = as_keys(keys)
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (keys.size, self.value_dim):
            raise ValueError("values shape mismatch")
        if keys.size == 0:
            return
        if not all_unique(keys):
            raise ValueError("insert requires unique keys")
        # Pre-flight capacity check: fail before any slot is written, so a
        # rejected insert never leaves the table partially mutated.  The
        # precise non-resident count costs a full probe pass, so only pay
        # it when the free upper bound (every key new) would overflow.
        if self.size + keys.size > self.capacity:
            _, resident = self._locate(keys)
            n_new = int((~resident).sum())
            if self.size + n_new > self.capacity:
                allowed = self.capacity - self.size
                raise RuntimeError(
                    f"hash table capacity exceeded: {self.size}+"
                    f"{n_new} > {self.capacity} (room for {allowed})"
                )
        base = self._base_slots(keys)
        pending = np.arange(keys.size)
        offset = np.zeros(keys.size, dtype=np.int64)
        while pending.size:
            s = (base[pending] + offset[pending]) % self.n_slots
            occupant = self._keys[s]
            hit = occupant == keys[pending]
            # Overwrites are free to apply immediately.
            self._values[s[hit]] = values[pending[hit]]
            empty = occupant == EMPTY_KEY
            # Several pending keys may race for one empty slot; the first
            # occurrence wins (the GPU's CAS), the rest re-probe.
            cand = np.flatnonzero(empty)
            if cand.size:
                _, first = np.unique(s[cand], return_index=True)
                winners = cand[first]
                widx = pending[winners]
                self._keys[s[winners]] = keys[widx]
                self._values[s[winners]] = values[widx]
                self.size += winners.size
                resolved_mask = np.zeros(pending.size, dtype=bool)
                resolved_mask[winners] = True
            else:
                resolved_mask = np.zeros(pending.size, dtype=bool)
            resolved_mask |= hit
            offset[pending[~resolved_mask]] += 1
            if np.any(offset > self.n_slots):
                raise RuntimeError("insert probe loop exceeded table size")
            pending = pending[~resolved_mask]
            self.probe_rounds += 1

    def get(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Values for ``keys`` plus a found mask.

        Missing keys yield zero rows with ``found=False`` — the caller (the
        pull path) decides whether missing is an error.
        """
        keys = as_keys(keys)
        if keys.size == 0:
            return (
                np.zeros((0, self.value_dim), dtype=np.float32),
                np.zeros(0, dtype=bool),
            )
        slots, found = self._locate(keys)
        out = np.zeros((keys.size, self.value_dim), dtype=np.float32)
        out[found] = self._values[slots[found]]
        return out, found

    def accumulate(
        self, keys: np.ndarray, deltas: np.ndarray, *, upsert: bool = False
    ) -> None:
        """``values[k] += delta`` for each key.

        This is the table-level primitive behind Algorithm 2.  ``keys`` may
        contain duplicates; duplicate deltas sum, as GPU atomics would.
        Absent keys raise ``KeyError`` unless ``upsert=True``, in which case
        they are inserted with their summed delta (used by the gradient
        buffer, whose working set grows as workers push).
        """
        keys = as_keys(keys)
        deltas = np.asarray(deltas, dtype=np.float32)
        if deltas.shape != (keys.size, self.value_dim):
            raise ValueError("deltas shape mismatch")
        if keys.size == 0:
            return
        uniq, inv = np.unique(keys, return_inverse=True)
        # float64 scatter-add keeps duplicate-key delta sums independent
        # of worker arrival order.
        # repro: allow(f64-hot-path)
        summed = np.zeros((uniq.size, self.value_dim), dtype=np.float64)
        np.add.at(summed, inv, deltas)
        slots, found = self._locate(uniq)
        if not np.all(found):
            if not upsert:
                missing = uniq[~found][:5]
                raise KeyError(f"accumulate on absent keys, e.g. {missing.tolist()}")
            self.insert(uniq[~found], summed[~found].astype(np.float32))
        self._values[slots[found]] += summed[found].astype(np.float32)

    def transform(self, keys: np.ndarray, fn) -> None:
        """Apply ``new = fn(old)`` to the values of resident ``keys``.

        Used for optimizer updates, where the new value is not a pure sum.
        ``keys`` must be unique and resident.
        """
        keys = as_keys(keys)
        if keys.size == 0:
            return
        if not all_unique(keys):
            raise ValueError("transform requires unique keys")
        slots, found = self._locate(keys)
        if not np.all(found):
            missing = keys[~found][:5]
            raise KeyError(f"transform on absent keys, e.g. {missing.tolist()}")
        self._values[slots] = np.asarray(fn(self._values[slots]), dtype=np.float32)

    # ------------------------------------------------------------------
    # ParameterStore protocol aliases.
    # ------------------------------------------------------------------
    def get_batch(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Protocol alias of :meth:`get` (values + found mask)."""
        return self.get(keys)

    def put_batch(
        self, keys: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Protocol face of :meth:`insert`; a fixed-capacity working-set
        table never evicts (it raises when full), so flushes are empty."""
        self.insert(keys, values)
        return (
            np.zeros(0, dtype=KEY_DTYPE),
            np.zeros((0, self.value_dim), dtype=np.float32),
        )

    # ------------------------------------------------------------------
    def contains(self, keys: np.ndarray) -> np.ndarray:
        _, found = self._locate(as_keys(keys))
        return found

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """All resident (keys, values), sorted by key."""
        mask = self._keys != EMPTY_KEY
        keys = self._keys[mask]
        values = self._values[mask]
        order = np.argsort(keys)
        return keys[order], values[order].copy()

    def clear(self) -> None:
        """Drop everything (the HBM working set is rebuilt every batch)."""
        self._keys.fill(EMPTY_KEY)
        self._values.fill(0.0)
        self.size = 0

    def __len__(self) -> int:
        return self.size

    def __contains__(self, key: int) -> bool:
        return bool(self.contains(np.array([key], dtype=KEY_DTYPE))[0])
