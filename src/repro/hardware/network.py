"""Inter-node transfer cost model (Figure 8 of the paper).

Two data paths are modeled:

* **RDMA / RoCE** — the NIC streams GPU HBM (or pinned host memory) directly
  to the peer's memory: one latency + bytes/bandwidth.
* **CPU bounce** (baseline) — data crosses PCIe into host memory, is sent by
  the CPU, lands in the peer's host memory and crosses PCIe again.  This
  pays two extra PCIe copies plus per-message CPU overhead, which is exactly
  the overhead the paper's RDMA design removes.
"""

from __future__ import annotations

from repro.hardware.ledger import CostLedger
from repro.hardware.specs import NetworkSpec

__all__ = ["Network"]


class Network:
    """Cost model for one node's NIC.

    Parameters
    ----------
    spec:
        Fabric characteristics (bandwidth, latency, RDMA on/off).
    ledger:
        Optional shared ledger; a private one is created otherwise.
    """

    def __init__(self, spec: NetworkSpec, ledger: CostLedger | None = None):
        self.spec = spec
        self.ledger = ledger if ledger is not None else CostLedger()
        self.bytes_sent = 0
        self.messages_sent = 0

    def transfer_time(self, n_bytes: int, *, n_messages: int = 1) -> float:
        """Simulated seconds to move ``n_bytes`` in ``n_messages`` sends."""
        if n_bytes < 0 or n_messages < 0:
            raise ValueError("negative transfer size")
        if n_bytes == 0 and n_messages == 0:
            return 0.0
        n_messages = max(n_messages, 1)
        t = n_messages * self.spec.latency_s + n_bytes / self.spec.bandwidth
        if not self.spec.rdma:
            # Two PCIe crossings (sender HBM->host, host->receiver HBM) and
            # CPU/driver involvement per message.
            t += 2 * n_bytes / self.spec.pcie_bandwidth
            t += n_messages * self.spec.cpu_bounce_overhead_s
        return t

    def send(
        self, n_bytes: int, *, n_messages: int = 1, category: str = "net_remote_pull"
    ) -> float:
        """Account a transfer on the ledger and return its simulated time."""
        t = self.transfer_time(n_bytes, n_messages=n_messages)
        self.bytes_sent += n_bytes
        self.messages_sent += n_messages
        self.ledger.add(category, t)
        return t
