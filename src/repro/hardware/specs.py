"""Hardware specifications for the simulated substrate.

Defaults describe the paper's testbed: 4 nodes, each with 8× 32 GB-HBM GPUs
connected by NVLink, ~1 TB RAM, ~20 TB RAID-0 NVMe SSD and a 100 Gb RDMA
NIC; nodes interconnected through a high-speed Ethernet switch; training
data streamed from HDFS.  All bandwidth/latency figures are effective
(post-protocol-overhead) values, chosen from the cited hardware generation
(V100-class GPUs, NVLink 2.0, PCIe 3.0 x16, 100 GbE RoCE).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "GPUSpec",
    "NVLinkSpec",
    "NetworkSpec",
    "SSDSpec",
    "HDFSSpec",
    "CPUSpec",
    "NodeHardware",
    "default_node_hardware",
]

GB = 1e9


@dataclass(frozen=True)
class GPUSpec:
    """One accelerator card."""

    hbm_bytes: float = 32 * GB
    #: Sustained dense throughput in FLOP/s (V100-class mixed precision,
    #: derated to an achievable fraction for MLP workloads).
    flops: float = 2.0e13
    #: HBM bandwidth (bytes/s) governing hash-table probe cost.
    hbm_bandwidth: float = 800e9
    #: Fixed kernel-launch overhead per batched hash-table operation.
    kernel_launch_s: float = 10e-6

    def __post_init__(self) -> None:
        if min(self.hbm_bytes, self.flops, self.hbm_bandwidth) <= 0:
            raise ValueError("GPU spec values must be positive")


@dataclass(frozen=True)
class NVLinkSpec:
    """Intra-node GPU interconnect (NVLink 2.0: ~25 GB/s per direction
    per link pair, effective)."""

    bandwidth: float = 25e9
    latency_s: float = 5e-6

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.latency_s < 0:
            raise ValueError("invalid NVLink spec")


@dataclass(frozen=True)
class NetworkSpec:
    """Inter-node fabric.

    ``rdma=True`` models GPUDirect RDMA over RoCE (Figure 8, solid path):
    NIC moves HBM→HBM with no CPU bounce.  ``rdma=False`` models the
    baseline dashed path: HBM→host memory→NIC→host memory→HBM, paying two
    extra PCIe copies and CPU involvement.
    """

    bandwidth: float = 100e9 / 8  # 100 Gb/s -> 12.5 GB/s
    latency_s: float = 10e-6
    rdma: bool = True
    #: PCIe 3.0 x16 effective bandwidth for the CPU-bounce path.
    pcie_bandwidth: float = 12e9
    #: Per-message CPU/driver overhead added when RDMA is disabled.
    cpu_bounce_overhead_s: float = 50e-6

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.pcie_bandwidth <= 0:
            raise ValueError("network bandwidths must be positive")


@dataclass(frozen=True)
class SSDSpec:
    """NVMe RAID-0 array.

    Sequential bandwidth applies to whole-file reads/writes; random small
    I/O pays ``random_iops`` instead.  ``block_bytes`` is the device I/O
    granularity — the source of the I/O-amplification argument in Section 6.
    """

    seq_read_bandwidth: float = 10e9
    seq_write_bandwidth: float = 8e9
    random_iops: float = 500_000.0
    block_bytes: int = 4096
    capacity_bytes: float = 20e12
    #: Bandwidth charged when a whole-file read is served from the
    #: host-memory extent cache instead of the device: a DRAM copy, far
    #: cheaper than the array but not free, and unpadded (no block
    #: amplification off-device).
    warm_read_bandwidth: float = 80e9

    def __post_init__(self) -> None:
        if min(self.seq_read_bandwidth, self.seq_write_bandwidth) <= 0:
            raise ValueError("SSD bandwidths must be positive")
        if self.block_bytes <= 0:
            raise ValueError("block size must be positive")
        if self.warm_read_bandwidth <= 0:
            raise ValueError("warm read bandwidth must be positive")


@dataclass(frozen=True)
class HDFSSpec:
    """Distributed-FS streaming throughput per node.

    The paper's Fig. 3(c) shows example reading ~70–80 s/batch regardless of
    model, i.e. HDFS is provisioned at a fixed per-node streaming rate.
    """

    bandwidth: float = 300e6
    latency_s: float = 1e-3
    #: CPU-side rate at which checkpoint shards are serialized into their
    #: on-wire form, distinct from :attr:`bandwidth` (the network pipe).
    #: The snapshot stage overlaps the two (serialize shard ``n + 1``
    #: while shipping shard ``n``), so they are priced separately.
    serialize_bandwidth: float = 2e9

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("HDFS bandwidth must be positive")
        if self.serialize_bandwidth <= 0:
            raise ValueError("HDFS serialize bandwidth must be positive")


@dataclass(frozen=True)
class CPUSpec:
    """Host CPU used for partitioning/dedup and the MPI baseline compute."""

    cores: int = 48
    #: Effective per-core key-processing rate (hash+shuffle), keys/s.
    keys_per_second_per_core: float = 2.5e7
    #: Effective dense FLOP/s for the whole socket pair (MPI baseline).
    flops: float = 2.0e12
    memory_bytes: float = 1e12

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.flops <= 0:
            raise ValueError("invalid CPU spec")


@dataclass(frozen=True)
class NodeHardware:
    """Everything one compute node owns."""

    gpu: GPUSpec
    nvlink: NVLinkSpec
    network: NetworkSpec
    ssd: SSDSpec
    hdfs: HDFSSpec
    cpu: CPUSpec
    gpus_per_node: int = 8

    def __post_init__(self) -> None:
        if self.gpus_per_node <= 0:
            raise ValueError("node needs at least one GPU")


def default_node_hardware(
    *, gpus_per_node: int = 8, rdma: bool = True
) -> NodeHardware:
    """The paper's testbed node."""
    return NodeHardware(
        gpu=GPUSpec(),
        nvlink=NVLinkSpec(),
        network=NetworkSpec(rdma=rdma),
        ssd=SSDSpec(),
        hdfs=HDFSSpec(),
        cpu=CPUSpec(),
        gpus_per_node=gpus_per_node,
    )
