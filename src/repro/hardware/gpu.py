"""GPU compute and NVLink cost models.

The functional layer does real NumPy math; this module converts the *work
counts* of those operations (FLOPs, keys probed, bytes moved) into simulated
GPU seconds so paper-scale models can be timed without silicon.
"""

from __future__ import annotations

from repro.hardware.ledger import CostLedger
from repro.hardware.specs import GPUSpec, NVLinkSpec

__all__ = ["GPUDevice", "NVLink", "dense_flops_per_example"]


def dense_flops_per_example(
    n_slots: int, embedding_dim: int, hidden_layers: tuple[int, ...]
) -> float:
    """FLOPs for one example's forward+backward through the MLP tower.

    Forward GEMM ≈ 2·in·out per layer; backward ≈ 2× forward (grad wrt
    inputs + grad wrt weights), giving the standard 6·in·out total.
    """
    dims = [n_slots * embedding_dim, *hidden_layers, 1]
    return float(sum(6 * a * b for a, b in zip(dims[:-1], dims[1:])))


class GPUDevice:
    """Cost model for one simulated GPU card."""

    def __init__(self, spec: GPUSpec, ledger: CostLedger | None = None):
        self.spec = spec
        self.ledger = ledger if ledger is not None else CostLedger()

    def compute_time(self, flops: float) -> float:
        """Seconds for ``flops`` of dense work."""
        if flops < 0:
            raise ValueError("negative FLOPs")
        return flops / self.spec.flops

    def hashtable_time(self, n_keys: int, value_bytes: int) -> float:
        """Seconds for a batched hash-table op touching ``n_keys`` entries.

        Each probe moves the key plus the value payload through HBM; a fixed
        kernel-launch cost is added per batched call.
        """
        if n_keys < 0:
            raise ValueError("negative key count")
        moved = n_keys * (8 + value_bytes) * 2  # read + write
        return self.spec.kernel_launch_s + moved / self.spec.hbm_bandwidth

    def train(self, flops: float) -> float:
        t = self.compute_time(flops)
        self.ledger.add("gpu_compute", t)
        return t

    def table_op(self, n_keys: int, value_bytes: int, category: str) -> float:
        t = self.hashtable_time(n_keys, value_bytes)
        self.ledger.add(category, t)
        return t


class NVLink:
    """Intra-node inter-GPU transfer cost model."""

    def __init__(self, spec: NVLinkSpec, ledger: CostLedger | None = None):
        self.spec = spec
        self.ledger = ledger if ledger is not None else CostLedger()
        self.bytes_moved = 0

    def transfer_time(self, n_bytes: int, *, n_messages: int = 1) -> float:
        if n_bytes < 0:
            raise ValueError("negative transfer size")
        if n_bytes == 0 and n_messages == 0:
            return 0.0
        return max(n_messages, 1) * self.spec.latency_s + n_bytes / self.spec.bandwidth

    def send(self, n_bytes: int, *, n_messages: int = 1) -> float:
        t = self.transfer_time(n_bytes, n_messages=n_messages)
        self.bytes_moved += n_bytes
        self.ledger.add("nvlink", t)
        return t
