"""Cost ledger — the timing layer's accounting backbone.

Every simulated hardware operation reports a cost in *simulated seconds*
under a named category.  Ledgers are additive and mergeable, so each
component (MEM-PS, SSD-PS, HBM-PS, network, pipeline) keeps its own and the
benchmarks aggregate them into the paper's per-stage decompositions.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterator

__all__ = ["CostLedger", "Cost"]


@dataclass(frozen=True)
class Cost:
    """A single simulated cost sample."""

    category: str
    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ValueError("cost cannot be negative")


class CostLedger:
    """Accumulates simulated seconds per category.

    Categories used across the library::

        hdfs_read        streaming examples from the distributed FS
        cpu_partition    CPU-side sharding / key union / dedup work
        ssd_read         parameter-file reads
        ssd_write        parameter-file writes (dumps + compaction)
        net_remote_pull  inter-node MEM-PS parameter traffic
        nvlink           intra-node inter-GPU transfers
        allreduce        inter-node GPU synchronization
        gpu_compute      forward/backward propagation
        hbm_pull / hbm_push   distributed-hash-table traffic
    """

    def __init__(self) -> None:
        self._totals: dict[str, float] = defaultdict(float)
        self._counts: dict[str, int] = defaultdict(int)

    def add(self, category: str, seconds: float) -> float:
        """Record ``seconds`` under ``category``; returns ``seconds``."""
        if seconds < 0:
            raise ValueError(f"negative cost for {category!r}: {seconds}")
        self._totals[category] += seconds
        self._counts[category] += 1
        return seconds

    def total(self, category: str | None = None) -> float:
        """Total seconds for ``category``, or across all categories."""
        if category is None:
            return sum(self._totals.values())
        return self._totals.get(category, 0.0)

    def count(self, category: str) -> int:
        """Number of samples recorded under ``category``."""
        return self._counts.get(category, 0)

    def categories(self) -> list[str]:
        return sorted(self._totals)

    def as_dict(self) -> dict[str, float]:
        return dict(self._totals)

    def merge(self, other: "CostLedger") -> "CostLedger":
        """Fold ``other`` into this ledger (in place); returns self."""
        for cat, sec in other._totals.items():
            self._totals[cat] += sec
        for cat, n in other._counts.items():
            self._counts[cat] += n
        return self

    def snapshot(self) -> "CostLedger":
        """Independent copy of the current state."""
        out = CostLedger()
        out._totals = defaultdict(float, self._totals)
        out._counts = defaultdict(int, self._counts)
        return out

    def delta_since(self, snapshot: "CostLedger") -> dict[str, float]:
        """Per-category difference between now and ``snapshot``."""
        out: dict[str, float] = {}
        for cat in set(self._totals) | set(snapshot._totals):
            d = self._totals.get(cat, 0.0) - snapshot._totals.get(cat, 0.0)
            if d:
                out[cat] = d
        return out

    def reset(self) -> None:
        self._totals.clear()
        self._counts.clear()

    # -- checkpoint hooks ----------------------------------------------
    def export_state(self) -> dict[str, list]:
        """Snapshot for a checkpoint shard (plain lists, NumPy-free).

        Carrying per-node totals in the node shards lets a restored run
        continue long-horizon cost accounting instead of restarting at
        zero — recovery itself then shows up as ``ckpt_read`` *on top of*
        the history, the way a real deployment's books would.
        """
        cats = sorted(self._totals)
        return {
            "categories": cats,
            "totals": [self._totals[c] for c in cats],
            "counts": [self._counts[c] for c in cats],
        }

    def load_state(self, state: dict) -> None:
        """Rebuild from an :meth:`export_state` snapshot (replaces all)."""
        cats = [str(c) for c in state["categories"]]
        totals = [float(t) for t in state["totals"]]
        counts = [int(n) for n in state["counts"]]
        if len(totals) != len(cats) or len(counts) != len(cats):
            raise ValueError("ledger snapshot shape mismatch")
        if any(t < 0 for t in totals) or any(n < 0 for n in counts):
            raise ValueError("ledger snapshot holds negative accounting")
        self.reset()
        for cat, total, count in zip(cats, totals, counts):
            self._totals[cat] = total
            self._counts[cat] = count

    def __iter__(self) -> Iterator[tuple[str, float]]:
        return iter(sorted(self._totals.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{c}={s:.3f}s" for c, s in self)
        return f"CostLedger({parts})"
