"""SSD block-device cost model.

The SSD-PS reads and writes whole parameter files; the device model converts
file sizes into simulated seconds.  Sequential transfers run at the array's
sequential bandwidth; small random reads are charged per-IOP.  Sizes are
rounded up to the block granularity, which is what makes small files waste
bandwidth (the I/O-amplification trade-off of Appendix E).
"""

from __future__ import annotations

import math

from repro.hardware.ledger import CostLedger
from repro.hardware.specs import SSDSpec

__all__ = ["SSDDevice"]


class SSDDevice:
    """Cost model + usage accounting for one node's NVMe array."""

    def __init__(self, spec: SSDSpec, ledger: CostLedger | None = None):
        self.spec = spec
        self.ledger = ledger if ledger is not None else CostLedger()
        self.bytes_read = 0
        self.bytes_written = 0
        self.read_ops = 0
        self.write_ops = 0
        #: fault-injection guard for write stalls
        #: (:class:`repro.faults.policy.FaultArm`; None = fault-free)
        self.faults = None

    # ------------------------------------------------------------------
    def _blocks(self, n_bytes: int) -> int:
        return max(1, math.ceil(n_bytes / self.spec.block_bytes))

    def read_time(self, n_bytes: int, *, sequential: bool = True) -> float:
        """Seconds to read ``n_bytes`` (one file)."""
        if n_bytes < 0:
            raise ValueError("negative read size")
        if n_bytes == 0:
            return 0.0
        padded = self._blocks(n_bytes) * self.spec.block_bytes
        if sequential:
            return padded / self.spec.seq_read_bandwidth
        return self._blocks(n_bytes) / self.spec.random_iops

    def write_time(self, n_bytes: int, *, sequential: bool = True) -> float:
        """Seconds to write ``n_bytes`` (one file, append-only)."""
        if n_bytes < 0:
            raise ValueError("negative write size")
        if n_bytes == 0:
            return 0.0
        padded = self._blocks(n_bytes) * self.spec.block_bytes
        if sequential:
            return padded / self.spec.seq_write_bandwidth
        return self._blocks(n_bytes) / self.spec.random_iops

    def warm_read_time(self, n_bytes: int) -> float:
        """Seconds to serve ``n_bytes`` from the host-memory extent cache.

        A DRAM copy: unpadded (block granularity is a device property)
        and priced at ``warm_read_bandwidth``, so a cache hit is cheap
        but never free on the simulated clock.
        """
        if n_bytes < 0:
            raise ValueError("negative read size")
        return n_bytes / self.spec.warm_read_bandwidth

    # ------------------------------------------------------------------
    def read(self, n_bytes: int, *, sequential: bool = True) -> float:
        """Account a read on the ledger; returns simulated seconds."""
        t = self.read_time(n_bytes, sequential=sequential)
        self.bytes_read += n_bytes
        self.read_ops += 1
        self.ledger.add("ssd_read", t)
        return t

    def read_warm(self, n_bytes: int) -> float:
        """Account an extent-cache hit on the ledger (``ssd_read``
        category — it substitutes for a device read); returns seconds."""
        t = self.warm_read_time(n_bytes)
        self.ledger.add("ssd_read", t)
        return t

    def write(self, n_bytes: int, *, sequential: bool = True) -> float:
        """Account a write on the ledger; returns simulated seconds.

        An armed device may additionally stall the write (garbage
        collection pauses, write-cliff behaviour): the stall never fails
        the operation, it just costs extra simulated seconds, charged to
        the ledger's ``fault_retry`` line by the arm.
        """
        t = self.write_time(n_bytes, sequential=sequential)
        self.bytes_written += n_bytes
        self.write_ops += 1
        self.ledger.add("ssd_write", t)
        if self.faults is not None:
            t += self.faults.stall("ssd_write_stall", t)
        return t
