"""Seeded, sim-time-driven fault matrix.

A :class:`FaultSchedule` decides — deterministically — whether each armed
operation fails, and how hard.  Determinism comes from the same plumbing
as every other stochastic component (:mod:`repro.utils.rng`): each
``(kind, node)`` pair owns an independent child stream derived from the
schedule seed, consumed once per armed operation, in execution order.
Because the pipelined engine executes stage closures in the same
canonical batch-major order as lockstep, a given schedule injects the
*identical* fault sequence in both execution modes; two schedules built
from the same seed and configuration inject bit-identical sequences.

No wall clock anywhere: a "timeout" or "stall" is priced in simulated
seconds through the cost ledger by the policy layer, never by sleeping.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.utils.rng import spawn

__all__ = ["FAULT_KINDS", "FaultSchedule"]

#: Every fault kind the injector can arm, by surface:
#: SSD file store / device, HDFS stream, collective + HBM dispatch,
#: per-node stage stragglers, and whole-node crashes probed by the
#: supervisor at round boundaries.
FAULT_KINDS: tuple[str, ...] = (
    "ssd_read_error",
    "ssd_torn_payload",
    "ssd_write_stall",
    "hdfs_timeout",
    "hdfs_read_failure",
    "comm_allreduce",
    "hbm_dispatch",
    "straggler",
    "node_crash",
)


class FaultSchedule:
    """Deterministic per-(kind, node) fault draws with a global budget.

    ``rates`` maps a fault kind to its per-operation firing probability;
    kinds absent (or at rate 0) consume no randomness at all, so arming
    a new kind never perturbs another kind's stream.  A fired fault has
    a *depth* — how many consecutive attempts it fails — drawn
    geometrically (``depth_p``, capped at ``max_depth``); a depth at or
    beyond the policy's ``max_attempts`` is what turns a transient
    hiccup into an escaped :class:`~repro.faults.errors.FaultError`.

    ``max_faults`` bounds the total faults a schedule will ever fire,
    which is what guarantees supervised runs terminate: once the budget
    drains, every remaining draw is clean and recovery always makes
    forward progress.

    ``script`` pins specific draws for targeted tests: a mapping from
    ``(kind, node, op_index)`` to a forced depth, where ``op_index``
    counts armed operations of that ``(kind, node)`` pair from zero.
    """

    def __init__(
        self,
        seed: int,
        *,
        rates: Mapping[str, float] | None = None,
        max_faults: int = 32,
        depth_p: float = 0.4,
        max_depth: int = 8,
        straggler_min: float = 1.25,
        straggler_max: float = 3.0,
        script: Mapping[tuple[str, int | None, int], int] | None = None,
    ) -> None:
        rates = dict(rates or {})
        unknown = sorted(set(rates) - set(FAULT_KINDS))
        if unknown:
            raise ValueError(f"unknown fault kinds: {unknown}")
        for kind, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {kind!r} must be in [0, 1]")
        if not 1.0 <= straggler_min <= straggler_max:
            raise ValueError("straggler multipliers must satisfy 1 <= min <= max")
        self.seed = int(seed)
        self.rates = rates
        self.max_faults = int(max_faults)
        self.depth_p = float(depth_p)
        self.max_depth = int(max_depth)
        self.straggler_min = float(straggler_min)
        self.straggler_max = float(straggler_max)
        self.script = dict(script or {})
        self.faults_fired = 0
        self._streams: dict[tuple[str, int], np.random.Generator] = {}
        self._op_counts: dict[tuple[str, int], int] = {}

    # ------------------------------------------------------------------
    @classmethod
    def mixed(
        cls, seed: int, *, rate: float = 0.02, max_faults: int = 32, **kwargs
    ) -> "FaultSchedule":
        """A schedule arming every kind at a uniform rate (soak tests).

        Node crashes and stragglers get a fraction of ``rate`` — they
        fire per round / per stage rather than per I/O operation, so an
        equal per-draw rate would drown the run in restores.
        """
        rates = {kind: rate for kind in FAULT_KINDS}
        rates["node_crash"] = rate / 4
        rates["straggler"] = rate / 2
        return cls(seed, rates=rates, max_faults=max_faults, **kwargs)

    # ------------------------------------------------------------------
    def _key(self, kind: str, node: int | None) -> tuple[str, int]:
        return (kind, -1 if node is None else int(node))

    def _stream(self, kind: str, node: int | None) -> np.random.Generator:
        key = self._key(kind, node)
        rng = self._streams.get(key)
        if rng is None:
            rng = spawn(self.seed, "fault", key[0], key[1])
            self._streams[key] = rng
        return rng

    def draw(self, kind: str, node: int | None = None) -> int:
        """Fault depth for the next armed operation (0 = no fault).

        Consumes the ``(kind, node)`` stream only when the kind is armed
        and the global budget has room; a scripted entry for this op
        index overrides the stochastic draw (but still spends budget).
        """
        key = self._key(kind, node)
        op_index = self._op_counts.get(key, 0)
        self._op_counts[key] = op_index + 1
        if self.faults_fired >= self.max_faults:
            return 0
        scripted = self.script.get((kind, node, op_index))
        if scripted is not None:
            depth = int(scripted)
            if depth > 0:
                self.faults_fired += 1
            return depth
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return 0
        rng = self._stream(kind, node)
        if rng.random() >= rate:
            return 0
        self.faults_fired += 1
        depth = 1
        while depth < self.max_depth and rng.random() < self.depth_p:
            depth += 1
        return depth

    def uniform(self, kind: str, node: int | None = None) -> float:
        """A uniform [0, 1) variate from the pair's stream (jitter)."""
        return float(self._stream(kind, node).random())

    def straggler(self, node: int | None) -> float:
        """Stage-slowdown multiplier for one node (1.0 = no straggle)."""
        if self.draw("straggler", node) == 0:
            return 1.0
        u = self.uniform("straggler", node)
        return self.straggler_min + u * (self.straggler_max - self.straggler_min)

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Config fingerprint (used by determinism tests)."""
        return {
            "seed": self.seed,
            "rates": dict(sorted(self.rates.items())),
            "max_faults": self.max_faults,
            "depth_p": self.depth_p,
            "max_depth": self.max_depth,
            "straggler_min": self.straggler_min,
            "straggler_max": self.straggler_max,
            "script": {str(k): int(v) for k, v in sorted(self.script.items())},
        }
