"""Thread fault arms through every I/O surface of a live cluster.

:func:`inject_faults` installs one :class:`~repro.faults.policy.FaultArm`
per (surface, node) on the file store + SSD device (read errors, torn
payloads, write stalls), the HDFS stream (timeouts, transient read
failures), the per-node HBM dispatch, the cluster's collectives, and a
stage wrapper that applies per-node straggler multipliers and stamps the
originating stage onto any escaping
:class:`~repro.faults.errors.FaultError`.  :func:`clear_faults` undoes
all of it.

The returned :class:`FaultInjection` owns the shared incident log and
can re-:meth:`~FaultInjection.attach` the same schedule/policy to a
*different* cluster object — exactly what the supervisor needs after a
full restore replaces the cluster mid-run (the schedule's streams and
budget carry across the restore, so replayed rounds draw fresh,
deterministic faults).

Quarantine recovery: parameter files are immutable and their ids are
never reused, so any file that predates the newest checkpoint has its
exact payload in the chain's SSD exports (a full member packs every
file; a delta member packs the files at or above its base watermark —
walking the chain newest-first finds at most one copy, always exact).
:class:`CheckpointRecovery` resolves that copy, digest-verified, and
prices the re-read as an HDFS transfer on the ``fault_retry`` line.
"""

from __future__ import annotations

import os

import numpy as np

from repro.ckpt.format import (
    CheckpointError,
    latest_checkpoint,
    node_shard_name,
    resolve_chain,
    verify_shard,
)
from repro.faults.errors import FaultError
from repro.faults.policy import FaultArm, FaultIncident, RetryPolicy
from repro.faults.schedule import FaultSchedule

__all__ = [
    "CheckpointRecovery",
    "FaultInjection",
    "clear_faults",
    "inject_faults",
]


class CheckpointRecovery:
    """Re-materialize one node's lost parameter file from a checkpoint.

    Callable as ``(file_id, expected_keys) -> (values, nbytes, seconds)
    or None`` — the quarantine hook a
    :class:`~repro.faults.policy.FaultArm` consults when an SSD read
    exhausts its retries.  ``seconds`` is the simulated HDFS transfer
    time of the shard holding the payload; ``nbytes`` its on-disk size
    (the bytes re-read the fault report accounts).
    """

    def __init__(self, directory: str, node) -> None:
        self.directory = directory
        self.node = node

    def __call__(self, file_id: int, expected_keys: np.ndarray):
        newest = latest_checkpoint(self.directory)
        if newest is None:
            return None
        try:
            chain = resolve_chain(newest)
        except CheckpointError:
            return None
        shard = node_shard_name(self.node.node_id)
        # Newest-first: a delta member supersedes its base for any file
        # it packs, and immutability makes every packed copy exact.
        for member_dir, manifest in reversed(chain):
            digest = manifest.get("shards", {}).get(shard)
            if digest is None:
                continue
            try:
                path = verify_shard(member_dir, shard, digest)
            except CheckpointError:
                continue
            found = self._payload_in_shard(path, file_id, expected_keys)
            if found is not None:
                values, nbytes = found
                return values, nbytes, self.node.hdfs.transfer_seconds(nbytes)
        return None

    @staticmethod
    def _payload_in_shard(path: str, file_id: int, expected_keys: np.ndarray):
        with np.load(path) as z:
            if "ssd_file_ids" not in z.files:
                return None
            pos = np.flatnonzero(z["ssd_file_ids"] == int(file_id))
            if pos.size == 0:
                return None
            offsets = z["ssd_file_offsets"]
            lo, hi = int(offsets[int(pos[0])]), int(offsets[int(pos[0]) + 1])
            keys = z["ssd_file_keys"][lo:hi]
            values = np.asarray(z["ssd_file_values"][lo:hi], dtype=np.float32)
        if not np.array_equal(keys, np.asarray(expected_keys)):
            return None
        return values, int(os.path.getsize(path))


class FaultInjection:
    """The armed state of one schedule/policy pair on a cluster."""

    def __init__(
        self,
        schedule: FaultSchedule,
        policy: RetryPolicy,
        *,
        recovery_directory: str | None = None,
    ) -> None:
        self.schedule = schedule
        self.policy = policy
        self.recovery_directory = recovery_directory
        #: execution-ordered log of every absorbed fault, shared by all
        #: arms; the supervisor drains and round-stamps it.
        self.incidents: list[FaultIncident] = []
        #: every arm ever attached (kept across re-attach so totals
        #: account the pre-restore cluster's retry work too).
        self.arms: list[FaultArm] = []
        self.cluster = None
        self._stage_arms: list[FaultArm] = []

    # ------------------------------------------------------------------
    def _arm(self, ledger, *, surface: str, node: int | None, recovery=None):
        arm = FaultArm(
            self.schedule,
            self.policy,
            ledger,
            surface=surface,
            node=node,
            incidents=self.incidents,
            recovery=recovery,
        )
        self.arms.append(arm)
        return arm

    def attach(self, cluster) -> "FaultInjection":
        """Install arms on ``cluster``'s surfaces and wrap its stages."""
        if self.cluster is not None:
            raise FaultError(
                "injection is already attached — detach() it first",
                surface="inject",
            )
        self._stage_arms = []
        for node in cluster.nodes:
            recovery = (
                CheckpointRecovery(self.recovery_directory, node)
                if self.recovery_directory is not None
                else None
            )
            ssd_arm = self._arm(
                node.ledger,
                surface="ssd",
                node=node.node_id,
                recovery=recovery,
            )
            node.ssd_ps.store.faults = ssd_arm
            node.ssd_ps.store.device.faults = ssd_arm
            node.hdfs.faults = self._arm(
                node.ledger, surface="hdfs", node=node.node_id
            )
            node.hbm_ps.faults = self._arm(
                node.ledger, surface="hbm", node=node.node_id
            )
            self._stage_arms.append(
                self._arm(node.ledger, surface="stage", node=node.node_id)
            )
        cluster._fault_arm = self._arm(
            cluster.nodes[0].ledger, surface="comm", node=None
        )
        cluster.wrap_stages(self._wrap)
        self.cluster = cluster
        return self

    def detach(self) -> None:
        """Unwrap the stages and disarm every surface."""
        cluster = self.cluster
        if cluster is None:
            return
        cluster.unwrap_stages()
        for node in cluster.nodes:
            node.ssd_ps.store.faults = None
            node.ssd_ps.store.device.faults = None
            node.hdfs.faults = None
            node.hbm_ps.faults = None
        cluster._fault_arm = None
        self.cluster = None
        self._stage_arms = []

    def reattach(self, cluster) -> None:
        """Move the injection to a replacement cluster (full restore)."""
        self.detach()
        self.attach(cluster)

    # ------------------------------------------------------------------
    def _wrap(self, name: str, fn):
        """Stage wrapper: straggler multipliers + stage-tagging escapes.

        The straggler draw happens per stage invocation per node, after
        the stage's real work: a straggling node stretches the stage by
        ``seconds * (multiplier - 1)`` on the simulated clock (charged
        to ``fault_straggler``), perturbing timing but never values —
        which is exactly why straggler-only schedules stay bit-identical
        to the fault-free twin without any recovery action.
        """

        def wrapped(ctx):
            try:
                seconds = fn(ctx)
            except FaultError as err:
                if err.stage is None:
                    err.stage = name
                raise
            extra = 0.0
            for arm in self._stage_arms:
                extra = max(extra, arm.straggle(name, seconds))
            return seconds + extra

        return wrapped

    # ------------------------------------------------------------------
    def drain_incidents(self) -> list[FaultIncident]:
        """Pop (and return) every incident recorded since the last drain."""
        out = list(self.incidents)
        self.incidents.clear()
        return out

    def totals(self) -> dict:
        """Aggregate arm counters (all attachments, all surfaces)."""
        counts: dict[str, int] = {}
        for arm in self.arms:
            for kind, n in arm.fault_counts.items():
                counts[kind] = counts.get(kind, 0) + n
        return {
            "retries": sum(a.retries for a in self.arms),
            "retry_seconds": sum(a.retry_seconds for a in self.arms),
            "straggler_seconds": sum(a.straggler_seconds for a in self.arms),
            "bytes_reread": sum(a.bytes_reread for a in self.arms),
            "faults_fired": self.schedule.faults_fired,
            "fault_counts": counts,
        }


def inject_faults(
    cluster,
    schedule: FaultSchedule,
    policy: RetryPolicy | None = None,
    *,
    recovery_directory: str | None = None,
) -> FaultInjection:
    """Arm every fault surface of ``cluster`` under ``schedule``.

    ``recovery_directory`` (the supervisor's checkpoint root) enables
    the SSD quarantine path; without it an exhausted SSD read raises
    :class:`~repro.faults.errors.PayloadLostError` directly.
    """
    injection = FaultInjection(
        schedule,
        policy if policy is not None else RetryPolicy(),
        recovery_directory=recovery_directory,
    )
    return injection.attach(cluster)


def clear_faults(cluster) -> None:
    """Disarm a cluster wholesale (inverse of :func:`inject_faults`).

    Safe on a cluster that was never armed — provided its stages are
    not wrapped by someone else's instrumentation.
    """
    if getattr(cluster, "_fault_arm", None) is None and not any(
        node.ssd_ps.store.faults is not None for node in cluster.nodes
    ):
        return
    cluster.unwrap_stages()
    for node in cluster.nodes:
        node.ssd_ps.store.faults = None
        node.ssd_ps.store.device.faults = None
        node.hdfs.faults = None
        node.hbm_ps.faults = None
    cluster._fault_arm = None
