"""The typed fault hierarchy every injected failure signals through.

Fault signaling never uses bare ``Exception``/``RuntimeError`` (the
``typed-faults`` lint rule enforces this for the whole package): a
handler that catches :class:`FaultError` catches exactly the injected
failures and nothing else, and the ``scope`` attribute tells the
supervisor how much state the escape may have corrupted:

``"round"``
    the current round's inputs are suspect but no durable tier state
    was mutated — safe to retry the round from its read stage;
``"node"``
    one node's durable state is suspect (e.g. an SSD payload lost
    beyond the retry budget) — a partial ``restore_node`` from a
    current snapshot heals it;
``"global"``
    cross-node state may have diverged mid-mutation — only a full
    restore + replay from the newest checkpoint is safe.

This module is dependency-free so every layer (``ssd``, ``data``,
``hbm``, ``core``) can raise typed faults without import cycles.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "FaultError",
    "FaultExhaustedError",
    "PayloadLostError",
    "UnrecoverableFaultError",
]


class FaultError(Exception):
    """Base class of every injected-fault signal.

    Carries where the fault fired (``surface``, ``kind``, ``node``), how
    far it escaped (``stage`` — stamped by the stage wrapper when the
    error crosses a stage boundary), and the recovery ``scope`` the
    supervisor classifies on.
    """

    def __init__(
        self,
        message: str,
        *,
        surface: str | None = None,
        kind: str | None = None,
        node: int | None = None,
        scope: str = "global",
        stage: str | None = None,
    ) -> None:
        super().__init__(message)
        self.surface = surface
        self.kind = kind
        self.node = node
        self.scope = scope
        self.stage = stage


class FaultExhaustedError(FaultError):
    """A fault point burned through its whole retry budget.

    ``retries`` and ``seconds`` record the work already priced through
    the ledger (wasted attempts + backoff) before the give-up, so the
    handler that catches this can fold them into its incident report.
    """

    def __init__(
        self,
        message: str,
        *,
        retries: int = 0,
        seconds: float = 0.0,
        **kwargs: Any,
    ) -> None:
        super().__init__(message, **kwargs)
        self.retries = retries
        self.seconds = seconds


class PayloadLostError(FaultError, FileNotFoundError):
    """A parameter file's payload is unrecoverable on this node.

    Raised when an SSD read exhausts its retries and the quarantine
    path cannot re-materialize the file from the checkpoint chain, and
    by :meth:`~repro.ssd.file_store.FileStore.erase` when asked to drop
    a file whose payload is already gone.  Subclasses
    ``FileNotFoundError`` so pre-existing handlers of the old bare
    raise keep working; carries the file id and the affected live keys
    so the quarantine path (and tests) can catch it precisely.
    """

    def __init__(
        self,
        message: str,
        *,
        file_id: int,
        keys: np.ndarray | None = None,
        **kwargs: Any,
    ) -> None:
        kwargs.setdefault("scope", "node")
        kwargs.setdefault("surface", "ssd")
        super().__init__(message, **kwargs)
        self.file_id = int(file_id)
        self.keys = (
            np.asarray([], dtype=np.int64) if keys is None else np.asarray(keys)
        )


class UnrecoverableFaultError(FaultError):
    """The supervisor's recovery budget is spent — give up loudly."""
