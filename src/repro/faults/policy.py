"""Retry/backoff policy and the per-surface fault arm.

Every fault point consults a :class:`FaultArm` — the binding of a
:class:`~repro.faults.schedule.FaultSchedule`, a :class:`RetryPolicy`,
and a node's :class:`~repro.hardware.ledger.CostLedger` to one I/O
surface.  The arm prices everything a fault costs in *simulated*
seconds on the ledger:

``fault_retry``
    wasted failed attempts, exponential backoff (jittered from the
    schedule's seeded stream), write stalls, and quarantine re-reads;
``fault_straggler``
    the extra stage seconds a straggling node adds (kept separate so
    retry-overhead gates aren't polluted by slowdown noise).

An arm never sleeps and never consults the wall clock.  When a fault's
depth reaches the policy's attempt budget, the arm prices the wasted
work and raises :class:`~repro.faults.errors.FaultExhaustedError` with
the surface's recovery scope — degradation beyond that point (SSD
quarantine, supervisor restores) is the caller's job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from repro.faults.errors import FaultExhaustedError, PayloadLostError
from repro.faults.schedule import FaultSchedule
from repro.hardware.ledger import CostLedger

__all__ = ["FaultArm", "FaultIncident", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How hard each fault point tries before giving up.

    Backoff after failed attempt ``k`` (1-based) is
    ``min(cap, base * multiplier**(k-1)) * (1 + jitter * u)`` with ``u``
    drawn from the schedule's seeded stream — exponential growth, a
    ceiling, and deterministic jitter, all in sim-seconds.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.002
    backoff_multiplier: float = 2.0
    backoff_cap_s: float = 0.25
    jitter: float = 0.5
    #: how many times the supervisor will re-run one round on
    #: round-scoped faults before escalating to a full restore.
    max_round_retries: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff seconds must be non-negative")

    def backoff_seconds(self, attempt: int, u: float) -> float:
        base = min(
            self.backoff_cap_s,
            self.backoff_base_s * self.backoff_multiplier ** (attempt - 1),
        )
        return base * (1.0 + self.jitter * u)


@dataclass(frozen=True)
class FaultIncident:
    """One fault the arms absorbed (or escalated) — the raw record the
    supervisor drains and round-stamps into
    :class:`~repro.faults.supervisor.FaultReport` entries."""

    surface: str
    kind: str
    node: int | None
    action: str  # "retried" | "stall" | "straggler" | "quarantine"
    stage: str | None = None
    retries: int = 0
    seconds: float = 0.0
    bytes_reread: int = 0


class FaultArm:
    """One surface's guard: draw → retry/backoff → degrade or raise.

    ``recovery`` (optional) is the quarantine source for exhausted SSD
    reads: a callable ``(file_id, expected_keys) -> (values, nbytes,
    seconds) | None`` that re-materializes an immutable parameter file's
    payload from the newest checkpoint chain.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        policy: RetryPolicy,
        ledger: CostLedger,
        *,
        surface: str,
        node: int | None = None,
        incidents: list[FaultIncident] | None = None,
        recovery: Callable[[int, np.ndarray], tuple | None] | None = None,
    ) -> None:
        self.schedule = schedule
        self.policy = policy
        self.ledger = ledger
        self.surface = surface
        self.node = node
        self.incidents = incidents
        self.recovery = recovery
        self.retries = 0
        self.retry_seconds = 0.0
        self.straggler_seconds = 0.0
        self.bytes_reread = 0
        self.fault_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    def _charge(self, seconds: float) -> float:
        self.retry_seconds += seconds
        return self.ledger.add("fault_retry", seconds)

    def _record(
        self,
        kind: str,
        action: str,
        *,
        stage: str | None = None,
        retries: int = 0,
        seconds: float = 0.0,
        bytes_reread: int = 0,
    ) -> None:
        self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1
        if self.incidents is not None:
            self.incidents.append(
                FaultIncident(
                    surface=self.surface,
                    kind=kind,
                    node=self.node,
                    action=action,
                    stage=stage,
                    retries=retries,
                    seconds=seconds,
                    bytes_reread=bytes_reread,
                )
            )

    # ------------------------------------------------------------------
    def guard(
        self, attempt_costs: Mapping[str, float], *, scope: str = "global"
    ) -> float:
        """Consult the schedule for each armed kind; absorb or raise.

        ``attempt_costs`` maps each kind guarding this operation to the
        sim-seconds one *failed* attempt wastes (e.g. a timed-out HDFS
        transfer wastes the full transfer time; a fail-fast read error
        wastes only backoff).  Returns the extra seconds absorbed, all
        charged to ``fault_retry``.  A depth at or beyond the policy's
        attempt budget prices the wasted attempts and raises
        :class:`FaultExhaustedError` with ``scope``.
        """
        extra = 0.0
        for kind, waste in attempt_costs.items():
            depth = self.schedule.draw(kind, self.node)
            if depth == 0:
                continue
            exhausted = depth >= self.policy.max_attempts
            failures = self.policy.max_attempts if exhausted else depth
            # One backoff after every failed attempt that is re-tried:
            # the final (exhausting) failure is not followed by a wait.
            backoffs = failures - 1 if exhausted else failures
            seconds = failures * waste
            for attempt in range(1, backoffs + 1):
                seconds += self.policy.backoff_seconds(
                    attempt, self.schedule.uniform(kind, self.node)
                )
            self._charge(seconds)
            retries = backoffs
            self.retries += retries
            extra += seconds
            if exhausted:
                self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1
                raise FaultExhaustedError(
                    f"{self.surface}: fault {kind!r} on node {self.node} "
                    f"persisted through {failures} attempts",
                    surface=self.surface,
                    kind=kind,
                    node=self.node,
                    scope=scope,
                    retries=retries,
                    seconds=extra,
                )
            self._record(kind, "retried", retries=retries, seconds=seconds)
        return extra

    def stall(self, kind: str, base_seconds: float) -> float:
        """A slow-but-successful operation (e.g. an SSD write stall).

        Never raises: the stall simply costs extra sim-seconds,
        proportional to the stalled operation and the drawn depth.
        """
        depth = self.schedule.draw(kind, self.node)
        if depth == 0:
            return 0.0
        u = self.schedule.uniform(kind, self.node)
        extra = max(base_seconds * depth, self.policy.backoff_base_s) * (1.0 + u)
        self._charge(extra)
        self._record(kind, "stall", seconds=extra)
        return extra

    def straggle(self, stage: str, stage_seconds: float) -> float:
        """Per-node stage slowdown; returns the extra seconds added.

        Charged to ``fault_straggler`` (not ``fault_retry``): a slow
        node is degradation, not retry work, and the bench gates the two
        separately.
        """
        mult = self.schedule.straggler(self.node)
        if mult <= 1.0 or stage_seconds <= 0.0:
            return 0.0
        extra = stage_seconds * (mult - 1.0)
        self.straggler_seconds += extra
        self.ledger.add("fault_straggler", extra)
        self._record("straggler", "straggler", stage=stage, seconds=extra)
        return extra

    # ------------------------------------------------------------------
    def ssd_read(self, store: Any, f: Any) -> float:
        """Guard one cold parameter-file read; quarantine on exhaustion.

        Parameter files are immutable, so a file that predates the
        newest checkpoint has its exact payload in the checkpoint
        chain's SSD exports: an exhausted read re-materializes it from
        there (priced as a ``fault_retry`` HDFS transfer, counted in
        ``bytes_reread``) instead of crashing.  Only a file *newer* than
        every durable copy is truly lost — that raises
        :class:`PayloadLostError` and the supervisor heals the node by
        partial restore.
        """
        per_attempt = store.device.read_time(store.file_bytes(f))
        costs = {"ssd_read_error": per_attempt, "ssd_torn_payload": per_attempt}
        try:
            return self.guard(costs, scope="node")
        except FaultExhaustedError as exc:
            recovered = (
                None if self.recovery is None else self.recovery(f.file_id, f.keys)
            )
            if recovered is None:
                raise PayloadLostError(
                    f"parameter file {f.file_id} unreadable after "
                    f"{exc.retries} retries and no checkpointed copy exists",
                    file_id=f.file_id,
                    keys=f.keys,
                    kind=exc.kind,
                    node=self.node,
                ) from exc
            values, nbytes, seconds = recovered
            values = np.asarray(values, dtype=np.float32)
            expected = store._payload(f)
            if not np.array_equal(values, expected):
                raise PayloadLostError(
                    f"checkpointed copy of parameter file {f.file_id} does "
                    "not match the immutable payload — refusing to "
                    "re-materialize",
                    file_id=f.file_id,
                    keys=f.keys,
                    kind=exc.kind,
                    node=self.node,
                ) from exc
            store._store_payload(f, values)
            self._charge(seconds)
            self.bytes_reread += int(nbytes)
            self._record(
                exc.kind or "ssd_read_error",
                "quarantine",
                retries=exc.retries,
                seconds=exc.seconds + seconds,
                bytes_reread=int(nbytes),
            )
            return exc.seconds + seconds
