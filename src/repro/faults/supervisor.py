"""Self-healing training supervisor.

:class:`Supervisor` drives a cluster through ``n_rounds`` of training
under a seeded :class:`~repro.faults.schedule.FaultSchedule`, absorbing
whatever escapes the retry layer.  It keeps a periodic checkpoint
cadence, classifies every escaped
:class:`~repro.faults.errors.FaultError` by its recovery scope, and
applies the cheapest safe action:

``retry_round``
    a round-scoped fault (HDFS exhaustion) detected in lockstep mode
    before any durable mutation: discard the round's in-flight
    residency (:meth:`~repro.core.cluster.HPSCluster.abort_round`) and
    re-run the same round — batches are pure functions of the global
    index, so the retry reads identical data;
``partial_restore``
    a node-scoped fault (lost SSD payload, boundary node crash) while
    the survivors sit exactly at the newest checkpoint's round: rebuild
    the one node via
    :meth:`~repro.core.cluster.HPSCluster.restore_node`, zero replay;
``full_restore``
    everything else (global scope, pipelined escapes, node faults away
    from a checkpoint boundary): rebuild the whole cluster from the
    newest checkpoint and replay the lost rounds.

The invariant the soak suite enforces: any schedule whose faults are
all recoverable yields **bit-identical** final parameters to the
fault-free run.  The classification above preserves it by construction
— read/prefetch/prepare mutate only residency (never values), partial
restore rebuilds a node from the round boundary the survivors are at,
and a full restore replays rounds that are pure functions of
``(seed, round_index)``.

Time accounting is all simulated: ``training_seconds`` is productive
round time, ``replay_seconds`` re-trained rounds after a full restore,
``restore_seconds`` checkpoint read-back — the latter two are downtime.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.ckpt.format import checkpoint_dir_name
from repro.faults.errors import FaultError, UnrecoverableFaultError
from repro.faults.inject import FaultInjection
from repro.faults.policy import FaultIncident, RetryPolicy
from repro.faults.schedule import FaultSchedule

__all__ = ["FaultReport", "SupervisedRun", "Supervisor"]


@dataclass(frozen=True)
class FaultReport:
    """One incident the supervisor witnessed, round-stamped.

    ``downtime_seconds`` is the simulated time the incident cost: retry
    backoff + wasted attempts for absorbed faults, restore + replay time
    for escalated ones.
    """

    round: int
    surface: str
    kind: str
    node: int | None
    #: "retried" | "stall" | "straggler" | "quarantine" (absorbed by the
    #: arms) or "retry_round" | "partial_restore" | "full_restore"
    #: (supervisor escalations)
    action: str
    stage: str | None = None
    retries: int = 0
    downtime_seconds: float = 0.0
    replay_rounds: int = 0
    bytes_reread: int = 0


@dataclass
class SupervisedRun:
    """Outcome of one :meth:`Supervisor.run`."""

    #: the cluster that finished the run (a *different* object from the
    #: one passed in whenever a full restore happened)
    cluster: object
    reports: tuple[FaultReport, ...]
    stats: list = field(default_factory=list)
    rounds: int = 0
    training_seconds: float = 0.0
    replay_seconds: float = 0.0
    restore_seconds: float = 0.0
    checkpoint_seconds: float = 0.0
    recoveries: int = 0
    totals: dict = field(default_factory=dict)

    @property
    def downtime_seconds(self) -> float:
        """Simulated seconds lost to recovery (restores + replay)."""
        return self.restore_seconds + self.replay_seconds

    @property
    def mttr_seconds(self) -> float:
        """Mean time to repair: downtime per escalated recovery."""
        return self.downtime_seconds / max(1, self.recoveries)

    @property
    def downtime_fraction(self) -> float:
        """Downtime over total simulated run time."""
        denom = self.training_seconds + self.downtime_seconds
        return self.downtime_seconds / denom if denom else 0.0


class Supervisor:
    """Checkpoint-cadenced, fault-classifying training driver.

    ``directory`` is the checkpoint root: ``round_<NNNNNN>`` snapshot
    chains accumulate there (an immediate baseline snapshot makes every
    subsequent fault recoverable), and the injection layer uses the same
    root for SSD quarantine re-materialization.
    """

    def __init__(
        self,
        directory: str,
        *,
        checkpoint_every: int = 2,
        policy: RetryPolicy | None = None,
        queue_capacity: int | tuple[int, ...] = 2,
        restore_kwargs: dict | None = None,
        max_recoveries: int = 32,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if max_recoveries < 1:
            raise ValueError("max_recoveries must be >= 1")
        self.directory = directory
        self.checkpoint_every = checkpoint_every
        self.policy = policy if policy is not None else RetryPolicy()
        self.queue_capacity = queue_capacity
        self.restore_kwargs = dict(restore_kwargs) if restore_kwargs else {}
        self.max_recoveries = max_recoveries

    # ------------------------------------------------------------------
    def _checkpoint(self, cluster, checkpoints: dict[int, str]) -> float:
        rc = cluster.rounds_completed
        if rc in checkpoints:
            return 0.0
        target = os.path.join(self.directory, checkpoint_dir_name(rc))
        stats = cluster.save_checkpoint(target, mode="auto")
        checkpoints[rc] = target
        return stats.seconds

    @staticmethod
    def _stamp(
        incidents: list[FaultIncident], round_index: int
    ) -> list[FaultReport]:
        return [
            FaultReport(
                round=round_index,
                surface=i.surface,
                kind=i.kind,
                node=i.node,
                action=i.action,
                stage=i.stage,
                retries=i.retries,
                downtime_seconds=i.seconds,
                bytes_reread=i.bytes_reread,
            )
            for i in incidents
        ]

    # ------------------------------------------------------------------
    def run(
        self,
        cluster,
        n_rounds: int,
        schedule: FaultSchedule,
        *,
        pipelined: bool = False,
    ) -> SupervisedRun:
        """Train ``n_rounds`` under ``schedule``, healing as needed.

        Returns the :class:`SupervisedRun`; raises
        :class:`~repro.faults.errors.UnrecoverableFaultError` only when
        the recovery budget is exceeded (a fault storm the configured
        ``max_recoveries`` cannot absorb).
        """
        if n_rounds < 0:
            raise ValueError("n_rounds must be non-negative")
        os.makedirs(self.directory, exist_ok=True)
        injection = FaultInjection(
            schedule, self.policy, recovery_directory=self.directory
        )
        injection.attach(cluster)
        out = SupervisedRun(cluster=cluster, reports=())
        reports: list[FaultReport] = []
        checkpoints: dict[int, str] = {}
        base = cluster.rounds_completed
        target = base + n_rounds
        #: rounds below this mark were already trained once — re-running
        #: them after a full restore is replay (downtime), not progress.
        replaying_until = base
        round_retries = 0
        try:
            out.checkpoint_seconds += self._checkpoint(cluster, checkpoints)
            while cluster.rounds_completed < target:
                rc = cluster.rounds_completed
                crashed = [
                    node.node_id
                    for node in cluster.nodes
                    if schedule.draw("node_crash", node.node_id) > 0
                ]
                if crashed:
                    cluster, replaying_until = self._recover_crash(
                        cluster,
                        injection,
                        checkpoints,
                        crashed,
                        out,
                        reports,
                        replaying_until,
                    )
                    continue
                try:
                    if pipelined:
                        chunk = min(self.checkpoint_every, target - rc)
                        run = cluster.train_pipelined(
                            chunk, queue_capacity=self.queue_capacity
                        )
                        out.stats.extend(run.stats)
                        n_replayed = max(0, min(replaying_until, rc + chunk) - rc)
                        frac = n_replayed / chunk
                        out.replay_seconds += run.makespan * frac
                        out.training_seconds += run.makespan * (1.0 - frac)
                    else:
                        stats = cluster.train_round()
                        out.stats.append(stats)
                        seconds = sum(stats.pipeline_stage_seconds)
                        if rc < replaying_until:
                            out.replay_seconds += seconds
                        else:
                            out.training_seconds += seconds
                    round_retries = 0
                except FaultError as err:
                    reports.extend(self._stamp(injection.drain_incidents(), rc))
                    cluster, replaying_until, round_retries = self._recover(
                        cluster,
                        injection,
                        checkpoints,
                        err,
                        pipelined,
                        out,
                        reports,
                        replaying_until,
                        round_retries,
                    )
                    continue
                reports.extend(
                    self._stamp(
                        injection.drain_incidents(), cluster.rounds_completed
                    )
                )
                if (cluster.rounds_completed - base) % self.checkpoint_every == 0:
                    out.checkpoint_seconds += self._checkpoint(
                        cluster, checkpoints
                    )
        finally:
            injection.detach()
            out.cluster = cluster
            out.reports = tuple(reports)
            out.rounds = cluster.rounds_completed - base
            out.totals = injection.totals()
        return out

    # ------------------------------------------------------------------
    def _spend_recovery(self, out: SupervisedRun, err: Exception | None) -> None:
        out.recoveries += 1
        if out.recoveries > self.max_recoveries:
            raise UnrecoverableFaultError(
                f"recovery budget exhausted after {self.max_recoveries} "
                "escalations — the schedule's fault storm is not "
                "survivable at this cadence",
                surface="supervisor",
            ) from err

    def _newest(self, checkpoints: dict[int, str]) -> tuple[int, str]:
        rc = max(checkpoints)
        return rc, checkpoints[rc]

    def _full_restore(
        self,
        cluster,
        injection: FaultInjection,
        checkpoints: dict[int, str],
    ) -> tuple[object, float, int]:
        """Rebuild from the newest checkpoint; returns
        ``(new_cluster, restore_seconds, replay_rounds)``."""
        detect = cluster.rounds_completed
        ck_round, ck_dir = self._newest(checkpoints)
        injection.detach()
        restored = type(cluster).restore(ck_dir, **self.restore_kwargs)
        injection.attach(restored)
        # Restore cost: the checkpoint read-back is already charged to
        # the new cluster's ledgers under ckpt_read; mirror the critical
        # path into the run's downtime accounting.
        seconds = max(
            (node.ledger.total("ckpt_read") for node in restored.nodes),
            default=0.0,
        )
        return restored, seconds, max(0, detect - ck_round)

    def _recover_crash(
        self,
        cluster,
        injection: FaultInjection,
        checkpoints: dict[int, str],
        crashed: list[int],
        out: SupervisedRun,
        reports: list[FaultReport],
        replaying_until: int,
    ):
        """Boundary node-crash probe fired: heal before training resumes."""
        self._spend_recovery(out, None)
        rc = cluster.rounds_completed
        ck_round, ck_dir = self._newest(checkpoints)
        if len(crashed) == 1 and ck_round == rc:
            stats = cluster.restore_node(ck_dir, crashed[0])
            out.restore_seconds += stats.seconds
            reports.append(
                FaultReport(
                    round=rc,
                    surface="node",
                    kind="node_crash",
                    node=crashed[0],
                    action="partial_restore",
                    downtime_seconds=stats.seconds,
                )
            )
            return cluster, replaying_until
        cluster, seconds, replay = self._full_restore(
            cluster, injection, checkpoints
        )
        out.restore_seconds += seconds
        replaying_until = max(replaying_until, rc)
        reports.append(
            FaultReport(
                round=rc,
                surface="node",
                kind="node_crash",
                node=crashed[0] if len(crashed) == 1 else None,
                action="full_restore",
                downtime_seconds=seconds,
                replay_rounds=replay,
            )
        )
        return cluster, replaying_until

    def _recover(
        self,
        cluster,
        injection: FaultInjection,
        checkpoints: dict[int, str],
        err: FaultError,
        pipelined: bool,
        out: SupervisedRun,
        reports: list[FaultReport],
        replaying_until: int,
        round_retries: int,
    ):
        """Classify an escaped fault and apply the cheapest safe action."""
        self._spend_recovery(out, err)
        detect = cluster.rounds_completed
        ck_round, _ = self._newest(checkpoints)
        retries = getattr(err, "retries", 0)

        if (
            err.scope == "round"
            and not pipelined
            and cluster._staged_rounds == 0
            and round_retries < self.policy.max_round_retries
        ):
            # Round inputs are suspect but nothing durable moved: the
            # round's residency is discarded and the identical round
            # re-runs (batches are pure functions of the global index).
            cluster.abort_round()
            reports.append(
                FaultReport(
                    round=detect,
                    surface=err.surface or "unknown",
                    kind=err.kind or "unknown",
                    node=err.node,
                    action="retry_round",
                    stage=err.stage,
                    retries=retries,
                )
            )
            return cluster, replaying_until, round_retries + 1

        if (
            err.scope == "node"
            and err.node is not None
            and not pipelined
            and cluster._staged_rounds == 0
            and err.stage in ("read", "prefetch", "prepare")
            and ck_round == detect
        ):
            # One node's durable state is suspect, the survivors sit
            # exactly at the newest snapshot's round boundary, and no
            # values were staged: heal just that node, zero replay.
            ck_dir = checkpoints[ck_round]
            cluster.abort_round()
            stats = cluster.restore_node(ck_dir, err.node)
            out.restore_seconds += stats.seconds
            reports.append(
                FaultReport(
                    round=detect,
                    surface=err.surface or "unknown",
                    kind=err.kind or "unknown",
                    node=err.node,
                    action="partial_restore",
                    stage=err.stage,
                    retries=retries,
                    downtime_seconds=stats.seconds,
                )
            )
            return cluster, replaying_until, 0

        cluster, seconds, replay = self._full_restore(
            cluster, injection, checkpoints
        )
        out.restore_seconds += seconds
        replaying_until = max(replaying_until, detect)
        reports.append(
            FaultReport(
                round=detect,
                surface=err.surface or "unknown",
                kind=err.kind or "unknown",
                node=err.node,
                action="full_restore",
                stage=err.stage,
                retries=retries,
                downtime_seconds=seconds,
                replay_rounds=replay,
            )
        )
        return cluster, replaying_until, 0
