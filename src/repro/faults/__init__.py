"""Deterministic fault injection, retry policy, and self-healing supervision.

The paper's deployment claim is that the three-tier PS keeps training
(and serving) through machine failures by replaying from the newest
materialized snapshot.  This package turns that claim into a testable
surface:

* :mod:`repro.faults.errors` — the typed :class:`FaultError` hierarchy
  every injected fault signals through (enforced by the ``typed-faults``
  lint rule);
* :mod:`repro.faults.schedule` — :class:`FaultSchedule`, a seeded,
  sim-time-driven fault matrix (no wall clock): per-(kind, node) RNG
  streams drawn once per armed operation, so two schedules built from
  the same seed inject bit-identical fault sequences;
* :mod:`repro.faults.policy` — :class:`RetryPolicy` (max attempts,
  exponential backoff with seeded jitter, priced through the
  :class:`~repro.hardware.ledger.CostLedger` as ``fault_retry``) and
  :class:`FaultArm`, the per-surface guard each I/O layer consults;
* :mod:`repro.faults.inject` — threads arms through every I/O surface
  of a live cluster (`FileStore`/`SSDDevice`, `HDFSStream`,
  `DistributedHashTable`, allreduce, per-node stage stragglers) and the
  checkpoint-chain quarantine recovery for exhausted SSD reads;
* :mod:`repro.faults.supervisor` — :class:`Supervisor`, which drives
  ``train_round``/``train_pipelined``, classifies escaped faults
  (transient → retry the round, single-node-fatal → ``restore_node``
  partial restore, global-fatal → full restore + replay) and records a
  :class:`FaultReport` per incident.

Invariant (enforced by ``tests/faults/test_soak.py``): any seeded fault
schedule whose faults are all recoverable yields **bit-identical final
parameters** to the fault-free run, lockstep and pipelined.
"""

from repro.faults.errors import (
    FaultError,
    FaultExhaustedError,
    PayloadLostError,
    UnrecoverableFaultError,
)
from repro.faults.inject import (
    CheckpointRecovery,
    FaultInjection,
    clear_faults,
    inject_faults,
)
from repro.faults.policy import FaultArm, FaultIncident, RetryPolicy
from repro.faults.schedule import FAULT_KINDS, FaultSchedule
from repro.faults.supervisor import FaultReport, SupervisedRun, Supervisor

__all__ = [
    "FAULT_KINDS",
    "CheckpointRecovery",
    "FaultArm",
    "FaultError",
    "FaultExhaustedError",
    "FaultIncident",
    "FaultInjection",
    "FaultReport",
    "FaultSchedule",
    "PayloadLostError",
    "RetryPolicy",
    "SupervisedRun",
    "Supervisor",
    "UnrecoverableFaultError",
    "clear_faults",
    "inject_faults",
]
