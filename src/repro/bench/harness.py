"""Experiment harness: one entry point per paper table/figure.

Each ``run_*`` function regenerates the corresponding artifact and returns
structured rows; the ``benchmarks/`` suite wraps them with pytest-benchmark
and asserts the paper's qualitative shape (who wins, crossovers, trends).

Two kinds of experiments:

* **paper-scale (analytical)** — Table 4, Figures 3(a,c), 4(a,b), 5(b):
  the Table 3 models priced through :class:`~repro.bench.analytical.AnalyticalHPS`
  and :class:`~repro.baselines.mpi_ps.MPITimingModel`;
* **functional (end-to-end)** — Figures 3(b), 4(c), 5(a), Tables 1–2:
  scaled-down workloads actually trained through the full
  :class:`~repro.core.cluster.HPSCluster` / hashing stack.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

import numpy as np

from repro.baselines.mpi_ps import MPITimingModel
from repro.bench.analytical import AnalyticalHPS
from repro.config import PAPER_MODELS, ClusterConfig, ModelSpec
from repro.core.cluster import HPSCluster
from repro.core.trainer import ReferenceTrainer
from repro.data.generator import CTRDataGenerator
from repro.hashing.dnn import SimpleDNN
from repro.hashing.lr import SparseLogisticRegression
from repro.hashing.op_osrp import OPOSRPHasher
from repro.utils.io import atomic_write_bytes

__all__ = [
    "run_table4_speedups",
    "run_fig3a_throughput",
    "run_fig3c_stage_times",
    "run_fig4a_hbm_times",
    "run_fig4b_mem_times",
    "run_fig4c_cache_hit",
    "run_fig5a_ssd_io",
    "run_fig5b_scalability",
    "run_fig3b_auc",
    "run_op_osrp_study",
    "run_pipeline_overlap",
    "run_checkpoint_overhead",
    "run_e2e_throughput",
    "BENCH_E2E_SCHEMA",
    "FAULTS_WORKLOAD",
    "PRESSURE_WORKLOAD",
    "RECOVERY_WORKLOAD",
    "small_cluster_config",
]

#: Schema tag written into ``BENCH_e2e.json`` (bump on layout changes).
#: v2: per-scenario layout — the perf-smoke regression gate compares
#: rounds/s per (scenario, mode), not just the aggregate default run.
#: v3: the pressure scenario grows the plan-driven prefetch modes
#: (lockstep-prefetch-oracle / lockstep-prefetch / pipelined-prefetch);
#: their ``stage_seconds`` carry the spliced-in ``prefetch`` stage.
#: v4: new ``recovery`` scenario with ``snapshot-overhead`` and
#: ``recovery-downtime`` rows (simulated-seconds based, so the committed
#: values are deterministic); its rows intentionally do not carry the
#: wall-clock throughput fields of the other scenarios.
#: v5: new ``faults`` scenario — a supervised run under a seeded mixed
#: fault schedule per execution mode, reporting MTTR, downtime fraction,
#: retry overhead, and bytes re-read.  Like the recovery rows these are
#: simulated-seconds based (deterministic, no wall-clock fields).
#: v6: throughput rows gain the depth-k observability counters
#: (``prefetch_depth_backoffs`` / ``extent_cache_resizes``); the
#: pressure scenario adds the ``pipelined-prefetch-k2`` depth-2
#: lookahead row (its own sim-clock group, excluded from the depth-1
#: prefetch parity flag) plus ``speedup_prefetch_k2_over_k1``; the
#: ``snapshot-overhead`` row splits snapshot cost into serialize vs
#: HDFS-transfer components with the flow-shop overlap saving.
BENCH_E2E_SCHEMA = "bench-e2e/v6"

#: The memory-pressure e2e workload: cache capacity far below the hot key
#: set, an LFU-heavy split so LFU→LRU promotion storms form an eviction
#: frontier every round, and an LRU tier sized just above the pinned
#: working set.  Under the pre-refactor plan-or-replay cache this
#: workload degraded nearly every prepare to the per-key replay; the
#: admission engine keeps it bulk-exact (``scalar_fallbacks == 0``).
PRESSURE_WORKLOAD = {
    "n_sparse": 25_000,
    "zipf_exponent": 1.15,
    "mem_capacity_params": 9_000,
    "cache_lru_fraction": 0.32,
    "batch_size": 768,
    "minibatches_per_gpu": 1,
    "warmup_rounds": 6,
}

#: The recovery e2e workload: a key space far above the MEM cache with
#: mild skew, warmed long enough that the accumulated SSD/MEM state
#: dwarfs one round's write set — the regime the delta-snapshot claim
#: (steady-state delta bytes ≥10× below a full snapshot) is measured
#: in.  The failure-injection half reuses the same model cold (recovery
#: cost is about the protocol, not the warmed store).
RECOVERY_WORKLOAD = {
    "n_sparse": 500_000,
    "zipf_exponent": 1.02,
    "batch_size": 256,
    "warmup_rounds": 150,
    "fi_rounds": 8,
    "checkpoint_every": 2,
    "kill_node": 1,
    "full_kill_after_round": 4,
    "partial_kill_after_round": 5,
}

#: The fault e2e workload: the pressured recipe from the fault soak
#: suite — a MEM budget low enough that real state spills to SSD within
#: the run (so the quarantine path is reachable) — under per-operation
#: fault rates calibrated so the shared ``max_faults`` budget spreads
#: across every surface (high-frequency draw sites get low rates).
FAULTS_WORKLOAD = {
    "n_sparse": 5_000,
    "mem_capacity_params": 1_400,
    "batch_size": 512,
    "n_rounds": 10,
    "checkpoint_every": 2,
    "schedule_seed": 7777,
    "max_faults": 64,
    "rates": {
        "ssd_read_error": 0.6,
        "ssd_torn_payload": 0.4,
        "ssd_write_stall": 0.5,
        "hdfs_timeout": 0.08,
        "hdfs_read_failure": 0.08,
        "comm_allreduce": 0.04,
        "hbm_dispatch": 0.01,
        "straggler": 0.08,
        "node_crash": 0.02,
    },
}

#: BatchStats fields that intentionally differ between the bulk engine
#: and its per-key oracles (pure observability counters).
_ADMISSION_COUNTER_FIELDS = frozenset(
    {
        "cache_admission_runs",
        "cache_collision_splits",
        "cache_scalar_fallbacks",
    }
)


# ----------------------------------------------------------------------
# Paper-scale (analytical) experiments
# ----------------------------------------------------------------------

def run_table4_speedups(models: dict[str, ModelSpec] | None = None) -> list[dict]:
    """Table 4: speedup and cost-normalized speedup over the MPI cluster."""
    models = models or PAPER_MODELS
    rows = []
    for name, spec in models.items():
        hps = AnalyticalHPS(spec)
        mpi = MPITimingModel(spec)
        speedup = hps.throughput() / mpi.throughput()
        # Paper formula: speedup / 4 GPU nodes / 10 (cost of one GPU node
        # in CPU-node units) * #MPI nodes.
        cost_norm = speedup / 4.0 / 10.0 * spec.mpi_nodes
        rows.append(
            {
                "model": name,
                "hps_throughput": hps.throughput(),
                "mpi_throughput": mpi.throughput(),
                "mpi_nodes": spec.mpi_nodes,
                "speedup": speedup,
                "cost_normalized_speedup": cost_norm,
            }
        )
    return rows


def run_fig3a_throughput(models: dict[str, ModelSpec] | None = None) -> list[dict]:
    """Fig. 3(a): examples/sec, MPI-cluster vs HPS-4, per model."""
    models = models or PAPER_MODELS
    return [
        {
            "model": name,
            "size_gb": spec.size_gb,
            "mpi_cluster": MPITimingModel(spec).throughput(),
            "hps_4": AnalyticalHPS(spec).throughput(),
        }
        for name, spec in models.items()
    ]


def run_fig3c_stage_times(models: dict[str, ModelSpec] | None = None) -> list[dict]:
    """Fig. 3(c): per-batch time of the three pipeline stages, per model."""
    models = models or PAPER_MODELS
    rows = []
    for name, spec in models.items():
        t = AnalyticalHPS(spec).batch_time()
        rows.append(
            {
                "model": name,
                "read_examples": t.read_seconds,
                "pull_push": t.pull_push_seconds,
                "train_dnn": t.train_seconds,
            }
        )
    return rows


def run_fig4a_hbm_times(models: dict[str, ModelSpec] | None = None) -> list[dict]:
    """Fig. 4(a): HBM-PS time split (pull / training / push), per model."""
    models = models or PAPER_MODELS
    rows = []
    for name, spec in models.items():
        t = AnalyticalHPS(spec).batch_time()
        rows.append(
            {
                "model": name,
                "pull_hbm_ps": t.hbm_pull_seconds,
                "training": t.gpu_train_seconds + t.allreduce_seconds,
                "push_hbm_ps": t.hbm_push_seconds,
            }
        )
    return rows


def run_fig4b_mem_times(
    model: str = "E", node_counts: tuple[int, ...] = (1, 2, 4)
) -> list[dict]:
    """Fig. 4(b): MEM-PS local vs remote pull time over node counts."""
    spec = PAPER_MODELS[model]
    rows = []
    for n in node_counts:
        t = AnalyticalHPS(spec, n_nodes=n).batch_time()
        rows.append(
            {
                "n_nodes": n,
                "pull_local": t.pull_local_seconds + t.dump_seconds,
                "pull_remote": t.pull_remote_seconds if n > 1 else float("nan"),
            }
        )
    return rows


def run_fig5b_scalability(
    model: str = "E", node_counts: tuple[int, ...] = (1, 2, 3, 4)
) -> list[dict]:
    """Fig. 5(b): training throughput vs nodes, real vs ideal."""
    spec = PAPER_MODELS[model]
    base = AnalyticalHPS(spec, n_nodes=node_counts[0]).throughput()
    rows = []
    for n in node_counts:
        thr = AnalyticalHPS(spec, n_nodes=n).throughput()
        rows.append(
            {
                "n_nodes": n,
                "real": thr,
                "ideal": base * n / node_counts[0],
                "speedup": thr / base,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Functional (end-to-end scaled-down) experiments
# ----------------------------------------------------------------------

def functional_model(
    *, n_sparse: int = 60_000, nonzeros: int = 8, n_slots: int = 4
) -> ModelSpec:
    """The scaled-down model used by the functional figure experiments.

    The key space is sized well above the MEM-PS cache so the SSD layer
    actually works (model E's defining property, scaled down)."""
    return ModelSpec(
        name="functional-E",
        nonzeros_per_example=nonzeros,
        n_sparse=n_sparse,
        n_dense=1_000,
        size_gb=0.01,
        mpi_nodes=10,
        embedding_dim=4,
        hidden_layers=(16, 8),
        n_slots=n_slots,
    )


def small_cluster_config(
    *,
    n_nodes: int = 2,
    gpus_per_node: int = 2,
    minibatches_per_gpu: int = 2,
    mem_capacity_params: int = 4_000,
    seed: int = 0,
    **overrides,
) -> ClusterConfig:
    """A laptop-scale deployment used by the functional experiments."""
    return ClusterConfig(
        n_nodes=n_nodes,
        gpus_per_node=gpus_per_node,
        minibatches_per_gpu=minibatches_per_gpu,
        mem_capacity_params=mem_capacity_params,
        hbm_capacity_params=overrides.pop("hbm_capacity_params", 100_000),
        ssd_file_capacity=overrides.pop("ssd_file_capacity", 256),
        seed=seed,
        **overrides,
    )


def run_fig4c_cache_hit(
    spec: ModelSpec | None = None,
    *,
    n_batches: int = 60,
    batch_size: int = 512,
    cache_capacity: int = 3_000,
    seed: int = 0,
) -> list[dict]:
    """Fig. 4(c): MEM-PS cache hit rate per batch, from a cold start."""
    spec = spec or functional_model()
    cfg = small_cluster_config(
        n_nodes=1,
        gpus_per_node=2,
        mem_capacity_params=cache_capacity,
        cache_lru_fraction=0.6,
        seed=seed,
    )
    cluster = HPSCluster(spec, cfg, functional_batch_size=batch_size)
    rows = []
    for i in range(n_batches):
        stats = cluster.train_round()
        rows.append({"batch": i, "hit_rate": stats.cache_hit_rate})
    return rows


def run_fig5a_ssd_io(
    spec: ModelSpec | None = None,
    *,
    n_batches: int = 70,
    batch_size: int = 512,
    cache_capacity: int = 2_600,
    compaction_threshold: float = 1.4,
    seed: int = 0,
) -> list[dict]:
    """Fig. 5(a): per-batch SSD I/O time; compaction kicks in mid-run.

    ``cache_capacity`` must exceed the per-batch working set divided by
    the LRU fraction — in-flight parameters are pinned in the LRU tier
    and cannot be evicted (paper Section 5).
    """
    spec = spec or functional_model()
    cfg = small_cluster_config(
        n_nodes=1,
        gpus_per_node=2,
        mem_capacity_params=cache_capacity,
        cache_lru_fraction=0.6,
        compaction_threshold=compaction_threshold,
        seed=seed,
    )
    cluster = HPSCluster(spec, cfg, functional_batch_size=batch_size)
    rows = []
    for i in range(n_batches):
        stats = cluster.train_round()
        rows.append(
            {
                "batch": i,
                "ssd_io_seconds": stats.ssd_io_seconds,
                "compactions": stats.compactions,
            }
        )
    return rows


def run_fig3b_auc(
    spec: ModelSpec,
    *,
    n_rounds: int = 6,
    batch_size: int = 1024,
    eval_size: int = 4096,
    seed: int = 0,
) -> dict:
    """Fig. 3(b): relative AUC of HPS vs the single-store reference.

    The paper reports relative AUC within ±0.1% of the MPI solution on
    production A/B tests; here both trainers see identical data so the
    check is exact up to float reduction order.
    """
    cfg = small_cluster_config(seed=seed)
    cluster = HPSCluster(spec, cfg, functional_batch_size=batch_size)
    reference = ReferenceTrainer(spec, cfg, functional_batch_size=batch_size)
    for _ in range(n_rounds):
        cluster.train_round()
        reference.train_round()
    eval_batch = cluster.generator.batch(10_000, eval_size)
    auc_hps = cluster.evaluate_auc(eval_batch)
    auc_ref = reference.evaluate_auc(eval_batch)
    return {
        "auc_hps": auc_hps,
        "auc_reference": auc_ref,
        "relative_auc": auc_hps / auc_ref,
    }


def run_pipeline_overlap(
    spec: ModelSpec | None = None,
    *,
    n_batches: int = 6,
    batch_size: int = 256,
    queue_capacity: int | tuple[int, ...] = 2,
    seed: int = 0,
) -> dict:
    """Lockstep vs pipelined end-to-end training (paper Section 3).

    Trains two identical clusters on identical data — one lockstep, one
    through the :class:`~repro.core.engine.PipelinedEngine` — and reports
    both makespans plus a parameter-parity check.  The pipeline performs
    the same work in the same order, so ``parameter_parity`` must be
    ``True`` (bit-identical sparse and dense parameters) while
    ``pipelined_makespan`` drops below ``lockstep_makespan`` by the
    overlap the bottleneck stage cannot absorb.
    """
    spec = spec or functional_model()

    def build() -> HPSCluster:
        return HPSCluster(
            spec,
            small_cluster_config(seed=seed),
            functional_batch_size=batch_size,
        )

    lockstep = build()
    lock_stats = lockstep.train(n_batches)
    lock_makespan = sum(sum(s.pipeline_stage_seconds) for s in lock_stats)

    pipelined = build()
    run = pipelined.train_pipelined(n_batches, queue_capacity=queue_capacity)

    probe = lockstep.generator.batch(10_000, 2048).unique_keys()
    sparse_equal = bool(
        np.array_equal(
            lockstep.lookup_embeddings(probe), pipelined.lookup_embeddings(probe)
        )
    )
    dense_equal = all(
        np.array_equal(a, b)
        for a, b in zip(
            lockstep.nodes[0].model.dense_state(),
            pipelined.nodes[0].model.dense_state(),
        )
    )
    schedule = run.schedule
    return {
        "n_batches": n_batches,
        "lockstep_makespan": lock_makespan,
        "pipelined_makespan": run.makespan,
        "speedup": lock_makespan / run.makespan if run.makespan else 1.0,
        "steady_state_interval": schedule.steady_state_interval,
        "bottleneck_stage": schedule.stage_names[schedule.bottleneck_stage()],
        "lockstep_throughput": (
            sum(s.n_examples for s in lock_stats) / lock_makespan
            if lock_makespan
            else 0.0
        ),
        "pipelined_throughput": run.throughput(),
        "parameter_parity": sparse_equal and dense_equal,
    }


def run_checkpoint_overhead(
    spec: ModelSpec | None = None,
    *,
    n_rounds: int = 8,
    checkpoint_every: int = 3,
    batch_size: int = 256,
    kill_node: int = 1,
    kill_after_round: int = 4,
    seed: int = 0,
    directory: str | None = None,
) -> dict:
    """Checkpoint overhead and failure-recovery cost (paper Section 7).

    Trains one cluster straight through as the no-failure baseline, then
    an identical cluster under the :class:`~repro.ckpt.FailureInjector`
    (snapshot every ``checkpoint_every`` rounds, node ``kill_node``
    killed after round ``kill_after_round``).  Reports the snapshot
    overhead relative to training time, the recovery breakdown (restore
    + replay), and a bit-exact parity check of the recovered cluster
    against the run that never failed.
    """
    import tempfile

    from repro.ckpt import FailureInjector

    spec = spec or functional_model()
    cfg = small_cluster_config(seed=seed)

    def build() -> HPSCluster:
        return HPSCluster(spec, cfg, functional_batch_size=batch_size)

    baseline = build()
    base_stats = baseline.train(n_rounds)
    train_seconds = sum(sum(s.pipeline_stage_seconds) for s in base_stats)

    with tempfile.TemporaryDirectory() as tmp:
        injector = FailureInjector(
            directory or tmp, checkpoint_every=checkpoint_every
        )
        recovered, report = injector.run(
            build(),
            n_rounds,
            kill_node=kill_node,
            kill_after_round=kill_after_round,
        )

    probe = baseline.generator.batch(10_000, 2048).unique_keys()
    sparse_equal = bool(
        np.array_equal(
            baseline.lookup_embeddings(probe), recovered.lookup_embeddings(probe)
        )
    )
    dense_equal = all(
        np.array_equal(a, b)
        for a, b in zip(
            baseline.nodes[0].model.dense_state(),
            recovered.nodes[0].model.dense_state(),
        )
    )
    return {
        "n_rounds": n_rounds,
        "checkpoint_every": checkpoint_every,
        "train_seconds": train_seconds,
        "n_checkpoints": len(report.checkpoints),
        "checkpoint_seconds": report.checkpoint_seconds,
        "checkpoint_serialize_seconds": float(
            sum(c.serialize_seconds for c in report.checkpoints)
        ),
        "checkpoint_transfer_seconds": float(
            sum(c.transfer_seconds for c in report.checkpoints)
        ),
        "checkpoint_bytes": report.checkpoint_nbytes,
        "checkpoint_overhead": (
            report.checkpoint_seconds / train_seconds if train_seconds else 0.0
        ),
        "kill_node": report.kill_node,
        "kill_after_round": report.kill_after_round,
        "checkpoint_round": report.checkpoint_round,
        "rounds_replayed": report.rounds_replayed,
        "restore_seconds": report.restore_seconds,
        "replay_seconds": report.replay_seconds,
        "recovery_seconds": report.recovery_seconds,
        "parameter_parity": sparse_equal and dense_equal,
    }


def _instrument_stages(cluster: HPSCluster) -> dict[str, float]:
    """Wrap the cluster's stage functions with wall-clock accumulators.

    Rewraps the stage registry in place (``HPSCluster.wrap_stages``), so
    every stage :meth:`~repro.core.cluster.HPSCluster.stage_functions`
    returns — the Algorithm 1 four plus any spliced-in optional stage
    such as prefetch — reports into the returned dict under both
    execution modes.
    """
    wall = {name: 0.0 for name, _ in cluster.stage_functions()}

    def timed(name, fn):
        def wrapper(ctx):
            t0 = time.perf_counter()
            out = fn(ctx)
            wall[name] += time.perf_counter() - t0
            return out

        return wrapper

    cluster.wrap_stages(timed)
    return wall


def _throughput_row(
    stats, elapsed: float, wall: dict, n_rounds: int
) -> dict:
    n_keys = int(sum(s.n_working_params for s in stats))
    n_ex = int(sum(s.n_examples for s in stats))
    return {
        "wall_seconds": elapsed,
        "rounds_per_s": n_rounds / elapsed if elapsed else 0.0,
        "keys_per_s": n_keys / elapsed if elapsed else 0.0,
        "examples_per_s": n_ex / elapsed if elapsed else 0.0,
        "stage_seconds": dict(wall),
        "scalar_fallbacks": int(sum(s.cache_scalar_fallbacks for s in stats)),
        "collision_splits": int(
            sum(s.cache_collision_splits for s in stats)
        ),
        "admission_runs": int(sum(s.cache_admission_runs for s in stats)),
        "prefetch_depth_backoffs": int(
            sum(s.prefetch_depth_backoffs for s in stats)
        ),
        "extent_cache_resizes": int(
            sum(s.extent_cache_resizes for s in stats)
        ),
    }


def _sim_seconds_trace(stats) -> list[tuple]:
    """Every simulated BatchStats field, minus the admission counters.

    The per-key oracles differ from the bulk engine only in those
    counters; everything the simulation *prices* must be bit-identical.
    """
    import dataclasses

    return [
        tuple(
            v
            for k, v in dataclasses.asdict(s).items()
            if k not in _ADMISSION_COUNTER_FIELDS
        )
        for s in stats
    ]


def _parameter_parity(reference: HPSCluster, others) -> bool:
    probe = reference.generator.batch(10_000, 2048).unique_keys()
    ref_emb = reference.lookup_embeddings(probe)
    sparse_equal = all(
        np.array_equal(ref_emb, c.lookup_embeddings(probe)) for c in others
    )
    dense_ref = reference.nodes[0].model.dense_state()
    dense_equal = all(
        np.array_equal(a, b)
        for c in others
        for a, b in zip(dense_ref, c.nodes[0].model.dense_state())
    )
    return bool(sparse_equal and dense_equal)


def _default_scenario(
    spec: ModelSpec,
    *,
    n_rounds: int,
    batch_size: int,
    queue_capacity,
    seed: int,
) -> dict:
    """The original planned-vs-unplanned throughput comparison."""
    cfg = small_cluster_config(seed=seed)

    def build(use_plan: bool) -> HPSCluster:
        return HPSCluster(
            spec, cfg, functional_batch_size=batch_size, use_plan=use_plan
        )

    def measure(cluster: HPSCluster, pipelined: bool) -> dict:
        wall = _instrument_stages(cluster)
        t0 = time.perf_counter()
        if pipelined:
            stats = cluster.train_pipelined(
                n_rounds, queue_capacity=queue_capacity
            ).stats
        else:
            stats = cluster.train(n_rounds)
        elapsed = time.perf_counter() - t0
        return _throughput_row(stats, elapsed, wall, n_rounds)

    unplanned, planned, pipelined = build(False), build(True), build(True)
    row_unplanned = measure(unplanned, False)
    row_planned = measure(planned, False)
    row_pipelined = measure(pipelined, True)
    return {
        "name": "default",
        "workload": {
            "model": spec.name,
            "n_rounds": n_rounds,
            "batch_size": batch_size,
            "n_nodes": cfg.n_nodes,
            "gpus_per_node": cfg.gpus_per_node,
            "minibatches_per_gpu": cfg.minibatches_per_gpu,
            "seed": seed,
        },
        "rows": [
            {"mode": "lockstep-unplanned", **row_unplanned},
            {"mode": "lockstep-planned", **row_planned},
            {"mode": "pipelined-planned", **row_pipelined},
        ],
        "speedup_planned_over_unplanned": (
            row_planned["rounds_per_s"] / row_unplanned["rounds_per_s"]
            if row_unplanned["rounds_per_s"]
            else 0.0
        ),
        "parameter_parity": _parameter_parity(
            unplanned, (planned, pipelined)
        ),
    }


def _pressure_scenario(
    *,
    n_rounds: int,
    queue_capacity,
    seed: int,
) -> dict:
    """Memory-pressure e2e: the admission engine vs the per-key oracles.

    Cache capacity sits far below the working set (``PRESSURE_WORKLOAD``)
    so every steady-state round drives promotion/eviction collisions.
    Eight modes train on identical data from an identically warmed cache:
    the full per-key replay (``force_scalar=True``, the seed parity
    oracle), the pre-refactor plan-or-replay policy (``"legacy"``, the
    pressure baseline the admission refactor is measured against), the
    bulk admission engine in lockstep and pipelined execution, the
    plan-driven prefetch pipeline (its own scalar-cache oracle plus
    lockstep and pipelined bulk runs), and the depth-2 lookahead
    pipeline (``prefetch_depth=2``, pipelined).  Parameters must be
    bit-identical across all eight; simulated seconds form parity groups
    — the non-prefetch four, the depth-1 prefetch three (prefetch
    resolves the round's MEM working set in one pass, so its simulated
    clock is a distinct but internally lockstep-exact mode), and the
    depth-2 row as its own group (the window-delta resolve re-times the
    prepare stage; the depth-sweep tests pin its lockstep/pipelined
    agreement).  Every bulk mode must report zero scalar fallbacks.
    """
    wl = PRESSURE_WORKLOAD
    spec = functional_model(n_sparse=wl["n_sparse"])
    cfg = small_cluster_config(
        seed=seed,
        mem_capacity_params=wl["mem_capacity_params"],
        cache_lru_fraction=wl["cache_lru_fraction"],
        minibatches_per_gpu=wl["minibatches_per_gpu"],
    )
    warmup = wl["warmup_rounds"]

    def measure(config, force_scalar, pipelined: bool):
        cluster = HPSCluster(
            spec,
            config,
            functional_batch_size=wl["batch_size"],
            zipf_exponent=wl["zipf_exponent"],
        )
        for node in cluster.nodes:
            node.mem_ps.cache.force_scalar = force_scalar
        cluster.train(warmup)  # identical warm cache in every mode
        wall = _instrument_stages(cluster)
        t0 = time.perf_counter()
        if pipelined:
            stats = cluster.train_pipelined(
                n_rounds, queue_capacity=queue_capacity
            ).stats
        else:
            stats = cluster.train(n_rounds)
        elapsed = time.perf_counter() - t0
        return cluster, stats, _throughput_row(stats, elapsed, wall, n_rounds)

    oracle, oracle_stats, row_oracle = measure(cfg, True, False)
    legacy, legacy_stats, row_legacy = measure(cfg, "legacy", False)
    planned, planned_stats, row_planned = measure(cfg, False, False)
    pipelined, pipelined_stats, row_pipelined = measure(cfg, False, True)

    cfg_pf = dataclasses.replace(cfg, prefetch=True)
    pf_oracle, pf_oracle_stats, row_pf_oracle = measure(cfg_pf, True, False)
    pf_lock, pf_lock_stats, row_pf_lock = measure(cfg_pf, False, False)
    pf_piped, pf_piped_stats, row_pf_piped = measure(cfg_pf, False, True)

    cfg_k2 = dataclasses.replace(cfg_pf, prefetch_depth=2)
    k2, k2_stats, row_k2 = measure(cfg_k2, False, True)

    oracle_trace = _sim_seconds_trace(oracle_stats)
    seconds_parity = all(
        _sim_seconds_trace(s) == oracle_trace
        for s in (legacy_stats, planned_stats, pipelined_stats)
    )
    pf_oracle_trace = _sim_seconds_trace(pf_oracle_stats)
    prefetch_seconds_parity = all(
        _sim_seconds_trace(s) == pf_oracle_trace
        for s in (pf_lock_stats, pf_piped_stats)
    )
    return {
        "name": "pressure",
        "workload": {
            "model": spec.name,
            "n_rounds": n_rounds,
            "n_nodes": cfg.n_nodes,
            "gpus_per_node": cfg.gpus_per_node,
            "seed": seed,
            **wl,
        },
        "rows": [
            {"mode": "lockstep-scalar-oracle", **row_oracle},
            {"mode": "lockstep-legacy", **row_legacy},
            {"mode": "lockstep-planned", **row_planned},
            {"mode": "pipelined-planned", **row_pipelined},
            {"mode": "lockstep-prefetch-oracle", **row_pf_oracle},
            {"mode": "lockstep-prefetch", **row_pf_lock},
            {"mode": "pipelined-prefetch", **row_pf_piped},
            {"mode": "pipelined-prefetch-k2", **row_k2},
        ],
        "speedup_bulk_over_legacy": (
            row_planned["rounds_per_s"] / row_legacy["rounds_per_s"]
            if row_legacy["rounds_per_s"]
            else 0.0
        ),
        "speedup_bulk_over_scalar": (
            row_planned["rounds_per_s"] / row_oracle["rounds_per_s"]
            if row_oracle["rounds_per_s"]
            else 0.0
        ),
        "speedup_prefetch_over_bulk": (
            row_pf_piped["rounds_per_s"] / row_planned["rounds_per_s"]
            if row_planned["rounds_per_s"]
            else 0.0
        ),
        "speedup_prefetch_k2_over_k1": (
            row_k2["rounds_per_s"] / row_pf_piped["rounds_per_s"]
            if row_pf_piped["rounds_per_s"]
            else 0.0
        ),
        "bulk_scalar_fallbacks": (
            row_planned["scalar_fallbacks"]
            + row_pipelined["scalar_fallbacks"]
            + row_pf_lock["scalar_fallbacks"]
            + row_pf_piped["scalar_fallbacks"]
            + row_k2["scalar_fallbacks"]
        ),
        "parameter_parity": _parameter_parity(
            oracle,
            (legacy, planned, pipelined, pf_oracle, pf_lock, pf_piped, k2),
        ),
        "seconds_parity": bool(seconds_parity),
        "prefetch_seconds_parity": bool(prefetch_seconds_parity),
    }


def _recovery_scenario(*, n_rounds: int, queue_capacity, seed: int) -> dict:
    """Continuous delta checkpointing and failure recovery (Section 7).

    Two measurements, both on the simulated clock (deterministic — the
    committed rows double as acceptance gates):

    * **snapshot-overhead** — a cluster warmed until its accumulated
      MEM/SSD state dwarfs one round's write set runs ``n_rounds``
      pipelined with the ``snapshot`` stage registered (delta mode,
      every round).  Reports full vs steady-state delta snapshot bytes
      (``bytes_ratio_full_over_delta`` is the tentpole claim: ≥10×) and
      the pipelined makespan against an identical snapshot-free run —
      the snapshot stage materializes in the pipeline shadow of the
      next round's read/prepare, so the overhead is what the bottleneck
      stage cannot absorb.  Parameters must be bit-identical to the
      snapshot-free run.
    * **recovery-downtime** — the :class:`~repro.ckpt.FailureInjector`
      under delta snapshots, full mode (restore everything + replay)
      vs partial mode (splice in one replacement node, replay nothing);
      both recoveries must be bit-identical to a run that never failed.
    """
    import tempfile

    from repro.ckpt import FailureInjector

    wl = RECOVERY_WORKLOAD
    spec = functional_model(n_sparse=wl["n_sparse"])
    cfg = small_cluster_config(seed=seed)

    def build() -> HPSCluster:
        return HPSCluster(
            spec,
            cfg,
            functional_batch_size=wl["batch_size"],
            zipf_exponent=wl["zipf_exponent"],
        )

    # --- snapshot overhead -------------------------------------------
    baseline = build()
    baseline.train(wl["warmup_rounds"])
    base_run = baseline.train_pipelined(n_rounds, queue_capacity=queue_capacity)

    snapped = build()
    snapped.train(wl["warmup_rounds"])
    with tempfile.TemporaryDirectory() as tmp:
        stage = snapped.enable_snapshot_stage(tmp, every=1)
        snap_run = snapped.train_pipelined(
            n_rounds, queue_capacity=queue_capacity
        )
        deltas = [s for s in stage.history if s.kind == "delta"]
        # Ratio numerator: a full snapshot of the *final* state, so it
        # reflects the same accumulated MEM/SSD footprint the deltas
        # diffed against (the chain's opening full is slightly younger).
        full_bytes = snapped.save_checkpoint(
            os.path.join(tmp, "full-final"), mode="full"
        ).nbytes
    delta_mean = (
        sum(d.nbytes for d in deltas) / len(deltas) if deltas else 0.0
    )
    overhead_row = {
        "mode": "snapshot-overhead",
        "n_snapshots": len(stage.history),
        "full_bytes": int(full_bytes),
        "delta_bytes_mean": float(delta_mean),
        "bytes_ratio_full_over_delta": (
            full_bytes / delta_mean if delta_mean else 0.0
        ),
        "snapshot_sim_seconds": float(
            sum(s.seconds for s in stage.history)
        ),
        # Serialize/transfer split: the flow-shop overlap (serialize
        # shard n+1 while shipping shard n) is what keeps continuous
        # delta snapshots off the serial cost chain.
        "snapshot_serialize_seconds": float(
            sum(s.serialize_seconds for s in stage.history)
        ),
        "snapshot_transfer_seconds": float(
            sum(s.transfer_seconds for s in stage.history)
        ),
        "snapshot_overlap_saving_seconds": float(
            sum(
                s.serialize_seconds + s.transfer_seconds - s.seconds
                for s in stage.history
            )
        ),
        "baseline_makespan": float(base_run.makespan),
        "snapshot_makespan": float(snap_run.makespan),
        "makespan_overhead": (
            snap_run.makespan / base_run.makespan - 1.0
            if base_run.makespan
            else 0.0
        ),
    }

    # --- recovery downtime -------------------------------------------
    fi_rounds = wl["fi_rounds"]
    straight = build()
    straight.train(fi_rounds)
    with tempfile.TemporaryDirectory() as tmp:
        injector = FailureInjector(
            tmp,
            checkpoint_every=wl["checkpoint_every"],
            snapshot_mode="delta",
        )
        full_rec, full_report = injector.run(
            build(),
            fi_rounds,
            kill_node=wl["kill_node"],
            kill_after_round=wl["full_kill_after_round"],
        )
    with tempfile.TemporaryDirectory() as tmp:
        injector = FailureInjector(
            tmp,
            checkpoint_every=wl["checkpoint_every"],
            snapshot_mode="delta",
        )
        partial_rec, partial_report = injector.run(
            build(),
            fi_rounds,
            kill_node=wl["kill_node"],
            kill_after_round=wl["partial_kill_after_round"],
            partial=True,
        )
    downtime_row = {
        "mode": "recovery-downtime",
        "full_restore_seconds": float(full_report.restore_seconds),
        "full_replay_seconds": float(full_report.replay_seconds),
        "full_recovery_seconds": float(full_report.recovery_seconds),
        "full_rounds_replayed": int(full_report.rounds_replayed),
        "partial_restore_seconds": float(partial_report.restore_seconds),
        "partial_recovery_seconds": float(partial_report.recovery_seconds),
        "partial_rounds_replayed": int(partial_report.rounds_replayed),
        "recovery_speedup_partial_over_full": (
            full_report.recovery_seconds / partial_report.recovery_seconds
            if partial_report.recovery_seconds
            else 0.0
        ),
    }
    return {
        "name": "recovery",
        "workload": {
            "model": spec.name,
            "n_rounds": n_rounds,
            "n_nodes": cfg.n_nodes,
            "gpus_per_node": cfg.gpus_per_node,
            "seed": seed,
            **wl,
        },
        "rows": [overhead_row, downtime_row],
        "bytes_ratio_full_over_delta": overhead_row[
            "bytes_ratio_full_over_delta"
        ],
        "snapshot_parameter_parity": _parameter_parity(baseline, (snapped,)),
        "recovery_parameter_parity": _parameter_parity(
            straight, (full_rec, partial_rec)
        ),
    }


def _faults_scenario(*, seed: int) -> dict:
    """Supervised training under a seeded mixed fault schedule.

    One row per execution mode (lockstep, pipelined), each a supervised
    run of :data:`FAULTS_WORKLOAD` under a :meth:`FaultSchedule
    <repro.faults.FaultSchedule>` mixing every fault surface.  Reported
    numbers — MTTR, downtime fraction, retry overhead, straggler drag,
    bytes re-read — all come off the simulated clock and the
    ``fault_retry``/``fault_straggler`` ledger lines, so the committed
    rows are deterministic and double as regression gates.  The rows
    deliberately carry no wall-clock fields: the perf-smoke comparison
    skips them just as it skips the recovery rows.

    ``parameter_parity`` is the tentpole invariant in artifact form:
    every fault in the schedule is recoverable, so both healed runs must
    be bit-identical to their fault-free twins.
    """
    import tempfile

    from repro.faults import FaultSchedule, Supervisor
    from repro.utils.rng import derive_seed

    wl = FAULTS_WORKLOAD
    spec = functional_model(n_sparse=wl["n_sparse"])
    cfg = small_cluster_config(
        mem_capacity_params=wl["mem_capacity_params"],
        ssd_file_capacity=128,
        seed=seed,
    )

    def build() -> HPSCluster:
        return HPSCluster(
            spec, cfg, functional_batch_size=wl["batch_size"]
        )

    rows = []
    parity = True
    kinds_fired: set[str] = set()
    for mode, pipelined in (
        ("faults-lockstep", False),
        ("faults-pipelined", True),
    ):
        twin = build()
        if pipelined:
            twin.train_pipelined(wl["n_rounds"])
        else:
            twin.train(wl["n_rounds"])
        schedule = FaultSchedule(
            derive_seed(wl["schedule_seed"], "bench", mode),
            rates=wl["rates"],
            max_faults=wl["max_faults"],
        )
        with tempfile.TemporaryDirectory() as tmp:
            run = Supervisor(
                tmp, checkpoint_every=wl["checkpoint_every"]
            ).run(build(), wl["n_rounds"], schedule, pipelined=pipelined)
        totals = run.totals
        kinds_fired |= set(totals["fault_counts"])
        kinds_fired |= {r.kind for r in run.reports}
        rows.append(
            {
                "mode": mode,
                "faults_fired": int(totals["faults_fired"]),
                "retries": int(totals["retries"]),
                "recoveries": int(run.recoveries),
                "reports": len(run.reports),
                "training_sim_seconds": float(run.training_seconds),
                "restore_sim_seconds": float(run.restore_seconds),
                "replay_sim_seconds": float(run.replay_seconds),
                "downtime_sim_seconds": float(run.downtime_seconds),
                "mttr_seconds": float(run.mttr_seconds),
                "downtime_fraction": float(run.downtime_fraction),
                "retry_overhead_seconds": float(
                    sum(
                        n.ledger.total("fault_retry")
                        for n in run.cluster.nodes
                    )
                ),
                "straggler_seconds": float(
                    sum(
                        n.ledger.total("fault_straggler")
                        for n in run.cluster.nodes
                    )
                ),
                "bytes_reread": int(totals["bytes_reread"]),
            }
        )
        parity = parity and _parameter_parity(twin, (run.cluster,))
    return {
        "name": "faults",
        "workload": {
            "model": spec.name,
            "n_nodes": cfg.n_nodes,
            "gpus_per_node": cfg.gpus_per_node,
            "seed": seed,
            **wl,
        },
        "rows": rows,
        "parameter_parity": parity,
        "fault_kinds_fired": sorted(kinds_fired),
    }


def run_e2e_throughput(
    spec: ModelSpec | None = None,
    *,
    n_rounds: int = 20,
    batch_size: int = 256,
    queue_capacity: int | tuple[int, ...] = 2,
    seed: int = 0,
    write_path: str | None = None,
) -> dict:
    """End-to-end wall-clock throughput ledger (``BENCH_e2e.json``).

    Two scenarios, each training identical data across execution modes
    and measuring *real* wall-clock rounds/s, keys/s, examples/s, and
    per-stage seconds:

    * **default** — the BatchPlan claim: lockstep on the pre-plan path
      (``use_plan=False``, the parity oracle), lockstep planned, and
      pipelined planned; ``speedup_planned_over_unplanned`` is the perf
      claim every future PR is measured against.
    * **pressure** — the admission-engine and prefetch claims: cache
      capacity far below the working set (``PRESSURE_WORKLOAD``),
      comparing the bulk admission engine against the per-key replay
      oracle and the pre-refactor plan-or-replay baseline, plus the
      plan-driven prefetch pipeline against its own scalar-cache
      oracle; ``speedup_bulk_over_legacy`` and
      ``speedup_prefetch_over_bulk`` are the pressure-regime perf
      claims, and ``bulk_scalar_fallbacks`` must read zero.
    * **recovery** — the delta-snapshot claims (``RECOVERY_WORKLOAD``):
      ``snapshot-overhead`` pits a pipelined run with the registered
      ``snapshot`` stage against a snapshot-free twin and reports the
      full-vs-delta checkpoint bytes ratio (≥10× is the tentpole
      claim); ``recovery-downtime`` compares full-cluster restore +
      replay against single-node partial restore under the failure
      injector.  Both are simulated-seconds/bytes based and therefore
      deterministic; the rows carry no wall-clock throughput fields.
    * **faults** — the fault-tolerance claims (``FAULTS_WORKLOAD``): a
      supervised run per execution mode under a seeded schedule mixing
      every fault surface, reporting MTTR, downtime fraction, retry
      overhead, straggler drag, and bytes re-read off the simulated
      clock — deterministic, wall-clock-free rows, with
      ``parameter_parity`` asserting the healed runs are bit-identical
      to their fault-free twins.

    Trained parameters must be bit-identical across every mode of a
    scenario (and simulated seconds within each pressure parity
    group).  With
    ``write_path``, the result is serialized as JSON (the committed
    ``BENCH_e2e.json`` at the repo root is this file).
    """
    spec = spec or functional_model()
    result = {
        "schema": BENCH_E2E_SCHEMA,
        "scenarios": [
            _default_scenario(
                spec,
                n_rounds=n_rounds,
                batch_size=batch_size,
                queue_capacity=queue_capacity,
                seed=seed,
            ),
            _pressure_scenario(
                n_rounds=n_rounds, queue_capacity=queue_capacity, seed=seed
            ),
            _recovery_scenario(
                n_rounds=n_rounds, queue_capacity=queue_capacity, seed=seed
            ),
            _faults_scenario(seed=seed),
        ],
    }
    if write_path is not None:
        payload = json.dumps(result, indent=2, sort_keys=True) + "\n"
        atomic_write_bytes(write_path, payload.encode())
    return result


# ----------------------------------------------------------------------
# Section 2: OP+OSRP hashing study (Tables 1 and 2)
# ----------------------------------------------------------------------

def run_op_osrp_study(
    *,
    n_features: int = 2**18,
    n_slots: int = 8,
    nonzeros: int = 32,
    n_train_batches: int = 30,
    batch_size: int = 1024,
    eval_size: int = 8192,
    k_values: tuple[int, ...] = (2**16, 2**14, 2**12, 2**10),
    epochs: int = 2,
    seed: int = 0,
) -> list[dict]:
    """Tables 1–2: LR vs DNN vs Hash+DNN over a ``k`` sweep.

    Returns one row per method with the model-size proxy and test AUC;
    the paper's shape is: DNN > Hash+DNN(k large) > … > Hash+DNN(k small),
    with LR near the bottom of the Hash+DNN range.
    """
    spec = ModelSpec(
        name="hash-study",
        nonzeros_per_example=nonzeros,
        n_sparse=n_features,
        n_dense=1_000,
        size_gb=0.01,
        mpi_nodes=1,
        embedding_dim=8,
        hidden_layers=(32, 16),
        n_slots=n_slots,
    )
    gen = CTRDataGenerator(spec, seed=seed)
    train = [gen.batch(i, batch_size) for i in range(n_train_batches)]
    test = gen.batch(10_000, eval_size)

    rows: list[dict] = []

    lr = SparseLogisticRegression(n_features, lr=0.3)
    lr.fit(train, epochs=epochs)
    rows.append(
        {
            "method": "Baseline LR",
            "k": None,
            "n_weights": lr.n_nonzero_weights,
            "auc": lr.evaluate_auc(test),
        }
    )

    # The raw DNN keeps the slot structure of the inputs; hashing destroys
    # it (bins mix slots), which is part of why Hash+DNN loses accuracy.
    dnn = SimpleDNN(n_slots=n_slots, seed=seed)
    dnn.fit(train, epochs=epochs)
    rows.append(
        {
            "method": "Baseline DNN",
            "k": None,
            "n_weights": dnn.n_embedding_params,
            "auc": dnn.evaluate_auc(test),
        }
    )

    for k in sorted(k_values, reverse=True):
        hasher = OPOSRPHasher(n_features, k, seed=seed)
        h_train = hasher.transform_many(train)
        h_test = hasher.transform(test)
        model = SimpleDNN(n_slots=1, seed=seed)
        model.fit(h_train, epochs=epochs)
        rows.append(
            {
                "method": f"Hash+DNN (k=2^{int(np.log2(k))})",
                "k": k,
                "n_weights": model.n_embedding_params,
                "auc": model.evaluate_auc(h_test),
            }
        )
    return rows
