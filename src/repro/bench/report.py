"""Plain-text table/series formatting for benchmark output.

Benchmarks print the same rows/series the paper reports; these helpers
keep that output aligned and diff-able (EXPERIMENTS.md embeds them).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "ascii_bars", "ascii_gantt"]


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3g}"
        return f"{v:,.2f}" if abs(v) < 100 else f"{v:,.1f}"
    return str(v)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], *, title: str | None = None
) -> str:
    """Monospace table with right-aligned numeric columns."""
    srows = [[_fmt(c) for c in r] for r in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in srows)) if srows else len(h)
        for i, h in enumerate(headers)
    ]
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    out.append("  ".join("-" * w for w in widths))
    for r in srows:
        out.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def format_series(
    x: Sequence, y: Sequence[float], *, x_name: str = "x", y_name: str = "y",
    title: str | None = None,
) -> str:
    """Two-column series (the paper's line plots, as text)."""
    return format_table([x_name, y_name], list(zip(x, y)), title=title)


def ascii_gantt(schedule, *, width: int = 64, title: str | None = None) -> str:
    """Render a :class:`~repro.core.pipeline.PipelineSchedule` as text.

    One row per batch; each stage's span is drawn with the first letter of
    its name along a shared time axis, so inter-batch overlap (stacked
    rows occupying the same columns) is visible at a glance::

        batch 0 |RPPLTTTT        |
        batch 1 | R  PPLTTTT     |
    """
    n = schedule.n_batches
    makespan = schedule.makespan
    out = [title] if title else []
    if n == 0 or makespan <= 0:
        out.append("(empty schedule)")
        return "\n".join(out)
    scale = width / makespan
    letters = [name[0].upper() for name in schedule.stage_names]
    for b in range(n):
        row = [" "] * width
        for s in range(len(schedule.stage_names)):
            lo = int(schedule.start[b, s] * scale)
            hi = int(schedule.finish[b, s] * scale)
            for c in range(lo, max(lo + 1, hi)):
                # A near-zero stage's forced single column may collide
                # with a neighbour; first writer wins so it stays visible.
                if c < width and row[c] == " ":
                    row[c] = letters[s]
        out.append(f"batch {b:>2} |{''.join(row)}|")
    out.append(
        "time 0 .. " + _fmt(float(makespan)) + " s; stages: "
        + ", ".join(
            f"{letter}={name}"
            for letter, name in zip(letters, schedule.stage_names)
        )
    )
    return "\n".join(out)


def ascii_bars(
    labels: Sequence[str], values: Sequence[float], *, width: int = 40,
    title: str | None = None,
) -> str:
    """Horizontal bar chart for quick visual shape checks."""
    vmax = max(values) if values else 1.0
    out = [title] if title else []
    for lab, v in zip(labels, values):
        n = int(round(width * v / vmax)) if vmax else 0
        out.append(f"{lab:>12} | {'#' * n} {_fmt(float(v))}")
    return "\n".join(out)
