"""Plain-text table/series formatting for benchmark output.

Benchmarks print the same rows/series the paper reports; these helpers
keep that output aligned and diff-able (EXPERIMENTS.md embeds them).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "ascii_bars"]


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1e5 or abs(v) < 1e-3:
            return f"{v:.3g}"
        return f"{v:,.2f}" if abs(v) < 100 else f"{v:,.1f}"
    return str(v)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], *, title: str | None = None
) -> str:
    """Monospace table with right-aligned numeric columns."""
    srows = [[_fmt(c) for c in r] for r in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in srows)) if srows else len(h)
        for i, h in enumerate(headers)
    ]
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    out.append("  ".join("-" * w for w in widths))
    for r in srows:
        out.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(out)


def format_series(
    x: Sequence, y: Sequence[float], *, x_name: str = "x", y_name: str = "y",
    title: str | None = None,
) -> str:
    """Two-column series (the paper's line plots, as text)."""
    return format_table([x_name, y_name], list(zip(x, y)), title=title)


def ascii_bars(
    labels: Sequence[str], values: Sequence[float], *, width: int = 40,
    title: str | None = None,
) -> str:
    """Horizontal bar chart for quick visual shape checks."""
    vmax = max(values) if values else 1.0
    out = [title] if title else []
    for lab, v in zip(labels, values):
        n = int(round(width * v / vmax)) if vmax else 0
        out.append(f"{lab:>12} | {'#' * n} {_fmt(float(v))}")
    return "\n".join(out)
