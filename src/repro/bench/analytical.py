"""Paper-scale analytical timing model for the hierarchical PS.

The functional simulator runs scaled-down models end-to-end; this module
prices the *paper-scale* workloads (Table 3: 10^10–10^11 keys, 4M-example
batches) through the same cost structure without materializing them:

* expected working-set sizes come from the Zipf unique-count integral
  (:mod:`repro.utils.stats`) — the same popularity law the generator uses;
* stage times follow the identical accounting as the functional layer
  (HDFS read / MEM+SSD pull-push / HBM+GPU train), so Figures 3(a,c),
  4(a,b) and Table 4 fall out of one model;
* hardware constants are the testbed's (`repro.hardware.specs`), plus a
  small set of *effective-efficiency* calibration constants (documented on
  the class) absorbing what a byte-level simulator cannot see: RPC
  serialization, mixed read/write interference, kernel efficiency.

The reproduction claim is about **shape**: which stage dominates per
model, who wins by roughly what factor, where crossovers fall.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ModelSpec
from repro.hardware.specs import NodeHardware, default_node_hardware
from repro.utils.stats import expected_unique_zipf

__all__ = ["AnalyticalHPS", "HPSBatchTime"]


@dataclass(frozen=True)
class HPSBatchTime:
    """Per-batch stage decomposition (Fig. 3(c) categories)."""

    read_seconds: float
    pull_local_seconds: float
    pull_remote_seconds: float
    dump_seconds: float
    hbm_pull_seconds: float
    hbm_push_seconds: float
    gpu_train_seconds: float
    allreduce_seconds: float

    @property
    def pull_push_seconds(self) -> float:
        """MEM-PS + SSD-PS stage: local and remote pulls run in parallel,
        dumps serialize behind them."""
        return max(self.pull_local_seconds, self.pull_remote_seconds) + (
            self.dump_seconds
        )

    @property
    def train_seconds(self) -> float:
        """HBM-PS stage: per-mini-batch pull + compute + push + sync."""
        return (
            self.hbm_pull_seconds
            + self.hbm_push_seconds
            + self.gpu_train_seconds
            + self.allreduce_seconds
        )

    @property
    def bottleneck_seconds(self) -> float:
        """Pipelined (steady-state) batch latency — the slowest stage."""
        return max(self.read_seconds, self.pull_push_seconds, self.train_seconds)

    @property
    def serial_seconds(self) -> float:
        """Unpipelined latency (the pipeline ablation baseline)."""
        return self.read_seconds + self.pull_push_seconds + self.train_seconds


class AnalyticalHPS:
    """Closed-form batch timing for an ``n_nodes``-node HPS deployment.

    Calibration constants (effective efficiencies)
    ----------------------------------------------
    log_bytes_per_example:
        Raw click-log footprint per example.  Production logs carry the
        full feature text regardless of which model consumes them, which
        is why Fig. 3(c)'s read stage is ~flat across models.
    remote_key_overhead_s:
        Per-key CPU cost on the remote-pull path (hash, serialize, RPC
        framing, deserialize) — dominates small-value transfers.
    ssd_efficiency:
        Fraction of sequential SSD bandwidth achieved under the mixed
        read/write + compaction traffic of a training batch.
    file_amplification:
        Bytes read per useful byte (whole-file I/O unit, Appendix E).
    gpu_efficiency:
        Achieved fraction of nominal GPU FLOPs on small CTR MLPs.
    minibatch_examples:
        Mini-batch size per GPU worker (paper: "thousands of examples").
    """

    log_bytes_per_example = 5700.0
    remote_key_overhead_s = 1.5e-7
    #: Owner-side CPU/SSD cost per key served to a *remote* node's pull —
    #: this is what bends Fig. 5(b) below the ideal line (zero at 1 node).
    serve_key_overhead_s = 2.0e-7
    ssd_efficiency = 0.045
    file_amplification = 4.0
    gpu_efficiency = 0.035
    #: Hash-table probes are random HBM accesses with atomics, achieving a
    #: small fraction of the streaming bandwidth (open addressing touches
    #: scattered cache lines; cuDF maps measure similar ratios).
    hbm_table_efficiency = 0.002
    minibatch_examples = 8192.0
    #: fraction of the 1 TB node memory the MEM-PS cache may use (the rest
    #: holds pinned working sets, buffers, and the 4-stage pipeline queues).
    cache_memory_fraction = 0.3

    def __init__(
        self,
        spec: ModelSpec,
        *,
        n_nodes: int = 4,
        batch_size: int = 4_000_000,
        hardware: NodeHardware | None = None,
        zipf_exponent: float = 1.05,
        cache_hit_rate: float | None = None,
        pipelined: bool = True,
    ) -> None:
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        self.spec = spec
        self.n_nodes = n_nodes
        self.batch_size = batch_size
        self.hw = hardware or default_node_hardware()
        self.zipf_exponent = zipf_exponent
        self._cache_hit_rate = cache_hit_rate
        self.pipelined = pipelined

    # ------------------------------------------------------------------
    @property
    def value_bytes(self) -> float:
        return self.spec.bytes_per_sparse_param

    def working_params_per_node(self) -> float:
        """E[unique keys] in one node's 4M-example batch."""
        draws = self.batch_size * self.spec.nonzeros_per_example
        return expected_unique_zipf(draws, self.spec.n_sparse, self.zipf_exponent)

    def working_params_cluster(self) -> float:
        """E[unique keys] across all nodes' batches in one round."""
        draws = self.n_nodes * self.batch_size * self.spec.nonzeros_per_example
        return expected_unique_zipf(draws, self.spec.n_sparse, self.zipf_exponent)

    def cache_hit_rate(self) -> float:
        """Steady-state MEM-PS working-set hit rate.

        The cache retains roughly the last ``h`` batches' working sets,
        where ``h = cache_params / E[unique per batch]``; a new batch's hit
        rate is the expected overlap of its working set with that history
        window:  ``(U(h·d) + U(d) − U((h+1)·d)) / U(d)``.

        This is what makes the hit rate *fall* with model size (Fig. 4(c)):
        model A (300 GB) fits its hot set in the 1 TB memory (hit ≈ 0.8)
        while model E (10 TB) retains only ~15 batches of history
        (hit ≈ 0.47 — the paper measures 46%).
        """
        if self._cache_hit_rate is not None:
            return self._cache_hit_rate
        spec = self.spec
        d = self.batch_size * spec.nonzeros_per_example
        u1 = expected_unique_zipf(d, spec.n_sparse, self.zipf_exponent)
        cache_params = (
            self.cache_memory_fraction
            * self.hw.cpu.memory_bytes
            / self.value_bytes
        )
        h = max(1.0, cache_params / u1)
        u_h = expected_unique_zipf(h * d, spec.n_sparse, self.zipf_exponent)
        u_h1 = expected_unique_zipf((h + 1) * d, spec.n_sparse, self.zipf_exponent)
        return float(np.clip((u_h + u1 - u_h1) / u1, 0.0, 1.0))

    # ------------------------------------------------------------------
    def batch_time(self) -> HPSBatchTime:
        spec = self.spec
        hw = self.hw
        B = self.batch_size
        n = self.n_nodes

        # --- stage 1: HDFS read --------------------------------------
        read_s = hw.hdfs.latency_s + B * self.log_bytes_per_example / hw.hdfs.bandwidth

        # --- stage 2: MEM-PS / SSD-PS pull + dump --------------------
        u_cluster = self.working_params_cluster()
        u_node = self.working_params_per_node()
        hit = self.cache_hit_rate()
        owned_per_node = u_cluster / n
        ssd_loads = owned_per_node * (1.0 - hit)
        rec_bytes = 8 + self.value_bytes
        ssd_bw = hw.ssd.seq_read_bandwidth * self.ssd_efficiency
        # The SSD serializes loads (amplified whole-file reads) with the
        # dump of evicted updated parameters (written once, compacted once
        # on average at the 50%-stale threshold -> ~1x extra write).
        # Serving peers' pulls costs the owner per-key CPU on top of its
        # own loads; zero in the single-node case.
        served_keys = owned_per_node * (n - 1) / max(n, 1) if n > 1 else 0.0
        pull_local_s = (
            ssd_loads * rec_bytes * self.file_amplification / ssd_bw
            + served_keys * self.serve_key_overhead_s
        )
        dump_s = ssd_loads * rec_bytes / ssd_bw

        remote_keys = u_node * (n - 1) / max(n, 1) if n > 1 else 0.0
        net = hw.network
        pull_remote_s = (
            remote_keys * rec_bytes / net.bandwidth
            + remote_keys * self.remote_key_overhead_s
        )

        # --- stage 3: HBM-PS + GPU training ---------------------------
        gpus = hw.gpus_per_node
        mb = self.minibatch_examples
        n_rounds = max(1.0, B / (gpus * mb))
        mb_draws = mb * spec.nonzeros_per_example
        u_mb = expected_unique_zipf(mb_draws, spec.n_sparse, self.zipf_exponent)
        # Pull: key + embedding row per unique key, (gpus-1)/gpus remote
        # over NVLink; all GPUs pull in parallel -> per-round time is one
        # worker's.
        emb_bytes = 8 + 4.0 * spec.embedding_dim
        pull_round = (
            hw.gpu.kernel_launch_s
            + u_mb * emb_bytes * 2 / (hw.gpu.hbm_bandwidth * self.hbm_table_efficiency)
            + u_mb * (gpus - 1) / gpus * emb_bytes / hw.nvlink.bandwidth
            + (gpus - 1) * hw.nvlink.latency_s
        )
        push_round = pull_round  # symmetric traffic (gradients back)
        # Every dense parameter takes ~6 FLOPs per example (fwd GEMM +
        # two bwd GEMMs); embeddings add gather/scatter work per nonzero.
        flops = 6.0 * spec.n_dense + 6.0 * spec.nonzeros_per_example * (
            spec.embedding_dim
        )
        compute_round = mb * flops / (hw.gpu.flops * self.gpu_efficiency)

        # All-reduce per round: the global mini-batch union's gradients.
        u_sync = expected_unique_zipf(
            n * gpus * mb_draws, spec.n_sparse, self.zipf_exponent
        )
        sync_bytes = u_sync * emb_bytes
        steps = np.ceil(np.log2(n)) if n > 1 else 0
        ar_round = steps * (sync_bytes / net.bandwidth + gpus * net.latency_s)
        ar_round += np.ceil(np.log2(gpus)) * (
            sync_bytes / gpus / hw.nvlink.bandwidth + hw.nvlink.latency_s
        )

        return HPSBatchTime(
            read_seconds=read_s,
            pull_local_seconds=pull_local_s,
            pull_remote_seconds=pull_remote_s,
            dump_seconds=dump_s,
            hbm_pull_seconds=n_rounds * pull_round,
            hbm_push_seconds=n_rounds * push_round,
            gpu_train_seconds=n_rounds * compute_round,
            allreduce_seconds=n_rounds * ar_round,
        )

    # ------------------------------------------------------------------
    def batch_seconds(self) -> float:
        t = self.batch_time()
        return t.bottleneck_seconds if self.pipelined else t.serial_seconds

    def throughput(self) -> float:
        """Cluster examples/second (Fig. 3(a) / Fig. 5(b) y-axis)."""
        return self.n_nodes * self.batch_size / self.batch_seconds()
