"""The MPI-cluster baseline (paper Sections 1.1–1.2, 7.1).

Baidu's pre-2020 production solution: a CPU-only cluster of 75–150 nodes
holding the full model sharded *in memory*; each node streams its own
training batches, pulls referenced parameters from the owning nodes over
Ethernet, computes gradients on the CPU, and pushes them back.

Two layers, matching the rest of the library:

* **Functional** — :class:`MPIClusterBaseline` trains the identical CTR
  model with identical math (it *is* the single-store reference trainer's
  semantics, sharded); the paper's Fig. 3(b) holds by construction.
* **Timing** — :class:`MPITimingModel` prices one batch on an ``M``-node
  CPU cluster: per-node CPU forward/backward, parameter pull/push traffic,
  and the synchronization barrier whose straggler penalty grows with the
  node count.  This is what Table 4 and Fig. 3(a) compare against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ModelSpec
from repro.core.trainer import ReferenceTrainer
from repro.hardware.network import Network
from repro.hardware.specs import CPUSpec, HDFSSpec, NetworkSpec
from repro.utils.stats import expected_unique_zipf

__all__ = ["MPITimingModel", "MPIBatchTime", "MPIClusterBaseline"]


@dataclass(frozen=True)
class MPIBatchTime:
    """Timing decomposition of one *per-node* batch round on the MPI
    cluster (every node processes its own batch, BSP-synchronized)."""

    read_seconds: float
    framework_seconds: float
    compute_seconds: float
    network_seconds: float
    sync_seconds: float

    @property
    def total_seconds(self) -> float:
        """Reads prefetch behind the previous round; compute, the PS
        pull/push path and per-example framework work serialize on the
        CPU (no 4-stage pipeline on the MPI solution)."""
        working = self.framework_seconds + self.compute_seconds + self.network_seconds
        return max(self.read_seconds, working) + self.sync_seconds


class MPITimingModel:
    """Cost model for the in-memory distributed parameter server.

    Every MPI node streams its own batches (data parallel over 75–150
    nodes), pulls its working parameters from the owning nodes, computes
    gradients on the CPU, and pushes them back before the BSP barrier.

    Calibration constants (effective efficiencies)
    ----------------------------------------------
    framework_overhead_s:
        Per-example CPU cost of the CPU training stack (feature parsing,
        example assembly, lock contention, allocator traffic) — dominant
        on small models, measured in production CPU trainers.
    key_overhead_s:
        Per-key (de)serialization + hash-table cost on the pull/push path,
        paid on both requester and owner sides.
    ps_bandwidth:
        Effective per-node parameter-server goodput.  Far below NIC line
        rate: RPC framing, incast congestion and owner-side lookups all
        land on this path.
    cpu_efficiency:
        Achieved fraction of nominal CPU FLOPs on embedding + MLP math.
    round_examples:
        Examples per node per BSP round.
    """

    framework_overhead_s = 700e-6
    key_overhead_s = 2.0e-6
    ps_bandwidth = 8e6
    cpu_efficiency = 0.05
    barrier_s = 0.15
    round_examples = 100_000.0
    #: Owner-side lookups slow down as the per-node shard outgrows the CPU
    #: cache/TLB reach; per-key cost doubles per ``shard_pressure_bytes``
    #: of resident shard (A's 3 GB shard probes fast; E's 78 GB does not).
    shard_pressure_bytes = 30e9

    def __init__(
        self,
        spec: ModelSpec,
        n_mpi_nodes: int | None = None,
        *,
        batch_size: int = 4_000_000,
        cpu: CPUSpec | None = None,
        network: NetworkSpec | None = None,
        hdfs: HDFSSpec | None = None,
        zipf_exponent: float = 1.05,
    ) -> None:
        if n_mpi_nodes is not None and n_mpi_nodes <= 0:
            raise ValueError("n_mpi_nodes must be positive")
        self.spec = spec
        self.n_nodes = n_mpi_nodes or spec.mpi_nodes
        self.batch_size = batch_size
        self.cpu = cpu or CPUSpec()
        # MPI racks use plain Ethernet NICs without RDMA offload.
        self.network = Network(
            network or NetworkSpec(rdma=False, bandwidth=25e9 / 8)
        )
        self.hdfs = hdfs or HDFSSpec()
        self.zipf_exponent = zipf_exponent

    # ------------------------------------------------------------------
    def working_params_per_round(self) -> float:
        """Expected unique keys referenced by one node's BSP round."""
        draws = self.round_examples * self.spec.nonzeros_per_example
        return expected_unique_zipf(draws, self.spec.n_sparse, self.zipf_exponent)

    def batch_time(self) -> MPIBatchTime:
        """Simulated seconds for one per-node round of ``round_examples``."""
        spec = self.spec
        b = self.round_examples

        read_bytes = b * (16 + 8 * spec.nonzeros_per_example)
        read_s = self.hdfs.latency_s + read_bytes / self.hdfs.bandwidth

        framework_s = b * self.framework_overhead_s

        # CPU forward/backward: dense tower plus embedding gather/scatter.
        flops_pe = 6.0 * spec.n_dense + 6.0 * spec.nonzeros_per_example * (
            spec.embedding_dim
        )
        compute_s = b * flops_pe / (self.cpu.flops * self.cpu_efficiency)

        # Parameter pull + gradient push: unique working keys cross the
        # wire twice (values down, gradients up) and pay per-key CPU on
        # both ends.
        w = self.working_params_per_round()
        wire_bytes = w * (16 + spec.bytes_per_sparse_param)
        shard_bytes = spec.size_gb * 1e9 / self.n_nodes
        key_cost = self.key_overhead_s * (
            1.0 + shard_bytes / self.shard_pressure_bytes
        )
        net_s = wire_bytes / self.ps_bandwidth + w * key_cost

        sync_s = self.barrier_s * float(np.log2(max(2, self.n_nodes)))
        return MPIBatchTime(read_s, framework_s, compute_s, net_s, sync_s)

    def node_rate(self) -> float:
        """Examples/second sustained by one MPI node."""
        return self.round_examples / self.batch_time().total_seconds

    def throughput(self) -> float:
        """Cluster examples/second (Fig. 3(a) y-axis)."""
        return self.n_nodes * self.node_rate()


class MPIClusterBaseline(ReferenceTrainer):
    """Functional MPI baseline: reference-trainer math + MPI timing.

    The MPI solution is algorithmically the classic BSP data-parallel
    parameter server, which on identical data order computes identical
    updates to our reference trainer — so it reuses that implementation
    (and with it the vectorized :class:`~repro.store.flat.FlatStore`
    parameter shard) and attaches the :class:`MPITimingModel` for
    throughput accounting.
    """

    def __init__(self, *args, n_mpi_nodes: int | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.timing = MPITimingModel(
            self.model_spec,
            n_mpi_nodes,
            zipf_exponent=self.generator.zipf_exponent,
        )

    def simulated_batch_seconds(self) -> float:
        return self.timing.batch_time().total_seconds

    def simulated_throughput(self) -> float:
        return self.timing.throughput()
