"""High-level training drivers.

:class:`Trainer` runs an :class:`~repro.core.cluster.HPSCluster` for a
number of global rounds, tracking loss/AUC history.

:class:`ReferenceTrainer` is the "MPI-semantics" single-store trainer: the
same model, data order, gradient math, and optimizer applied against one
flat in-memory parameter store.  Because the hierarchical cluster
synchronizes after *every* mini-batch (no staleness), the two must produce
the same model up to floating-point reduction order — this is the paper's
Fig. 3(b) losslessness claim, verified exactly in the test suite.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.config import ClusterConfig, ModelSpec
from repro.core.cluster import BatchStats, HPSCluster
from repro.data.batching import Batch
from repro.data.generator import CTRDataGenerator
from repro.nn.metrics import auc
from repro.nn.model import CTRModel
from repro.nn.optim import DenseAdagrad, SparseAdagrad, SparseOptimizer
from repro.store.flat import FlatStore
from repro.utils.keys import as_keys, compact_unique
from repro.utils.rng import derive_seed

__all__ = ["Trainer", "TrainingHistory", "ReferenceTrainer"]


@dataclass
class TrainingHistory:
    """Per-round records collected by :class:`Trainer`."""

    batch_stats: list[BatchStats] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)
    aucs: list[float] = field(default_factory=list)
    #: :class:`~repro.ckpt.checkpoint.CheckpointStats` of every snapshot
    #: the trainer materialized during :meth:`Trainer.run`.
    checkpoints: list = field(default_factory=list)

    @property
    def n_rounds(self) -> int:
        return len(self.batch_stats)

    def throughput(self) -> float:
        """Steady-state examples/second under the pipelined schedule."""
        if not self.batch_stats:
            return 0.0
        total_examples = sum(s.n_examples for s in self.batch_stats)
        total_seconds = sum(s.bottleneck_seconds for s in self.batch_stats)
        return total_examples / total_seconds if total_seconds else 0.0

    def checkpoint_seconds(self) -> float:
        """Total simulated time spent materializing snapshots."""
        return sum(c.seconds for c in self.checkpoints)


class Trainer:
    """Drives an HPS cluster and records quality/timing history.

    With ``checkpoint_dir`` set, the trainer materializes a
    batch-granular snapshot every ``checkpoint_every`` rounds (under
    ``<checkpoint_dir>/round_<rounds_completed>``), so a killed run can
    resume via :meth:`HPSCluster.restore` from the newest committed
    snapshot and replay forward bit-identically.

    ``checkpoint_keep_last=N`` is the retention policy: after each
    successful commit the oldest committed snapshots beyond the newest
    ``N`` are pruned atomically (manifest deleted first, so a crash
    mid-prune can never leave a half-valid snapshot).  Pruning runs only
    *after* the new snapshot commits — the newest restore point is never
    at risk.  ``checkpoint_keep_every=M`` adds the sparse rung of the
    retention ladder: snapshots at rounds divisible by ``M`` survive the
    sliding window forever (see
    :func:`~repro.ckpt.format.prune_checkpoints`).
    """

    def __init__(
        self,
        cluster: HPSCluster,
        *,
        eval_batch: Batch | None = None,
        eval_every: int = 0,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 1,
        checkpoint_keep_last: int | None = None,
        checkpoint_keep_every: int | None = None,
        checkpoint_mode: str = "full",
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if checkpoint_mode not in ("full", "delta", "auto"):
            raise ValueError("checkpoint_mode must be 'full', 'delta' or 'auto'")
        if checkpoint_keep_last is not None and checkpoint_keep_last < 1:
            raise ValueError("checkpoint_keep_last must be >= 1")
        if checkpoint_keep_every is not None and checkpoint_keep_every < 1:
            raise ValueError("checkpoint_keep_every must be >= 1")
        if checkpoint_keep_every is not None and checkpoint_keep_last is None:
            raise ValueError(
                "checkpoint_keep_every requires checkpoint_keep_last "
                "(the ladder's sparse rung composes on top of the window)"
            )
        self.cluster = cluster
        self.eval_batch = eval_batch
        self.eval_every = eval_every
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.checkpoint_keep_last = checkpoint_keep_last
        self.checkpoint_keep_every = checkpoint_keep_every
        #: "full" | "delta" | "auto" — forwarded to
        #: :meth:`HPSCluster.save_checkpoint`; "auto" writes deltas
        #: whenever a valid in-memory base exists (the run's first
        #: snapshot is full either way).
        self.checkpoint_mode = checkpoint_mode
        self.history = TrainingHistory()

    def _maybe_checkpoint(self, round_in_run: int) -> None:
        if self.checkpoint_dir is None:
            return
        if round_in_run % self.checkpoint_every:
            return
        from repro.ckpt.format import checkpoint_dir_name, prune_checkpoints

        directory = os.path.join(
            self.checkpoint_dir,
            checkpoint_dir_name(self.cluster.rounds_completed),
        )
        self.history.checkpoints.append(
            self.cluster.save_checkpoint(directory, mode=self.checkpoint_mode)
        )
        if self.checkpoint_keep_last is not None:
            # Only after the new snapshot committed: the retention window
            # always contains the snapshot that just landed.
            prune_checkpoints(
                self.checkpoint_dir,
                self.checkpoint_keep_last,
                keep_every=self.checkpoint_keep_every,
            )

    def run(self, n_rounds: int) -> TrainingHistory:
        for i in range(n_rounds):
            stats = self.cluster.train_round()
            self.history.batch_stats.append(stats)
            self.history.losses.append(stats.mean_loss)
            if (
                self.eval_batch is not None
                and self.eval_every
                and (i + 1) % self.eval_every == 0
            ):
                self.history.aucs.append(self.cluster.evaluate_auc(self.eval_batch))
            self._maybe_checkpoint(i + 1)
        return self.history

    def final_auc(self) -> float:
        if self.eval_batch is None:
            raise ValueError("no eval batch configured")
        return self.cluster.evaluate_auc(self.eval_batch)


class ReferenceTrainer:
    """Single-store data-parallel trainer with identical semantics.

    Replays the cluster's exact global schedule — per round, every
    (node, GPU) mini-batch contributes a gradient; per-node sparse
    contributions are first reduced in float32 (as the HBM gradient
    buffer does), then summed across nodes in float64 (as the all-reduce
    does), while dense gradients accumulate in float32 end to end (as the
    cluster's reused buffers do) — against one flat batch-first parameter
    store (:class:`~repro.store.flat.FlatStore`).
    """

    def __init__(
        self,
        model_spec: ModelSpec,
        cluster_config: ClusterConfig,
        *,
        sparse_optimizer: SparseOptimizer | None = None,
        data_seed: int | None = None,
        functional_batch_size: int = 4096,
        zipf_exponent: float = 1.05,
    ) -> None:
        self.model_spec = model_spec
        self.config = cluster_config
        self.optimizer = sparse_optimizer or SparseAdagrad(
            model_spec.embedding_dim, lr=0.05
        )
        self.generator = CTRDataGenerator(
            model_spec,
            seed=data_seed if data_seed is not None else cluster_config.seed,
            zipf_exponent=zipf_exponent,
        )
        self.batch_size = functional_batch_size
        self.model = CTRModel(
            model_spec, seed=derive_seed(cluster_config.seed, "dense")
        )
        self.dense_optimizer = DenseAdagrad(lr=0.05)
        self._store = FlatStore(self.optimizer.value_dim)
        self._init_seed = cluster_config.seed
        self.rounds_completed = 0

    # ------------------------------------------------------------------
    def _fetch(self, keys: np.ndarray) -> np.ndarray:
        keys = as_keys(keys)
        out, found = self._store.get_batch(keys)
        miss = ~found
        if miss.any():
            fresh = self.optimizer.init_for_keys(keys[miss], seed=self._init_seed)
            out[miss] = fresh
            self._store.put_batch(keys[miss], fresh)
        return out

    def _apply(self, keys: np.ndarray, grads: np.ndarray) -> None:
        values = self._fetch(keys)
        new_values = self.optimizer.apply(values, grads)
        self._store.put_batch(keys, new_values)

    # ------------------------------------------------------------------
    def train_round(self) -> float:
        """One global round; returns the mean mini-batch loss."""
        r = self.rounds_completed
        cfg = self.config
        n_gpus = cfg.gpus_per_node
        batches = [
            self.generator.batch(r * cfg.n_nodes + i, self.batch_size)
            for i in range(cfg.n_nodes)
        ]
        shards = [b.shard(n_gpus * cfg.minibatches_per_gpu) for b in batches]
        losses = []
        for m in range(cfg.minibatches_per_gpu):
            # Per-node float32 gradient buffers, merged in float64 for the
            # sparse side; dense gradients accumulate in float32 end to
            # end, mirroring the cluster's reused DenseGradAccumulator.
            global_keys: np.ndarray | None = None
            global_grads: np.ndarray | None = None
            dense_sum: list[np.ndarray] | None = None
            for node_shards in shards:
                # Per-node float32 gradient buffer: keys/grads of every
                # GPU's mini-batch, merged by key in arrival order (the
                # HBM buffer's accumulation order, kept bit-exact by
                # ``np.add.at``'s unbuffered left-to-right semantics).
                gpu_keys: list[np.ndarray] = []
                gpu_grads: list[np.ndarray] = []
                dense_acc: list[np.ndarray] | None = None
                for gpu in range(n_gpus):
                    mb = node_shards[m * n_gpus + gpu]
                    if mb.n_examples == 0:
                        continue
                    mb_keys = mb.unique_keys()
                    emb = self.optimizer.embedding(self._fetch(mb_keys))
                    result = self.model.train_minibatch(mb, mb_keys, emb)
                    sg = result.sparse_grad
                    gpu_keys.append(as_keys(sg.keys))
                    gpu_grads.append(sg.grads.astype(np.float32))
                    losses.append(result.loss)
                    grads = self.model.mlp.gradients()
                    if dense_acc is None:
                        dense_acc = [g.astype(np.float32) for g in grads]
                    else:
                        for a, g in zip(dense_acc, grads):
                            a += g
                if gpu_keys:
                    cat_keys = np.concatenate(gpu_keys)
                    cat_grads = np.concatenate(gpu_grads, axis=0)
                    nk, inv = compact_unique(cat_keys, return_inverse=True)
                    buf32 = np.zeros(
                        (nk.size, cat_grads.shape[1]), dtype=np.float32
                    )
                    np.add.at(buf32, inv, cat_grads)
                    ng = buf32.astype(np.float64)
                    if global_keys is None:
                        global_keys, global_grads = nk, ng
                    else:
                        keys = np.concatenate([global_keys, nk])
                        grads_cat = np.concatenate([global_grads, ng])
                        uniq, inv = compact_unique(keys, return_inverse=True)
                        merged = np.zeros(
                            (uniq.size, grads_cat.shape[1]), dtype=np.float64
                        )
                        np.add.at(merged, inv, grads_cat)
                        global_keys, global_grads = uniq, merged
                if dense_acc is not None:
                    if dense_sum is None:
                        dense_sum = dense_acc
                    else:
                        for a, g in zip(dense_sum, dense_acc):
                            a += g
            if global_keys is not None:
                self._apply(global_keys, global_grads)
            if dense_sum is not None:
                self.dense_optimizer.step(
                    self.model.mlp.parameters(), dense_sum
                )
        self.rounds_completed += 1
        return float(np.mean(losses)) if losses else float("nan")

    def train(self, n_rounds: int) -> list[float]:
        return [self.train_round() for _ in range(n_rounds)]

    # ------------------------------------------------------------------
    def predict(self, batch: Batch) -> np.ndarray:
        keys = batch.unique_keys()
        values, found = self._store.get_batch(keys)
        miss = ~found
        if miss.any():
            # Never-seen keys evaluate at their deterministic init without
            # being persisted (mirrors the cluster's read-only lookup).
            values[miss] = self.optimizer.init_for_keys(
                keys[miss], seed=self._init_seed
            )
        emb = self.optimizer.embedding(values)
        return self.model.predict_proba(batch, keys, emb)

    def evaluate_auc(self, batch: Batch) -> float:
        return auc(batch.labels, self.predict(batch))

    def embedding_of(self, keys: np.ndarray) -> np.ndarray:
        """Current embedding rows for ``keys`` (for parity tests)."""
        return self.optimizer.embedding(self._fetch(as_keys(keys)))
