"""Discrete-event pipelined executor for Algorithm 1 (paper Section 3).

:class:`~repro.core.pipeline.PipelineSimulator` *computes* a schedule from
pre-recorded stage durations; this module *executes* one.  Each pipeline
stage is a closure that performs real work against :class:`HPSNode` state
(streaming a batch from HDFS, preparing MEM/SSD parameters, staging the
HBM working set, training) and reports its simulated duration.  The engine
discovers stage durations by firing those closures event by event and
threads the results through exactly the same three constraints as the
simulator — stage precedence, per-resource serialization, and bounded
prefetch queues — via the shared :func:`~repro.core.pipeline.earliest_start`
recurrence, so an engine run and a simulator run over the same durations
produce bit-identical schedules.

Execution order vs. simulated time
----------------------------------
The paper's pipeline overlaps batches across *hardware resources*: batch
``b + 1`` streams from HDFS while batch ``b`` trains.  The arithmetic of
training, however, is kept identical to lockstep execution — the paper
pins in-flight parameters so a batch's prepare stage observes the previous
batch's write-back (Section 5).  The engine reproduces that discipline by
firing closures in canonical batch-major dependency order (every stage of
batch ``b`` before any stage of batch ``b + 1``) while the *simulated
clock* overlaps them; the computed schedule is the unique fixpoint of the
constraint system, independent of processing order.  This is what makes
pipelined training bit-identical to lockstep: the real work is the same
work in the same order, only the clock model differs.

Depth-k lookahead rides the same discipline: with ``prefetch_depth = k``
the prepare-stage closure additionally resolves and pins the per-node
unions for rounds ``b + 1 .. b + k`` (see
:meth:`~repro.mem.mem_ps.MemPS.prefetch_resolve`).  That work lands in
the stage's idle shadow — :meth:`EngineRun.shadow_idle_seconds` measures
the budget — so deeper lookahead widens overlap without perturbing the
canonical firing order, and the depth-1 schedule is bit-identical to a
run without lookahead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.pipeline import PipelineSchedule, earliest_start

__all__ = ["PipelinedEngine", "StageDef", "EngineRun", "StageEvent"]


@dataclass(frozen=True)
class StageDef:
    """One pipeline stage: a name, an executable closure, and effects.

    ``fn(batch_index)`` performs the stage's real work for one batch and
    returns its simulated duration in seconds.  ``reads`` / ``writes``
    declare the named resources the closure may touch (the effect
    vocabulary of :mod:`repro.analysis.effects`); the engine schedules
    stages of *different* batches concurrently on the simulated clock,
    so two stages whose effect sets conflict may only be registered
    together under an explicit
    :class:`~repro.analysis.effects.OverlapContract` — see
    :func:`~repro.analysis.effects.check_stage_conflicts`, which
    :meth:`~repro.core.cluster.HPSCluster.train_pipelined` runs over the
    registered stage set before every pipelined run.  Empty effect sets
    mean "touches nothing shared" and conflict with nothing.
    """

    name: str
    fn: Callable[[int], float]
    reads: frozenset[str] = frozenset()
    writes: frozenset[str] = frozenset()


@dataclass(frozen=True)
class StageEvent:
    """One fired event: batch ``b`` occupying stage ``s`` on the clock."""

    batch: int
    stage: int
    name: str
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True)
class EngineRun:
    """Everything one :meth:`PipelinedEngine.run` produced.

    ``schedule`` is the overlapped clock; ``stage_times[b, s]`` the
    measured duration of each fired closure; ``execution_order`` the
    wall-clock order closures actually ran in (always batch-major — the
    parity guarantee).
    """

    schedule: PipelineSchedule
    stage_times: np.ndarray
    execution_order: tuple[tuple[int, int], ...] = field(default=())

    @property
    def makespan(self) -> float:
        return self.schedule.makespan

    @property
    def serial_makespan(self) -> float:
        """Makespan had the stages run back-to-back with no overlap."""
        return float(self.stage_times.sum())

    @property
    def speedup(self) -> float:
        """Serial / pipelined makespan (>= 1; > 1 whenever overlap helps)."""
        return self.serial_makespan / self.makespan if self.makespan else 1.0

    def events(self) -> list[StageEvent]:
        """Fired events sorted by simulated start time (the event trace)."""
        names = self.schedule.stage_names
        evs = [
            StageEvent(
                b,
                s,
                names[s],
                float(self.schedule.start[b, s]),
                float(self.schedule.finish[b, s]),
            )
            for b in range(self.schedule.start.shape[0])
            for s in range(self.schedule.start.shape[1])
        ]
        evs.sort(key=lambda e: (e.start, e.batch, e.stage))
        return evs

    def queue_stall_seconds(self, stage: int) -> float:
        """Total time ``stage`` spent blocked on downstream backpressure.

        The stall of event ``(b, s)`` attributable to the prefetch queue is
        the gap between its start and the latest of its precedence /
        serialization constraints — any remainder exists only because the
        downstream queue was full.
        """
        start, finish = self.schedule.start, self.schedule.finish
        n = start.shape[0]
        total = 0.0
        for b in range(n):
            unqueued = 0.0
            if stage > 0:
                unqueued = max(unqueued, finish[b, stage - 1])
            if b > 0:
                unqueued = max(unqueued, finish[b - 1, stage])
            total += float(start[b, stage]) - unqueued
        return total

    def shadow_idle_seconds(self, stage: int) -> float:
        """Idle time on ``stage``'s resource inside its own busy span.

        Events on one stage are serialized, so the gaps between
        consecutive events are the pipeline *shadow* — capacity available
        without extending the makespan.  This is the budget the depth-k
        prefetch stage schedules resolve-and-pin work into: with
        ``prefetch_depth = k`` the prepare stage resolves the lookahead
        unions for rounds ``b + 1 .. b + k`` while its own next batch is
        still blocked upstream, which is why deeper lookahead costs no
        extra wall-clock until the shadow is exhausted.
        """
        start, finish = self.schedule.start, self.schedule.finish
        if start.shape[0] == 0:
            return 0.0
        span = float(finish[-1, stage]) - float(start[0, stage])
        busy = float((finish[:, stage] - start[:, stage]).sum())
        return max(0.0, span - busy)


class PipelinedEngine:
    """Executes stage closures under prefetch-pipeline semantics.

    Parameters
    ----------
    stages:
        The pipeline's stages in order, e.g. the four Algorithm 1 stages
        (HDFS read -> MEM/SSD prepare -> CPU partition + HBM load ->
        GPU train/sync/writeback).
    queue_capacity:
        Prefetch-queue depth per stage boundary, as in
        :class:`~repro.core.pipeline.PipelineSimulator`: depth ``q`` means
        stage ``s`` cannot start batch ``b`` before stage ``s + 1`` started
        batch ``b - q``.
    """

    def __init__(
        self,
        stages: Sequence[StageDef],
        *,
        queue_capacity: int | tuple[int, ...] = 2,
    ) -> None:
        if not stages:
            raise ValueError("need at least one stage")
        self.stages = tuple(stages)
        n_stages = len(self.stages)
        if isinstance(queue_capacity, int):
            caps = (queue_capacity,) * max(0, n_stages - 1)
        else:
            caps = tuple(queue_capacity)
        if len(caps) != n_stages - 1:
            raise ValueError("need one queue capacity per stage boundary")
        if any(c < 1 for c in caps):
            raise ValueError("queue capacities must be >= 1")
        self.queue_capacity = caps

    @property
    def n_stages(self) -> int:
        return len(self.stages)

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(st.name for st in self.stages)

    def run(self, n_batches: int) -> EngineRun:
        """Drive ``n_batches`` through every stage; returns the run record.

        Closures fire in batch-major dependency order (see module
        docstring); each returned duration immediately extends the
        overlapped schedule through the shared recurrence.
        """
        if n_batches < 0:
            raise ValueError("n_batches must be non-negative")
        n, S = n_batches, self.n_stages
        start = np.zeros((n, S))
        finish = np.zeros((n, S))
        stage_times = np.zeros((n, S))
        order: list[tuple[int, int]] = []
        for b in range(n):
            for s in range(S):
                duration = float(self.stages[s].fn(b))
                if not np.isfinite(duration) or duration < 0:
                    raise ValueError(
                        f"stage '{self.stages[s].name}' returned invalid "
                        f"duration {duration!r} for batch {b}"
                    )
                order.append((b, s))
                stage_times[b, s] = duration
                t = earliest_start(start, finish, b, s, self.queue_capacity)
                start[b, s] = t
                finish[b, s] = t + duration
        schedule = PipelineSchedule(start, finish, self.stage_names)
        return EngineRun(schedule, stage_times, tuple(order))
