"""The distributed hierarchical parameter server cluster.

:class:`HPSCluster` instantiates ``n_nodes`` :class:`~repro.core.node.HPSNode`
objects, wires their MEM-PS peers together, and drives the full Algorithm 1
training workflow across nodes.  The workflow is factored into four
independently-callable stage functions (:meth:`HPSCluster.stage_read`,
:meth:`~HPSCluster.stage_prepare`, :meth:`~HPSCluster.stage_load`,
:meth:`~HPSCluster.stage_train`) with two execution modes:

* **lockstep** (:meth:`HPSCluster.train_round` / :meth:`HPSCluster.train`)
  runs the stages back-to-back per round — the parity oracle;
* **pipelined** (:meth:`HPSCluster.train_pipelined`) hands the same stage
  functions to the :class:`~repro.core.engine.PipelinedEngine`, which
  overlaps consecutive rounds' stages on the simulated clock under bounded
  prefetch queues while executing identical work in identical order, so
  trained parameters stay bit-identical to lockstep.

One round performs:

1.  every node streams its own batch from HDFS (data parallel);
2.  every node gathers its batch's working parameters from local
    MEM-PS/SSD-PS and remote MEM-PS;
3.  working parameters are partitioned across the node's GPUs and inserted
    into the HBM-PS distributed hash table;
4.  the batch is sharded into mini-batches; per mini-batch each GPU worker
    pulls embeddings, runs forward/backward, pushes gradients back
    (Algorithm 2), and the cluster synchronizes with the hierarchical
    all-reduce before the next mini-batch — eliminating staleness;
5.  after the last mini-batch the MEM-PS pulls updated parameters back
    from the HBM-PS and dumps cache overflow to the SSD-PS.

Every step reports simulated seconds; :class:`BatchStats` aggregates them
into the exact stage decomposition the paper's Figures 3(c), 4(a) and 4(b)
plot.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

import numpy as np

from repro.config import ClusterConfig, ModelSpec
from repro.data.batching import Batch
from repro.data.generator import CTRDataGenerator
from repro.data.hdfs import TimedBatch
from repro.hardware.gpu import dense_flops_per_example
from repro.hardware.specs import NodeHardware
from repro.hbm.allreduce import (
    DenseGradAccumulator,
    allreduce_dense,
    hierarchical_allreduce,
)
from repro.analysis.effects import (
    WINDOW_RESOURCE,
    OverlapContract,
    window_overlap_contracts,
)
from repro.analysis.effects import (
    check_stage_conflicts as _check_stage_conflicts,
)
from repro.core.engine import EngineRun, PipelinedEngine, StageDef
from repro.core.node import HPSNode
from repro.core.pipeline import PipelineSchedule
from repro.nn.optim import DenseAdagrad, SparseAdagrad, SparseOptimizer
from repro.plan import RoundPlan, build_round_plan
from repro.utils.keys import as_keys

if TYPE_CHECKING:
    from repro.ckpt.checkpoint import CheckpointStats

__all__ = [
    "HPSCluster",
    "BatchStats",
    "RoundContext",
    "PipelinedRun",
    "StageSpec",
    "PIPELINE_STAGE_NAMES",
    "STAGE_EFFECTS",
    "BASE_OVERLAP_CONTRACTS",
    "SNAPSHOT_OVERLAP_CONTRACTS",
]

#: Executor-stage names, in Algorithm 1 order.
PIPELINE_STAGE_NAMES = ("read", "prepare", "load", "train")

#: A stage function: performs one round's work for its stage against the
#: shared :class:`RoundContext` and returns its simulated seconds.
StageFn = Callable[["RoundContext"], float]


@dataclass(frozen=True)
class StageSpec:
    """One registered pipeline stage: name, closure, declared effects.

    ``reads`` / ``writes`` use the resource vocabulary of
    :mod:`repro.analysis.effects` (``stream``, ``mem``, ``ssd``,
    ``hbm``, ``model``, ``ledger``, ``ckpt``, ``stats``, plus
    round-local ``round:*`` names).  The static conflict check runs over
    these declarations before every pipelined run, and the dynamic
    tracer (:class:`repro.analysis.tracer.EffectTracer`) verifies them
    against actual tier accesses in tests.
    """

    name: str
    fn: StageFn
    reads: frozenset[str] = frozenset()
    writes: frozenset[str] = frozenset()


#: Declared effect sets of the built-in stages.  ``round:plan`` is the
#: per-round plan/context (never shared across overlapping stages);
#: ``ledger`` is commutative cost accounting (appends commute), and so
#: is ``fault`` — the fault-injection state (per-(kind, node) schedule
#: streams plus the incident log) every armed stage may advance; the
#: cache-touching stages additionally *read* ``ckpt`` because an
#: exhausted SSD read quarantines by re-materializing the payload from
#: the newest checkpoint chain (:mod:`repro.faults.inject`).
STAGE_EFFECTS: dict[str, tuple[frozenset[str], frozenset[str]]] = {
    "read": (
        frozenset(),
        frozenset({"stream", "round:plan", "ledger", "fault"}),
    ),
    "prefetch": (
        frozenset({"round:plan", "ckpt"}),
        frozenset({"mem", "ssd", "ledger", "fault"}),
    ),
    "prepare": (
        frozenset({"round:plan", "ckpt"}),
        frozenset({"mem", "ssd", "ledger", "fault"}),
    ),
    "load": (
        frozenset({"round:plan"}),
        frozenset({"hbm", "ledger", "fault"}),
    ),
    "train": (
        frozenset({"round:plan", "ckpt"}),
        frozenset({"mem", "ssd", "hbm", "model", "ledger", "stats", "fault"}),
    ),
    "snapshot": (
        frozenset({"mem", "ssd", "hbm", "model", "stats", "stream"}),
        frozenset({"ckpt", "ledger", "fault"}),
    ),
}

#: Sanctioned concurrent overlaps among the built-in training stages.
#: Each records *why* the write/read+write intersection is safe: the
#: engine fires closures in canonical batch-major order, and the tiers
#: implement the paper's pinning + write-back discipline (Section 5), so
#: the overlap the simulated clock claims cannot reorder conflicting
#: accesses.  A new stage that conflicts without such a contract fails
#: :meth:`HPSCluster.check_stage_conflicts`.
BASE_OVERLAP_CONTRACTS: tuple[OverlapContract, ...] = (
    OverlapContract(
        "prefetch",
        "prepare",
        frozenset({"mem", "ssd"}),
        "prefetch(b+1) resolves against the post-write-back MEM/SSD state "
        "of round b: canonical batch-major execution orders it after "
        "prepare(b), and the round's rows stay pinned until write-back",
    ),
    OverlapContract(
        "prefetch",
        "train",
        frozenset({"mem", "ssd"}),
        "the paper's pinning discipline (Section 5): round b's working "
        "set is pinned in MEM until its write-back lands, and the engine "
        "executes prefetch(b+1) after train(b) in canonical order",
    ),
    OverlapContract(
        "prepare",
        "train",
        frozenset({"mem", "ssd"}),
        "prepare(b+1) must observe round b's write-back (paper Section "
        "5); canonical batch-major execution guarantees it, which is "
        "exactly what makes pipelined parameters bit-identical to "
        "lockstep",
    ),
    OverlapContract(
        "load",
        "train",
        frozenset({"hbm"}),
        "Algorithm 1 pre-stages round b+1's working set into the per-GPU "
        "tables while round b trains; the tables key by round-disjoint "
        "working sets and the engine orders load(b+1) after train(b)'s "
        "dump in execution",
    ),
)

#: Sanctioned overlaps of the continuous-checkpoint stage: the snapshot
#: of round b reads tier state *as of round b's boundary* — canonical
#: execution order materializes the delta before any round-(b+1) stage
#: mutates a tier, which is what lets its cost land in the pipeline
#: shadow (PR 7's lockstep-vs-pipelined snapshot-history parity).
SNAPSHOT_OVERLAP_CONTRACTS: tuple[OverlapContract, ...] = (
    OverlapContract(
        "read",
        "snapshot",
        frozenset({"stream"}),
        "the snapshot records the stream cursor at round b's boundary; "
        "read(b+1) advances it only after the snapshot closure ran in "
        "canonical order",
    ),
    OverlapContract(
        "prefetch",
        "snapshot",
        frozenset({"mem", "ssd", "ckpt"}),
        "snapshot(b) exports the MEM/SSD state before prefetch(b+1) "
        "executes (canonical order); the clock-only overlap is the "
        "pipeline shadow the snapshot stage exists to exploit — and any "
        "quarantine re-read prefetch(b+1) performs resolves the "
        "checkpoint chain only after snapshot(b)'s manifest committed",
    ),
    OverlapContract(
        "prepare",
        "snapshot",
        frozenset({"mem", "ssd", "ckpt"}),
        "as for prefetch: the export completes before prepare(b+1) "
        "mutates cache state (or re-reads the committed chain) in "
        "execution order",
    ),
    OverlapContract(
        "load",
        "snapshot",
        frozenset({"hbm"}),
        "the HBM export reads round b's drained tables before load(b+1) "
        "stages the next working set in execution order",
    ),
    OverlapContract(
        "train",
        "snapshot",
        frozenset({"mem", "ssd", "hbm", "model", "stats", "ckpt"}),
        "snapshot(b) runs between train(b) and train(b+1) in canonical "
        "order, so the exported state is exactly round b's boundary "
        "state (PR 7 asserts lockstep and pipelined snapshot histories "
        "bit-identical); train(b+1)'s quarantine re-reads see only "
        "committed manifests for the same reason",
    ),
)


@dataclass
class BatchStats:
    """Timing decomposition of one global training round.

    Stage semantics follow Fig. 3(c): ``read_seconds`` is the HDFS stage,
    ``pull_push_seconds`` the MEM-PS/SSD-PS stage, ``train_seconds`` the
    HBM-PS + GPU stage.  All are cluster critical-path values (max over
    nodes, since nodes run in parallel).
    """

    round_index: int
    read_seconds: float
    pull_local_seconds: float
    pull_remote_seconds: float
    #: MEM/SSD stage total: prefetch (when enabled) + the local/remote
    #: pull critical path + the write-back absorb
    pull_push_seconds: float
    cpu_partition_seconds: float
    hbm_pull_seconds: float
    hbm_push_seconds: float
    gpu_train_seconds: float
    allreduce_seconds: float
    train_seconds: float
    ssd_io_seconds: float
    cache_hit_rate: float
    n_working_params: int
    n_examples: int
    mean_loss: float
    compactions: int = 0
    #: Critical-path worker time: sum over mini-batch rounds of the slowest
    #: worker's (pull + compute + push).  Workers run in parallel, so this —
    #: not the per-worker average — is what the GPU stage actually costs
    #: when workers are imbalanced.
    worker_critical_seconds: float = 0.0
    #: MEM-cache admission accounting, summed over nodes: bulk runs the
    #: admission plan applied, single-key collision splits it cut at the
    #: eviction frontier, and whole-batch per-key replays.  The last is
    #: the pressure-regime acceptance gate: it reads zero in both
    #: execution modes unless the ``REPRO_CACHE_ORACLE`` parity oracle is
    #: forcing the seed path.
    cache_admission_runs: int = 0
    cache_collision_splits: int = 0
    cache_scalar_fallbacks: int = 0
    #: seconds the dedicated prefetch stage spent resolving + loading
    #: the round's MEM working set (0 unless ``config.prefetch``); part
    #: of :attr:`pull_push_seconds`
    prefetch_seconds: float = 0.0
    #: deep prefetch-window extensions this round that backed off to a
    #: shallower depth because the pin ceiling
    #: (``config.prefetch_pin_fraction``) would have been exceeded
    #: (summed over nodes; always 0 at ``prefetch_depth`` 1)
    prefetch_depth_backoffs: int = 0
    #: adaptive extent-cache resize events this round, summed over nodes
    #: (0 unless ``config.ssd_extent_cache_resize_every`` > 0)
    extent_cache_resizes: int = 0
    #: extent-cache capacity in files at the round boundary, summed over
    #: nodes — moves only under the adaptive sizing
    extent_cache_files: int = 0

    @property
    def bottleneck_seconds(self) -> float:
        """Steady-state pipelined batch latency: the slowest stage."""
        return max(self.read_seconds, self.pull_push_seconds, self.train_seconds)

    @property
    def stage_times(self) -> tuple[float, float, float]:
        return (self.read_seconds, self.pull_push_seconds, self.train_seconds)

    @property
    def pipeline_stage_seconds(self) -> tuple[float, float, float, float]:
        """The four Algorithm 1 stage durations of this round.

        Matches the base :class:`~repro.core.engine.PipelinedEngine`
        stage split (HDFS read, MEM/SSD prepare, CPU partition + HBM
        load, GPU train/sync/write-back); a registered prefetch stage
        folds into the prepare element.  Summing all four gives the
        round's serial makespan.
        """
        prepare = self.prefetch_seconds + max(
            self.pull_local_seconds, self.pull_remote_seconds
        )
        absorb = self.pull_push_seconds - prepare
        return (
            self.read_seconds,
            prepare,
            self.cpu_partition_seconds,
            self.train_seconds + absorb,
        )


@dataclass
class RoundContext:
    """Mutable state threaded through one round's four stage functions.

    Each stage function reads its predecessors' outputs from the context
    and records its own.  The lockstep and pipelined paths drive the exact
    same stage functions over the same contexts — identical work in an
    identical order — and differ only in the clock model, which is what
    makes pipelined training bit-identical to lockstep.
    """

    round_index: int
    # stage 1: HDFS read
    timed: list[TimedBatch] = field(default_factory=list)
    read_seconds: float = 0.0
    #: the round's key plan (computed once in stage_read when the cluster
    #: runs planned; every later stage consumes its precomputed indices)
    plan: RoundPlan | None = None
    # optional stage 1.5: MEM working-set prefetch
    prefetch_seconds: float = 0.0
    # stage 2: MEM-PS/SSD-PS prepare
    workings: list[np.ndarray] = field(default_factory=list)
    prep_values: list[np.ndarray] = field(default_factory=list)
    pull_local_seconds: float = 0.0
    pull_remote_seconds: float = 0.0
    # stage 3: CPU partition + HBM working-set staging
    shards: list = field(default_factory=list)
    cpu_partition_seconds: float = 0.0
    # per-round accounting snapshots (taken by the first cache-touching
    # stage, so they bracket correctly even if reads are prefetched)
    cache_stats_before: list[tuple[int, int]] = field(default_factory=list)
    admission_before: list[tuple[int, int, int]] = field(default_factory=list)
    compactions_before: int = 0
    extent_before: list[int] = field(default_factory=list)
    ssd_before: list[float] = field(default_factory=list)
    # stage 4 output: the round's aggregated stats
    stats: BatchStats | None = None


@dataclass(frozen=True)
class PipelinedRun:
    """One :meth:`HPSCluster.train_pipelined` call.

    Couples the per-round :class:`BatchStats` (identical to what lockstep
    would report) with the overlapped :class:`PipelineSchedule` the engine
    produced.
    """

    stats: list[BatchStats]
    engine_run: EngineRun

    @property
    def schedule(self) -> PipelineSchedule:
        return self.engine_run.schedule

    @property
    def stage_times(self) -> np.ndarray:
        """Measured per-round durations, shape ``(n_rounds, 4)``."""
        return self.engine_run.stage_times

    @property
    def makespan(self) -> float:
        """Wall time of the overlapped execution."""
        return self.engine_run.makespan

    @property
    def serial_makespan(self) -> float:
        """What the same rounds would have cost run back-to-back."""
        return self.engine_run.serial_makespan

    @property
    def speedup(self) -> float:
        return self.engine_run.speedup

    @property
    def n_examples(self) -> int:
        return sum(s.n_examples for s in self.stats)

    def throughput(self) -> float:
        """Examples per pipelined second."""
        return self.n_examples / self.makespan if self.makespan else 0.0


class HPSCluster:
    """Multi-node distributed hierarchical GPU parameter server."""

    def __init__(
        self,
        model_spec: ModelSpec,
        cluster_config: ClusterConfig,
        *,
        sparse_optimizer: SparseOptimizer | None = None,
        hardware: NodeHardware | None = None,
        data_seed: int | None = None,
        functional_batch_size: int = 4096,
        zipf_exponent: float = 1.05,
        ssd_directory: str | None = None,
        use_plan: bool = True,
    ) -> None:
        if cluster_config.prefetch and not use_plan:
            raise ValueError(
                "config.prefetch requires planned execution (use_plan=True):"
                " the prefetch stage consumes the round plan's key unions"
            )
        self.model_spec = model_spec
        self.config = cluster_config
        #: compute each round's BatchPlan once in stage_read and thread it
        #: through every tier (False = the pre-plan path, kept as the
        #: parity oracle; both paths produce bit-identical parameters and
        #: simulated seconds)
        self.use_plan = use_plan
        self.sparse_optimizer = sparse_optimizer or SparseAdagrad(
            model_spec.embedding_dim, lr=0.05
        )
        self.generator = CTRDataGenerator(
            model_spec,
            seed=data_seed if data_seed is not None else cluster_config.seed,
            zipf_exponent=zipf_exponent,
        )
        self._hardware = hardware
        self._ssd_directory = ssd_directory
        self.functional_batch_size = functional_batch_size
        self.nodes = [
            self._make_node(i) for i in range(cluster_config.n_nodes)
        ]
        peers = [n.mem_ps for n in self.nodes]
        for node in self.nodes:
            node.mem_ps.peers = peers
        self.rounds_completed = 0
        self.history: list[BatchStats] = []
        #: reused float32 dense-gradient buffers (one accumulator per node
        #: plus one for the cross-node sum) — no per-mini-batch temporaries
        self._node_dense_acc = [
            DenseGradAccumulator() for _ in range(cluster_config.n_nodes)
        ]
        self._dense_sum_acc = DenseGradAccumulator()
        #: Rounds whose working parameters are currently staged in HBM
        #: (between stage_load and the end of stage_train).  Non-zero
        #: means cross-tier reads and checkpoints are unsafe — freshly
        #: trained values may exist only in a node's HBM hash table.
        self._staged_rounds = 0
        #: Cost accounting of the restore that produced this cluster
        #: (set by :meth:`restore`; None for a freshly built cluster).
        self.restore_stats = None
        #: In-memory record of the last committed snapshot — the diff
        #: source for delta checkpoints: ``{directory, rounds,
        #: manifest_sha256, node_states}``.  Maintained by
        #: :mod:`repro.ckpt.checkpoint`; None until a full save/restore.
        self._ckpt_base = None
        #: pre-wrap stage registry, held while :meth:`wrap_stages`
        #: instrumentation is installed (None = not wrapped)
        self._unwrapped_stages: list[StageSpec] | None = None
        #: cluster-level fault guard for the cross-node collectives
        #: (:class:`repro.faults.policy.FaultArm`, installed by
        #: :func:`repro.faults.inject.inject_faults`; None = fault-free)
        self._fault_arm: Any | None = None
        #: depth-k lookahead peek buffer, keyed by round index: batches
        #: materialized ahead of their round's read stage so the plan can
        #: price future unions.  Peeks are side-effect-free (batches are
        #: pure functions of the global index); the round that actually
        #: consumes a buffered batch settles its ledger/fault accounting
        #: via :meth:`~repro.data.hdfs.HDFSStream.account`, keeping the
        #: op order identical to the depth-1 schedule.
        self._peeked: dict[int, list[TimedBatch]] = {}
        #: per-node MEM unions of the next round plus its sync carry,
        #: from the previous round's plan lookahead
        #: (``(round_index, unions, (global_keys, owner) | None)``;
        #: None = compute from scratch)
        self._next_unions: tuple | None = None
        #: the pipeline's stages (:class:`StageSpec`: name, closure,
        #: declared effects), in execution order.  The four Algorithm 1
        #: stages are fixed; optional stages splice in via
        #: :meth:`register_stage` — both execution modes and the bench
        #: harness drive whatever :meth:`stage_functions` returns, so a
        #: registered stage is automatically executed, scheduled, and
        #: instrumented.
        base_fns: dict[str, StageFn] = {
            "read": self.stage_read,
            "prepare": self.stage_prepare,
            "load": self.stage_load,
            "train": self.stage_train,
        }
        depth = cluster_config.prefetch_depth
        effects = dict(STAGE_EFFECTS)
        if depth > 1:
            # Deep windows make train's end-of-round unpin window-aware
            # (unpin everything *except* the still-speculative window),
            # which is a write to the shared window pin state.
            t_reads, t_writes = effects["train"]
            effects["train"] = (t_reads, t_writes | {WINDOW_RESOURCE})
        self._stage_defs: list[StageSpec] = [
            StageSpec(name, base_fns[name], *effects[name])
            for name in PIPELINE_STAGE_NAMES
        ]
        #: per-stage sanctioned-overlap declarations; the base contracts
        #: live under the reserved "" key, stages registered with
        #: ``contracts=`` add their own (dropped on unregister)
        self._stage_contracts: dict[str, tuple[OverlapContract, ...]] = {
            "": BASE_OVERLAP_CONTRACTS
        }
        if cluster_config.prefetch:
            reads, writes = STAGE_EFFECTS["prefetch"]
            contracts: tuple[OverlapContract, ...] = ()
            if depth > 1:
                writes = writes | {WINDOW_RESOURCE}
                contracts = window_overlap_contracts(depth)
            self.register_stage(
                "prefetch",
                self.stage_prefetch,
                after="read",
                reads=reads,
                writes=writes,
                contracts=contracts,
            )

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.config.n_nodes

    def _make_node(self, node_id: int) -> HPSNode:
        """Build one fresh node from the cluster's construction recipe.

        Used at construction and to spawn the replacement node in a
        partial restore (:meth:`restore_node`) — the replacement must be
        built exactly like the original so restored state lands on an
        identical substrate.
        """
        return HPSNode(
            node_id,
            self.model_spec,
            self.config,
            self.sparse_optimizer,
            self.generator,
            hardware=self._hardware,
            dense_optimizer=DenseAdagrad(lr=0.05),
            ssd_directory=(
                f"{self._ssd_directory}/node{node_id}"
                if self._ssd_directory
                else None
            ),
            functional_batch_size=self.functional_batch_size,
        )

    # ------------------------------------------------------------------
    # Algorithm 1 as four independently-callable pipeline stages.  The
    # lockstep path (train_round) runs them back-to-back; the pipelined
    # path (train_pipelined) hands the same functions to the
    # PipelinedEngine, which overlaps consecutive rounds on the clock.
    # ------------------------------------------------------------------
    def stage_functions(self) -> tuple[tuple[str, StageFn], ...]:
        """The pipeline stages as ``(name, fn(ctx) -> seconds)`` pairs.

        The base Algorithm 1 stages plus anything spliced in via
        :meth:`register_stage`, in execution order.
        """
        return tuple((s.name, s.fn) for s in self._stage_defs)

    def stage_specs(self) -> tuple[StageSpec, ...]:
        """The registered stages with their declared effect sets."""
        return tuple(self._stage_defs)

    def overlap_contracts(self) -> tuple[OverlapContract, ...]:
        """Every sanctioned-overlap declaration currently in force."""
        return tuple(
            c for group in self._stage_contracts.values() for c in group
        )

    def register_stage(
        self,
        name: str,
        fn: StageFn,
        *,
        after: str,
        reads: Iterable[str] = (),
        writes: Iterable[str] = (),
        contracts: Iterable[OverlapContract] = (),
    ) -> None:
        """Splice stage ``name`` into the pipeline right after ``after``.

        Stage functions share the uniform ``fn(ctx) -> seconds``
        signature; lockstep, the pipelined engine, and the bench
        harness's instrumentation all iterate :meth:`stage_functions`,
        so a registered stage needs no further wiring anywhere.

        ``reads`` / ``writes`` declare the shared resources the stage
        touches (:mod:`repro.analysis.effects`); a stage that conflicts
        with a potentially-concurrent stage must also supply
        ``contracts`` justifying the overlap, or
        :meth:`train_pipelined` will refuse to run the registry.
        Stages with empty effect sets conflict with nothing (but the
        dynamic :class:`~repro.analysis.tracer.EffectTracer` will hold
        them to that claim in tests).
        """
        names = [s.name for s in self._stage_defs]
        if name in names:
            raise ValueError(f"stage {name!r} is already registered")
        if after not in names:
            raise ValueError(f"cannot register after unknown stage {after!r}")
        spec = StageSpec(name, fn, frozenset(reads), frozenset(writes))
        self._stage_defs.insert(names.index(after) + 1, spec)
        extra = tuple(contracts)
        if extra:
            self._stage_contracts[name] = extra

    def unregister_stage(self, name: str) -> None:
        """Remove a stage spliced in via :meth:`register_stage`.

        The four base Algorithm 1 stages are structural and cannot be
        removed; unregistering a name that is not in the registry is an
        error (it usually means a typo, not a no-op).  Contracts the
        stage registered are dropped with it.
        """
        if name in PIPELINE_STAGE_NAMES:
            raise ValueError(
                f"stage {name!r} is a base Algorithm 1 stage and cannot "
                "be unregistered"
            )
        names = [s.name for s in self._stage_defs]
        if name not in names:
            raise ValueError(f"stage {name!r} is not registered")
        del self._stage_defs[names.index(name)]
        self._stage_contracts.pop(name, None)

    def check_stage_conflicts(self) -> None:
        """Statically validate the registered stage set's effect sets.

        Raises :class:`~repro.analysis.effects.StageConflictError` if
        two stages the engine may overlap share a written resource
        without an :class:`~repro.analysis.effects.OverlapContract`.
        :meth:`train_pipelined` runs this before every pipelined run;
        lockstep execution never overlaps stages and does not need it.
        """
        _check_stage_conflicts(
            self.stage_specs(), contracts=self.overlap_contracts()
        )

    def wrap_stages(self, wrap: Callable[[str, StageFn], StageFn]) -> None:
        """Replace every stage fn with ``wrap(name, fn)`` in the registry.

        Instrumentation hook: the bench harness wraps each stage with a
        wall-clock accumulator.  Both execution modes resolve stages
        through :meth:`stage_functions`, so wrappers installed here are
        driven everywhere a stage runs.  Declared effect sets are
        preserved — a wrapper instruments a stage, it does not change
        what the stage touches.  Re-wrapping already-wrapped stages
        would double-count (and strand the originals), so it is an
        error — call :meth:`unwrap_stages` first.
        """
        if self._unwrapped_stages is not None:
            raise RuntimeError(
                "stages are already wrapped — call unwrap_stages() before "
                "installing another wrapper"
            )
        self._unwrapped_stages = list(self._stage_defs)
        self._stage_defs = [
            dataclasses.replace(s, fn=wrap(s.name, s.fn))
            for s in self._stage_defs
        ]

    def unwrap_stages(self) -> None:
        """Drop :meth:`wrap_stages` instrumentation, restoring the
        pre-wrap registry (stages registered *after* wrapping are kept,
        unwrapped only if they were wrapped individually by the caller).
        """
        if self._unwrapped_stages is None:
            raise RuntimeError("stages are not wrapped")
        wrapped_names = {s.name for s in self._unwrapped_stages}
        extras = [
            s for s in self._stage_defs if s.name not in wrapped_names
        ]
        restored = list(self._unwrapped_stages)
        for spec in extras:
            # Re-splice post-wrap registrations at their current position.
            idx = [s.name for s in self._stage_defs].index(spec.name)
            restored.insert(min(idx, len(restored)), spec)
        self._stage_defs = restored
        self._unwrapped_stages = None

    def stage_read(self, ctx: RoundContext) -> float:
        """Stage 1 — HDFS read (Alg. 1 line 2); data-parallel per node.

        In planned mode this stage also computes the round's
        :class:`~repro.plan.RoundPlan` — the only place key metadata
        (unique sets, owner partitions, shard unions) is derived; every
        later stage consumes the plan's precomputed index arrays.

        At ``prefetch_depth`` k > 1 it additionally peeks the batches of
        rounds ``b+1..b+k-1`` (no ledger/fault side effects — those
        settle in the round that consumes the batch) so the plan can
        price each future round's per-node MEM unions, and it reuses the
        current round's union carried from the previous round's
        lookahead instead of recomputing it.
        """
        r = ctx.round_index
        peeked = self._peeked.pop(r, None)
        if peeked is not None:
            ctx.timed = [
                n.hdfs.account(t) for n, t in zip(self.nodes, peeked)
            ]
        else:
            ctx.timed = [
                n.hdfs.read(r * self.n_nodes + n.node_id) for n in self.nodes
            ]
        ctx.read_seconds = max(t.read_seconds for t in ctx.timed)
        if self.use_plan:
            depth = self.config.prefetch_depth
            lookahead: list[list[Batch]] | None = None
            prefetch_unions: list[np.ndarray] | None = None
            sync_carry = None
            if depth > 1:
                lookahead = []
                for d in range(1, depth):
                    fut = r + d
                    if fut not in self._peeked:
                        self._peeked[fut] = [
                            n.hdfs.peek(fut * self.n_nodes + n.node_id)
                            for n in self.nodes
                        ]
                    lookahead.append([t.batch for t in self._peeked[fut]])
                if self._next_unions is not None and self._next_unions[0] == r:
                    prefetch_unions = self._next_unions[1]
                    sync_carry = self._next_unions[2]
            ctx.plan = build_round_plan(
                [t.batch for t in ctx.timed],
                node_partitioner=self.nodes[0].mem_ps.partitioner,
                gpu_partitioner=self.nodes[0].hbm_ps.params.partitioner,
                n_gpus=self.config.gpus_per_node,
                mb_rounds=self.config.minibatches_per_gpu,
                prefetch=self.config.prefetch,
                lookahead=lookahead,
                prefetch_unions=prefetch_unions,
                sync_carry=sync_carry,
            )
            if depth > 1 and ctx.plan.prefetch is not None:
                self._next_unions = (
                    r + 1,
                    [p.lookahead[0] for p in ctx.plan.prefetch],
                    ctx.plan.lookahead_sync[0]
                    if ctx.plan.lookahead_sync
                    else None,
                )
        return ctx.read_seconds

    def _snapshot_counters(self, ctx: RoundContext) -> None:
        """Bracket the round's cache/SSD/compaction accounting.

        Called by the round's first cache-touching stage — prefetch when
        registered, prepare otherwise — and idempotent per round, so the
        brackets stay correct in both execution modes whichever stage
        runs first.
        """
        if ctx.cache_stats_before:
            return
        nodes = self.nodes
        ctx.cache_stats_before = [
            (n.mem_ps.cache.stats.hits, n.mem_ps.cache.stats.misses)
            for n in nodes
        ]
        ctx.admission_before = [
            n.mem_ps._admission_snapshot() for n in nodes
        ]
        ctx.compactions_before = sum(
            n.ssd_ps.compactor.total_compactions for n in nodes
        )
        ctx.ssd_before = [
            n.ledger.total("ssd_read") + n.ledger.total("ssd_write")
            for n in nodes
        ]
        ctx.extent_before = [
            n.ssd_ps.store.extent_cache.resizes for n in nodes
        ]

    def stage_prefetch(self, ctx: RoundContext) -> float:
        """Optional stage — resolve + pin the round's MEM working set.

        Registered between read and prepare when ``config.prefetch`` is
        on: every node pulls its :class:`~repro.plan.NodePrefetchPlan`
        union (local partition, peer-served partitions, owner-queue
        keys) through cache → SSD → fresh-init exactly once and pins it
        for the round, so every later stage's MEM access is a pure row
        gather.  Nodes run in parallel — the stage costs the slowest
        node's resolve + load time.
        """
        self._snapshot_counters(ctx)
        seconds = 0.0
        for node, pplan in zip(self.nodes, ctx.plan.prefetch):
            seconds = max(seconds, node.mem_ps.prefetch(pplan))
        ctx.prefetch_seconds = seconds
        return seconds

    def stage_prepare(self, ctx: RoundContext) -> float:
        """Stage 2 — gather working parameters (lines 3-4).

        Snapshots the cache/SSD/compaction counters when it is the
        round's first cache-touching stage (no prefetch registered), so
        the per-round accounting brackets correctly in both execution
        modes.
        """
        nodes = self.nodes
        plan = ctx.plan
        self._snapshot_counters(ctx)
        if plan is not None:
            ctx.workings = [p.keys for p in plan.nodes]
            prep_out = [
                node.mem_ps.prepare(w, plan=p)
                for node, w, p in zip(nodes, ctx.workings, plan.nodes)
            ]
        else:
            ctx.workings = [t.batch.unique_keys() for t in ctx.timed]
            prep_out = [
                node.mem_ps.prepare(w) for node, w in zip(nodes, ctx.workings)
            ]
        ctx.prep_values = [values for values, _ in prep_out]
        ctx.pull_local_seconds = max(p.local_seconds for _, p in prep_out)
        ctx.pull_remote_seconds = max(p.remote_seconds for _, p in prep_out)
        return max(ctx.pull_local_seconds, ctx.pull_remote_seconds)

    def stage_load(self, ctx: RoundContext) -> float:
        """Stage 3 — CPU partition + HBM working-set staging (lines 5-10)."""
        n_gpus = self.config.gpus_per_node
        mb_rounds = self.config.minibatches_per_gpu
        plan = ctx.plan
        cpu_s = 0.0
        load_s = 0.0
        for i, (node, working, values) in enumerate(
            zip(self.nodes, ctx.workings, ctx.prep_values)
        ):
            cpu_s = max(cpu_s, node.cpu_partition_time(working.size))
            load_s = max(
                load_s,
                node.hbm_ps.load_working_set(
                    working,
                    values,
                    plan=plan.nodes[i] if plan is not None else None,
                ),
            )
        if plan is not None:
            ctx.shards = [p.shards for p in plan.nodes]
        else:
            ctx.shards = [t.batch.shard(n_gpus * mb_rounds) for t in ctx.timed]
        ctx.cpu_partition_seconds = cpu_s + load_s
        self._staged_rounds += 1
        return ctx.cpu_partition_seconds

    def stage_train(self, ctx: RoundContext) -> float:
        """Stage 4 — mini-batch training, sync, write-back (lines 11-18).

        Produces the round's :class:`BatchStats` (``ctx.stats``) and
        returns the stage's critical-path seconds, including the MEM-PS
        write-back that completes the round.
        """
        nodes = self.nodes
        n_gpus = self.config.gpus_per_node
        mb_rounds = self.config.minibatches_per_gpu
        shards = ctx.shards
        plan = ctx.plan
        flops_per_ex = dense_flops_per_example(
            self.model_spec.n_slots,
            self.model_spec.embedding_dim,
            self.model_spec.hidden_layers,
        )
        hbm_pull_s = hbm_push_s = gpu_s = allreduce_s = 0.0
        worker_critical_s = 0.0
        losses: list[float] = []
        n_examples = 0
        for m in range(mb_rounds):
            round_worker_t = 0.0
            node_dense_grads: list[list[np.ndarray]] = []
            for i, (node, minibatches) in enumerate(zip(nodes, shards)):
                acc = self._node_dense_acc[i]
                started = False
                worker_t = 0.0
                for gpu in range(n_gpus):
                    mb = minibatches[m * n_gpus + gpu]
                    if mb.n_examples == 0:
                        continue
                    mbp = (
                        plan.nodes[i].minibatches[m * n_gpus + gpu]
                        if plan is not None
                        else None
                    )
                    mb_keys = mbp.keys if mbp is not None else mb.unique_keys()
                    emb, t_pull = node.hbm_ps.pull_embeddings(
                        mb_keys, gpu=gpu, mb=mbp
                    )
                    result = node.model.train_minibatch(
                        mb,
                        mb_keys,
                        emb,
                        flat_idx=mbp.emb_idx if mbp is not None else None,
                    )
                    t_gpu = node.gpu_compute.train(flops_per_ex * mb.n_examples)
                    t_push = node.hbm_ps.push_gradients(
                        result.sparse_grad.keys,
                        result.sparse_grad.grads.astype(np.float32),
                        gpu=gpu,
                        mb=mbp,
                    )
                    worker_t = max(worker_t, t_pull + t_gpu + t_push)
                    hbm_pull_s += t_pull
                    hbm_push_s += t_push
                    gpu_s += t_gpu
                    losses.append(result.loss)
                    n_examples += mb.n_examples
                    grads = node.model.mlp.gradients()
                    if not started:
                        acc.start(grads)
                        started = True
                    else:
                        acc.add(grads)
                if not started:
                    acc.start_zero(node.model.mlp.parameters())
                node_dense_grads.append(acc.arrays)
                round_worker_t = max(round_worker_t, worker_t)

            # Inter-node synchronization (Section 4.2) per mini-batch.
            splan = plan.sync[m] if plan is not None else None
            node_updates = [
                node.hbm_ps.drain_gradients(
                    sync=splan.nodes[i] if splan is not None else None
                )
                for i, node in enumerate(nodes)
            ]
            if self._fault_arm is not None:
                # Guard the collective *before* it runs: a transient comm
                # fault costs retries/backoff, an exhausted one escapes
                # with global scope while the allreduce (a pure function
                # of the drained gradients) has not yet been applied.
                allreduce_s += self._fault_arm.guard(
                    {"comm_allreduce": 0.0}, scope="global"
                )
            # At one sync round per mini-batch, each node's drained keys
            # are its full working set, so the sync plan's resident
            # positions place every node's contribution inside the
            # global union — the allreduce can scatter instead of merge.
            union_plan = None
            if splan is not None and mb_rounds == 1:
                union_plan = (
                    splan.keys,
                    [spn.resident_idx for spn in splan.nodes],
                )
            global_update, t_ar = hierarchical_allreduce(
                node_updates,
                networks=[node.network for node in nodes],
                nvlinks=[node.hbm_ps.nvlink for node in nodes],
                gpus_per_node=n_gpus,
                union_plan=union_plan,
            )
            if splan is not None:
                # The plan predicted this union at read time; a mismatch
                # means the plan and the drained gradients diverged.
                assert np.array_equal(global_update.keys, splan.keys)
            t_apply = 0.0
            for i, node in enumerate(nodes):
                if splan is not None:
                    spn = splan.nodes[i]
                    missing, t_a = node.hbm_ps.apply_update(
                        global_update, sync=spn
                    )
                    t_apply = max(t_apply, t_a)
                    own = spn.missing_own_idx
                    if own.size:
                        pf = (
                            plan.prefetch[i]
                            if plan.prefetch is not None
                            else None
                        )
                        node.mem_ps.apply_gradients(
                            global_update.keys[own],
                            global_update.grads[own],
                            pre_owned=True,
                            rows=(
                                pf.rows[pf.update_pos[m]]
                                if pf is not None
                                else None
                            ),
                        )
                else:
                    missing, t_a = node.hbm_ps.apply_update(global_update)
                    t_apply = max(t_apply, t_a)
                    if missing.size:
                        idx = np.searchsorted(global_update.keys, missing)
                        node.mem_ps.apply_gradients(
                            missing, global_update.grads[idx]
                        )
            dense_sum, t_dense = allreduce_dense(
                node_dense_grads,
                networks=[node.network for node in nodes],
                out=self._dense_sum_acc,
            )
            for node in nodes:
                node.dense_optimizer.step(
                    node.model.mlp.parameters(), dense_sum
                )
            allreduce_s += t_ar + t_dense
            # Workers run in parallel, so the slowest worker is the
            # mini-batch round's critical path; rounds are serial.
            worker_critical_s += round_worker_t

        # --- write back (lines 16-18) ------------------------------------
        absorb_s = 0.0
        for i, node in enumerate(nodes):
            keys, values = node.hbm_ps.dump()
            t = node.mem_ps.absorb_updates(
                keys,
                values,
                plan=plan.nodes[i] if plan is not None else None,
            )
            t += node.mem_ps.end_batch()
            absorb_s = max(absorb_s, t)

        # --- aggregate ---------------------------------------------------
        hits = sum(
            n.mem_ps.cache.stats.hits - b[0]
            for n, b in zip(nodes, ctx.cache_stats_before)
        )
        misses = sum(
            n.mem_ps.cache.stats.misses - b[1]
            for n, b in zip(nodes, ctx.cache_stats_before)
        )
        ssd_after = [
            n.ledger.total("ssd_read") + n.ledger.total("ssd_write") for n in nodes
        ]
        adm_after = [n.mem_ps._admission_snapshot() for n in nodes]
        adm_delta = [
            tuple(a - b for a, b in zip(after, before))
            for after, before in zip(adm_after, ctx.admission_before)
        ]
        stats = BatchStats(
            round_index=ctx.round_index,
            read_seconds=ctx.read_seconds,
            pull_local_seconds=ctx.pull_local_seconds,
            pull_remote_seconds=ctx.pull_remote_seconds,
            pull_push_seconds=ctx.prefetch_seconds
            + max(ctx.pull_local_seconds, ctx.pull_remote_seconds)
            + absorb_s,
            cpu_partition_seconds=ctx.cpu_partition_seconds,
            hbm_pull_seconds=hbm_pull_s / self.n_nodes,
            hbm_push_seconds=hbm_push_s / self.n_nodes,
            gpu_train_seconds=gpu_s / self.n_nodes,
            allreduce_seconds=allreduce_s,
            # Critical path of the GPU stage: the slowest worker per
            # mini-batch round (workers are parallel, rounds serial) plus
            # the synchronization.  An average over workers would
            # underestimate the stage whenever workers are imbalanced.
            train_seconds=worker_critical_s + allreduce_s,
            worker_critical_seconds=worker_critical_s,
            ssd_io_seconds=max(a - b for a, b in zip(ssd_after, ctx.ssd_before)),
            cache_hit_rate=hits / max(1, hits + misses),
            n_working_params=int(sum(w.size for w in ctx.workings)),
            n_examples=n_examples,
            mean_loss=float(np.mean(losses)) if losses else float("nan"),
            compactions=sum(n.ssd_ps.compactor.total_compactions for n in nodes)
            - ctx.compactions_before,
            cache_admission_runs=sum(d[0] for d in adm_delta),
            cache_collision_splits=sum(d[1] for d in adm_delta),
            cache_scalar_fallbacks=sum(d[2] for d in adm_delta),
            prefetch_seconds=ctx.prefetch_seconds,
            prefetch_depth_backoffs=sum(
                n.mem_ps.take_depth_backoffs() for n in nodes
            ),
            extent_cache_resizes=sum(
                n.ssd_ps.store.extent_cache.resizes for n in nodes
            )
            - sum(ctx.extent_before),
            extent_cache_files=sum(
                n.ssd_ps.store.extent_cache.max_files for n in nodes
            ),
        )
        ctx.stats = stats
        self.history.append(stats)
        self.rounds_completed += 1
        self._staged_rounds -= 1
        return worker_critical_s + allreduce_s + absorb_s

    # ------------------------------------------------------------------
    def train_round(self, round_index: int | None = None) -> BatchStats:
        """Run one global batch through Algorithm 1 on every node.

        Lockstep mode: the pipeline stages run back-to-back.  This is
        the parity oracle for :meth:`train_pipelined` — both modes call
        the same stage functions in the same order.
        """
        r = self.rounds_completed if round_index is None else round_index
        ctx = RoundContext(round_index=r)
        for _, stage_fn in self.stage_functions():
            stage_fn(ctx)
        return ctx.stats

    def train(self, n_rounds: int) -> list[BatchStats]:
        """Run ``n_rounds`` global batches in lockstep; returns their stats."""
        return [self.train_round() for _ in range(n_rounds)]

    def train_pipelined(
        self,
        n_rounds: int,
        *,
        queue_capacity: int | tuple[int, ...] = 2,
    ) -> PipelinedRun:
        """Run ``n_rounds`` with inter-round overlap (the stage pipeline).

        Performs exactly the same work as ``n_rounds`` :meth:`train_round`
        calls — trained parameters are bit-identical to lockstep — but the
        clock overlaps consecutive rounds' stages under bounded prefetch
        queues, so the reported makespan reflects I/O hidden behind GPU
        compute (paper Section 3).

        Before anything runs, the registered stage set is validated
        against its declared effects (:meth:`check_stage_conflicts`):
        pipelined execution is exactly the mode in which stages of
        different rounds share the clock, so an undeclared write/write
        or write/read overlap is refused up front instead of silently
        racing in spirit.
        """
        self.check_stage_conflicts()
        base = self.rounds_completed
        ctxs: dict[int, RoundContext] = {}

        def ctx_for(b: int) -> RoundContext:
            if b not in ctxs:
                ctxs[b] = RoundContext(round_index=base + b)
            return ctxs[b]

        stages = [
            StageDef(
                spec.name,
                lambda b, fn=spec.fn: fn(ctx_for(b)),
                reads=spec.reads,
                writes=spec.writes,
            )
            for spec in self._stage_defs
        ]
        engine = PipelinedEngine(stages, queue_capacity=queue_capacity)
        run = engine.run(n_rounds)
        return PipelinedRun([ctxs[b].stats for b in range(n_rounds)], run)

    # ------------------------------------------------------------------
    def _require_round_boundary(self, what: str) -> None:
        """Cross-tier reads/snapshots are only coherent between rounds.

        Between ``stage_load`` and the end of ``stage_train`` the freshest
        copy of a working parameter lives *only* in a node's HBM hash
        table — the MEM/SSD tiers see it again at write-back.  A MEM/SSD
        read in that window would silently serve stale values (or fall
        through to the fresh-key init), so it is an error, not a best
        effort.
        """
        if self._staged_rounds:
            raise RuntimeError(
                f"{what} is only valid at a round boundary: "
                f"{self._staged_rounds} round(s) currently have working "
                "parameters staged in HBM (mid-pipeline state precedes "
                "the MEM-PS write-back)"
            )

    def abort_round(self) -> None:
        """Discard a partially-executed round's in-flight MEM state.

        The recovery hook for a fault that escaped from ``read``,
        ``prefetch`` or ``prepare``: those stages mutate only stream
        counters and cache *residency* (which rows are resident, pinned,
        or queued for overflow) — never parameter values, which change
        only in ``train``'s write-back.  Releasing the pins, settling
        overflow to SSD, and dropping the cross-round prefetch union
        therefore returns every tier to a value-exact round boundary, so
        the aborted round can be retried from its read stage (or a
        partial ``restore_node`` applied) without forking parameters.

        Only valid while no round has working parameters staged in HBM —
        past ``stage_load`` the freshest values live only in the GPU
        hash tables and a full restore is the sole safe recovery.
        """
        self._require_round_boundary("abort_round")
        for node in self.nodes:
            node.mem_ps.abort_round()
        # The lookahead peek buffer and carried unions describe rounds
        # the aborted schedule expected; the retried round re-peeks
        # (batches are pure functions of the index, so a re-peek cannot
        # fork the data — only recompute it).
        self._peeked.clear()
        self._next_unions = None

    def lookup_embeddings(self, keys: np.ndarray) -> np.ndarray:
        """Read-only embedding lookup across owners (for evaluation).

        Unknown keys return the optimizer's deterministic zero-ish init
        without being persisted, and cache statistics are untouched.
        Only callable at a round boundary — every completed round's
        write-back has landed in the MEM tier, so MEM cache + SSD hold
        the newest copy of every key (enforced via
        :meth:`_require_round_boundary`).
        """
        self._require_round_boundary("lookup_embeddings")
        keys = as_keys(keys)
        opt = self.sparse_optimizer
        values = np.zeros((keys.size, opt.value_dim), dtype=np.float32)
        found_any = np.zeros(keys.size, dtype=bool)
        owner = self.nodes[0].mem_ps.owner_of(keys)
        for node in self.nodes:
            idx = np.flatnonzero(owner == node.node_id)
            if idx.size == 0:
                continue
            mem = node.mem_ps
            vals, found = mem.cache.peek_batch(keys[idx])
            values[idx[found]] = vals[found]
            found_any[idx[found]] = True
            miss = idx[~found_any[idx]]
            if miss.size:
                result = node.ssd_ps.store.read(keys[miss])
                values[miss[result.found]] = result.values[result.found]
                found_any[miss[result.found]] = True
        never_seen = np.flatnonzero(~found_any)
        if never_seen.size:
            values[never_seen] = opt.init_for_keys(
                keys[never_seen], seed=self.config.seed
            )
        return opt.embedding(values)

    def predict(self, batch: Batch) -> np.ndarray:
        """Click probabilities under the current global model."""
        keys = batch.unique_keys()
        emb = self.lookup_embeddings(keys)
        return self.nodes[0].model.predict_proba(batch, keys, emb)

    def evaluate_auc(self, batch: Batch) -> float:
        from repro.nn.metrics import auc

        return auc(batch.labels, self.predict(batch))

    # ------------------------------------------------------------------
    # Checkpoint / restore (repro.ckpt)
    # ------------------------------------------------------------------
    def save_checkpoint(
        self,
        directory: str,
        *,
        mode: str = "full",
        dirty_keys: list[np.ndarray] | None = None,
    ) -> "CheckpointStats":
        """Materialize a crash-consistent snapshot into ``directory``.

        Captures everything ``train(k) + restore + train(m)`` needs to be
        bit-identical to ``train(k + m)``: dense tower + optimizer state,
        each node's MEM cache (contents and replacement order), the SSD
        file store (files, mapping, stale counters), and the stream
        position.  Only valid at a round boundary.  Simulated write cost
        is charged per node under ``ckpt_write``; returns
        :class:`~repro.ckpt.checkpoint.CheckpointStats`.

        ``mode`` selects the snapshot form: ``"full"`` (self-contained),
        ``"delta"`` (only state changed since the last snapshot, chained
        to it — requires a prior save/restore this process), or
        ``"auto"`` (delta when a valid base exists, else full).
        ``dirty_keys`` optionally narrows the delta's MEM cache diff to
        the given per-node key arrays (see
        :func:`~repro.ckpt.checkpoint.save_cluster_delta`).
        """
        from repro.ckpt import checkpoint as ckpt

        if mode == "auto":
            mode = "delta" if ckpt.delta_base_valid(self, directory) else "full"
        if mode == "full":
            return ckpt.save_cluster(self, directory)
        if mode == "delta":
            return ckpt.save_cluster_delta(self, directory, dirty_keys=dirty_keys)
        raise ValueError(f"unknown checkpoint mode {mode!r}")

    def restore_node(self, directory: str, node_id: int) -> "CheckpointStats":
        """Partial restore: rebuild one dead node from a snapshot chain
        taken at the survivors' current round boundary; the surviving
        majority reloads nothing.  See
        :func:`~repro.ckpt.checkpoint.restore_node`.
        """
        from repro.ckpt.checkpoint import restore_node

        return restore_node(self, directory, node_id)

    def enable_snapshot_stage(
        self,
        directory: str,
        *,
        every: int = 1,
        full_every: int | None = None,
        keep_last: int | None = None,
        keep_every: int | None = None,
    ) -> StageFn:
        """Register the continuous-checkpoint pipeline stage.

        Splices ``snapshot`` after ``train`` via :meth:`register_stage`,
        so both execution modes run it; under :meth:`train_pipelined`
        its simulated cost lands in the pipeline shadow of the next
        round's read/prepare stages instead of the training critical
        path.  Every ``every`` rounds it saves
        ``<directory>/round_<NNNNNN>`` — a delta chained to the previous
        snapshot (the first save, and every ``full_every``-th thereafter
        when set, is full).  The delta's MEM dirty-key set is
        accumulated from each round's plan
        (:meth:`~repro.plan.RoundPlan.dirty_keys_of`) — no
        re-partitioning, no slab comparison; unplanned rounds fall back
        to the value-diff path.  With ``keep_last`` set, the retention
        ladder (:func:`~repro.ckpt.format.prune_checkpoints`) runs after
        each save; it is delta-chain-aware, so a base referenced by a
        surviving delta is never dropped.

        Returns the stage function (``unregister_stage("snapshot")``
        removes it); its ``history`` attribute accumulates the
        :class:`~repro.ckpt.checkpoint.CheckpointStats` of every
        snapshot taken.
        """
        import os

        from repro.ckpt import checkpoint as ckpt
        from repro.ckpt.format import checkpoint_dir_name, prune_checkpoints

        if every < 1:
            raise ValueError("every must be >= 1")
        if full_every is not None and full_every < 1:
            raise ValueError("full_every must be >= 1")
        os.makedirs(directory, exist_ok=True)
        state: dict[str, Any] = {
            "dirty": [[] for _ in range(self.n_nodes)],
            "dirty_known": True,
            "since_full": 0,
        }

        def stage_snapshot(ctx: RoundContext) -> float:
            # Accumulate the round's MEM write set straight from the plan
            # (write-back local partition + owner-queue applies).
            if ctx.plan is not None:
                for i in range(self.n_nodes):
                    state["dirty"][i].append(ctx.plan.dirty_keys_of(i))
            else:
                # An unplanned round's write set was never materialized;
                # the next delta must diff value slabs instead.
                state["dirty_known"] = False
            if self.rounds_completed % every:
                return 0.0
            target = os.path.join(
                directory, checkpoint_dir_name(self.rounds_completed)
            )
            take_full = not ckpt.delta_base_valid(self, target) or (
                full_every is not None and state["since_full"] >= full_every - 1
            )
            if take_full:
                stats = self.save_checkpoint(target, mode="full")
                state["since_full"] = 0
            else:
                dirty = None
                if state["dirty_known"]:
                    dirty = [
                        (
                            np.unique(np.concatenate(parts))
                            if parts
                            else as_keys([])
                        )
                        for parts in state["dirty"]
                    ]
                stats = self.save_checkpoint(
                    target, mode="delta", dirty_keys=dirty
                )
                state["since_full"] += 1
            state["dirty"] = [[] for _ in range(self.n_nodes)]
            state["dirty_known"] = True
            stage_snapshot.history.append(stats)  # type: ignore[attr-defined]
            if keep_last is not None:
                prune_checkpoints(
                    directory, keep_last=keep_last, keep_every=keep_every
                )
            return stats.seconds

        stage_snapshot.history = []  # type: ignore[attr-defined]
        reads, writes = STAGE_EFFECTS["snapshot"]
        if self.config.prefetch_depth > 1:
            # The MEM export transiently unpins + re-pins the in-flight
            # window (pins are residency metadata, not snapshot state) —
            # a write to the shared window resource, sanctioned by the
            # depth-aware contracts registered with the prefetch stage.
            writes = writes | {WINDOW_RESOURCE}
        self.register_stage(
            "snapshot",
            stage_snapshot,
            after="train",
            reads=reads,
            writes=writes,
            contracts=SNAPSHOT_OVERLAP_CONTRACTS,
        )
        return stage_snapshot

    @classmethod
    def restore(
        cls,
        directory: str,
        cluster_config: ClusterConfig | None = None,
        *,
        model_spec: ModelSpec | None = None,
        sparse_optimizer: SparseOptimizer | None = None,
        hardware: NodeHardware | None = None,
        data_seed: int | None = None,
        functional_batch_size: int | None = None,
        zipf_exponent: float | None = None,
        ssd_directory: str | None = None,
        use_plan: bool = True,
    ) -> "HPSCluster":
        """Rebuild a cluster from a checkpoint written by
        :meth:`save_checkpoint`.

        Parameters left as ``None`` come from the manifest; explicitly
        passed configuration must match the saved fingerprint or
        :class:`~repro.ckpt.format.CheckpointError` is raised.  Simulated
        read cost lands under ``ckpt_read``; the resulting cluster's
        :attr:`restore_stats` carries the accounting.
        """
        from repro.ckpt.checkpoint import restore_cluster

        return restore_cluster(
            cls,
            directory,
            cluster_config,
            model_spec=model_spec,
            sparse_optimizer=sparse_optimizer,
            hardware=hardware,
            data_seed=data_seed,
            functional_batch_size=functional_batch_size,
            zipf_exponent=zipf_exponent,
            ssd_directory=ssd_directory,
            use_plan=use_plan,
        )
