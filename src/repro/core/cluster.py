"""The distributed hierarchical parameter server cluster.

:class:`HPSCluster` instantiates ``n_nodes`` :class:`~repro.core.node.HPSNode`
objects, wires their MEM-PS peers together, and drives the full Algorithm 1
training workflow in lockstep across nodes:

1.  every node streams its own batch from HDFS (data parallel);
2.  every node gathers its batch's working parameters from local
    MEM-PS/SSD-PS and remote MEM-PS;
3.  working parameters are partitioned across the node's GPUs and inserted
    into the HBM-PS distributed hash table;
4.  the batch is sharded into mini-batches; per mini-batch each GPU worker
    pulls embeddings, runs forward/backward, pushes gradients back
    (Algorithm 2), and the cluster synchronizes with the hierarchical
    all-reduce before the next mini-batch — eliminating staleness;
5.  after the last mini-batch the MEM-PS pulls updated parameters back
    from the HBM-PS and dumps cache overflow to the SSD-PS.

Every step reports simulated seconds; :class:`BatchStats` aggregates them
into the exact stage decomposition the paper's Figures 3(c), 4(a) and 4(b)
plot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ClusterConfig, ModelSpec
from repro.data.batching import Batch
from repro.data.generator import CTRDataGenerator
from repro.hardware.gpu import dense_flops_per_example
from repro.hardware.specs import NodeHardware
from repro.hbm.allreduce import allreduce_dense, hierarchical_allreduce
from repro.core.node import HPSNode
from repro.nn.optim import DenseAdagrad, SparseAdagrad, SparseOptimizer
from repro.utils.keys import as_keys

__all__ = ["HPSCluster", "BatchStats"]


@dataclass
class BatchStats:
    """Timing decomposition of one global training round.

    Stage semantics follow Fig. 3(c): ``read_seconds`` is the HDFS stage,
    ``pull_push_seconds`` the MEM-PS/SSD-PS stage, ``train_seconds`` the
    HBM-PS + GPU stage.  All are cluster critical-path values (max over
    nodes, since nodes run in parallel).
    """

    round_index: int
    read_seconds: float
    pull_local_seconds: float
    pull_remote_seconds: float
    pull_push_seconds: float
    cpu_partition_seconds: float
    hbm_pull_seconds: float
    hbm_push_seconds: float
    gpu_train_seconds: float
    allreduce_seconds: float
    train_seconds: float
    ssd_io_seconds: float
    cache_hit_rate: float
    n_working_params: int
    n_examples: int
    mean_loss: float
    compactions: int = 0

    @property
    def bottleneck_seconds(self) -> float:
        """Steady-state pipelined batch latency: the slowest stage."""
        return max(self.read_seconds, self.pull_push_seconds, self.train_seconds)

    @property
    def stage_times(self) -> tuple[float, float, float]:
        return (self.read_seconds, self.pull_push_seconds, self.train_seconds)


class HPSCluster:
    """Multi-node distributed hierarchical GPU parameter server."""

    def __init__(
        self,
        model_spec: ModelSpec,
        cluster_config: ClusterConfig,
        *,
        sparse_optimizer: SparseOptimizer | None = None,
        hardware: NodeHardware | None = None,
        data_seed: int | None = None,
        functional_batch_size: int = 4096,
        zipf_exponent: float = 1.05,
        ssd_directory: str | None = None,
    ) -> None:
        self.model_spec = model_spec
        self.config = cluster_config
        self.sparse_optimizer = sparse_optimizer or SparseAdagrad(
            model_spec.embedding_dim, lr=0.05
        )
        self.generator = CTRDataGenerator(
            model_spec,
            seed=data_seed if data_seed is not None else cluster_config.seed,
            zipf_exponent=zipf_exponent,
        )
        self.nodes = [
            HPSNode(
                i,
                model_spec,
                cluster_config,
                self.sparse_optimizer,
                self.generator,
                hardware=hardware,
                dense_optimizer=DenseAdagrad(lr=0.05),
                ssd_directory=(
                    f"{ssd_directory}/node{i}" if ssd_directory else None
                ),
                functional_batch_size=functional_batch_size,
            )
            for i in range(cluster_config.n_nodes)
        ]
        peers = [n.mem_ps for n in self.nodes]
        for node in self.nodes:
            node.mem_ps.peers = peers
        self.rounds_completed = 0
        self.history: list[BatchStats] = []

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.config.n_nodes

    def _cpu_partition_time(self, n_keys: int, node: HPSNode) -> float:
        cpu = node.hardware.cpu
        # Half the cores shard keys while the other half run the pipeline.
        rate = cpu.keys_per_second_per_core * max(1, cpu.cores // 2)
        return node.ledger.add("cpu_partition", n_keys / rate)

    # ------------------------------------------------------------------
    def train_round(self, round_index: int | None = None) -> BatchStats:
        """Run one global batch through Algorithm 1 on every node."""
        r = self.rounds_completed if round_index is None else round_index
        nodes = self.nodes
        n_gpus = self.config.gpus_per_node
        mb_rounds = self.config.minibatches_per_gpu

        cache_stats_before = [
            (n.mem_ps.cache.stats.hits, n.mem_ps.cache.stats.misses) for n in nodes
        ]
        compactions_before = sum(
            n.ssd_ps.compactor.total_compactions for n in nodes
        )
        ssd_before = [
            n.ledger.total("ssd_read") + n.ledger.total("ssd_write") for n in nodes
        ]

        # --- stage 1: HDFS read (Alg. 1 line 2) -------------------------
        timed = [n.hdfs.read(r * self.n_nodes + n.node_id) for n in nodes]
        read_s = max(t.read_seconds for t in timed)

        # --- stage 2: gather working parameters (lines 3-4) -------------
        workings = [t.batch.unique_keys() for t in timed]
        prep_out = [
            node.mem_ps.prepare(w) for node, w in zip(nodes, workings)
        ]
        pull_local_s = max(p.local_seconds for _, p in prep_out)
        pull_remote_s = max(p.remote_seconds for _, p in prep_out)

        # --- stage 3: partition + insert into HBM (lines 5-10) ----------
        cpu_s = 0.0
        load_s = 0.0
        for node, working, (values, _) in zip(nodes, workings, prep_out):
            cpu_s = max(cpu_s, self._cpu_partition_time(working.size, node))
            load_s = max(load_s, node.hbm_ps.load_working_set(working, values))

        shards = [t.batch.shard(n_gpus * mb_rounds) for t in timed]

        # --- stage 4: mini-batch training + sync (lines 11-15) ----------
        flops_per_ex = dense_flops_per_example(
            self.model_spec.n_slots,
            self.model_spec.embedding_dim,
            self.model_spec.hidden_layers,
        )
        hbm_pull_s = hbm_push_s = gpu_s = allreduce_s = 0.0
        losses: list[float] = []
        n_examples = 0
        for m in range(mb_rounds):
            round_worker_t = 0.0
            node_dense_grads: list[list[np.ndarray]] = []
            for node, minibatches in zip(nodes, shards):
                dense_acc: list[np.ndarray] | None = None
                worker_t = 0.0
                for gpu in range(n_gpus):
                    mb = minibatches[m * n_gpus + gpu]
                    if mb.n_examples == 0:
                        continue
                    mb_keys = mb.unique_keys()
                    emb, t_pull = node.hbm_ps.pull_embeddings(mb_keys, gpu=gpu)
                    result = node.model.train_minibatch(mb, mb_keys, emb)
                    t_gpu = node.gpu_compute.train(flops_per_ex * mb.n_examples)
                    t_push = node.hbm_ps.push_gradients(
                        result.sparse_grad.keys,
                        result.sparse_grad.grads.astype(np.float32),
                        gpu=gpu,
                    )
                    worker_t = max(worker_t, t_pull + t_gpu + t_push)
                    hbm_pull_s += t_pull
                    hbm_push_s += t_push
                    gpu_s += t_gpu
                    losses.append(result.loss)
                    n_examples += mb.n_examples
                    grads = node.model.mlp.gradients()
                    if dense_acc is None:
                        dense_acc = [g.astype(np.float64).copy() for g in grads]
                    else:
                        for a, g in zip(dense_acc, grads):
                            a += g
                if dense_acc is None:
                    dense_acc = [
                        np.zeros_like(p, dtype=np.float64)
                        for p in node.model.mlp.parameters()
                    ]
                node_dense_grads.append(dense_acc)
                round_worker_t = max(round_worker_t, worker_t)

            # Inter-node synchronization (Section 4.2) per mini-batch.
            node_updates = [node.hbm_ps.drain_gradients() for node in nodes]
            global_update, t_ar = hierarchical_allreduce(
                node_updates,
                networks=[node.network for node in nodes],
                nvlinks=[node.hbm_ps.nvlink for node in nodes],
                gpus_per_node=n_gpus,
            )
            t_apply = 0.0
            for node in nodes:
                missing, t_a = node.hbm_ps.apply_update(global_update)
                t_apply = max(t_apply, t_a)
                if missing.size:
                    idx = np.searchsorted(global_update.keys, missing)
                    node.mem_ps.apply_gradients(missing, global_update.grads[idx])
            dense_sum, t_dense = allreduce_dense(
                node_dense_grads, networks=[node.network for node in nodes]
            )
            for node in nodes:
                node.dense_optimizer.step(
                    node.model.mlp.parameters(),
                    [g.astype(np.float32) for g in dense_sum],
                )
            allreduce_s += t_ar + t_dense
            gpu_s_round = round_worker_t
            # (per-round worker time already folded into totals above)

        # --- stage 5: write back (lines 16-18) ---------------------------
        absorb_s = 0.0
        for node in nodes:
            keys, values = node.hbm_ps.dump()
            t = node.mem_ps.absorb_updates(keys, values)
            t += node.mem_ps.end_batch()
            absorb_s = max(absorb_s, t)

        # --- aggregate ---------------------------------------------------
        hits = sum(
            n.mem_ps.cache.stats.hits - b[0]
            for n, b in zip(nodes, cache_stats_before)
        )
        misses = sum(
            n.mem_ps.cache.stats.misses - b[1]
            for n, b in zip(nodes, cache_stats_before)
        )
        ssd_after = [
            n.ledger.total("ssd_read") + n.ledger.total("ssd_write") for n in nodes
        ]
        stats = BatchStats(
            round_index=r,
            read_seconds=read_s,
            pull_local_seconds=pull_local_s,
            pull_remote_seconds=pull_remote_s,
            pull_push_seconds=max(pull_local_s, pull_remote_s) + absorb_s,
            cpu_partition_seconds=cpu_s + load_s,
            hbm_pull_seconds=hbm_pull_s / self.n_nodes,
            hbm_push_seconds=hbm_push_s / self.n_nodes,
            gpu_train_seconds=gpu_s / self.n_nodes,
            allreduce_seconds=allreduce_s,
            train_seconds=(hbm_pull_s + hbm_push_s + gpu_s) / (self.n_nodes * n_gpus)
            + allreduce_s,
            ssd_io_seconds=max(a - b for a, b in zip(ssd_after, ssd_before)),
            cache_hit_rate=hits / max(1, hits + misses),
            n_working_params=int(sum(w.size for w in workings)),
            n_examples=n_examples,
            mean_loss=float(np.mean(losses)) if losses else float("nan"),
            compactions=sum(n.ssd_ps.compactor.total_compactions for n in nodes)
            - compactions_before,
        )
        self.history.append(stats)
        self.rounds_completed += 1
        return stats

    def train(self, n_rounds: int) -> list[BatchStats]:
        """Run ``n_rounds`` global batches; returns their stats."""
        return [self.train_round() for _ in range(n_rounds)]

    # ------------------------------------------------------------------
    def lookup_embeddings(self, keys: np.ndarray) -> np.ndarray:
        """Read-only embedding lookup across owners (for evaluation).

        Unknown keys return the optimizer's deterministic zero-ish init
        without being persisted, and cache statistics are untouched.
        """
        keys = as_keys(keys)
        opt = self.sparse_optimizer
        values = np.zeros((keys.size, opt.value_dim), dtype=np.float32)
        found_any = np.zeros(keys.size, dtype=bool)
        owner = self.nodes[0].mem_ps.owner_of(keys)
        for node in self.nodes:
            idx = np.flatnonzero(owner == node.node_id)
            if idx.size == 0:
                continue
            mem = node.mem_ps
            vals, found = mem.cache.peek_batch(keys[idx])
            values[idx[found]] = vals[found]
            found_any[idx[found]] = True
            miss = idx[~found_any[idx]]
            if miss.size:
                result = node.ssd_ps.store.read(keys[miss])
                values[miss[result.found]] = result.values[result.found]
                found_any[miss[result.found]] = True
        never_seen = np.flatnonzero(~found_any)
        if never_seen.size:
            values[never_seen] = opt.init_for_keys(
                keys[never_seen], seed=self.config.seed
            )
        return opt.embedding(values)

    def predict(self, batch: Batch) -> np.ndarray:
        """Click probabilities under the current global model."""
        keys = batch.unique_keys()
        emb = self.lookup_embeddings(keys)
        return self.nodes[0].model.predict_proba(batch, keys, emb)

    def evaluate_auc(self, batch: Batch) -> float:
        from repro.nn.metrics import auc

        return auc(batch.labels, self.predict(batch))
