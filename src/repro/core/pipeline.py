"""The 4-stage training pipeline (paper Section 3 + Appendix B).

Four time-consuming tasks map to four independent hardware resources:

=========  ==================================  =========
stage      task                                resource
=========  ==================================  =========
network    pull/push remote MEM-PS params      NIC
cpu        partition/shard parameters          CPU
ssd        load/dump materialized params       SSD
gpu        neural-network training             GPU
=========  ==================================  =========

Each stage has a prefetch queue; a stage's worker stalls when the next
stage's queue is full.  :class:`PipelineSimulator` computes the resulting
schedule for a sequence of batches from the per-batch stage durations —
the steady-state batch latency is the *bottleneck* stage, which is how the
paper hides I/O behind GPU compute (and why Fig. 3(c)'s tallest bar is the
whole story).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PipelineSimulator",
    "PipelineSchedule",
    "STAGE_NAMES",
    "earliest_start",
]

STAGE_NAMES = ("network", "cpu", "ssd", "gpu")


def earliest_start(
    start: np.ndarray,
    finish: np.ndarray,
    b: int,
    s: int,
    queue_capacity: tuple[int, ...],
) -> float:
    """Earliest feasible start of event ``(batch b, stage s)``.

    Encodes the three pipeline constraints shared by the analytic
    :class:`PipelineSimulator` and the executing
    :class:`~repro.core.engine.PipelinedEngine`:

    1. *stage precedence* — batch ``b`` cannot enter stage ``s`` before it
       leaves stage ``s - 1``;
    2. *resource serialization* — each stage's hardware resource handles
       one batch at a time, in batch order;
    3. *bounded prefetch queues* — stage ``s`` cannot start batch ``b``
       before stage ``s + 1`` has started batch ``b - q`` (otherwise the
       downstream queue of depth ``q`` would overflow).

    Requires every referenced earlier event to be filled in already, which
    batch-major processing order guarantees.
    """
    t = 0.0
    if s > 0:
        t = max(t, finish[b, s - 1])
    if b > 0:
        t = max(t, finish[b - 1, s])
    n_stages = start.shape[1]
    if s < n_stages - 1:
        q = queue_capacity[s]
        if b - q >= 0:
            t = max(t, start[b - q, s + 1])
    return t


@dataclass(frozen=True)
class PipelineSchedule:
    """Computed schedule for one pipeline run.

    ``start[b, s]`` / ``finish[b, s]`` are the times batch ``b`` enters and
    leaves stage ``s``.
    """

    start: np.ndarray
    finish: np.ndarray
    stage_names: tuple[str, ...] = STAGE_NAMES

    @property
    def n_batches(self) -> int:
        return self.start.shape[0]

    @property
    def makespan(self) -> float:
        """Total wall time to drain every batch through every stage."""
        return float(self.finish[-1, -1]) if self.n_batches else 0.0

    @property
    def steady_state_interval(self) -> float:
        """Average inter-batch completion interval after pipeline fill."""
        if self.n_batches < 2:
            return self.makespan
        completions = self.finish[:, -1]
        skip = min(self.n_batches - 2, max(1, self.n_batches // 4))
        deltas = np.diff(completions[skip:])
        return float(deltas.mean()) if deltas.size else self.makespan

    def stage_busy_time(self, stage: int) -> float:
        return float((self.finish[:, stage] - self.start[:, stage]).sum())

    def bottleneck_stage(self) -> int:
        """Index of the stage with the largest total busy time."""
        return int(
            np.argmax([self.stage_busy_time(s) for s in range(len(self.stage_names))])
        )


class PipelineSimulator:
    """Deterministic schedule computation for an N-stage pipeline.

    Parameters
    ----------
    queue_capacity:
        Prefetch-queue depth between consecutive stages.  Capacity ``q``
        means stage ``s`` cannot start batch ``b`` before stage ``s+1`` has
        *started* batch ``b - q`` (its queue would be full otherwise).
        The paper pre-sets capacities per stage-time ratios; depth 2 is
        enough to decouple adjacent stages in steady state.
    """

    def __init__(
        self,
        *,
        n_stages: int = 4,
        queue_capacity: int | tuple[int, ...] = 2,
        stage_names: tuple[str, ...] | None = None,
    ) -> None:
        if n_stages <= 0:
            raise ValueError("need at least one stage")
        if isinstance(queue_capacity, int):
            caps = (queue_capacity,) * max(0, n_stages - 1)
        else:
            caps = tuple(queue_capacity)
        if len(caps) != n_stages - 1:
            raise ValueError("need one queue capacity per stage boundary")
        if any(c < 1 for c in caps):
            raise ValueError("queue capacities must be >= 1")
        self.n_stages = n_stages
        self.queue_capacity = caps
        self.stage_names = (
            stage_names
            if stage_names is not None
            else (STAGE_NAMES if n_stages == 4 else tuple(f"s{i}" for i in range(n_stages)))
        )
        if len(self.stage_names) != n_stages:
            raise ValueError("stage_names length mismatch")

    def schedule(self, stage_times: np.ndarray) -> PipelineSchedule:
        """Schedule ``stage_times[b, s]`` (seconds per batch per stage)."""
        st = np.asarray(stage_times, dtype=np.float64)
        if st.ndim != 2 or st.shape[1] != self.n_stages:
            raise ValueError(f"stage_times must be (n_batches, {self.n_stages})")
        if np.any(st < 0):
            raise ValueError("stage times cannot be negative")
        n = st.shape[0]
        start = np.zeros((n, self.n_stages))
        finish = np.zeros((n, self.n_stages))
        for b in range(n):
            for s in range(self.n_stages):
                t = earliest_start(start, finish, b, s, self.queue_capacity)
                start[b, s] = t
                finish[b, s] = t + st[b, s]
        return PipelineSchedule(start, finish, self.stage_names)

    def serial_makespan(self, stage_times: np.ndarray) -> float:
        """Makespan with no overlap at all (the ablation baseline)."""
        st = np.asarray(stage_times, dtype=np.float64)
        return float(st.sum())
