"""One compute node of the hierarchical parameter server.

Bundles the three storage layers (HBM-PS / MEM-PS / SSD-PS), the node's
fabric models, its HDFS stream, and a replica of the dense CTR tower.  The
cluster (:mod:`repro.core.cluster`) wires nodes together and drives
Algorithm 1 across them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ClusterConfig, ModelSpec
from repro.data.generator import CTRDataGenerator
from repro.data.hdfs import HDFSStream
from repro.hardware.gpu import GPUDevice
from repro.hardware.ledger import CostLedger
from repro.hardware.network import Network
from repro.hardware.specs import NodeHardware, default_node_hardware
from repro.hbm.hbm_ps import HBMPS
from repro.mem.mem_ps import MemPS
from repro.nn.model import CTRModel
from repro.nn.optim import DenseAdagrad, DenseOptimizer, SparseOptimizer
from repro.ssd.ssd_ps import SSDPS
from repro.utils.rng import derive_seed

__all__ = ["HPSNode"]


class HPSNode:
    """A GPU computing node: 3-layer PS + workers + data stream."""

    def __init__(
        self,
        node_id: int,
        model_spec: ModelSpec,
        cluster_config: ClusterConfig,
        sparse_optimizer: SparseOptimizer,
        generator: CTRDataGenerator,
        *,
        hardware: NodeHardware | None = None,
        dense_optimizer: DenseOptimizer | None = None,
        ssd_directory: str | None = None,
        functional_batch_size: int | None = None,
    ) -> None:
        cfg = cluster_config
        self.node_id = node_id
        self.config = cfg
        self.model_spec = model_spec
        self.hardware = hardware or default_node_hardware(
            gpus_per_node=cfg.gpus_per_node
        )
        self.ledger = CostLedger()
        self.network = Network(self.hardware.network, self.ledger)

        self.ssd_ps = SSDPS(
            sparse_optimizer.value_dim,
            file_capacity=cfg.ssd_file_capacity,
            extent_cache_files=cfg.ssd_extent_cache_files,
            extent_cache_resize_every=cfg.ssd_extent_cache_resize_every,
            extent_cache_min_files=cfg.ssd_extent_cache_min_files,
            extent_cache_max_files=cfg.ssd_extent_cache_max_files,
            ssd_spec=self.hardware.ssd,
            usage_threshold=cfg.compaction_threshold,
            stale_fraction=cfg.compaction_stale_fraction,
            directory=ssd_directory,
            ledger=self.ledger,
            key_domain=model_spec.n_sparse,
        )
        self.mem_ps = MemPS(
            node_id,
            cfg.n_nodes,
            sparse_optimizer,
            self.ssd_ps,
            cache_capacity=cfg.mem_capacity_params,
            lru_fraction=cfg.cache_lru_fraction,
            prefetch_pin_fraction=cfg.prefetch_pin_fraction,
            network=self.network,
            ledger=self.ledger,
            seed=cfg.seed,
            key_domain=model_spec.n_sparse,
        )
        self.hbm_ps = HBMPS(
            cfg.gpus_per_node,
            cfg.hbm_capacity_params,
            sparse_optimizer,
            gpu_spec=self.hardware.gpu,
            nvlink_spec=self.hardware.nvlink,
            ledger=self.ledger,
        )
        self.hdfs = HDFSStream(
            generator,
            self.hardware.hdfs,
            node_id=node_id,
            n_nodes=cfg.n_nodes,
            batch_size=functional_batch_size or cfg.batch_size,
            ledger=self.ledger,
        )
        # Every node starts from the same dense initialization (seeded by
        # the cluster seed, not the node id) so replicas are identical.
        self.model = CTRModel(model_spec, seed=derive_seed(cfg.seed, "dense"))
        self.dense_optimizer = dense_optimizer or DenseAdagrad(lr=0.05)
        self.gpu_compute = GPUDevice(self.hardware.gpu, self.ledger)

    # ------------------------------------------------------------------
    @property
    def n_gpus(self) -> int:
        return self.config.gpus_per_node

    # ------------------------------------------------------------------
    # Checkpoint protocol: every storage tier exposes the same
    # export/load pair in both full and delta form; the node drives them
    # uniformly so the checkpoint writer never reaches into tiers.
    # ------------------------------------------------------------------
    TIERS = ("mem", "ssd", "hbm")

    def tier_states(self) -> dict[str, dict]:
        """Full per-tier snapshots (each tier's ``export_state``)."""
        return {
            "mem": self.mem_ps.export_state(),
            "ssd": self.ssd_ps.export_state(),
            "hbm": self.hbm_ps.export_state(),
        }

    def tier_deltas(
        self, base: dict[str, dict], *, dirty_keys: np.ndarray | None = None
    ) -> dict[str, dict]:
        """Per-tier diffs against a prior :meth:`tier_states` snapshot.

        ``dirty_keys`` (optional) is the union of keys this node's MEM
        tier wrote since the base — when provided, the cache diff selects
        changed rows by membership instead of comparing value slabs.
        """
        return {
            "mem": self.mem_ps.export_delta(base["mem"], dirty_keys=dirty_keys),
            "ssd": self.ssd_ps.export_delta(base["ssd"]),
            "hbm": self.hbm_ps.export_delta(base["hbm"]),
        }

    def load_tier_states(self, tiers: dict[str, dict]) -> None:
        """Restore every tier from a :meth:`tier_states` snapshot."""
        self.mem_ps.load_state(tiers["mem"])
        self.ssd_ps.load_state(tiers["ssd"])
        self.hbm_ps.load_state(tiers["hbm"])

    def load_tier_deltas(self, tiers: dict[str, dict]) -> None:
        """Apply a :meth:`tier_deltas` diff on top of the loaded base."""
        self.mem_ps.load_delta(tiers["mem"])
        self.ssd_ps.load_delta(tiers["ssd"])
        self.hbm_ps.load_delta(tiers["hbm"])

    def cpu_partition_time(self, n_keys: int) -> float:
        """Simulated seconds to shard ``n_keys`` working keys across this
        node's GPUs (Alg. 1 line 5), charged to the node's ledger."""
        cpu = self.hardware.cpu
        # Half the cores shard keys while the other half run the pipeline.
        rate = cpu.keys_per_second_per_core * max(1, cpu.cores // 2)
        return self.ledger.add("cpu_partition", n_keys / rate)
