"""Flat in-memory parameter store (the reference trainer's backend).

One growable float32 slab plus a :class:`SlotIndex` — the vectorized
replacement for the reference trainer's ``dict[int, np.ndarray]``.  No
eviction: this models the MPI baseline's "whole model in memory"
assumption, so ``put_batch`` never flushes.
"""

from __future__ import annotations

import numpy as np

from repro.store.slot_index import SlotIndex
from repro.utils.keys import as_keys

__all__ = ["FlatStore"]


class FlatStore:
    """Unbounded batch-first key→value store over a growable slab."""

    def __init__(self, value_dim: int, *, capacity: int = 1024) -> None:
        if value_dim <= 0:
            raise ValueError("value_dim must be positive")
        self.value_dim = value_dim
        self._index = SlotIndex(capacity)
        self._values = np.zeros((max(1, capacity), value_dim), dtype=np.float32)
        self._n_rows = 0

    def __len__(self) -> int:
        return self._n_rows

    def _grow_to(self, n: int) -> None:
        if n <= self._values.shape[0]:
            return
        cap = self._values.shape[0]
        while cap < n:
            cap *= 2
        grown = np.zeros((cap, self.value_dim), dtype=np.float32)
        grown[: self._n_rows] = self._values[: self._n_rows]
        self._values = grown

    # ------------------------------------------------------------------
    def get_batch(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Values + found mask; missing rows are zero-filled."""
        keys = as_keys(keys)
        out = np.zeros((keys.size, self.value_dim), dtype=np.float32)
        slots, found = self._index.get(keys)
        out[found] = self._values[slots[found]]
        return out, found

    def put_batch(
        self, keys: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Upsert unique ``keys``; never evicts (returns empty flushes)."""
        keys = as_keys(keys)
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (keys.size, self.value_dim):
            raise ValueError("values shape mismatch")
        if keys.size == 0:
            return as_keys([]), np.zeros((0, self.value_dim), dtype=np.float32)
        slots, found = self._index.get(keys)
        self._values[slots[found]] = values[found]
        new_idx = np.flatnonzero(~found)
        if new_idx.size:
            rows = np.arange(
                self._n_rows, self._n_rows + new_idx.size, dtype=np.int64
            )
            self._grow_to(self._n_rows + new_idx.size)
            self._n_rows += new_idx.size
            self._values[rows] = values[new_idx]
            self._index.set(keys[new_idx], rows)
        return as_keys([]), np.zeros((0, self.value_dim), dtype=np.float32)

    def contains(self, keys: np.ndarray) -> np.ndarray:
        _, found = self._index.get(as_keys(keys))
        return found

    def transform(self, keys: np.ndarray, fn) -> None:
        """Apply ``new = fn(old)`` to resident ``keys`` (all must exist)."""
        keys = as_keys(keys)
        if keys.size == 0:
            return
        slots, found = self._index.get(keys)
        if not np.all(found):
            missing = keys[~found][:5]
            raise KeyError(f"transform on absent keys, e.g. {missing.tolist()}")
        self._values[slots] = np.asarray(fn(self._values[slots]), dtype=np.float32)

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """All resident ``(keys, values)``, sorted by key."""
        keys, slots = self._index.items()
        order = np.argsort(keys)
        return keys[order], self._values[slots[order]].copy()
