"""The batch-first parameter-store protocol shared by all three tiers.

Every storage layer of the hierarchy — the HBM hash tables, the MEM
LRU+LFU caches, the SSD file store, and the reference trainer's flat
store — speaks the same five-method batched interface.  Keys are always
``uint64`` arrays, values ``(n, value_dim)`` float32 arrays; no method
takes or returns a single key.  This is the contract later work (async
pipelining, sharded backends, alternative cache policies) plugs into.

The protocol is *functional*: it moves values, not simulated time.
Timing stays on the tier-specific methods (``insert``/``load``/``dump``),
which charge the hardware ledgers exactly as before.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["ParameterStore"]


@runtime_checkable
class ParameterStore(Protocol):
    """Batched key→value store.

    ``get_batch``
        Values for ``keys`` plus a found mask; missing rows are
        zero-filled.  May touch replacement metadata (recency/frequency)
        on caching tiers.
    ``put_batch``
        Insert/overwrite ``keys``; returns ``(flush_keys, flush_values)``
        — entries the store evicted and the caller must persist to the
        next tier down.  Unbounded stores return empty arrays.
    ``contains``
        Residency mask, metadata-neutral (no recency/frequency update).
    ``transform``
        Apply ``new = fn(old)`` to the values of resident ``keys``
        in place (optimizer updates on the owning tier).
    ``items``
        All resident ``(keys, values)``, sorted by key.  This is the
        checkpoint subsystem's extraction hook (``repro.ckpt``) and the
        parity tests' comparison surface: sorted-by-key output makes two
        stores comparable regardless of internal layout, and tiers with
        replacement state additionally expose ``export_state`` /
        ``load_state`` so a restore reproduces future evictions exactly,
        not just the resident values.
    """

    def get_batch(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]: ...

    def put_batch(
        self, keys: np.ndarray, values: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]: ...

    def contains(self, keys: np.ndarray) -> np.ndarray: ...

    def transform(self, keys: np.ndarray, fn) -> object: ...

    def items(self) -> tuple[np.ndarray, np.ndarray]: ...
