"""Seed per-key cache implementations, preserved as the parity oracle.

These are the original dict-of-ndarray LRU/LFU/combined caches this repo
shipped with before the MEM tier was vectorized (one Python dict probe
per key, one Python loop iteration per batched element).  They are kept
for two jobs:

* **parity** — ``tests/store/test_cache_parity.py`` replays recorded
  access traces through these and the slab-backed caches and asserts
  identical eviction order, flush pairs, statistics, and final contents;
* **baseline** — ``benchmarks/test_store_microbench.py`` measures the
  vectorized caches against exactly this code.

The extended batch surface the new :class:`~repro.mem.cache.CombinedCache`
grew (``pin_batch``, ``update_batch_if_present``, ``settle_overflow``,
``peek_batch``, ``items``) is implemented here with per-key loops — seed
style — so a :class:`~repro.mem.mem_ps.MemPS` can run unmodified against
either implementation.

Do not use these outside tests and benchmarks.
"""
# This file *is* the per-key exception: scalar reference caches kept as
# the parity oracle for the vectorized MEM tier.
# repro: allow-file(hot-loop)

from __future__ import annotations

import numpy as np

from repro.mem.cache import CacheStats
from repro.utils.keys import as_keys

__all__ = ["DictLRUCache", "DictLFUCache", "DictCombinedCache"]


class DictLRUCache:
    """Seed LRU cache: insertion-ordered dict, per-key operations."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._data: dict[int, np.ndarray] = {}
        self._pinned: set[int] = set()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: int) -> bool:
        return key in self._data

    def get(self, key: int) -> np.ndarray | None:
        val = self._data.pop(key, None)
        if val is None:
            return None
        self._data[key] = val
        return val

    def peek(self, key: int) -> np.ndarray | None:
        return self._data.get(key)

    def put(self, key: int, value: np.ndarray, *, pin: bool = False) -> list:
        self._data.pop(key, None)
        self._data[key] = value
        if pin:
            self._pinned.add(key)
        return self.evict_overflow()

    def evict_overflow(self) -> list:
        evicted = []
        if len(self._data) <= self.capacity:
            return evicted
        for key in list(self._data):
            if len(self._data) - len(evicted) <= self.capacity:
                break
            if key in self._pinned:
                continue
            evicted.append((key, self._data[key]))
        for key, _ in evicted:
            del self._data[key]
        if len(self._data) > self.capacity:
            raise RuntimeError(
                "cache over capacity with all residents pinned — the pinned "
                "working set must fit in memory (paper Section 5)"
            )
        return evicted

    def pin(self, key: int) -> None:
        if key not in self._data:
            raise KeyError(f"cannot pin absent key {key}")
        self._pinned.add(key)

    def unpin(self, key: int) -> None:
        self._pinned.discard(key)

    def pinned_count(self) -> int:
        return len(self._pinned)

    def keys(self) -> list[int]:
        return list(self._data)


class DictLFUCache:
    """Seed LFU cache: O(1) frequency buckets, per-key operations."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._data: dict[int, np.ndarray] = {}
        self._freq: dict[int, int] = {}
        self._buckets: dict[int, dict[int, None]] = {}
        self._min_freq = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: int) -> bool:
        return key in self._data

    def _bump(self, key: int) -> None:
        f = self._freq[key]
        bucket = self._buckets[f]
        del bucket[key]
        if not bucket:
            del self._buckets[f]
            if self._min_freq == f:
                self._min_freq = f + 1
        self._freq[key] = f + 1
        self._buckets.setdefault(f + 1, {})[key] = None

    def get(self, key: int) -> np.ndarray | None:
        if key not in self._data:
            return None
        self._bump(key)
        return self._data[key]

    def frequency(self, key: int) -> int:
        return self._freq.get(key, 0)

    def put(self, key: int, value: np.ndarray, *, freq: int = 1) -> list:
        if freq < 1:
            raise ValueError("freq must be >= 1")
        if key in self._data:
            self._data[key] = value
            self._bump(key)
            return []
        evicted = []
        if len(self._data) >= self.capacity:
            bucket = self._buckets[self._min_freq]
            victim = next(iter(bucket))
            del bucket[victim]
            if not bucket:
                del self._buckets[self._min_freq]
            evicted.append((victim, self._data.pop(victim)))
            del self._freq[victim]
        self._data[key] = value
        self._freq[key] = freq
        self._buckets.setdefault(freq, {})[key] = None
        self._min_freq = min(self._buckets)
        return evicted

    def pop(self, key: int) -> np.ndarray | None:
        if key not in self._data:
            return None
        f = self._freq.pop(key)
        bucket = self._buckets[f]
        del bucket[key]
        if not bucket:
            del self._buckets[f]
            if self._min_freq == f:
                self._min_freq = min(self._buckets) if self._buckets else 0
        return self._data.pop(key)

    def keys(self) -> list[int]:
        return list(self._data)


class DictCombinedCache:
    """Seed LRU→LFU combined policy, per-key operations throughout."""

    def __init__(
        self, capacity: int, *, lru_fraction: float = 0.5, value_dim: int = 1
    ) -> None:
        if capacity < 2:
            raise ValueError("combined cache needs capacity >= 2")
        if not 0.0 < lru_fraction < 1.0:
            raise ValueError("lru_fraction must be in (0, 1)")
        lru_cap = max(1, int(capacity * lru_fraction))
        lfu_cap = max(1, capacity - lru_cap)
        self.lru = DictLRUCache(lru_cap)
        self.lfu = DictLFUCache(lfu_cap)
        self.value_dim = value_dim
        self.stats = CacheStats()
        self._counts: dict[int, int] = {}
        self._pending_flush: list = []

    def __len__(self) -> int:
        return len(self.lru) + len(self.lfu)

    @property
    def capacity(self) -> int:
        return self.lru.capacity + self.lfu.capacity

    # ------------------------------------------------------------------
    def _demote(self, evicted_from_lru: list) -> list:
        flushed = []
        for key, value in evicted_from_lru:
            flushed.extend(
                self.lfu.put(key, value, freq=self._counts.pop(key, 1))
            )
        for key, _ in flushed:
            self._counts.pop(key, None)
        return flushed

    def get(self, key: int) -> np.ndarray | None:
        val = self.lru.get(key)
        if val is not None:
            self.stats.hits += 1
            self._counts[key] = self._counts.get(key, 1) + 1
            return val
        freq = self.lfu.frequency(key)
        val = self.lfu.pop(key)
        if val is not None:
            self.stats.hits += 1
            self._counts[key] = freq + 1
            self._pending_flush.extend(self._demote(self.lru.put(key, val)))
            return val
        self.stats.misses += 1
        return None

    def put(self, key: int, value: np.ndarray, *, pin: bool = False) -> list:
        if key in self.lfu:
            freq = self.lfu.frequency(key)
            self.lfu.pop(key)
            self._counts[key] = freq + 1
        else:
            self._counts[key] = self._counts.get(key, 0) + 1
        evicted = self.lru.put(key, value, pin=pin)
        return self._demote(evicted)

    # ------------------------------------------------------------------
    def get_batch(
        self, keys: np.ndarray, *, assume_unique: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        keys = as_keys(keys)
        values = np.zeros((keys.size, self.value_dim), dtype=np.float32)
        hit = np.zeros(keys.size, dtype=bool)
        for i, k in enumerate(keys):
            v = self.get(int(k))
            if v is not None:
                values[i] = v
                hit[i] = True
        return values, hit

    def put_batch(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        *,
        pin: bool = False,
        assume_unique: bool = False,
        assume_absent: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        # Both assume_* flags are caller promises that license skipping
        # work; the per-key reference has no work to skip.
        keys = as_keys(keys)
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (keys.size, self.value_dim):
            raise ValueError("values shape mismatch")
        flushed = []
        for i, k in enumerate(keys):
            flushed.extend(self.put(int(k), values[i], pin=pin))
        return self._pairs(flushed)

    def _pairs(self, flushed: list) -> tuple[np.ndarray, np.ndarray]:
        if not flushed:
            return (
                as_keys([]),
                np.zeros((0, self.value_dim), dtype=np.float32),
            )
        fk = as_keys([k for k, _ in flushed])
        fv = np.stack([v for _, v in flushed]).astype(np.float32)
        return fk, fv

    def take_pending_flush(self) -> tuple[np.ndarray, np.ndarray]:
        out = self._pairs(self._pending_flush)
        self._pending_flush.clear()
        return out

    def pin_batch(self, keys: np.ndarray) -> None:
        for k in as_keys(keys):
            self.lru.pin(int(k))

    def unpin_batch(self, keys: np.ndarray) -> None:
        for k in as_keys(keys):
            self.lru.unpin(int(k))

    def update_if_present(self, key: int, value: np.ndarray) -> bool:
        if key in self.lru:
            self.lru._data[key] = value
            return True
        if key in self.lfu:
            self.lfu._data[key] = value
            return True
        return False

    def update_batch_if_present(
        self, keys: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        keys = as_keys(keys)
        values = np.asarray(values, dtype=np.float32)
        found = np.zeros(keys.size, dtype=bool)
        for i, k in enumerate(keys):
            found[i] = self.update_if_present(int(k), values[i])
        return found

    def peek_batch(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        keys = as_keys(keys)
        values = np.zeros((keys.size, self.value_dim), dtype=np.float32)
        found = np.zeros(keys.size, dtype=bool)
        for i, k in enumerate(keys):
            v = self.lru.peek(int(k))
            if v is None:
                v = self.lfu._data.get(int(k))
            if v is not None:
                values[i] = v
                found[i] = True
        return values, found

    def settle_overflow(self) -> tuple[np.ndarray, np.ndarray]:
        return self._pairs(self._demote(self.lru.evict_overflow()))

    def contains(self, keys) -> np.ndarray | bool:
        if np.isscalar(keys) or isinstance(keys, (int, np.integer)):
            return keys in self.lru or keys in self.lfu
        keys = as_keys(keys)
        out = np.zeros(keys.size, dtype=bool)
        for i, k in enumerate(keys):
            out[i] = int(k) in self.lru or int(k) in self.lfu
        return out

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        pairs = [(k, self.lru._data[k]) for k in self.lru.keys()]
        pairs += [(k, self.lfu._data[k]) for k in self.lfu.keys()]
        fk, fv = self._pairs(pairs)
        order = np.argsort(fk)
        return fk[order], fv[order]

    def flush_all(self) -> tuple[np.ndarray, np.ndarray]:
        pairs = [(k, self.lru._data[k]) for k in self.lru.keys()]
        pairs += [(k, self.lfu._data[k]) for k in self.lfu.keys()]
        self.lru = DictLRUCache(self.lru.capacity)
        self.lfu = DictLFUCache(self.lfu.capacity)
        self._counts.clear()
        return self._pairs(pairs)
