"""Batch-first parameter-store layer.

Defines the :class:`ParameterStore` protocol every tier of the
HBM→MEM→SSD hierarchy implements, plus the vectorized building blocks
(:class:`SlotIndex`, :class:`FlatStore`) and the seed per-key cache
implementations kept as parity oracle and benchmark baseline
(:mod:`repro.store.reference`).
"""

from repro.store.flat import FlatStore
from repro.store.protocol import ParameterStore
from repro.store.slot_index import SlotIndex

__all__ = ["ParameterStore", "SlotIndex", "FlatStore"]
