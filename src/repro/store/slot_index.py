"""Vectorized open-addressing key→payload index.

The batch-first store layer needs one primitive the HBM hash table does
not provide: a ``uint64 key -> int64 payload`` map that supports
**deletion** (caches evict constantly) and **growth** (the SSD mapping is
unbounded), with every batch operation vectorized — the Python-level loop
runs O(max probe length) rounds, never O(n_keys).

Deletion uses tombstones (:data:`~repro.utils.keys.TOMBSTONE_KEY`); the
table rehashes itself when live + dead slots crowd the array.  Single-key
operations take a scalar fast path (plain-int probing over the same
arrays) so per-key workloads — the cache-policy ablation, the legacy
single-key cache API — do not pay 1-element array dispatch per access.
"""

from __future__ import annotations

import numpy as np

from repro.utils.keys import (
    EMPTY_KEY,
    KEY_DTYPE,
    TOMBSTONE_KEY,
    as_keys,
    mix_hash,
    splitmix64_scalar,
)

__all__ = ["SlotIndex"]

_EMPTY = int(EMPTY_KEY)
_TOMB = int(TOMBSTONE_KEY)

#: Largest key domain served direct-addressed: one int64 payload per
#: possible key (32 MiB at the cap).  Compact id spaces — the functional
#: models address ``[0, n_sparse)`` directly — skip hashing and probing
#: entirely; anything larger (or un-hinted) open-addresses as before.
DENSE_DOMAIN_CAP = 1 << 22


class SlotIndex:
    """Open-addressing ``uint64 -> int64`` map over preallocated arrays.

    Payloads are opaque non-negative int64s (a slab row for the caches, a
    file id for the SSD mapping).  ``-1`` is returned for absent keys.
    """

    def __init__(
        self,
        capacity_hint: int = 16,
        *,
        load_factor: float = 0.5,
        key_domain: int | None = None,
    ):
        if not 0.0 < load_factor < 1.0:
            raise ValueError("load_factor must be in (0, 1)")
        self._load_factor = load_factor
        #: direct-address payload array when the caller promises keys in
        #: ``[0, key_domain)`` with a domain small enough to materialize.
        #: The promise is advisory: the first out-of-domain key migrates
        #: the live entries into the probing table and stays there.
        self._dense: np.ndarray | None = None
        if key_domain is not None and 0 < key_domain <= DENSE_DOMAIN_CAP:
            self._dense = np.full(int(key_domain), -1, dtype=np.int64)
        n = 16
        while n * load_factor < max(1, capacity_hint if self._dense is None else 1):
            n *= 2
        self._alloc(n)

    def _alloc(self, n_slots: int) -> None:
        self._n_slots = n_slots
        self._mask = np.uint64(n_slots - 1)
        self._hkeys = np.full(n_slots, EMPTY_KEY, dtype=KEY_DTYPE)
        self._hvals = np.full(n_slots, -1, dtype=np.int64)
        #: first-wins scratch for insert races (kept at -1 between calls;
        #: avoids an O(n log n) ``np.unique`` per probe round).
        self._scratch = np.full(n_slots, -1, dtype=np.int64)
        self.n_live = 0
        self._n_dead = 0

    def __len__(self) -> int:
        return self.n_live

    @property
    def hash_free(self) -> bool:
        """True while the index is direct-addressed (no probing).

        Callers that precompute ``mix_hash`` to share it across several
        index operations can skip the hash entirely when this is set;
        every method accepts ``hashes=None`` and, should the index escape
        to open addressing mid-operation, computes the hash itself.
        """
        return self._dense is not None

    # ------------------------------------------------------------------
    def _base(
        self, keys: np.ndarray, hashes: np.ndarray | None = None
    ) -> np.ndarray:
        """Base probe slots; ``hashes`` lets a caller doing several index
        operations on the same key batch pay for ``mix_hash`` once."""
        return (mix_hash(keys) if hashes is None else hashes) & self._mask

    def _maybe_grow(self, incoming: int) -> None:
        if (self.n_live + self._n_dead + incoming) * 2 < self._n_slots:
            return
        n = self._n_slots
        while (self.n_live + incoming) > n * self._load_factor:
            n *= 2
        live = self._hkeys < TOMBSTONE_KEY
        keys, vals = self._hkeys[live], self._hvals[live]
        self._alloc(n)
        if keys.size:
            self.set(keys, vals, _grow_checked=True)

    def _escape_dense(self) -> None:
        """Leave direct-address mode: migrate live entries to probing."""
        dense = self._dense
        assert dense is not None
        idx = np.flatnonzero(dense >= 0)
        vals = dense[idx]
        self._dense = None
        self.n_live = 0
        if idx.size:
            self.set(idx.astype(KEY_DTYPE), vals)

    def _dense_ok(self, keys: np.ndarray) -> bool:
        """True while direct addressing covers ``keys`` (may migrate)."""
        if self._dense is None:
            return False
        if keys.size and int(keys.max()) >= self._dense.size:
            self._escape_dense()
            return False
        return True

    # ------------------------------------------------------------------
    def get(
        self, keys: np.ndarray, hashes: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(payloads, found)`` for ``keys``; absent payloads are -1."""
        out, found, _ = self.locate(keys, hashes, want_slots=False)
        return out, found

    def locate(
        self,
        keys: np.ndarray,
        hashes: np.ndarray | None = None,
        *,
        want_slots: bool = True,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """``(payloads, found, probe_slots)`` for ``keys``.

        ``probe_slots`` is each key's match slot or, for misses, the empty
        slot that terminated its probe — a valid insertion hint for
        :meth:`install` as long as no other insert lands first (removals
        only create tombstones and never invalidate an empty terminal).
        """
        keys = as_keys(keys)
        n = keys.size
        if n == 0:
            out = np.empty(n, dtype=np.int64)
            out.fill(-1)
            found = np.zeros(n, dtype=bool)
            return out, found, np.empty(0, dtype=np.int64) if want_slots else None
        if self._dense_ok(keys):
            idx = keys.astype(np.int64)
            out = self._dense[idx]
            return out, out >= 0, idx if want_slots else None
        out = np.empty(n, dtype=np.int64)
        out.fill(-1)
        found = np.zeros(n, dtype=bool)
        if self.n_live == 0 and self._n_dead == 0:
            # Empty table: every base slot is a valid insertion hint.
            slots = (
                self._base(keys, hashes).astype(np.int64) if want_slots else None
            )
            return out, found, slots
        base = self._base(keys, hashes)
        slots = np.full(n, -1, dtype=np.int64) if want_slots else None
        pending = np.arange(n)
        offset = np.uint64(0)
        while pending.size:
            s = (base[pending] + offset) & self._mask
            occupant = self._hkeys[s]
            hit = occupant == keys[pending]
            empty = occupant == EMPTY_KEY
            done = hit | empty
            out[pending[hit]] = self._hvals[s[hit]]
            found[pending[hit]] = True
            if want_slots:
                slots[pending[done]] = s[done]
            pending = pending[~done]
            offset += np.uint64(1)
            if int(offset) > self._n_slots:
                raise RuntimeError("index probe loop exceeded table size")
        return out, found, slots

    def install(
        self,
        keys: np.ndarray,
        payloads: np.ndarray,
        probe_slots: np.ndarray,
        hashes: np.ndarray | None = None,
    ) -> None:
        """Insert *absent* unique ``keys`` at hints from :meth:`locate`.

        Skips the locate re-probe entirely: each key lands at its hinted
        empty slot; keys whose hint was claimed by another key in this
        batch (or filled since) fall back to the probing :meth:`set`.
        """
        keys = as_keys(keys)
        payloads = np.asarray(payloads, dtype=np.int64)
        n = keys.size
        if n == 0:
            return
        if self._dense_ok(keys):
            self._dense[keys.astype(np.int64)] = payloads
            self.n_live += n
            return
        fslots = np.asarray(probe_slots, dtype=np.int64)
        if fslots.size and int(fslots.max()) >= self._n_slots:
            # Hints minted under a different table geometry (a dense
            # migration landed between locate and install): re-probe.
            self.insert_absent(keys, payloads, hashes)
            return
        if (self.n_live + self._n_dead + n) * 2 >= self._n_slots:
            # Growth would remap every hint; take the probing path.
            self.insert_absent(keys, payloads, hashes)
            return
        ok = self._hkeys[fslots] == EMPTY_KEY
        cand = np.flatnonzero(ok)
        winners = cand
        if cand.size:
            fs = fslots[cand]
            order = np.arange(cand.size, dtype=np.int64)
            self._scratch[fs[::-1]] = order[::-1]
            winners = cand[self._scratch[fs] == order]
            self._scratch[fs] = -1
            ws = fslots[winners]
            self._hkeys[ws] = keys[winners]
            self._hvals[ws] = payloads[winners]
            self.n_live += winners.size
        if winners.size != n:
            lost = np.ones(n, dtype=bool)
            lost[winners] = False
            self.insert_absent(
                keys[lost],
                payloads[lost],
                hashes[lost] if hashes is not None else None,
            )

    def insert_absent(
        self,
        keys: np.ndarray,
        payloads: np.ndarray,
        hashes: np.ndarray | None = None,
    ) -> None:
        """Insert unique ``keys`` the caller guarantees are absent.

        Skips match probing entirely: each key claims the first vacant
        (tombstone or empty) slot on its probe path — the same slot
        :meth:`set` would pick — and races resolve first-wins with losers
        probing onward, so the layout matches the upsert path while the
        per-round work drops to a single occupancy test.
        """
        keys = as_keys(keys)
        payloads = np.asarray(payloads, dtype=np.int64)
        if payloads.shape != (keys.size,):
            raise ValueError("payloads shape mismatch")
        n = keys.size
        if n == 0:
            return
        if self._dense_ok(keys):
            self._dense[keys.astype(np.int64)] = payloads
            self.n_live += n
            return
        if keys.max() >= TOMBSTONE_KEY:
            raise ValueError("keys >= 2**64 - 2 are reserved sentinels")
        self._maybe_grow(n)
        base = self._base(keys, hashes)
        pending = np.arange(n)
        offset = np.uint64(0)
        while pending.size:
            s = (base[pending] + offset) & self._mask
            occupant = self._hkeys[s]
            vacant = (occupant == EMPTY_KEY) | (occupant == TOMBSTONE_KEY)
            cand = np.flatnonzero(vacant)
            if cand.size:
                fs = s[cand]
                order = np.arange(cand.size, dtype=np.int64)
                self._scratch[fs[::-1]] = order[::-1]
                win = self._scratch[fs] == order
                self._scratch[fs] = -1
                ws = fs[win]
                self._n_dead -= int(np.sum(self._hkeys[ws] == TOMBSTONE_KEY))
                widx = pending[cand[win]]
                self._hkeys[ws] = keys[widx]
                self._hvals[ws] = payloads[widx]
                self.n_live += ws.size
                done = np.zeros(pending.size, dtype=bool)
                done[cand[win]] = True
                pending = pending[~done]
            offset += np.uint64(1)
            if int(offset) > self._n_slots:
                raise RuntimeError("index probe loop exceeded table size")

    def set(
        self,
        keys: np.ndarray,
        payloads: np.ndarray,
        hashes: np.ndarray | None = None,
        *,
        _grow_checked: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Upsert unique ``keys``; returns ``(old_payloads, existed)``.

        New keys claim the first tombstone (or empty slot) on their probe
        path; several keys racing for one slot resolve like the GPU CAS in
        :class:`~repro.hbm.hash_table.HashTable` — first wins, rest
        re-probe.
        """
        keys = as_keys(keys)
        payloads = np.asarray(payloads, dtype=np.int64)
        if payloads.shape != (keys.size,):
            raise ValueError("payloads shape mismatch")
        n = keys.size
        old = np.full(n, -1, dtype=np.int64)
        existed = np.zeros(n, dtype=bool)
        if n == 0:
            return old, existed
        if self._dense_ok(keys):
            idx = keys.astype(np.int64)
            old = self._dense[idx]
            existed = old >= 0
            self._dense[idx] = payloads
            self.n_live += n - int(existed.sum())
            return old, existed
        if keys.max() >= TOMBSTONE_KEY:
            raise ValueError("keys >= 2**64 - 2 are reserved sentinels")
        if not _grow_checked:
            self._maybe_grow(n)
        if self.n_live == 0 and self._n_dead == 0:
            # Empty table and unique keys: pure inserts, no match probing.
            self._fill_empty(keys, payloads, hashes)
            return old, existed
        if self._n_dead == 0:
            # No tombstones: the first empty slot on a probe path is also
            # the insertion point, so one single-level loop suffices (race
            # losers simply keep probing, as in the HBM table's CAS).
            self._set_no_tombstones(keys, payloads, hashes, old, existed)
            return old, existed
        pending = np.arange(n)
        while pending.size:
            base = self._base(
                keys[pending],
                hashes[pending] if hashes is not None else None,
            )
            m = pending.size
            target = np.full(m, -1, dtype=np.int64)  # match slot
            free = np.full(m, -1, dtype=np.int64)  # first tombstone/empty
            active = np.arange(m)
            offset = np.uint64(0)
            while active.size:
                s = (base[active] + offset) & self._mask
                occupant = self._hkeys[s]
                hit = occupant == keys[pending[active]]
                empty = occupant == EMPTY_KEY
                vacant = empty | (occupant == TOMBSTONE_KEY)
                unset = free[active] < 0
                free[active[vacant & unset]] = s[vacant & unset]
                target[active[hit]] = s[hit]
                active = active[~(hit | empty)]
                offset += np.uint64(1)
                if int(offset) > self._n_slots:
                    raise RuntimeError("index probe loop exceeded table size")
            # Overwrites are race-free: apply them all.
            matched = target >= 0
            midx = pending[matched]
            old[midx] = self._hvals[target[matched]]
            existed[midx] = True
            self._hvals[target[matched]] = payloads[midx]
            # Inserts race for vacant slots; first occurrence wins
            # (scatter in reverse so earlier claims overwrite later ones).
            cand = np.flatnonzero(~matched)
            done = matched.copy()
            if cand.size:
                fslots = free[cand]
                order = np.arange(cand.size, dtype=np.int64)
                self._scratch[fslots[::-1]] = order[::-1]
                winners = cand[self._scratch[fslots] == order]
                self._scratch[fslots] = -1
                ws = free[winners]
                self._n_dead -= int(np.sum(self._hkeys[ws] == TOMBSTONE_KEY))
                widx = pending[winners]
                self._hkeys[ws] = keys[widx]
                self._hvals[ws] = payloads[widx]
                self.n_live += winners.size
                done[winners] = True
            pending = pending[~done]
        return old, existed

    def _set_no_tombstones(
        self,
        keys: np.ndarray,
        payloads: np.ndarray,
        hashes: np.ndarray | None,
        old: np.ndarray,
        existed: np.ndarray,
    ) -> None:
        """Upsert into a tombstone-free table with a single probe loop."""
        base = self._base(keys, hashes)
        pending = np.arange(keys.size)
        offset = np.uint64(0)
        while pending.size:
            s = (base[pending] + offset) & self._mask
            occupant = self._hkeys[s]
            hit = occupant == keys[pending]
            hidx = pending[hit]
            old[hidx] = self._hvals[s[hit]]
            existed[hidx] = True
            self._hvals[s[hit]] = payloads[hidx]
            resolved = hit
            cand = np.flatnonzero(occupant == EMPTY_KEY)
            if cand.size:
                fslots = s[cand]
                order = np.arange(cand.size, dtype=np.int64)
                self._scratch[fslots[::-1]] = order[::-1]
                winners = cand[self._scratch[fslots] == order]
                self._scratch[fslots] = -1
                widx = pending[winners]
                self._hkeys[s[winners]] = keys[widx]
                self._hvals[s[winners]] = payloads[widx]
                self.n_live += winners.size
                resolved = hit.copy()
                resolved[winners] = True
            pending = pending[~resolved]
            offset += np.uint64(1)
            if int(offset) > self._n_slots:
                raise RuntimeError("index probe loop exceeded table size")

    def _fill_empty(
        self, keys: np.ndarray, payloads: np.ndarray, hashes: np.ndarray | None
    ) -> None:
        """Insert unique keys into a known-empty table (no match probes)."""
        base = self._base(keys, hashes)
        pending = np.arange(keys.size)
        offset = np.uint64(0)
        while pending.size:
            s = (base[pending] + offset) & self._mask
            empty = self._hkeys[s] == EMPTY_KEY
            cand = np.flatnonzero(empty)
            if cand.size:
                fslots = s[cand]
                order = np.arange(cand.size, dtype=np.int64)
                self._scratch[fslots[::-1]] = order[::-1]
                winners = cand[self._scratch[fslots] == order]
                self._scratch[fslots] = -1
                widx = pending[winners]
                self._hkeys[s[winners]] = keys[widx]
                self._hvals[s[winners]] = payloads[widx]
                self.n_live += winners.size
                done = np.zeros(pending.size, dtype=bool)
                done[winners] = True
                pending = pending[~done]
            offset += np.uint64(1)
            if int(offset) > self._n_slots:
                raise RuntimeError("index probe loop exceeded table size")

    def remove(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Delete ``keys``; returns ``(old_payloads, existed)``."""
        keys = as_keys(keys)
        n = keys.size
        old = np.full(n, -1, dtype=np.int64)
        existed = np.zeros(n, dtype=bool)
        if n == 0:
            return old, existed
        if self._dense_ok(keys):
            idx = keys.astype(np.int64)
            old = self._dense[idx]
            existed = old >= 0
            if n > 1:
                # Duplicate keys: only the first occurrence sees the live
                # entry (the probe path tombstones it for the rest).
                order = np.arange(n, dtype=np.int64)
                self._dense[idx[::-1]] = order[::-1]
                existed &= self._dense[idx] == order
                old[~existed] = -1
            self._dense[idx] = -1
            self.n_live -= int(existed.sum())
            return old, existed
        base = self._base(keys)
        pending = np.arange(n)
        offset = np.uint64(0)
        while pending.size:
            s = (base[pending] + offset) & self._mask
            occupant = self._hkeys[s]
            hit = occupant == keys[pending]
            empty = occupant == EMPTY_KEY
            hidx = pending[hit]
            old[hidx] = self._hvals[s[hit]]
            existed[hidx] = True
            self._hkeys[s[hit]] = TOMBSTONE_KEY
            self._hvals[s[hit]] = -1
            pending = pending[~(hit | empty)]
            offset += np.uint64(1)
            if int(offset) > self._n_slots:
                raise RuntimeError("index probe loop exceeded table size")
        n_removed = int(existed.sum())
        self.n_live -= n_removed
        self._n_dead += n_removed
        return old, existed

    # ------------------------------------------------------------------
    # Scalar fast paths (single-key cache API, per-key ablations).
    # ------------------------------------------------------------------
    def _probe1(self, key: int) -> tuple[int, int]:
        """``(match_slot, first_vacant_slot)`` for ``key``; -1 if none."""
        hkeys = self._hkeys
        mask = int(self._mask)
        h = splitmix64_scalar(key) & mask
        free = -1
        for _ in range(self._n_slots + 1):
            occ = int(hkeys[h])
            if occ == key:
                return h, free
            if occ == _TOMB:
                if free < 0:
                    free = h
            elif occ == _EMPTY:
                return -1, (free if free >= 0 else h)
            h = (h + 1) & mask
        raise RuntimeError("index probe loop exceeded table size")

    def get1(self, key: int) -> int:
        """Payload for a single key, or -1."""
        dense = self._dense
        if dense is not None:
            if key < dense.size:
                return int(dense[key])
            self._escape_dense()
        s, _ = self._probe1(key)
        return int(self._hvals[s]) if s >= 0 else -1

    def set1(self, key: int, payload: int) -> int:
        """Upsert a single key; returns the old payload or -1."""
        if key >= _TOMB:
            raise ValueError("keys >= 2**64 - 2 are reserved sentinels")
        dense = self._dense
        if dense is not None:
            if key < dense.size:
                old = int(dense[key])
                dense[key] = payload
                if old < 0:
                    self.n_live += 1
                return old
            self._escape_dense()
        self._maybe_grow(1)
        s, free = self._probe1(key)
        if s >= 0:
            old = int(self._hvals[s])
            self._hvals[s] = payload
            return old
        if int(self._hkeys[free]) == _TOMB:
            self._n_dead -= 1
        self._hkeys[free] = np.uint64(key)
        self._hvals[free] = payload
        self.n_live += 1
        return -1

    def remove1(self, key: int) -> int:
        """Delete a single key; returns the old payload or -1."""
        dense = self._dense
        if dense is not None:
            if key < dense.size:
                old = int(dense[key])
                if old >= 0:
                    dense[key] = -1
                    self.n_live -= 1
                return old
            self._escape_dense()
        s, _ = self._probe1(key)
        if s < 0:
            return -1
        old = int(self._hvals[s])
        self._hkeys[s] = TOMBSTONE_KEY
        self._hvals[s] = -1
        self.n_live -= 1
        self._n_dead += 1
        return old

    # ------------------------------------------------------------------
    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """All live ``(keys, payloads)``, unordered."""
        if self._dense is not None:
            idx = np.flatnonzero(self._dense >= 0)
            return idx.astype(KEY_DTYPE), self._dense[idx]
        live = self._hkeys < TOMBSTONE_KEY
        return self._hkeys[live].copy(), self._hvals[live].copy()

    def clear(self) -> None:
        if self._dense is not None:
            self._dense.fill(-1)
        self._hkeys.fill(EMPTY_KEY)
        self._hvals.fill(-1)
        self.n_live = 0
        self._n_dead = 0
