"""Durable file I/O (crash-consistency plumbing).

One implementation of the write-temp → fsync → ``os.replace`` sequence,
shared by every component that must never expose a torn file under its
final name (the SSD file store's payloads, the checkpoint shards and
manifest).  Keeping it in one place means a future durability fix —
fsyncing the parent directory, platform-specific replace handling —
lands everywhere at once.
"""

from __future__ import annotations

import os

__all__ = ["atomic_write_bytes"]


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Durably write ``data`` to ``path``; all-or-nothing.

    The final name either keeps its previous contents or holds ``data``
    in full — never a truncated intermediate.  The temp file is removed
    on failure.
    """
    tmp = path + ".tmp"
    try:
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.remove(tmp)
        raise
