"""Deterministic random-number plumbing.

Every stochastic component in the library takes an explicit integer seed and
derives independent child streams through :func:`spawn`.  Experiments are
therefore reproducible bit-for-bit, which the test suite relies on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn", "derive_seed"]


def make_rng(seed: int | None) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an integer seed."""
    return np.random.default_rng(seed)


def derive_seed(seed: int, *tags: int | str) -> int:
    """Derive a child seed from ``seed`` and a sequence of tags.

    Tags may be strings (component names) or integers (shard ids).  The
    derivation is stable across processes and Python versions — it does not
    use :func:`hash`.
    """
    h = np.uint64(seed) ^ np.uint64(0x9E3779B97F4A7C15)
    with np.errstate(over="ignore"):
        for tag in tags:
            if isinstance(tag, str):
                for ch in tag.encode():
                    h = (h ^ np.uint64(ch)) * np.uint64(0x100000001B3)
            else:
                h = (h ^ np.uint64(int(tag) & 0xFFFFFFFFFFFFFFFF)) * np.uint64(
                    0x100000001B3
                )
    return int(h & np.uint64(0x7FFFFFFF))


def spawn(seed: int, *tags: int | str) -> np.random.Generator:
    """Child generator keyed by ``(seed, *tags)``."""
    return make_rng(derive_seed(seed, *tags))
