"""Key utilities shared by every parameter-server layer.

Parameter keys are unsigned 64-bit integers end-to-end (the paper's sparse
feature ids reach ``10**11``, far beyond 32 bits).  All helpers here are
vectorized over NumPy ``uint64`` arrays; none of them loop per key.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "KEY_DTYPE",
    "EMPTY_KEY",
    "TOMBSTONE_KEY",
    "as_keys",
    "all_unique",
    "splitmix64",
    "splitmix64_scalar",
    "mix_hash",
    "unique_keys",
]

KEY_DTYPE = np.uint64

#: Sentinel stored in empty hash-table slots.  ``2**64 - 1`` is never a valid
#: feature id in any of the generators (they draw from ``[0, n_sparse)``).
EMPTY_KEY = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Sentinel marking deleted slots in indices that support removal (the
#: batch-first :mod:`repro.store` layer).  Like :data:`EMPTY_KEY`, it is
#: reserved: feature ids never reach ``2**64 - 2``.
TOMBSTONE_KEY = np.uint64(0xFFFFFFFFFFFFFFFE)

_U64 = np.uint64
_MASK64 = (1 << 64) - 1


def as_keys(values) -> np.ndarray:
    """Coerce ``values`` to a contiguous ``uint64`` key array.

    Accepts lists, ranges, or arrays of any integer dtype.  Raises
    ``ValueError`` for negative inputs rather than silently wrapping.
    """
    arr = np.asarray(values)
    if arr.size == 0:
        return np.empty(arr.shape, dtype=KEY_DTYPE)
    if arr.dtype.kind == "f":
        raise ValueError("parameter keys must be integers, got floats")
    if arr.dtype.kind == "i" and arr.size and arr.min() < 0:
        raise ValueError("parameter keys must be non-negative")
    if arr.dtype != KEY_DTYPE:
        arr = arr.astype(KEY_DTYPE)
    return np.ascontiguousarray(arr)


def splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer — a strong, cheap 64-bit mixer.

    Used to scatter sequential feature ids across hash-table slots and
    partitions, mirroring the murmur-style mixing cuDF's
    ``concurrent_unordered_map`` applies before the modulo.
    """
    x = x.astype(_U64, copy=True)
    with np.errstate(over="ignore"):
        x += _U64(0x9E3779B97F4A7C15)
        x ^= x >> _U64(30)
        x *= _U64(0xBF58476D1CE4E5B9)
        x ^= x >> _U64(27)
        x *= _U64(0x94D049BB133111EB)
        x ^= x >> _U64(31)
    return x


def splitmix64_scalar(x: int) -> int:
    """Python-int splitmix64, bit-identical to :func:`splitmix64`.

    Single-key cache operations probe with plain ints to avoid the
    overhead of 1-element array dispatch; the two implementations must
    agree exactly or a key inserted via the batch path would be probed at
    the wrong slot by the scalar path.
    """
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


def mix_hash(keys: np.ndarray, seed: int = 0) -> np.ndarray:
    """Mix ``keys`` with an optional ``seed`` salt (vectorized)."""
    k = as_keys(keys)
    if seed:
        with np.errstate(over="ignore"):
            k = k ^ splitmix64(np.full(1, seed, dtype=_U64))[0]
    return splitmix64(k)


def all_unique(keys: np.ndarray) -> bool:
    """Cheap duplicate test for key batches.

    Working sets are usually the sorted output of :func:`unique_keys`, so
    a strictly-increasing scan (O(n)) short-circuits before paying the
    O(n log n) ``np.unique`` sort.
    """
    if keys.size <= 1:
        return True
    if bool(np.all(keys[1:] > keys[:-1])):
        return True
    return np.unique(keys).size == keys.size


#: Largest key domain deduplicated by scatter instead of sort (mirrors
#: the store index's :data:`~repro.store.slot_index.DENSE_DOMAIN_CAP`).
_COMPACT_DOMAIN_CAP = 1 << 22


def compact_unique(keys: np.ndarray, *, return_inverse: bool = False):
    """``np.unique`` — sorted dedup, optional inverse — for key arrays.

    Compact key domains (max key below :data:`_COMPACT_DOMAIN_CAP`, e.g.
    the functional models' ``[0, n_sparse)`` ids) dedup via one boolean
    scatter over the domain instead of the O(n log n) sort/hash; results
    are identical.  Larger domains fall back to ``np.unique``.
    """
    if keys.size == 0:
        empty = keys[:0].copy()
        return (empty, np.empty(0, dtype=np.int64)) if return_inverse else empty
    mx = int(keys.max())
    if mx >= _COMPACT_DOMAIN_CAP:
        if return_inverse:
            return np.unique(keys, return_inverse=True)
        return np.unique(keys)
    idx = keys.astype(np.int64)
    member = np.zeros(mx + 1, dtype=bool)
    member[idx] = True
    upos = np.flatnonzero(member)
    uniq = upos.astype(keys.dtype)
    if not return_inverse:
        return uniq
    rank = np.empty(mx + 1, dtype=np.int64)
    rank[upos] = np.arange(upos.size, dtype=np.int64)
    return uniq, rank[idx]


def unique_keys(*key_arrays: np.ndarray) -> np.ndarray:
    """Union of several key arrays, sorted, deduplicated.

    This implements the "identify the union of the referenced parameters in
    the current received batch" step of Algorithm 1 (line 3).
    """
    non_empty = [as_keys(a) for a in key_arrays if np.asarray(a).size]
    if not non_empty:
        return np.empty(0, dtype=KEY_DTYPE)
    return compact_unique(np.concatenate(non_empty))
