"""Analytic workload statistics.

The paper-scale timing reproduction needs the expected number of *unique*
parameters referenced by a batch — the "working parameters" of Algorithm 1
— without materializing 10^11-key batches.  For draws from a Zipf
popularity law this is

    E[U] = sum_r (1 - (1 - p_r)^n)

which we evaluate with log-spaced rank bucketing (exact at the bucket
representative, |error| < 1% for the smooth Zipf pmf).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "expected_unique_uniform",
    "expected_unique_zipf",
    "expected_overlap_fraction",
    "zipf_head_mass",
]


def expected_unique_uniform(n_draws: float, key_space: float) -> float:
    """E[#unique] for ``n_draws`` uniform draws over ``key_space`` keys."""
    if n_draws < 0 or key_space <= 0:
        raise ValueError("invalid arguments")
    if n_draws == 0:
        return 0.0
    # K * (1 - (1 - 1/K)^n), computed stably.
    return float(key_space * -np.expm1(n_draws * np.log1p(-1.0 / key_space)))


def _zipf_bucket_pmf(
    key_space: float, exponent: float, n_buckets: int = 4096
) -> tuple[np.ndarray, np.ndarray]:
    """(bucket sizes, representative probability per key in bucket)."""
    if key_space < n_buckets:
        ranks = np.arange(1.0, key_space + 1.0)
        p = ranks ** (-exponent)
        return np.ones_like(ranks), p / p.sum()
    edges = np.unique(
        np.round(np.logspace(0, np.log10(key_space), n_buckets + 1)).astype(np.int64)
    )
    sizes = np.diff(edges).astype(np.float64)
    mids = np.sqrt(edges[:-1].astype(np.float64) * edges[1:].astype(np.float64))
    p_unnorm = mids ** (-exponent)
    total = float((sizes * p_unnorm).sum())
    return sizes, p_unnorm / total


def expected_unique_zipf(
    n_draws: float, key_space: float, exponent: float = 1.05
) -> float:
    """E[#unique] for ``n_draws`` Zipf(``exponent``) draws over ``key_space``.

    Matches the empirical unique counts of
    :class:`~repro.data.generator.CTRDataGenerator` (same popularity law).
    """
    if n_draws < 0 or key_space <= 0:
        raise ValueError("invalid arguments")
    if n_draws == 0:
        return 0.0
    sizes, p = _zipf_bucket_pmf(key_space, exponent)
    # 1 - (1-p)^n per key, stably: -expm1(n * log1p(-p)).
    per_key = -np.expm1(n_draws * np.log1p(-np.minimum(p, 1 - 1e-12)))
    return float((sizes * per_key).sum())


def zipf_head_mass(
    top_k: float, key_space: float, exponent: float = 1.05
) -> float:
    """Probability mass of the ``top_k`` most popular Zipf keys.

    This is the best-case hit rate of a ``top_k``-entry frequency cache —
    the quantity behind the MEM-PS steady-state hit rate: a cache holding
    the hottest keys serves exactly the head mass of the access stream.
    """
    if key_space <= 0:
        raise ValueError("key_space must be positive")
    top_k = min(max(top_k, 0.0), key_space)
    if top_k == 0:
        return 0.0
    sizes, p = _zipf_bucket_pmf(key_space, exponent)
    cum_keys = np.cumsum(sizes)
    cum_mass = np.cumsum(sizes * p)
    return float(np.interp(top_k, cum_keys, cum_mass))


def expected_overlap_fraction(
    n_draws_each: float, key_space: float, exponent: float = 1.05
) -> float:
    """Fraction of one batch's unique keys also hit by an independent batch.

    Drives the steady-state cache-hit model: hot Zipf keys recur across
    batches, cold-tail keys do not.
    """
    u1 = expected_unique_zipf(n_draws_each, key_space, exponent)
    u2 = expected_unique_zipf(2 * n_draws_each, key_space, exponent)
    # |A ∩ B| = |A| + |B| - |A ∪ B|, with E|A|=E|B|=u1, E|A ∪ B|=u2.
    inter = max(0.0, 2 * u1 - u2)
    return inter / u1 if u1 > 0 else 0.0
