"""Compact DNN trainer for the hashing study (paper Tables 1–2).

``Hash+DNN`` and ``Baseline DNN`` rows both train the standard
embedding-plus-MLP CTR network; the only difference is whether the input
batches went through :class:`~repro.hashing.op_osrp.OPOSRPHasher`.  This
trainer runs that network over in-memory batch lists with a flat
dictionary store — no parameter-server machinery, as in the 2015 study.
"""

from __future__ import annotations

import numpy as np

from repro.config import ModelSpec
from repro.data.batching import Batch
from repro.nn.metrics import auc
from repro.nn.model import CTRModel
from repro.nn.optim import DenseAdagrad, SparseAdagrad
from repro.utils.keys import as_keys

__all__ = ["SimpleDNN"]


class SimpleDNN:
    """Single-store embedding+MLP trainer over explicit batch lists.

    Hashed data has no slot structure, so ``n_slots=1`` (sum-pool all
    active features) is the default.
    """

    def __init__(
        self,
        embedding_dim: int = 8,
        hidden_layers: tuple[int, ...] = (32, 16),
        *,
        n_slots: int = 1,
        lr: float = 0.05,
        seed: int = 0,
    ) -> None:
        spec = ModelSpec(
            name="simple-dnn",
            nonzeros_per_example=1,
            n_sparse=2**62,
            n_dense=sum(hidden_layers),
            size_gb=0.0,
            mpi_nodes=1,
            embedding_dim=embedding_dim,
            hidden_layers=hidden_layers,
            n_slots=n_slots,
        )
        self.model = CTRModel(spec, seed=seed)
        self.sparse_opt = SparseAdagrad(embedding_dim, lr=lr)
        self.dense_opt = DenseAdagrad(lr=lr)
        self.seed = seed
        self._store: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _fetch(self, keys: np.ndarray) -> np.ndarray:
        keys = as_keys(keys)
        out = np.zeros((keys.size, self.sparse_opt.value_dim), dtype=np.float32)
        miss = [i for i, k in enumerate(keys) if int(k) not in self._store]
        for i, k in enumerate(keys):
            v = self._store.get(int(k))
            if v is not None:
                out[i] = v
        if miss:
            idx = np.asarray(miss)
            fresh = self.sparse_opt.init_for_keys(keys[idx], seed=self.seed)
            out[idx] = fresh
            for j, i in enumerate(idx):
                self._store[int(keys[i])] = fresh[j].copy()
        return out

    def _pad_rows(self, batch: Batch) -> Batch:
        """Hashed rows can be empty (all z=0); embedding pooling handles
        empty rows only when lengths divide n_slots — with n_slots=1 any
        length including 0 is fine, so no padding is needed."""
        return batch

    # ------------------------------------------------------------------
    def train_batch(self, batch: Batch) -> float:
        keys = batch.unique_keys()
        if keys.size == 0:
            return float("nan")
        values = self._fetch(keys)
        emb = self.sparse_opt.embedding(values)
        result = self.model.train_minibatch(batch, keys, emb)
        new_values = self.sparse_opt.apply(
            values, result.sparse_grad.grads
        )
        for i, k in enumerate(keys):
            self._store[int(k)] = new_values[i]
        self.dense_opt.step(
            self.model.mlp.parameters(),
            [g.astype(np.float32) for g in self.model.mlp.gradients()],
        )
        return result.loss

    def fit(self, batches: list[Batch], *, epochs: int = 1) -> list[float]:
        losses = []
        for _ in range(epochs):
            for b in batches:
                losses.append(self.train_batch(b))
        return losses

    # ------------------------------------------------------------------
    def predict_proba(self, batch: Batch) -> np.ndarray:
        keys = batch.unique_keys()
        emb = self.sparse_opt.embedding(self._fetch(keys))
        return self.model.predict_proba(batch, keys, emb)

    def evaluate_auc(self, batch: Batch) -> float:
        return auc(batch.labels, self.predict_proba(batch))

    @property
    def n_embedding_params(self) -> int:
        """Distinct sparse features seen (Tables 1–2 size proxy)."""
        return len(self._store)
