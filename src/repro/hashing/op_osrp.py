"""OP+OSRP — one permutation + one sign random projection (paper §2).

Baidu's 2015 attempt at hashing CTR models down to a single machine.  For
binary sparse data of dimensionality ``p``:

1. **Permute** the ``p`` columns once (we use an affine bijection
   ``x -> (a*x + b) mod p`` with ``gcd(a, p) = 1`` — the "2U/4U hashing"
   of the paper);
2. **Break** the permuted columns uniformly into ``k`` bins;
3. **Project** within each bin: ``z_bin = Σ x_i r_i`` with Rademacher
   signs ``r_i ∈ {−1,+1}`` derived per original column;
4. **Expand the sign** of each ``z`` into 2 binary features —
   ``[0 1]`` if ``z > 0``, ``[1 0]`` if ``z < 0``, ``[0 0]`` if ``z = 0``
   — so the hashed data stays binary in ``2k`` dimensions and the binary
   training stack is reused unchanged.

The transform is one vectorized pass over the nonzeros (the paper:
"essentially by touching each nonzero entry once").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.data.batching import Batch
from repro.utils.keys import KEY_DTYPE, as_keys, mix_hash
from repro.utils.rng import spawn

__all__ = ["OPOSRPHasher"]


def _coprime_multiplier(p: int, rng: np.random.Generator) -> int:
    """Random multiplier coprime to ``p`` (affine permutation slope)."""
    while True:
        a = int(rng.integers(1, p))
        if math.gcd(a, p) == 1:
            return a


@dataclass(frozen=True)
class _Affine:
    a: int
    b: int
    p: int

    def __call__(self, x: np.ndarray) -> np.ndarray:
        # Python-object arithmetic would be slow; p < 2^31 in practice so
        # 64-bit products cannot overflow int128 territory -> use uint64.
        with np.errstate(over="ignore"):
            return (
                (x.astype(np.uint64) * np.uint64(self.a) + np.uint64(self.b))
                % np.uint64(self.p)
            )


class OPOSRPHasher:
    """Hashes binary sparse batches from ``p`` to ``2k`` dimensions."""

    def __init__(self, p: int, k: int, *, seed: int = 0) -> None:
        if p <= 0:
            raise ValueError("input dimensionality p must be positive")
        if not 0 < k <= p:
            raise ValueError("bin count k must be in (0, p]")
        self.p = p
        self.k = k
        self.seed = seed
        rng = spawn(seed, "op_osrp", p, k)
        self.perm = _Affine(_coprime_multiplier(p, rng), int(rng.integers(p)), p)

    # ------------------------------------------------------------------
    @property
    def out_dim(self) -> int:
        return 2 * self.k

    def _bins(self, keys: np.ndarray) -> np.ndarray:
        """Bin index per nonzero column (after the one permutation)."""
        permuted = self.perm(as_keys(keys))
        # Uniform split of the permuted [0, p) range into k bins.
        return (permuted * np.uint64(self.k) // np.uint64(self.p)).astype(np.int64)

    def _signs(self, keys: np.ndarray) -> np.ndarray:
        """Rademacher sign per original column (one projection)."""
        h = mix_hash(as_keys(keys), seed=self.seed ^ 0x5351)
        return np.where((h & np.uint64(1)).astype(bool), 1.0, -1.0)

    # ------------------------------------------------------------------
    def transform(self, batch: Batch) -> Batch:
        """Hash a batch; labels are preserved, features become 2k-dim."""
        bins = self._bins(batch.keys)
        signs = self._signs(batch.keys)
        rows = np.repeat(np.arange(batch.n_examples), batch.row_lengths())

        # Accumulate z per (row, bin) without materializing a dense matrix.
        composite = rows.astype(np.int64) * self.k + bins
        uniq, inv = np.unique(composite, return_inverse=True)
        z = np.zeros(uniq.size, dtype=np.float64)
        np.add.at(z, inv, signs)

        nonzero = z != 0.0
        out_rows = (uniq[nonzero] // self.k).astype(np.int64)
        out_bins = (uniq[nonzero] % self.k).astype(np.uint64)
        # Sign expansion: feature 2*bin+1 if z>0 else 2*bin (z=0 dropped).
        out_keys = (2 * out_bins + (z[nonzero] > 0).astype(np.uint64)).astype(
            KEY_DTYPE
        )

        # Rebuild CSR: (row, key) pairs are already grouped by row because
        # ``composite`` sorts row-major.
        counts = np.bincount(out_rows, minlength=batch.n_examples)
        offsets = np.zeros(batch.n_examples + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return Batch(out_keys, offsets, batch.labels)

    def transform_many(self, batches: list[Batch]) -> list[Batch]:
        return [self.transform(b) for b in batches]
