"""Sparse logistic regression — the paper's pre-DNN baseline model.

Binary features, one weight per feature, trained with Adagrad on the
logistic loss.  Vectorized over CSR batches via scatter-adds; the weight
vector is dense over the (scaled-down) feature space.
"""

from __future__ import annotations

import numpy as np

from repro.data.batching import Batch
from repro.nn.loss import bce_with_logits, sigmoid
from repro.nn.metrics import auc

__all__ = ["SparseLogisticRegression"]


class SparseLogisticRegression:
    """LR over binary sparse inputs (feature value is always 1)."""

    def __init__(
        self, n_features: int, *, lr: float = 0.1, eps: float = 1e-6
    ) -> None:
        if n_features <= 0:
            raise ValueError("n_features must be positive")
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.n_features = n_features
        self.lr = lr
        self.eps = eps
        self.w = np.zeros(n_features, dtype=np.float64)
        self.bias = 0.0
        self._acc = np.zeros(n_features, dtype=np.float64)
        self._acc_bias = 0.0

    # ------------------------------------------------------------------
    def decision_function(self, batch: Batch) -> np.ndarray:
        """Logits: sum of active-feature weights plus bias."""
        keys = batch.keys.astype(np.int64)
        if keys.size and keys.max() >= self.n_features:
            raise IndexError("feature id beyond n_features")
        rows = np.repeat(np.arange(batch.n_examples), batch.row_lengths())
        logits = np.full(batch.n_examples, self.bias, dtype=np.float64)
        np.add.at(logits, rows, self.w[keys])
        return logits

    def predict_proba(self, batch: Batch) -> np.ndarray:
        return sigmoid(self.decision_function(batch))

    def partial_fit(self, batch: Batch) -> float:
        """One Adagrad step on ``batch``; returns the loss."""
        logits = self.decision_function(batch)
        loss, _, grad_logit = bce_with_logits(logits, batch.labels)
        keys = batch.keys.astype(np.int64)
        rows = np.repeat(np.arange(batch.n_examples), batch.row_lengths())
        grad_w = np.zeros(self.n_features, dtype=np.float64)
        np.add.at(grad_w, keys, grad_logit[rows])
        grad_b = float(grad_logit.sum())
        self._acc += grad_w**2
        self._acc_bias += grad_b**2
        touched = grad_w != 0.0
        self.w[touched] -= (
            self.lr * grad_w[touched] / (np.sqrt(self._acc[touched]) + self.eps)
        )
        self.bias -= self.lr * grad_b / (np.sqrt(self._acc_bias) + self.eps)
        return loss

    def fit(self, batches: list[Batch], *, epochs: int = 1) -> list[float]:
        losses = []
        for _ in range(epochs):
            for b in batches:
                losses.append(self.partial_fit(b))
        return losses

    # ------------------------------------------------------------------
    def evaluate_auc(self, batch: Batch) -> float:
        return auc(batch.labels, self.predict_proba(batch))

    @property
    def n_nonzero_weights(self) -> int:
        """Paper Tables 1–2 '#Nonzero Weights' column."""
        return int(np.count_nonzero(self.w))
